//! Quickstart: unconstrained vs fair diversity maximization (paper Fig. 2).
//!
//! Selects 10 representatives from a simulated Adult dataset, first with the
//! unconstrained streaming algorithm (Algorithm 1), then with SFDM1 under an
//! equal-representation constraint over sex — showing that the fair solution
//! balances the groups at a small cost in diversity.
//!
//! Run with: `cargo run --release --example quickstart`

use fdm::core::prelude::*;
use fdm::datasets::{adult, AdultGrouping};

fn main() -> Result<()> {
    // A simulated Adult sample: 6 z-scored numeric features, Euclidean
    // distance, 2 sex groups with the real 67/33 skew.
    let dataset = adult(AdultGrouping::Sex, 5_000, 42)?;
    println!(
        "dataset: n = {}, dim = {}, groups = {:?}",
        dataset.len(),
        dataset.dim(),
        dataset.group_sizes()
    );

    let k = 10;
    let epsilon = 0.1;
    let bounds = dataset.sampled_distance_bounds(200, 4.0)?;
    println!(
        "distance bounds: [{:.3}, {:.3}] (spread {:.1})",
        bounds.lower,
        bounds.upper,
        bounds.spread()
    );

    // --- Unconstrained streaming diversity maximization (Algorithm 1). ---
    let mut unconstrained = StreamingDiversityMaximization::new(StreamingDmConfig {
        k,
        epsilon,
        bounds,
        metric: dataset.metric(),
    })?;
    for element in dataset.iter() {
        unconstrained.insert(&element);
    }
    let blind = unconstrained.finalize()?;
    println!(
        "\nunconstrained: div = {:.4}, group counts = {:?}",
        blind.diversity,
        blind.group_counts(2)
    );

    // --- Fair selection with SFDM1 (equal representation: 5 + 5). ---
    let constraint = FairnessConstraint::equal_representation(k, 2)?;
    let mut fair = Sfdm1::new(Sfdm1Config {
        constraint: constraint.clone(),
        epsilon,
        bounds,
        metric: dataset.metric(),
    })?;
    for element in dataset.iter() {
        fair.insert(&element);
    }
    let fair_solution = fair.finalize()?;
    println!(
        "fair (SFDM1):  div = {:.4}, group counts = {:?}",
        fair_solution.diversity,
        fair_solution.group_counts(2)
    );
    assert!(constraint.is_satisfied_by(&fair_solution.group_counts(2)));

    // The paper's quality yardstick: 2·div(GMM) upper-bounds OPT_f.
    let upper = diversity_upper_bound(&dataset, k, 0);
    println!(
        "\nupper bound on OPT_f: {:.4}  →  fair solution achieves ≥ {:.0}% of it",
        upper,
        100.0 * fair_solution.diversity / upper
    );
    println!(
        "memory: SFDM1 stored {} of {} stream elements",
        fair.stored_elements(),
        dataset.len()
    );
    Ok(())
}
