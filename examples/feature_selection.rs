//! Diverse subset selection for ML training (the paper's intro motivation).
//!
//! "When training machine learning models on massive data, … selecting
//! diverse features or subsets can lead to better balance between
//! efficiency and accuracy" (§I). This example streams a large labeled
//! point cloud and selects a small, diverse, **class-balanced** training
//! subset with SFDM2 — then shows that the diverse subset covers the
//! feature space far better than a uniform random sample of the same size
//! (higher minimum pairwise distance, lower maximum "hole" radius).
//!
//! Run with: `cargo run --release --example feature_selection`

use fdm::core::prelude::*;
use fdm::datasets::{synthetic_blobs, SyntheticConfig};
use rand::prelude::*;

/// Largest distance from any dataset point to the selected subset — the
/// covering ("hole") radius; smaller is better.
fn covering_radius(dataset: &Dataset, subset_ids: &[usize]) -> f64 {
    let mut worst: f64 = 0.0;
    for i in 0..dataset.len() {
        let nearest = subset_ids
            .iter()
            .map(|&j| dataset.dist(i, j))
            .fold(f64::INFINITY, f64::min);
        worst = worst.max(nearest);
    }
    worst
}

fn main() -> Result<()> {
    // 20k points from 10 blobs; classes (= groups) assigned uniformly, so a
    // class-balanced subset is a fair solution with ER quotas.
    let classes = 4;
    let dataset = synthetic_blobs(SyntheticConfig {
        n: 20_000,
        m: classes,
        blobs: 10,
        seed: 11,
        dim: 2,
    })?;
    let budget = 40; // training examples to keep

    // Diverse, class-balanced subset via SFDM2 in one pass.
    let constraint = FairnessConstraint::equal_representation(budget, classes)?;
    let bounds = dataset.sampled_distance_bounds(300, 4.0)?;
    let mut alg = Sfdm2::new(Sfdm2Config {
        constraint: constraint.clone(),
        epsilon: 0.1,
        bounds,
        metric: dataset.metric(),
    })?;
    for element in dataset.iter() {
        alg.insert(&element);
    }
    let diverse = alg.finalize()?;
    assert!(constraint.is_satisfied_by(&diverse.group_counts(classes)));

    // Baseline: uniform random class-balanced sample of the same size.
    let mut rng = StdRng::seed_from_u64(7);
    let mut random_ids: Vec<usize> = Vec::with_capacity(budget);
    for class in 0..classes {
        let members = dataset.group_indices(class);
        random_ids.extend(
            members
                .choose_multiple(&mut rng, constraint.quota(class))
                .copied(),
        );
    }

    let diverse_ids = diverse.ids();
    let div_random = fdm::core::diversity::diversity(&dataset, &random_ids);
    let cover_diverse = covering_radius(&dataset, &diverse_ids);
    let cover_random = covering_radius(&dataset, &random_ids);

    println!(
        "training-subset selection ({budget} of {} points, {classes} classes)\n",
        dataset.len()
    );
    println!(
        "{:<22} {:>14} {:>16}",
        "method", "div (min dist)", "covering radius"
    );
    println!(
        "{:<22} {:>14.4} {:>16.4}",
        "SFDM2 (diverse)", diverse.diversity, cover_diverse
    );
    println!(
        "{:<22} {:>14.4} {:>16.4}",
        "random balanced", div_random, cover_random
    );
    println!(
        "\nSFDM2 kept {} of 20000 elements in memory during the pass",
        alg.stored_elements()
    );

    // The qualitative claim: diversity-maximized subsets avoid redundant
    // near-duplicate training points (higher min distance) and leave
    // smaller holes in feature space.
    assert!(
        diverse.diversity > div_random,
        "diverse subset must beat random on div"
    );
    Ok(())
}
