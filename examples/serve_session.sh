#!/usr/bin/env bash
# End-to-end fdm-serve session: insert → snapshot → kill → restore → query,
# asserting that the post-restore QUERY output is byte-identical to an
# uninterrupted run. The CI `serve` job runs this script verbatim.
#
# Usage: examples/serve_session.sh [path-to-fdm-serve-binary]
set -euo pipefail

BIN="${1:-target/release/fdm-serve}"
WORK="$(mktemp -d)"
SERVER=""
cleanup() {
  [ -n "$SERVER" ] && kill -9 "$SERVER" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# A deterministic 2-d, 2-group stream of 80 elements (awk keeps the script
# dependency-free; printf %.17g preserves every f64 bit through the text).
gen_inserts() { # gen_inserts <from> <to>
  awk -v from="$1" -v to="$2" 'BEGIN {
    for (i = from; i < to; i++) {
      x = sin(i * 0.7391) * 9.0
      y = cos(i * 0.2113) * 9.0
      printf "INSERT %d %d %.17g %.17g\n", i, i % 2, x, y
    }
  }'
}

OPEN="OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30"

echo "== reference: one uninterrupted session =="
{ echo "$OPEN"; gen_inserts 0 80; echo "QUERY"; } | "$BIN" > "$WORK/full.out"
grep '^OK k=' "$WORK/full.out" > "$WORK/full.query"
cat "$WORK/full.query"

echo "== interrupted: first half, snapshot, then SIGKILL the live process =="
# The process is started in the background and fed half the stream plus a
# SNAPSHOT command through a FIFO whose write end (fd 3) stays open, so
# the server keeps running — blocked on the next read — until SIGKILL
# lands on it. No clean shutdown path runs; only the snapshot survives.
mkfifo "$WORK/in"
"$BIN" > "$WORK/half.out" < "$WORK/in" &
SERVER=$!
exec 3> "$WORK/in"
{
  echo "$OPEN"
  gen_inserts 0 40
  echo "SNAPSHOT $WORK/jobs.snap"
} >&3
# Wait until the snapshot is acknowledged (the server reads the FIFO async).
for _ in $(seq 1 100); do
  grep -q '^OK snapshot' "$WORK/half.out" && break
  sleep 0.1
done
grep -q '^OK snapshot' "$WORK/half.out" || { echo "snapshot never completed"; exit 1; }
kill -0 "$SERVER" 2>/dev/null || { echo "server died before SIGKILL"; exit 1; }
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true
SERVER=""
exec 3>&-

echo "== resumed: restore, replay the second half, query =="
{ echo "RESTORE $WORK/jobs.snap"; gen_inserts 40 80; echo "QUERY"; } | "$BIN" > "$WORK/resumed.out"
grep '^OK restored jobs processed=40$' "$WORK/resumed.out" > /dev/null
grep '^OK k=' "$WORK/resumed.out" > "$WORK/resumed.query"
cat "$WORK/resumed.query"

echo "== assert: byte-identical QUERY output =="
diff "$WORK/full.query" "$WORK/resumed.query"
echo "PASS: post-restore QUERY is byte-identical to the uninterrupted run"

echo "== durable: sustained insert load keeps the on-disk delta chain bounded =="
# A daemon with a data dir checkpoints every 4 inserts: a dirty-set delta
# while the chain is short, collapsed back into the full snapshot by the
# background compactor once the chain reaches --full-every. Under a
# sustained insert loop the number of *.delta.* files on disk must settle
# at or under that bound — the whole point of moving chain collapse off
# the hot path is that the chain stays short without any insert stalling.
DATA="$WORK/data"
FULL_EVERY=4
mkfifo "$WORK/din"
"$BIN" --data-dir "$DATA" --snapshot-every 4 --full-every "$FULL_EVERY" \
  > "$WORK/durable.out" < "$WORK/din" &
SERVER=$!
exec 4> "$WORK/din"
echo "$OPEN" >&4
NEXT=0
for _ in $(seq 1 25); do
  gen_inserts "$NEXT" $((NEXT + 8)) >&4
  NEXT=$((NEXT + 8))
  sleep 0.02
done
for _ in $(seq 1 100); do
  [ "$(grep -c '^OK inserted' "$WORK/durable.out" || true)" -eq "$NEXT" ] && break
  sleep 0.1
done
[ "$(grep -c '^OK inserted' "$WORK/durable.out" || true)" -eq "$NEXT" ] \
  || { echo "only $(grep -c '^OK inserted' "$WORK/durable.out") of $NEXT inserts acked"; exit 1; }
# Deltas written while a collapse is in flight survive it (they chain off
# the new full snapshot), and with the stream idle nothing re-triggers the
# compactor — so nudge with one checkpoint's worth of inserts per poll
# until the chain settles at or under the bound.
CHAIN=-1
for _ in $(seq 1 100); do
  CHAIN=$(ls "$DATA" | grep -c '\.delta\.' || true)
  [ "$CHAIN" -le "$FULL_EVERY" ] && break
  gen_inserts "$NEXT" $((NEXT + 4)) >&4
  NEXT=$((NEXT + 4))
  sleep 0.1
done
[ "$CHAIN" -ge 0 ] && [ "$CHAIN" -le "$FULL_EVERY" ] \
  || { echo "delta chain never settled: $CHAIN files > full_every=$FULL_EVERY"; ls "$DATA"; exit 1; }
echo "QUIT" >&4
exec 4>&-
wait "$SERVER" 2>/dev/null || true
SERVER=""
echo "PASS: delta chain settled at $CHAIN file(s) (bound $FULL_EVERY) after $NEXT inserts"
