#!/usr/bin/env bash
# Structural lint for a Prometheus text-exposition (format 0.0.4) scrape
# of fdm-serve's /metrics endpoint, as promised by docs/serve.md:
#
#   * every sample is preceded by a `# TYPE` for its family (families
#     are contiguous), and the type is counter/gauge/histogram;
#   * no series (name + label set) appears twice;
#   * every value is numeric;
#   * histogram `+Inf` buckets equal their `_count`.
#
# Usage: examples/metrics_lint.sh [scrape-file]    (stdin when omitted)
# Exits non-zero with one line per violation. The CI `serve` job runs
# this against a live scrape.
set -euo pipefail

awk '
  function fail(msg) { printf "metrics lint: line %d: %s\n", NR, msg; bad = 1 }
  /^# TYPE / {
    family = $3; kind = $4
    if (kind != "counter" && kind != "gauge" && kind != "histogram")
      fail("unknown TYPE " kind " for " family)
    if (family in typed)
      fail("family " family " TYPE-declared twice (families must be contiguous)")
    typed[family] = kind
    next
  }
  /^#/ { next }
  /^$/ { next }
  {
    series = $0
    sub(/ [^ ]+$/, "", series)            # strip the trailing value
    if (series in seen) fail("duplicate series " series)
    seen[series] = 1
    name = series
    sub(/\{.*/, "", name)
    family = name
    sub(/_(bucket|sum|count)$/, "", family)
    if (!(name in typed) && !(family in typed))
      fail("sample " name " has no preceding # TYPE")
    value = $NF
    if (value !~ /^[-+]?[0-9.][0-9.eE+-]*$/)
      fail("non-numeric value " value " on " series)
    # Histogram bookkeeping, keyed by family + non-le labels.
    if (name ~ /_bucket$/ && series ~ /le="\+Inf"/) {
      key = series
      sub(/_bucket\{/, "{", key)
      sub(/,?le="\+Inf"/, "", key)
      inf[key] = value
    }
    if (name ~ /_count$/ && typed[family] == "histogram") {
      key = series
      sub(/_count\{/, "{", key)
      count[key] = value
    }
    samples++
  }
  END {
    if (samples == 0) { print "metrics lint: empty exposition"; bad = 1 }
    for (key in count) {
      if (!(key in inf)) {
        printf "metrics lint: %s: histogram without a +Inf bucket\n", key; bad = 1
      } else if (inf[key] + 0 != count[key] + 0) {
        printf "metrics lint: %s: +Inf bucket %s != _count %s\n", key, inf[key], count[key]
        bad = 1
      }
    }
    exit bad
  }
' "${1:-/dev/stdin}"
