#!/usr/bin/env bash
# End-to-end distributed fdm-serve round trip: a coordinator fronting two
# worker daemons (each with its own WAL under --data-dir), driven over
# TCP. Inserts half the stream, kill -9's one worker mid-stream, asserts
# the coordinator degrades typed (`ERR worker unavailable: <addr>: ...`)
# and exports the worker-health metrics, then restarts the worker (WAL
# replay) and the coordinator (cursor re-derived from the workers) and
# asserts the final QUERY is byte-identical to a single-node daemon run
# with `shards=2` over the same arrival order — the bit-identity
# guarantee of docs/distributed.md, as a shell round trip. The
# coordinator's /metrics exposition is linted with
# examples/metrics_lint.sh. The CI `serve` job runs this script verbatim.
#
# A second act drives the pipelined INSERTB fan-out: a worker armed with
# `FDM_SERVE_CRASH_POINT=before-batch-wal-append:2` dies mid-batch
# (the same no-cleanup death as a kill -9 landing between two flush
# rounds), the coordinator must name it in a typed error while keeping
# the acked prefix durable (`OK attached ... processed=` proves the
# watermark), the client replays the unacked suffix — already-held
# elements heal by skip — and the final QUERY again matches the
# single-node reference. The coordinator's batch-path metric families
# (fdm_coord_*_latency_seconds, fdm_merge_*) are linted and asserted.
#
# Restarted processes bind fresh ports: the kill -9 leaves the old
# connections in TIME_WAIT and std's TcpListener sets no SO_REUSEADDR,
# so rebinding the same port can fail. Ports are config; the data dir is
# the worker's identity.
#
# Usage: examples/serve_cluster.sh [path-to-fdm-serve-binary]
set -euo pipefail

BIN="${1:-target/release/fdm-serve}"
LINT="$(dirname "$0")/metrics_lint.sh"
WORK="$(mktemp -d)"
BASE=$((20000 + RANDOM % 20000))
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

gen_inserts() { # gen_inserts <from> <to>
  awk -v from="$1" -v to="$2" 'BEGIN {
    for (i = from; i < to; i++) {
      x = sin(i * 0.7391) * 9.0
      y = cos(i * 0.2113) * 9.0
      printf "INSERT %d %d %.17g %.17g\n", i, i % 2, x, y
    }
  }'
}

gen_batches() { # gen_batches <from> <to> <elements-per-INSERTB-line>
  awk -v from="$1" -v to="$2" -v per="$3" 'BEGIN {
    line = ""; count = 0
    for (i = from; i < to; i++) {
      x = sin(i * 0.7391) * 9.0
      y = cos(i * 0.2113) * 9.0
      item = sprintf("%d %d %.17g %.17g", i, i % 2, x, y)
      line = (count == 0) ? "INSERTB " item : line " | " item
      count++
      if (count == per) { print line; line = ""; count = 0 }
    }
    if (count > 0) print line
  }'
}

OPEN="OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30"

tcp_session() { # tcp_session <port> <script-file> <out-file>
  if command -v nc > /dev/null 2>&1; then
    nc -q 1 127.0.0.1 "$1" < "$2" > "$3" || nc 127.0.0.1 "$1" < "$2" > "$3"
  else
    exec 9<> "/dev/tcp/127.0.0.1/$1"
    cat "$2" >&9
    cat <&9 > "$3"
    exec 9<&- 9>&-
  fi
}

scrape_metrics() { # scrape_metrics <port> <out-file>
  printf 'GET /metrics HTTP/1.0\r\n\r\n' > "$WORK/scrape.in"
  if command -v nc > /dev/null 2>&1; then
    nc -q 1 127.0.0.1 "$1" < "$WORK/scrape.in" > "$WORK/scrape.raw" \
      || nc 127.0.0.1 "$1" < "$WORK/scrape.in" > "$WORK/scrape.raw"
  else
    exec 8<> "/dev/tcp/127.0.0.1/$1"
    cat "$WORK/scrape.in" >&8
    cat <&8 > "$WORK/scrape.raw"
    exec 8<&- 8>&-
  fi
  head -1 "$WORK/scrape.raw" | grep -q " 200 " \
    || { cat "$WORK/scrape.raw"; echo "scrape did not return 200"; exit 1; }
  sed '1,/^\r\{0,1\}$/d' "$WORK/scrape.raw" > "$2"
}

start_node() { # start_node <port> <log-tag> [extra-flags...]  → appends to PIDS
  local port="$1" tag="$2"; shift 2
  "$BIN" --listen "127.0.0.1:$port" "$@" < /dev/null > /dev/null 2> "$WORK/$tag.log" &
  local pid=$!
  disown "$pid" # cleanup kill -9s are intentional; keep them out of the log
  PIDS+=("$pid")
  for _ in $(seq 1 100); do
    grep -q "listening on tcp://" "$WORK/$tag.log" 2>/dev/null && { echo "$pid"; return; }
    kill -0 "$pid" 2>/dev/null || { cat "$WORK/$tag.log"; echo "$tag died"; exit 1; }
    sleep 0.1
  done
  echo "$tag never started listening"; exit 1
}

echo "== reference: one single-node daemon with shards=2, uninterrupted =="
RP=$BASE
start_node "$RP" ref > /dev/null
{ echo "$OPEN shards=2"; gen_inserts 0 80; echo "QUERY"; echo "QUIT"; } > "$WORK/ref.in"
tcp_session "$RP" "$WORK/ref.in" "$WORK/ref.out"
grep '^OK k=' "$WORK/ref.out" > "$WORK/ref.query"
cat "$WORK/ref.query"

echo "== cluster: two workers (own WALs) behind a coordinator =="
WA=$((BASE + 1)); WB=$((BASE + 2)); CP=$((BASE + 3)); MP=$((BASE + 4))
WPID=$(start_node "$WA" worker0 --data-dir "$WORK/w0" --snapshot-every 16)
start_node "$WB" worker1 --data-dir "$WORK/w1" --snapshot-every 16 > /dev/null
start_node "$CP" coord --worker "127.0.0.1:$WA" --worker "127.0.0.1:$WB" \
  --metrics "127.0.0.1:$MP" > /dev/null
{ echo "$OPEN"; gen_inserts 0 40; echo "QUIT"; } > "$WORK/half.in"
tcp_session "$CP" "$WORK/half.in" "$WORK/half.out"
grep -q '^OK inserted processed=40$' "$WORK/half.out" \
  || { cat "$WORK/half.out"; echo "first half not acknowledged"; exit 1; }

echo "== kill -9 worker0: the coordinator must degrade typed, not hang =="
kill -9 "$WPID"; wait "$WPID" 2>/dev/null || true
{ echo "$OPEN"; gen_inserts 40 41; echo "QUIT"; } > "$WORK/dead.in"
tcp_session "$CP" "$WORK/dead.in" "$WORK/dead.out"
grep -q "^ERR worker unavailable: 127.0.0.1:$WA" "$WORK/dead.out" \
  || { cat "$WORK/dead.out"; echo "expected typed worker-unavailable error naming 127.0.0.1:$WA"; exit 1; }
echo "typed failure: $(grep -m 1 '^ERR worker unavailable' "$WORK/dead.out")"

echo "== coordinator /metrics: worker health gauges, linted exposition =="
scrape_metrics "$MP" "$WORK/metrics.txt"
"$LINT" "$WORK/metrics.txt"
grep -q "^fdm_worker_up{worker=\"127.0.0.1:$WA\"} 0$" "$WORK/metrics.txt" \
  || { grep ^fdm_worker "$WORK/metrics.txt" || true; echo "dead worker not reported down"; exit 1; }
grep -q "^fdm_worker_up{worker=\"127.0.0.1:$WB\"} 1$" "$WORK/metrics.txt" \
  || { grep ^fdm_worker "$WORK/metrics.txt" || true; echo "live worker not reported up"; exit 1; }
grep ^fdm_worker "$WORK/metrics.txt"

echo "== restart worker0 (WAL replay) + coordinator (cursor re-derived) =="
WA2=$((BASE + 5)); CP2=$((BASE + 6))
W0B=$(start_node "$WA2" worker0b --data-dir "$WORK/w0" --snapshot-every 16)
start_node "$CP2" coord2 --worker "127.0.0.1:$WA2" --worker "127.0.0.1:$WB" > /dev/null
{ echo "$OPEN"; gen_inserts 40 80; echo "QUERY"; echo "QUIT"; } > "$WORK/rest.in"
tcp_session "$CP2" "$WORK/rest.in" "$WORK/rest.out"
grep -q '^OK attached jobs processed=40$' "$WORK/rest.out" \
  || { cat "$WORK/rest.out"; echo "coordinator did not recover processed=40 from the workers"; exit 1; }
grep '^OK k=' "$WORK/rest.out" > "$WORK/cluster.query"
cat "$WORK/cluster.query"

echo "== assert: cluster QUERY byte-identical to single-node shards=2 =="
diff "$WORK/ref.query" "$WORK/cluster.query"
echo "OK: coordinator over 2 workers (with a kill -9 + restart in between) matches the single-node sharded run byte-for-byte"

echo "== act 2 reference: extend the single-node stream via INSERTB =="
{ echo "$OPEN shards=2"; gen_batches 80 144 16; echo "QUERY"; echo "QUIT"; } > "$WORK/ref2.in"
tcp_session "$RP" "$WORK/ref2.in" "$WORK/ref2.out"
grep -q '^OK inserted processed=144 count=16$' "$WORK/ref2.out" \
  || { cat "$WORK/ref2.out"; echo "single-node INSERTB not acknowledged"; exit 1; }
grep '^OK k=' "$WORK/ref2.out" > "$WORK/ref2.query"
cat "$WORK/ref2.query"

echo "== batched fan-out with a worker dying mid-batch (armed crash point) =="
# The restarted worker0 is retired in favor of one armed to abort on its
# second INSERTB apply — the deterministic stand-in for a kill -9 landing
# between two flush rounds of one client batch. Same data dir = same
# worker identity, so worker0b must die first.
WA3=$((BASE + 7)); CP3=$((BASE + 8))
kill -9 "$W0B"; wait "$W0B" 2>/dev/null || true
FDM_SERVE_CRASH_POINT="before-batch-wal-append:2" \
  start_node "$WA3" worker0c --data-dir "$WORK/w0" --snapshot-every 16 > /dev/null
start_node "$CP3" coord3 --worker "127.0.0.1:$WA3" --worker "127.0.0.1:$WB" > /dev/null
{ echo "$OPEN"; gen_batches 80 112 16; echo "QUIT"; } > "$WORK/batch.in"
tcp_session "$CP3" "$WORK/batch.in" "$WORK/batch.out"
grep -q '^OK inserted processed=96 count=16$' "$WORK/batch.out" \
  || { cat "$WORK/batch.out"; echo "first INSERTB round not acknowledged"; exit 1; }
grep -q "^ERR worker unavailable: 127.0.0.1:$WA3" "$WORK/batch.out" \
  || { cat "$WORK/batch.out"; echo "mid-batch death must surface as a typed error naming 127.0.0.1:$WA3"; exit 1; }
echo "typed mid-batch failure: $(grep -m 1 '^ERR worker unavailable' "$WORK/batch.out")"

echo "== restart + replay: acked prefix durable, unacked suffix replayable =="
WA4=$((BASE + 9)); CP4=$((BASE + 10)); MP2=$((BASE + 11))
start_node "$WA4" worker0d --data-dir "$WORK/w0" --snapshot-every 16 > /dev/null
start_node "$CP4" coord4 --worker "127.0.0.1:$WA4" --worker "127.0.0.1:$WB" \
  --metrics "127.0.0.1:$MP2" > /dev/null
{ echo "$OPEN"; gen_batches 96 144 16; echo "QUERY"; echo "QUERY"; echo "QUIT"; } > "$WORK/replay.in"
tcp_session "$CP4" "$WORK/replay.in" "$WORK/replay.out"
grep -q '^OK attached jobs processed=96$' "$WORK/replay.out" \
  || { cat "$WORK/replay.out"; echo "acked prefix processed=96 did not survive the mid-batch death"; exit 1; }
grep -q '^OK inserted processed=144 count=16$' "$WORK/replay.out" \
  || { cat "$WORK/replay.out"; echo "suffix replay (with heal-by-skip) not acknowledged"; exit 1; }
grep -m 1 '^OK k=' "$WORK/replay.out" > "$WORK/cluster2.query"
cat "$WORK/cluster2.query"

echo "== coordinator /metrics: batch-path families, linted exposition =="
scrape_metrics "$MP2" "$WORK/metrics2.txt"
"$LINT" "$WORK/metrics2.txt"
for family in fdm_coord_insert_latency_seconds fdm_coord_query_latency_seconds; do
  grep -q "^# TYPE $family histogram$" "$WORK/metrics2.txt" \
    || { echo "missing coordinator histogram $family"; exit 1; }
done
grep -q '^fdm_merge_bytes_total{kind="full"} [1-9]' "$WORK/metrics2.txt" \
  || { grep ^fdm_merge "$WORK/metrics2.txt" || true; echo "full-frame MERGE bytes not counted"; exit 1; }
grep -q '^fdm_merge_cache_hits_total [1-9]' "$WORK/metrics2.txt" \
  || { grep ^fdm_merge "$WORK/metrics2.txt" || true; echo "repeat QUERY did not hit the merged-solution cache"; exit 1; }
grep -E '^fdm_merge' "$WORK/metrics2.txt"

echo "== assert: batched cluster QUERY byte-identical to single-node shards=2 =="
diff "$WORK/ref2.query" "$WORK/cluster2.query"
echo "PASS: pipelined INSERTB fan-out (with a mid-batch crash, restart, and suffix replay in between) matches the single-node sharded run byte-for-byte"
