//! Genre-fair playlist diversification with SFDM2 (Lyrics workload).
//!
//! The paper's recommender-system motivation: pick a 30-song playlist from
//! a stream of ~120k songs (50-dimensional topic vectors, angular distance,
//! 15 genres) such that every genre is represented and the songs are
//! maximally dissimilar. Also contrasts equal representation against
//! proportional representation on the genre-skewed catalog.
//!
//! Run with: `cargo run --release --example playlist_diversification`

use fdm::core::prelude::*;
use fdm::datasets::lyrics;
use fdm::datasets::stream::{shuffled_indices, stream_elements};

fn run_sfdm2(dataset: &Dataset, constraint: &FairnessConstraint) -> Result<Solution> {
    let bounds = dataset.sampled_distance_bounds(300, 4.0)?;
    let mut alg = Sfdm2::new(Sfdm2Config {
        constraint: constraint.clone(),
        epsilon: 0.05, // the paper's Lyrics setting (angular distances ≤ π/2)
        bounds,
        metric: dataset.metric(),
    })?;
    let order = shuffled_indices(dataset.len(), 2024);
    for element in stream_elements(dataset, &order) {
        alg.insert(&element);
    }
    let solution = alg.finalize()?;
    println!(
        "  stored {} of {} songs during the pass",
        alg.stored_elements(),
        dataset.len()
    );
    Ok(solution)
}

fn main() -> Result<()> {
    let catalog = lyrics(20_000, 99)?;
    let m = catalog.num_groups();
    let k = 30;
    println!(
        "catalog: {} songs, {} genres, sizes {:?}",
        catalog.len(),
        m,
        catalog.group_sizes()
    );

    // Equal representation: two songs per genre.
    println!("\nequal representation (2 per genre):");
    let er = FairnessConstraint::equal_representation(k, m)?;
    let playlist = run_sfdm2(&catalog, &er)?;
    println!(
        "  div = {:.4} rad, genre counts = {:?}",
        playlist.diversity,
        playlist.group_counts(m)
    );
    assert!(er.is_satisfied_by(&playlist.group_counts(m)));

    // Proportional representation: popular genres get more slots.
    println!("\nproportional representation:");
    let pr = FairnessConstraint::proportional_representation(k, catalog.group_sizes())?;
    println!("  quotas = {:?}", pr.quotas());
    let playlist_pr = run_sfdm2(&catalog, &pr)?;
    println!(
        "  div = {:.4} rad, genre counts = {:?}",
        playlist_pr.diversity,
        playlist_pr.group_counts(m)
    );
    assert!(pr.is_satisfied_by(&playlist_pr.group_counts(m)));

    println!(
        "\nPR diversity is typically ≥ ER diversity on skewed catalogs \
         (closer to the unconstrained optimum): {:.4} vs {:.4}",
        playlist_pr.diversity, playlist.diversity
    );
    Ok(())
}
