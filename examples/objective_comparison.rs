//! Max-sum vs max-min dispersion (paper Fig. 1).
//!
//! Selects 10 points from a 2-D blob mixture under each objective and
//! prints summary geometry: max-sum piles the selection onto the margins
//! and tolerates near-duplicates, while max-min (GMM) spreads it uniformly
//! — the reason the paper adopts the max-min objective.
//!
//! Run with: `cargo run --release --example objective_comparison`

use fdm::core::diversity::diversity;
use fdm::core::prelude::*;
use fdm::datasets::{synthetic_blobs, SyntheticConfig};

/// Greedy max-sum dispersion: repeatedly add the point maximizing the sum
/// of distances to the current selection (the classic 1/2-approximation for
/// max-sum; implemented here only for the comparison figure).
fn max_sum_greedy(dataset: &Dataset, k: usize) -> Vec<usize> {
    let n = dataset.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    // Start from the pair realizing (approximately) the largest distance:
    // the point furthest from the centroid and its farthest partner.
    let mut selected: Vec<usize> = vec![0];
    let mut sum_dist: Vec<f64> = (0..n).map(|i| dataset.dist(i, 0)).collect();
    // Re-seed: replace the arbitrary start with the farthest point found.
    let far = (0..n)
        .max_by(|&a, &b| sum_dist[a].partial_cmp(&sum_dist[b]).unwrap())
        .unwrap();
    selected = vec![far];
    sum_dist = (0..n).map(|i| dataset.dist(i, far)).collect();
    while selected.len() < k.min(n) {
        let next = (0..n)
            .filter(|i| !selected.contains(i))
            .max_by(|&a, &b| sum_dist[a].partial_cmp(&sum_dist[b]).unwrap())
            .unwrap();
        selected.push(next);
        for i in 0..n {
            sum_dist[i] += dataset.dist(i, next);
        }
    }
    selected
}

fn pairwise_stats(dataset: &Dataset, subset: &[usize]) -> (f64, f64) {
    let mut sum = 0.0;
    let mut count = 0.0;
    for (a, &i) in subset.iter().enumerate() {
        for &j in &subset[a + 1..] {
            sum += dataset.dist(i, j);
            count += 1.0;
        }
    }
    (sum / count, diversity(dataset, subset))
}

fn main() -> Result<()> {
    let dataset = synthetic_blobs(SyntheticConfig {
        n: 3_000,
        m: 2,
        blobs: 10,
        seed: 7,
        dim: 2,
    })?;
    let k = 10;

    let max_sum = max_sum_greedy(&dataset, k);
    let max_min = gmm(&dataset, k, 0);

    let (sum_avg, sum_min) = pairwise_stats(&dataset, &max_sum);
    let (min_avg, min_min) = pairwise_stats(&dataset, &max_min);

    println!("objective   avg pairwise dist   min pairwise dist (div)");
    println!("max-sum     {sum_avg:>12.3}        {sum_min:>12.3}");
    println!("max-min     {min_avg:>12.3}        {min_min:>12.3}");
    println!();
    println!("max-sum selection (note near-duplicates at the margins):");
    for &i in &max_sum {
        println!(
            "  ({:6.2}, {:6.2})",
            dataset.point(i)[0],
            dataset.point(i)[1]
        );
    }
    println!("max-min selection (uniform coverage):");
    for &i in &max_min {
        println!(
            "  ({:6.2}, {:6.2})",
            dataset.point(i)[0],
            dataset.point(i)[1]
        );
    }

    // The qualitative claim of Fig. 1: max-min wins on the minimum pairwise
    // distance, max-sum on the average.
    assert!(min_min > sum_min, "max-min must dominate on div(S)");
    Ok(())
}
