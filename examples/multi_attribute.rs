//! Fairness over two sensitive attributes at once (extension; paper §VI
//! future work).
//!
//! Selects a committee of 12 people that is simultaneously balanced by sex
//! (6 + 6) and by three age brackets (4 + 4 + 4) while maximizing
//! diversity over their feature vectors. Uses the transportation-flow
//! reduction in `fdm::core::multifair`: a max-flow derives feasible
//! per-(sex, age) cell quotas, and SFDM2 runs on the product groups.
//!
//! Run with: `cargo run --release --example multi_attribute`

use fdm::core::multifair::{derive_cell_quotas, TwoAttributeConstraint, TwoAttributeSfdm};
use fdm::core::prelude::*;
use rand::prelude::*;

fn main() -> Result<()> {
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 10_000;

    // Population: features in R^4, sex ∈ {0,1}, age bracket ∈ {0,1,2} with
    // a skewed joint distribution (older men overrepresented).
    let mut rows = Vec::with_capacity(n);
    let mut labels: Vec<(usize, usize)> = Vec::with_capacity(n);
    for _ in 0..n {
        let sex = usize::from(rng.random::<f64>() < 0.45);
        let age = if rng.random::<f64>() < if sex == 0 { 0.5 } else { 0.25 } {
            2
        } else {
            rng.random_range(0..2)
        };
        rows.push(vec![
            rng.random::<f64>() * 10.0 + sex as f64,
            rng.random::<f64>() * 10.0 - age as f64,
            rng.random::<f64>() * 10.0,
            rng.random::<f64>() * 10.0,
        ]);
        labels.push((sex, age));
    }
    let dataset = Dataset::from_rows(rows, vec![0; n], Metric::Euclidean)?;

    // Joint availability counts (one cheap counting pass / metadata).
    let mut availability = vec![vec![0usize; 3]; 2];
    for &(a, b) in &labels {
        availability[a][b] += 1;
    }
    println!("population (sex × age) counts: {availability:?}");

    let constraint = TwoAttributeConstraint::new(vec![6, 6], vec![4, 4, 4])?;
    let cells = derive_cell_quotas(&constraint, &availability)?;
    println!("transportation-derived cell quotas: {cells:?}");

    let bounds = dataset.sampled_distance_bounds(300, 4.0)?;
    let mut alg = TwoAttributeSfdm::new(
        constraint.clone(),
        &availability,
        0.1,
        bounds,
        dataset.metric(),
    )?;
    for (i, (a, b)) in labels.iter().enumerate() {
        alg.insert(&dataset.element(i), *a, *b);
    }
    let committee = alg.finalize()?;

    // Recover the original labels and verify both marginals.
    let pairs: Vec<(usize, usize)> = committee
        .elements
        .iter()
        .map(|e| alg.dense_to_cell(e.group).expect("label mapping"))
        .collect();
    let mut sex_counts = [0usize; 2];
    let mut age_counts = [0usize; 3];
    for &(a, b) in &pairs {
        sex_counts[a] += 1;
        age_counts[b] += 1;
    }
    println!(
        "\ncommittee of {}: div = {:.4}",
        committee.len(),
        committee.diversity
    );
    println!("sex counts: {sex_counts:?} (required [6, 6])");
    println!("age counts: {age_counts:?} (required [4, 4, 4])");
    assert!(constraint.is_satisfied_by(&pairs));
    println!(
        "memory during the pass: {} of {n} elements",
        alg.stored_elements()
    );
    Ok(())
}
