#!/usr/bin/env bash
# End-to-end fdm-serve TCP session: OPEN/INSERT over a TCP connection to
# 127.0.0.1, SNAPSHOT (binary), SIGKILL the daemon, restore into a fresh
# daemon, and assert the post-restore QUERY over TCP is byte-identical to
# an uninterrupted run. The resumed daemon also exposes /metrics, which
# is scraped and linted with examples/metrics_lint.sh. The CI `serve`
# job runs this script verbatim.
#
# The client talks to the socket through bash's built-in /dev/tcp (used
# via `nc` when available, so the script works on minimal runners too).
#
# Usage: examples/serve_tcp_session.sh [path-to-fdm-serve-binary]
set -euo pipefail

BIN="${1:-target/release/fdm-serve}"
LINT="$(dirname "$0")/metrics_lint.sh"
WORK="$(mktemp -d)"
PORT=$((20000 + RANDOM % 20000))
MPORT=$((PORT + 1))
SERVER=""
cleanup() {
  [ -n "$SERVER" ] && kill -9 "$SERVER" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

gen_inserts() { # gen_inserts <from> <to>
  awk -v from="$1" -v to="$2" 'BEGIN {
    for (i = from; i < to; i++) {
      x = sin(i * 0.7391) * 9.0
      y = cos(i * 0.2113) * 9.0
      printf "INSERT %d %d %.17g %.17g\n", i, i % 2, x, y
    }
  }'
}

OPEN="OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30"

# Sends a scripted session to the TCP port and prints the replies.
tcp_session() { # tcp_session <script-file> <out-file>
  if command -v nc > /dev/null 2>&1; then
    nc -q 1 127.0.0.1 "$PORT" < "$1" > "$2" || nc 127.0.0.1 "$PORT" < "$1" > "$2"
  else
    exec 9<> "/dev/tcp/127.0.0.1/$PORT"
    cat "$1" >&9
    cat <&9 > "$2"
    exec 9<&- 9>&-
  fi
}

# Scrapes GET /metrics from the daemon's metrics port into a file,
# asserting a 200 and stripping the HTTP head.
scrape_metrics() { # scrape_metrics <out-file>
  printf 'GET /metrics HTTP/1.0\r\n\r\n' > "$WORK/scrape.in"
  if command -v nc > /dev/null 2>&1; then
    nc -q 1 127.0.0.1 "$MPORT" < "$WORK/scrape.in" > "$WORK/scrape.raw" \
      || nc 127.0.0.1 "$MPORT" < "$WORK/scrape.in" > "$WORK/scrape.raw"
  else
    exec 8<> "/dev/tcp/127.0.0.1/$MPORT"
    cat "$WORK/scrape.in" >&8
    cat <&8 > "$WORK/scrape.raw"
    exec 8<&- 8>&-
  fi
  head -1 "$WORK/scrape.raw" | grep -q " 200 " \
    || { cat "$WORK/scrape.raw"; echo "scrape did not return 200"; exit 1; }
  sed '1,/^\r\{0,1\}$/d' "$WORK/scrape.raw" > "$1"
}

start_server() { # start_server [extra-flags...]
  # stdin from /dev/null closes the stdin session immediately; the TCP
  # listener keeps the daemon alive.
  "$BIN" --listen "127.0.0.1:$PORT" "$@" < /dev/null > /dev/null 2> "$WORK/server.log" &
  SERVER=$!
  for _ in $(seq 1 100); do
    grep -q "listening on tcp://" "$WORK/server.log" 2>/dev/null && return
    kill -0 "$SERVER" 2>/dev/null || { cat "$WORK/server.log"; echo "server died"; exit 1; }
    sleep 0.1
  done
  echo "server never started listening"; exit 1
}

echo "== reference: one uninterrupted TCP session =="
start_server
{ echo "$OPEN"; gen_inserts 0 80; echo "QUERY"; echo "QUIT"; } > "$WORK/full.in"
tcp_session "$WORK/full.in" "$WORK/full.out"
grep '^OK k=' "$WORK/full.out" > "$WORK/full.query"
cat "$WORK/full.query"
kill -9 "$SERVER"; wait "$SERVER" 2>/dev/null || true; SERVER=""

echo "== interrupted: first half over TCP, binary SNAPSHOT, SIGKILL =="
start_server
{ echo "$OPEN"; gen_inserts 0 40; echo "SNAPSHOT $WORK/jobs.snap format=bin"; echo "QUIT"; } > "$WORK/half.in"
tcp_session "$WORK/half.in" "$WORK/half.out"
grep -q '^OK snapshot' "$WORK/half.out" || { cat "$WORK/half.out"; echo "snapshot failed"; exit 1; }
head -c 8 "$WORK/jobs.snap" | grep -q "FDMSNAP2" || { echo "snapshot is not v2 binary"; exit 1; }
kill -0 "$SERVER" 2>/dev/null || { echo "server died before SIGKILL"; exit 1; }
kill -9 "$SERVER"; wait "$SERVER" 2>/dev/null || true; SERVER=""

echo "== resumed: fresh daemon (+ /metrics), RESTORE + second half + QUERY over TCP =="
start_server --metrics "127.0.0.1:$MPORT"
for _ in $(seq 1 100); do
  grep -q "metrics on http://" "$WORK/server.log" 2>/dev/null && break
  sleep 0.1
done
{ echo "RESTORE $WORK/jobs.snap"; gen_inserts 40 80; echo "QUERY"; echo "QUIT"; } > "$WORK/resume.in"
tcp_session "$WORK/resume.in" "$WORK/resumed.out"
grep '^OK restored jobs processed=40$' "$WORK/resumed.out" > /dev/null
grep '^OK k=' "$WORK/resumed.out" > "$WORK/resumed.query"
cat "$WORK/resumed.query"

echo "== scrape /metrics and lint the exposition =="
scrape_metrics "$WORK/metrics.txt"
"$LINT" "$WORK/metrics.txt"
grep -q '^fdm_streams 1$' "$WORK/metrics.txt" || { echo "fdm_streams != 1"; exit 1; }
grep -q '^fdm_stream_processed_total{stream="jobs"} 80$' "$WORK/metrics.txt" \
  || { echo "processed counter wrong"; grep ^fdm_stream "$WORK/metrics.txt"; exit 1; }
grep -c '^fdm_' "$WORK/metrics.txt" | xargs echo "metrics lint PASS, fdm_ samples:"
kill -9 "$SERVER"; wait "$SERVER" 2>/dev/null || true; SERVER=""

echo "== assert: byte-identical QUERY output across kill + restore =="
diff "$WORK/full.query" "$WORK/resumed.query"
echo "PASS: TCP post-restore QUERY is byte-identical to the uninterrupted run"
