//! Streaming vs offline on one pass over a large stream (Table II shape).
//!
//! Runs SFDM1 and the offline FairSwap/FairFlow baselines on the same
//! simulated Census stream (`m = 2`, k = 20) and prints diversity, wall
//! time, and memory — the three columns of the paper's Table II. The
//! streaming algorithm should land within a few percent of FairSwap's
//! diversity while being orders of magnitude faster.
//!
//! Run with: `cargo run --release --example streaming_vs_offline`

use std::time::Instant;

use fdm::core::prelude::*;
use fdm::datasets::{census, CensusGrouping};

fn main() -> Result<()> {
    let n = 100_000;
    let dataset = census(CensusGrouping::Sex, n, 7)?;
    let k = 20;
    let constraint = FairnessConstraint::equal_representation(k, 2)?;
    println!("Census (simulated): n = {n}, m = 2, k = {k}\n");
    println!(
        "{:<12} {:>10} {:>12} {:>14}",
        "algorithm", "div", "time (s)", "stored elems"
    );

    // SFDM1 (streaming).
    let bounds = dataset.sampled_distance_bounds(300, 4.0)?;
    let start = Instant::now();
    let mut sfdm1 = Sfdm1::new(Sfdm1Config {
        constraint: constraint.clone(),
        epsilon: 0.1,
        bounds,
        metric: dataset.metric(),
    })?;
    for element in dataset.iter() {
        sfdm1.insert(&element);
    }
    let sol = sfdm1.finalize()?;
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "{:<12} {:>10.4} {:>12.3} {:>14}",
        "SFDM1",
        sol.diversity,
        elapsed,
        sfdm1.stored_elements()
    );

    // FairSwap (offline, random access over the whole dataset).
    let start = Instant::now();
    let fair_swap = FairSwap::new(FairSwapConfig {
        constraint: constraint.clone(),
        seed: 0,
        strategy: Default::default(),
    })?;
    let sol = fair_swap.run(&dataset)?;
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "{:<12} {:>10.4} {:>12.3} {:>14}",
        "FairSwap", sol.diversity, elapsed, n
    );

    // FairFlow (offline).
    let start = Instant::now();
    let fair_flow = FairFlow::new(FairFlowConfig {
        constraint,
        seed: 0,
    })?;
    let sol = fair_flow.run(&dataset)?;
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "{:<12} {:>10.4} {:>12.3} {:>14}",
        "FairFlow", sol.diversity, elapsed, n
    );

    println!(
        "\n(2·div(GMM) upper bound on OPT_f: {:.4})",
        diversity_upper_bound(&dataset, k, 0)
    );
    Ok(())
}
