//! Property-based integration tests (proptest) over the public API.

use fdm::core::prelude::*;
use proptest::prelude::*;

/// Strategy: a small 2-group dataset with at least 2 elements per group.
fn two_group_dataset() -> impl Strategy<Value = Dataset> {
    (6usize..24)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(
                    (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| vec![x, y]),
                    n,
                ),
                proptest::collection::vec(0usize..2, n),
            )
        })
        .prop_map(|(rows, mut groups)| {
            groups[0] = 0;
            groups[1] = 0;
            groups[2] = 1;
            groups[3] = 1;
            Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap()
        })
        .prop_filter("needs nonzero spread", |d| {
            d.exact_distance_bounds().is_ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sfdm1_output_is_always_fair(dataset in two_group_dataset(), seed in 0u64..1000) {
        let constraint = FairnessConstraint::new(vec![2, 2]).unwrap();
        let bounds = dataset.exact_distance_bounds().unwrap();
        let mut alg = Sfdm1::new(Sfdm1Config {
            constraint: constraint.clone(),
            epsilon: 0.1,
            bounds,
            metric: Metric::Euclidean,
        }).unwrap();
        // Use the seed to derive a stream permutation.
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let rotation = (seed as usize) % dataset.len();
        order.rotate_left(rotation);
        for &i in &order {
            alg.insert(&dataset.element(i));
        }
        if let Ok(sol) = alg.finalize() {
            prop_assert!(constraint.is_satisfied_by(&sol.group_counts(2)));
            prop_assert_eq!(sol.len(), 4);
            prop_assert!(sol.diversity >= 0.0);
            // Distinct elements.
            let mut ids = sol.ids();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), 4);
        }
    }

    #[test]
    fn sfdm2_output_is_always_fair(dataset in two_group_dataset(), seed in 0u64..1000) {
        let constraint = FairnessConstraint::new(vec![2, 2]).unwrap();
        let bounds = dataset.exact_distance_bounds().unwrap();
        let mut alg = Sfdm2::new(Sfdm2Config {
            constraint: constraint.clone(),
            epsilon: 0.1,
            bounds,
            metric: Metric::Euclidean,
        }).unwrap();
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        order.rotate_left((seed as usize) % dataset.len());
        for &i in &order {
            alg.insert(&dataset.element(i));
        }
        if let Ok(sol) = alg.finalize() {
            prop_assert!(constraint.is_satisfied_by(&sol.group_counts(2)));
            let mut ids = sol.ids();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), 4);
        }
    }

    #[test]
    fn streaming_dm_respects_theorem1(dataset in two_group_dataset()) {
        let k = 3;
        let bounds = dataset.exact_distance_bounds().unwrap();
        let mut alg = StreamingDiversityMaximization::new(StreamingDmConfig {
            k,
            epsilon: 0.1,
            bounds,
            metric: Metric::Euclidean,
        }).unwrap();
        for e in dataset.iter() {
            alg.insert(&e);
        }
        let sol = alg.finalize().unwrap();
        let opt = fdm::core::brute::exact_unconstrained_optimum(&dataset, k);
        prop_assert!(
            sol.diversity >= 0.45 * opt - 1e-9,
            "div {} < 0.45 * OPT {}", sol.diversity, opt
        );
    }

    #[test]
    fn fair_offline_baselines_are_fair(dataset in two_group_dataset(), seed in 0u64..100) {
        let constraint = FairnessConstraint::new(vec![2, 2]).unwrap();
        let swap = FairSwap::new(FairSwapConfig {
            constraint: constraint.clone(),
            seed,
            strategy: Default::default(),
        }).unwrap().run(&dataset).unwrap();
        prop_assert!(constraint.is_satisfied_by(&swap.group_counts(2)));

        let flow = FairFlow::new(FairFlowConfig { constraint: constraint.clone(), seed })
            .unwrap().run(&dataset).unwrap();
        prop_assert!(constraint.is_satisfied_by(&flow.group_counts(2)));

        let gmm_fair = FairGmm::new(FairGmmConfig::new(constraint.clone(), seed))
            .unwrap().run(&dataset).unwrap();
        prop_assert!(constraint.is_satisfied_by(&gmm_fair.group_counts(2)));
    }

    #[test]
    fn quotas_always_sum_to_k(k in 2usize..40, m in 1usize..10) {
        prop_assume!(k >= m);
        let er = FairnessConstraint::equal_representation(k, m).unwrap();
        prop_assert_eq!(er.total(), k);
        prop_assert_eq!(er.quotas().len(), m);
        prop_assert!(er.quotas().iter().all(|&q| q >= 1));
    }

    #[test]
    fn pr_quotas_sum_to_k(
        k in 3usize..30,
        sizes in proptest::collection::vec(1usize..10_000, 1..8),
    ) {
        prop_assume!(k >= sizes.len());
        let pr = FairnessConstraint::proportional_representation(k, &sizes).unwrap();
        prop_assert_eq!(pr.total(), k);
        prop_assert!(pr.quotas().iter().all(|&q| q >= 1));
    }
}
