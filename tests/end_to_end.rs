//! Cross-crate integration tests: every algorithm on every simulated
//! dataset, checking fairness, feasibility, and the paper's qualitative
//! quality relationships.

use fdm::core::balance::SwapStrategy;
use fdm::core::prelude::*;
use fdm::datasets::stream::{shuffled_indices, stream_elements};
use fdm::datasets::{
    adult, celeba, census, lyrics, synthetic_blobs, AdultGrouping, CelebaGrouping, CensusGrouping,
    SyntheticConfig,
};

fn run_sfdm1(dataset: &Dataset, constraint: &FairnessConstraint, seed: u64) -> Solution {
    let bounds = dataset.sampled_distance_bounds(200, 4.0).unwrap();
    let mut alg = Sfdm1::new(Sfdm1Config {
        constraint: constraint.clone(),
        epsilon: 0.1,
        bounds,
        metric: dataset.metric(),
    })
    .unwrap();
    let order = shuffled_indices(dataset.len(), seed);
    for e in stream_elements(dataset, &order) {
        alg.insert(&e);
    }
    alg.finalize().unwrap()
}

fn run_sfdm2(
    dataset: &Dataset,
    constraint: &FairnessConstraint,
    epsilon: f64,
    seed: u64,
) -> Solution {
    let bounds = dataset.sampled_distance_bounds(200, 4.0).unwrap();
    let mut alg = Sfdm2::new(Sfdm2Config {
        constraint: constraint.clone(),
        epsilon,
        bounds,
        metric: dataset.metric(),
    })
    .unwrap();
    let order = shuffled_indices(dataset.len(), seed);
    for e in stream_elements(dataset, &order) {
        alg.insert(&e);
    }
    alg.finalize().unwrap()
}

#[test]
fn adult_sex_all_algorithms_agree_on_fairness() {
    let dataset = adult(AdultGrouping::Sex, 3_000, 1).unwrap();
    let constraint = FairnessConstraint::equal_representation(10, 2).unwrap();

    let s1 = run_sfdm1(&dataset, &constraint, 11);
    assert!(constraint.is_satisfied_by(&s1.group_counts(2)));

    let s2 = run_sfdm2(&dataset, &constraint, 0.1, 11);
    assert!(constraint.is_satisfied_by(&s2.group_counts(2)));

    let swap = FairSwap::new(FairSwapConfig {
        constraint: constraint.clone(),
        seed: 0,
        strategy: SwapStrategy::Greedy,
    })
    .unwrap()
    .run(&dataset)
    .unwrap();
    assert!(constraint.is_satisfied_by(&swap.group_counts(2)));

    let flow = FairFlow::new(FairFlowConfig {
        constraint: constraint.clone(),
        seed: 0,
    })
    .unwrap()
    .run(&dataset)
    .unwrap();
    assert!(constraint.is_satisfied_by(&flow.group_counts(2)));

    // Quality sanity: every fair solution within the GMM upper bound and
    // positive.
    let upper = diversity_upper_bound(&dataset, 10, 0);
    for sol in [&s1, &s2, &swap, &flow] {
        assert!(sol.diversity > 0.0);
        assert!(sol.diversity <= upper + 1e-9);
    }
}

#[test]
fn adult_race_sfdm2_beats_fairflow() {
    // Table II: on Adult/Race (m=5), SFDM2's diversity is a multiple of
    // FairFlow's. Compare averages over several seeds (the paper averages
    // over 10 stream permutations).
    let dataset = adult(AdultGrouping::Race, 4_000, 2).unwrap();
    let constraint = FairnessConstraint::equal_representation(10, 5).unwrap();
    let mut s2_sum = 0.0;
    let mut flow_sum = 0.0;
    let trials = 4;
    for seed in 0..trials {
        let s2 = run_sfdm2(&dataset, &constraint, 0.1, seed);
        assert!(constraint.is_satisfied_by(&s2.group_counts(5)));
        s2_sum += s2.diversity;
        let flow = FairFlow::new(FairFlowConfig {
            constraint: constraint.clone(),
            seed,
        })
        .unwrap()
        .run(&dataset)
        .unwrap();
        assert!(constraint.is_satisfied_by(&flow.group_counts(5)));
        flow_sum += flow.diversity;
    }
    assert!(
        s2_sum >= flow_sum,
        "SFDM2 avg {} should not lose to FairFlow avg {}",
        s2_sum / trials as f64,
        flow_sum / trials as f64
    );
}

#[test]
fn celeba_sex_age_four_groups() {
    let dataset = celeba(CelebaGrouping::SexAge, 3_000, 3).unwrap();
    let constraint = FairnessConstraint::equal_representation(12, 4).unwrap();
    let sol = run_sfdm2(&dataset, &constraint, 0.1, 5);
    assert_eq!(sol.len(), 12);
    assert!(constraint.is_satisfied_by(&sol.group_counts(4)));
    assert!(sol.diversity > 0.0);
}

#[test]
fn census_age_seven_groups() {
    let dataset = census(CensusGrouping::Age, 5_000, 4).unwrap();
    let constraint = FairnessConstraint::equal_representation(14, 7).unwrap();
    let sol = run_sfdm2(&dataset, &constraint, 0.1, 9);
    assert!(constraint.is_satisfied_by(&sol.group_counts(7)));
}

#[test]
fn lyrics_fifteen_genres_small_epsilon() {
    let dataset = lyrics(4_000, 5).unwrap();
    let constraint = FairnessConstraint::equal_representation(15, 15).unwrap();
    let sol = run_sfdm2(&dataset, &constraint, 0.05, 13);
    assert!(constraint.is_satisfied_by(&sol.group_counts(15)));
    // Angular distances are at most π/2.
    assert!(sol.diversity <= std::f64::consts::FRAC_PI_2 + 1e-9);
}

#[test]
fn synthetic_scalability_smoke() {
    for m in [2usize, 10] {
        let dataset = synthetic_blobs(SyntheticConfig {
            n: 10_000,
            m,
            blobs: 10,
            seed: 6,
            dim: 2,
        })
        .unwrap();
        let constraint = FairnessConstraint::equal_representation(20, m).unwrap();
        let sol = run_sfdm2(&dataset, &constraint, 0.1, 17);
        assert!(constraint.is_satisfied_by(&sol.group_counts(m)));
    }
}

#[test]
fn proportional_representation_pipeline() {
    // Fig. 9: PR quotas on the skewed Adult groups; PR solutions are at
    // least as diverse as ER on average because they sit closer to the
    // unconstrained optimum.
    let dataset = adult(AdultGrouping::Sex, 4_000, 8).unwrap();
    let k = 20;
    let er = FairnessConstraint::equal_representation(k, 2).unwrap();
    let pr = FairnessConstraint::proportional_representation(k, dataset.group_sizes()).unwrap();
    assert!(pr.quota(0) > pr.quota(1), "PR must mirror the 67/33 skew");

    let er_sol = run_sfdm1(&dataset, &er, 3);
    let pr_sol = run_sfdm1(&dataset, &pr, 3);
    assert!(er.is_satisfied_by(&er_sol.group_counts(2)));
    assert!(pr.is_satisfied_by(&pr_sol.group_counts(2)));
}

#[test]
fn streaming_matches_offline_quality_band() {
    // Table II, m = 2: SFDM1's diversity is close to FairSwap's (the paper
    // reports near-parity; we allow a generous band to keep the test
    // robust across seeds).
    let dataset = adult(AdultGrouping::Sex, 3_000, 10).unwrap();
    let constraint = FairnessConstraint::equal_representation(20, 2).unwrap();
    let swap = FairSwap::new(FairSwapConfig {
        constraint: constraint.clone(),
        seed: 1,
        strategy: SwapStrategy::Greedy,
    })
    .unwrap()
    .run(&dataset)
    .unwrap();
    let mut best_streaming: f64 = 0.0;
    for seed in 0..3 {
        let sol = run_sfdm1(&dataset, &constraint, seed);
        best_streaming = best_streaming.max(sol.diversity);
    }
    assert!(
        best_streaming >= 0.5 * swap.diversity,
        "SFDM1 {best_streaming} too far below FairSwap {}",
        swap.diversity
    );
}

#[test]
fn ten_permutations_always_fair() {
    // The paper averages over 10 stream permutations; fairness must hold
    // for every one of them.
    let dataset = adult(AdultGrouping::SexRace, 2_500, 12).unwrap();
    let constraint = FairnessConstraint::equal_representation(10, 10).unwrap();
    for seed in 0..10 {
        let sol = run_sfdm2(&dataset, &constraint, 0.2, seed);
        assert!(
            constraint.is_satisfied_by(&sol.group_counts(10)),
            "permutation {seed} violated fairness: {:?}",
            sol.group_counts(10)
        );
    }
}

#[test]
fn unconstrained_streaming_vs_gmm() {
    // Algorithm 1 should land in GMM's quality neighborhood.
    let dataset = synthetic_blobs(SyntheticConfig {
        n: 5_000,
        m: 2,
        blobs: 10,
        seed: 14,
        dim: 2,
    })
    .unwrap();
    let k = 15;
    let bounds = dataset.sampled_distance_bounds(200, 4.0).unwrap();
    let mut alg = StreamingDiversityMaximization::new(StreamingDmConfig {
        k,
        epsilon: 0.1,
        bounds,
        metric: dataset.metric(),
    })
    .unwrap();
    for e in dataset.iter() {
        alg.insert(&e);
    }
    let streaming = alg.finalize().unwrap();
    let offline = gmm(&dataset, k, 0);
    let offline_div = fdm::core::diversity::diversity(&dataset, &offline);
    assert!(
        streaming.diversity >= 0.4 * offline_div,
        "streaming {} vs GMM {offline_div}",
        streaming.diversity
    );
}
