//! Golden end-to-end fixtures: small committed CSV streams run through
//! SFDM1, SFDM2 (sharded and unsharded), and the sliding window, with the
//! complete solution summary (selected ids, group counts, diversity to
//! 12 significant digits) diffed against recorded expectations.
//!
//! The parity and property suites check *relationships* (parallel ==
//! sequential, K=1 == unsharded); only a golden diff catches a silent
//! regression that shifts every configuration the same way — e.g. a kernel
//! change that alters which elements the ladder retains.
//!
//! To re-record after an intentional behavior change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden
//! git diff tests/fixtures/   # review before committing!
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use fdm::core::dataset::DistanceBounds;
use fdm::core::fairness::FairnessConstraint;
use fdm::core::metric::Metric;
use fdm::core::point::Element;
use fdm::core::solution::Solution;
use fdm::core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm::core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm::core::streaming::sharded::ShardedStream;
use fdm::core::streaming::sliding::SlidingWindowFdm;
use fdm::datasets::csv_stream::{CsvElementStream, CsvStreamOptions};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn load(name: &str) -> Vec<Element> {
    let options = CsvStreamOptions {
        feature_columns: vec![0, 1],
        group_column: 2,
        has_header: true,
        delimiter: ',',
        standardize: None,
    };
    let stream = CsvElementStream::open(fixture(name), options).unwrap();
    let elements: Vec<Element> = stream.collect();
    assert!(!elements.is_empty(), "fixture {name} parsed to nothing");
    elements
}

/// One line per run: every field that must stay stable.
fn summarize(label: &str, m: usize, solution: &Solution) -> String {
    let mut ids = solution.ids();
    ids.sort_unstable();
    let counts = solution.group_counts(m);
    let mut line = String::new();
    write!(
        line,
        "{label}: ids={ids:?} groups={counts:?} diversity={:.12e}",
        solution.diversity
    )
    .unwrap();
    line
}

fn check_golden(name: &str, actual: &str) {
    let path = fixture(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {path:?}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        expected.trim(),
        actual.trim(),
        "golden mismatch for {name}; if the change is intentional, \
         re-record with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_sfdm1_two_groups() {
    let elements = load("stream_2groups.csv");
    let constraint = FairnessConstraint::new(vec![3, 3]).unwrap();
    let mut out = String::new();
    for eps in [0.1, 0.25] {
        let mut alg = Sfdm1::new(Sfdm1Config {
            constraint: constraint.clone(),
            epsilon: eps,
            bounds: DistanceBounds::new(0.05, 20.0).unwrap(),
            metric: Metric::Euclidean,
        })
        .unwrap();
        for e in &elements {
            alg.insert(e);
        }
        let sol = alg.finalize().unwrap();
        assert!(constraint.is_satisfied_by(&sol.group_counts(2)));
        out.push_str(&summarize(&format!("sfdm1 eps={eps}"), 2, &sol));
        out.push('\n');
    }
    check_golden("sfdm1_two_groups.expected", &out);
}

#[test]
fn golden_sfdm2_three_groups_sharded_and_not() {
    let elements = load("stream_3groups.csv");
    let constraint = FairnessConstraint::new(vec![2, 2, 2]).unwrap();
    let config = Sfdm2Config {
        constraint: constraint.clone(),
        epsilon: 0.1,
        bounds: DistanceBounds::new(0.05, 20.0).unwrap(),
        metric: Metric::Manhattan,
    };
    let mut out = String::new();
    for shards in [1usize, 3] {
        let mut alg: ShardedStream<Sfdm2> = ShardedStream::new(config.clone(), shards).unwrap();
        for e in &elements {
            alg.insert(e);
        }
        let sol = alg.finalize().unwrap();
        assert!(constraint.is_satisfied_by(&sol.group_counts(3)));
        out.push_str(&summarize(&format!("sfdm2 shards={shards}"), 3, &sol));
        out.push('\n');
    }
    check_golden("sfdm2_three_groups.expected", &out);
}

#[test]
fn golden_sliding_window() {
    let elements = load("stream_window.csv");
    let constraint = FairnessConstraint::new(vec![2, 2]).unwrap();
    let mut alg = SlidingWindowFdm::new(
        Sfdm2Config {
            constraint: constraint.clone(),
            epsilon: 0.1,
            bounds: DistanceBounds::new(0.05, 20.0).unwrap(),
            metric: Metric::Euclidean,
        },
        80,
    )
    .unwrap();
    let mut out = String::new();
    for (i, e) in elements.iter().enumerate() {
        alg.insert(e);
        // Snapshot the window solution at fixed checkpoints.
        if [99usize, 199].contains(&i) {
            let sol = alg.finalize().unwrap();
            assert!(constraint.is_satisfied_by(&sol.group_counts(2)));
            out.push_str(&summarize(&format!("window after={}", i + 1), 2, &sol));
            out.push('\n');
        }
    }
    check_golden("sliding_window.expected", &out);
}
