//! # fdm — fair max–min diversity maximization
//!
//! User-facing facade over the workspace crates, reproducing
//!
//! > Yanhao Wang, Francesco Fabbri, Michael Mathioudakis.
//! > *Streaming Algorithms for Diversity Maximization with Fairness
//! > Constraints.* ICDE 2022 (arXiv:2208.00194).
//!
//! * [`core`] (re-export of `fdm-core`) — the streaming algorithms SFDM1 and
//!   SFDM2, the unconstrained streaming baseline, the offline baselines
//!   (GMM, FairSwap, FairFlow, FairGMM), and their substrates (metrics,
//!   matroid intersection, max-flow, threshold clustering).
//! * [`datasets`] (re-export of `fdm-datasets`) — seeded generators for the
//!   paper's synthetic benchmark and simulated stand-ins for its four real
//!   datasets, plus CSV loading and stream-permutation utilities.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the complete system inventory.

pub use fdm_core as core;
pub use fdm_datasets as datasets;

pub use fdm_core::prelude;
