//! One protocol session: a command loop over any `BufRead`/`Write` pair.
//!
//! Sessions are cheap: they hold an engine reference and the name of the
//! stream they are currently bound to (`OPEN`/`RESTORE` bind it). The same
//! loop serves stdin/stdout, each Unix-socket connection, the WAL-driven
//! tests, and the scripted CI session.
//!
//! Every reply line is produced by [`Response::render`] — the session
//! never formats an `OK `/`ERR ` string itself (CI greps for strays), so
//! the wire grammar has exactly one implementation on each side. The
//! [`Payload::Merge`]/[`Payload::MergeSince`] replies are the two-part
//! frames: their header line is rendered like any other, then the raw
//! binary snapshot (or delta) bytes follow.
//!
//! The loop is also the process's **panic boundary**: every command runs
//! under `catch_unwind`, so a panic anywhere below (algorithm code, a
//! poisoned invariant, the deliberate test hook) degrades to one `ERR`
//! reply on this connection — the session, and every other tenant, keeps
//! serving.

use std::io::{BufRead, Read, Write};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use crate::engine::{panic_message, Engine};
use crate::protocol::{parse_line, valid_stream_name, ErrorReply, Payload, Request, Response};

/// Default per-line (frame) byte cap for every session transport. One
/// protocol line is one command; even a 10 000-dimensional `INSERT` with
/// full 17-digit coordinates stays well under this, so anything larger is
/// a protocol violation or an attack, and the session closes instead of
/// buffering without bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A single client session bound to the shared [`Engine`].
pub struct Session {
    engine: Arc<Engine>,
    current: Option<String>,
    /// Token this session must present (`AUTH <token>`) before any
    /// state-touching command; `None` disables the gate.
    required_token: Option<Arc<str>>,
    authenticated: bool,
}

impl Session {
    /// Creates a session over the shared engine.
    pub fn new(engine: Arc<Engine>) -> Session {
        Session {
            engine,
            current: None,
            required_token: None,
            authenticated: false,
        }
    }

    /// Requires `AUTH <token>` before any command other than
    /// `AUTH`/`PING`/`QUIT` (used by the TCP front end's `--auth-token`).
    pub fn with_auth(mut self, token: Option<Arc<str>>) -> Session {
        self.required_token = token;
        self
    }

    /// The stream this session is currently bound to.
    pub fn current_stream(&self) -> Option<&str> {
        self.current.as_deref()
    }

    /// Executes one already-parsed request, returning the typed success
    /// payload or the typed error.
    pub fn execute(&mut self, request: Request, raw_line: &str) -> Result<Payload, ErrorReply> {
        let bound = |current: &Option<String>| -> Result<String, ErrorReply> {
            current.clone().ok_or_else(|| {
                ErrorReply::generic("no stream bound to this session (OPEN or RESTORE first)")
            })
        };
        if let Request::Auth { token } = &request {
            return match self.required_token.as_deref() {
                None => Ok(Payload::AuthNotRequired),
                Some(required) if required == token.as_str() => {
                    self.authenticated = true;
                    Ok(Payload::Authenticated)
                }
                Some(_) => {
                    self.engine.metrics().auth_failure();
                    Err(ErrorReply::generic("invalid auth token"))
                }
            };
        }
        if self.required_token.is_some()
            && !self.authenticated
            && !matches!(request, Request::Ping | Request::Quit)
        {
            return Err(ErrorReply::generic(
                "authentication required (AUTH <token> first)",
            ));
        }
        match request {
            Request::Open { name, spec } => {
                let reply = self.engine.open(&name, &spec)?;
                self.current = Some(name);
                Ok(reply)
            }
            Request::Insert(element) => {
                let name = bound(&self.current)?;
                self.engine.insert(&name, &element, raw_line)
            }
            Request::InsertBatch(elements) => {
                let name = bound(&self.current)?;
                self.engine.insert_batch(&name, &elements)
            }
            Request::Query { k } => {
                let name = bound(&self.current)?;
                self.engine.query(&name, k)
            }
            Request::Snapshot { path, format } => {
                let name = bound(&self.current)?;
                self.engine.snapshot(&name, &path, format)
            }
            Request::Restore { path } => {
                // Without an explicit binding the stream takes its name
                // from the snapshot file stem.
                let name = match &self.current {
                    Some(name) => name.clone(),
                    None => {
                        let stem = std::path::Path::new(&path)
                            .file_stem()
                            .and_then(|s| s.to_str())
                            .unwrap_or_default()
                            .to_string();
                        if !valid_stream_name(&stem) {
                            return Err(ErrorReply::generic(format!(
                                "cannot derive a stream name from `{path}`; OPEN a stream first"
                            )));
                        }
                        stem
                    }
                };
                let reply = self.engine.restore(&name, &path)?;
                self.current = Some(name);
                Ok(reply)
            }
            Request::Stats => {
                let name = bound(&self.current)?;
                self.engine.stats(&name)
            }
            Request::Merge { since } => {
                let name = bound(&self.current)?;
                match since {
                    None => self.engine.merge(&name),
                    Some(since) => self.engine.merge_since(&name, since),
                }
            }
            Request::Auth { .. } => unreachable!("AUTH is handled before the dispatch"),
            Request::Ping => Ok(Payload::Pong),
            Request::Quit => Ok(Payload::Bye),
        }
    }

    /// Runs the command loop until `QUIT` or EOF with the default
    /// [`MAX_LINE_BYTES`] frame guard. Every input line yields exactly one
    /// `OK ...`/`ERR ...` response line (blank lines and `#` comments are
    /// skipped).
    pub fn run(&mut self, reader: impl BufRead, writer: impl Write) -> std::io::Result<()> {
        self.run_bounded(reader, writer, MAX_LINE_BYTES)
    }

    /// [`Session::run`] with an explicit per-line byte cap: a line longer
    /// than `max_line` gets one `ERR` response, the unread remainder of
    /// that line is **discarded up to the next newline** (never buffered,
    /// never parsed as commands), and the session resynchronizes on the
    /// following line. An I/O error — including a socket read timeout —
    /// ends the session with that error.
    pub fn run_bounded(
        &mut self,
        mut reader: impl BufRead,
        mut writer: impl Write,
        max_line: usize,
    ) -> std::io::Result<()> {
        // The sanctioned reply path: one rendered line, flushed — plus,
        // for a MERGE header, the announced raw byte tail.
        fn reply(writer: &mut impl Write, response: &Response) -> std::io::Result<()> {
            writeln!(writer, "{}", response.render())?;
            if let Response::Ok(Payload::Merge { bytes, .. } | Payload::MergeSince { bytes, .. }) =
                response
            {
                writer.write_all(bytes)?;
            }
            writer.flush()
        }
        let mut buf: Vec<u8> = Vec::new();
        loop {
            buf.clear();
            // `take` caps how much one read_until may buffer; one extra
            // byte distinguishes "exactly max_line" from "over the cap".
            let mut limited = (&mut reader).take(max_line as u64 + 1);
            let n = limited.read_until(b'\n', &mut buf)?;
            if n == 0 {
                return Ok(()); // EOF
            }
            if buf.last() == Some(&b'\n') {
                buf.pop();
            } else if buf.len() > max_line {
                reply(
                    &mut writer,
                    &Response::Err(ErrorReply::generic(format!(
                        "line exceeds {max_line} bytes; discarding the rest of it"
                    ))),
                )?;
                // Drain the oversized line in bounded chunks: the tail of
                // a too-long frame is garbage, not fresh commands — it
                // must not be parsed, and it must not accumulate in
                // memory either.
                loop {
                    buf.clear();
                    let mut limited = (&mut reader).take(max_line as u64);
                    let n = limited.read_until(b'\n', &mut buf)?;
                    if n == 0 {
                        return Ok(()); // EOF mid-discard
                    }
                    if buf.last() == Some(&b'\n') {
                        break;
                    }
                }
                continue;
            }
            let line = match std::str::from_utf8(&buf) {
                Ok(line) => line,
                Err(_) => {
                    reply(
                        &mut writer,
                        &Response::Err(ErrorReply::generic("line is not valid UTF-8")),
                    )?;
                    continue;
                }
            };
            match parse_line(line) {
                Ok(None) => continue,
                Ok(Some(request)) => {
                    let quit = request == Request::Quit;
                    // The panic boundary: a panic below this point (in the
                    // engine, an algorithm, or the deliberate test hook)
                    // costs this command one ERR reply — never the
                    // connection, never another tenant. The engine's locks
                    // recover from poisoning, and its insert path rolls
                    // the WAL back itself before re-raising.
                    let outcome =
                        std::panic::catch_unwind(AssertUnwindSafe(|| self.execute(request, line)));
                    let response = match outcome {
                        Ok(Ok(payload)) => Response::Ok(payload),
                        Ok(Err(err)) => Response::Err(err),
                        Err(payload) => {
                            // Insert-path panics never unwind this far
                            // (the engine catches them to roll its WAL
                            // back), so this count never doubles theirs.
                            self.engine.metrics().panic_contained();
                            Response::Err(ErrorReply::generic(format!(
                                "internal error (panic contained): {}",
                                panic_message(&*payload)
                            )))
                        }
                    };
                    reply(&mut writer, &response)?;
                    if quit {
                        return Ok(());
                    }
                }
                Err(message) => {
                    reply(&mut writer, &Response::Err(ErrorReply::generic(message)))?;
                }
            }
        }
    }
}
