//! One protocol session: a command loop over any `BufRead`/`Write` pair.
//!
//! Sessions are cheap: they hold an engine reference and the name of the
//! stream they are currently bound to (`OPEN`/`RESTORE` bind it). The same
//! loop serves stdin/stdout, each Unix-socket connection, the WAL-driven
//! tests, and the scripted CI session.

use std::io::{BufRead, Read, Write};
use std::sync::Arc;

use crate::engine::Engine;
use crate::protocol::{parse_line, valid_stream_name, Command};

/// Default per-line (frame) byte cap for every session transport. One
/// protocol line is one command; even a 10 000-dimensional `INSERT` with
/// full 17-digit coordinates stays well under this, so anything larger is
/// a protocol violation or an attack, and the session closes instead of
/// buffering without bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A single client session bound to the shared [`Engine`].
pub struct Session {
    engine: Arc<Engine>,
    current: Option<String>,
}

impl Session {
    /// Creates a session over the shared engine.
    pub fn new(engine: Arc<Engine>) -> Session {
        Session {
            engine,
            current: None,
        }
    }

    /// The stream this session is currently bound to.
    pub fn current_stream(&self) -> Option<&str> {
        self.current.as_deref()
    }

    /// Executes one already-parsed command, returning the response payload
    /// (without the `OK ` prefix) or an error message.
    pub fn execute(&mut self, command: Command, raw_line: &str) -> Result<String, String> {
        let bound = |current: &Option<String>| -> Result<String, String> {
            current
                .clone()
                .ok_or_else(|| "no stream bound to this session (OPEN or RESTORE first)".into())
        };
        match command {
            Command::Open { name, spec } => {
                let reply = self.engine.open(&name, &spec)?;
                self.current = Some(name);
                Ok(reply)
            }
            Command::Insert(element) => {
                let name = bound(&self.current)?;
                self.engine.insert(&name, &element, raw_line)
            }
            Command::Query { k } => {
                let name = bound(&self.current)?;
                self.engine.query(&name, k)
            }
            Command::Snapshot { path, format } => {
                let name = bound(&self.current)?;
                self.engine.snapshot(&name, &path, format)
            }
            Command::Restore { path } => {
                // Without an explicit binding the stream takes its name
                // from the snapshot file stem.
                let name = match &self.current {
                    Some(name) => name.clone(),
                    None => {
                        let stem = std::path::Path::new(&path)
                            .file_stem()
                            .and_then(|s| s.to_str())
                            .unwrap_or_default()
                            .to_string();
                        if !valid_stream_name(&stem) {
                            return Err(format!(
                                "cannot derive a stream name from `{path}`; OPEN a stream first"
                            ));
                        }
                        stem
                    }
                };
                let reply = self.engine.restore(&name, &path)?;
                self.current = Some(name);
                Ok(reply)
            }
            Command::Stats => {
                let name = bound(&self.current)?;
                self.engine.stats(&name)
            }
            Command::Ping => Ok("pong".to_string()),
            Command::Quit => Ok("bye".to_string()),
        }
    }

    /// Runs the command loop until `QUIT` or EOF with the default
    /// [`MAX_LINE_BYTES`] frame guard. Every input line yields exactly one
    /// `OK ...`/`ERR ...` response line (blank lines and `#` comments are
    /// skipped).
    pub fn run(&mut self, reader: impl BufRead, writer: impl Write) -> std::io::Result<()> {
        self.run_bounded(reader, writer, MAX_LINE_BYTES)
    }

    /// [`Session::run`] with an explicit per-line byte cap: a line longer
    /// than `max_line` gets one `ERR` response and closes the session
    /// (the remote is either broken or hostile; resynchronizing inside an
    /// oversized frame is not worth the buffering risk). An I/O error —
    /// including a socket read timeout — ends the session with that error.
    pub fn run_bounded(
        &mut self,
        mut reader: impl BufRead,
        mut writer: impl Write,
        max_line: usize,
    ) -> std::io::Result<()> {
        let mut buf: Vec<u8> = Vec::new();
        loop {
            buf.clear();
            // `take` caps how much one read_until may buffer; one extra
            // byte distinguishes "exactly max_line" from "over the cap".
            let mut limited = (&mut reader).take(max_line as u64 + 1);
            let n = limited.read_until(b'\n', &mut buf)?;
            if n == 0 {
                return Ok(()); // EOF
            }
            if buf.last() == Some(&b'\n') {
                buf.pop();
            } else if buf.len() > max_line {
                writeln!(writer, "ERR line exceeds {max_line} bytes; closing session")?;
                writer.flush()?;
                return Ok(());
            }
            let line = match std::str::from_utf8(&buf) {
                Ok(line) => line,
                Err(_) => {
                    writeln!(writer, "ERR line is not valid UTF-8")?;
                    writer.flush()?;
                    continue;
                }
            };
            match parse_line(line) {
                Ok(None) => continue,
                Ok(Some(command)) => {
                    let quit = command == Command::Quit;
                    match self.execute(command, line) {
                        Ok(reply) => writeln!(writer, "OK {reply}")?,
                        Err(message) => writeln!(writer, "ERR {message}")?,
                    }
                    writer.flush()?;
                    if quit {
                        return Ok(());
                    }
                }
                Err(message) => {
                    writeln!(writer, "ERR {message}")?;
                    writer.flush()?;
                }
            }
        }
    }
}
