//! Socket front ends: accept loops for TCP and Unix-domain listeners.
//!
//! Both transports speak the identical line protocol as stdin/stdout —
//! one [`Session`] per connection on its own thread, all
//! bound to the shared [`Engine`]. The TCP listener is what lets remote
//! tenants ingest without shelling into the box; it therefore gets the
//! defensive defaults a LAN-facing daemon needs:
//!
//! * **read timeouts** — a connection that goes quiet for
//!   [`NetOptions::read_timeout`] is closed instead of pinning its thread
//!   forever;
//! * **max-frame guard** — a line longer than [`NetOptions::max_line`]
//!   bytes gets one `ERR` and the connection is closed instead of
//!   buffering without bound (see [`Session::run_bounded`]);
//! * **connection cap** — at most [`NetOptions::max_connections`]
//!   concurrent sessions per listener (each costs one OS thread); excess
//!   connections get one `ERR` line and are dropped without spawning;
//! * **token auth** — with [`NetOptions::auth_token`] set, a session must
//!   present `AUTH <token>` before any state-touching command;
//! * **drain awareness** — once [`Engine::begin_drain`] fires (SIGTERM),
//!   new connections are refused with one `ERR` line while accepted
//!   sessions run to completion.
//!
//! There is no TLS: bind `127.0.0.1` or deploy behind a trusted network
//! boundary, exactly like early-configuration Redis or memcached; the
//! token gates accidents, not attackers on an untrusted wire.

use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::{panic_point, Engine};
use crate::protocol::{ErrorReply, Response};
use crate::session::{Session, MAX_LINE_BYTES};

/// Per-connection limits for the socket transports.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Close a connection after this long without a complete read;
    /// `None` waits forever (reasonable for trusted Unix sockets, not for
    /// TCP).
    pub read_timeout: Option<Duration>,
    /// Maximum bytes one protocol line may occupy.
    pub max_line: usize,
    /// Maximum concurrent connections per listener (each costs one OS
    /// thread); further connections get one `ERR` line and are dropped.
    pub max_connections: usize,
    /// When set, sessions must `AUTH <token>` before anything but
    /// `PING`/`QUIT`.
    pub auth_token: Option<Arc<str>>,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            read_timeout: Some(Duration::from_secs(300)),
            max_line: MAX_LINE_BYTES,
            max_connections: 1024,
            auth_token: None,
        }
    }
}

/// Live-connection count for one listener; decrements when a connection's
/// thread finishes (RAII so every exit path counts down).
struct ConnectionSlot(Arc<std::sync::atomic::AtomicUsize>);

impl ConnectionSlot {
    /// Claims a slot, or refuses when the listener is at capacity.
    fn claim(count: &Arc<std::sync::atomic::AtomicUsize>, max: usize) -> Option<ConnectionSlot> {
        use std::sync::atomic::Ordering;
        let mut current = count.load(Ordering::SeqCst);
        loop {
            if current >= max {
                return None;
            }
            match count.compare_exchange(current, current + 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Some(ConnectionSlot(count.clone())),
                Err(observed) => current = observed,
            }
        }
    }
}

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }
}

/// What both socket transports need from a connection: a duplicated read
/// handle and an OS-level read timeout.
trait Connection: Read + Write + Send + Sized + 'static {
    /// Transport name for log lines.
    const TRANSPORT: &'static str;

    /// A second handle to the same connection (the read side).
    fn duplicate(&self) -> std::io::Result<Self>;

    /// Arms the OS-level read timeout.
    fn arm_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl Connection for TcpStream {
    const TRANSPORT: &'static str = "tcp";

    fn duplicate(&self) -> std::io::Result<Self> {
        self.try_clone()
    }

    fn arm_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

impl Connection for UnixStream {
    const TRANSPORT: &'static str = "unix";

    fn duplicate(&self) -> std::io::Result<Self> {
        self.try_clone()
    }

    fn arm_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

/// One accepted connection: arm the timeout, split into reader/writer,
/// and run a session — shared by both transports.
fn handle_connection<C: Connection>(
    engine: Arc<Engine>,
    mut stream: C,
    options: NetOptions,
    slot: Option<ConnectionSlot>,
) {
    let Some(slot) = slot else {
        // At capacity: one ERR line, then drop without spawning — the
        // refused connection must not cost a thread.
        engine.metrics().connection_refused(C::TRANSPORT);
        let refusal = Response::Err(ErrorReply::generic(
            "server at connection limit; try again later",
        ));
        let _ = stream.write_all(format!("{}\n", refusal.render()).as_bytes());
        return;
    };
    std::thread::spawn(move || {
        // Bound to the thread, not the session: the slot (and the live
        // gauge behind it) counts down on *every* exit, unwinding
        // included — a panicking session must not leak capacity.
        let _slot = slot;
        // Deliberate thread-level panic (outside the session's own
        // catch_unwind) for the slot-release regression test.
        panic_point("session-thread", C::TRANSPORT);
        if let Err(e) = stream.arm_read_timeout(options.read_timeout) {
            eprintln!("fdm-serve: set read timeout: {e}");
            return;
        }
        let reader = match stream.duplicate() {
            Ok(reader) => BufReader::new(reader),
            Err(e) => {
                eprintln!("fdm-serve: clone {} connection: {e}", C::TRANSPORT);
                return;
            }
        };
        let mut writer = stream;
        let mut session = Session::new(engine).with_auth(options.auth_token.clone());
        if let Err(e) = session.run_bounded(reader, &mut writer, options.max_line) {
            // Timeouts and resets are business as usual for a network
            // daemon; log and drop the connection.
            eprintln!("fdm-serve: {} session ended: {e}", C::TRANSPORT);
        }
        let _ = writer.flush();
    });
}

/// One iteration of an accept loop, shared by both transports: refuse
/// while draining, claim a slot against the transport's live-connection
/// gauge (shared with `/metrics`), hand off to a session thread.
fn accept_one<C: Connection>(engine: &Arc<Engine>, mut stream: C, options: &NetOptions) {
    if engine.is_draining() {
        engine.metrics().connection_refused(C::TRANSPORT);
        let refusal = Response::Err(ErrorReply::generic(
            "server is draining; connection refused",
        ));
        let _ = stream.write_all(format!("{}\n", refusal.render()).as_bytes());
        return;
    }
    let live = engine.metrics().connection_gauge(C::TRANSPORT);
    let slot = ConnectionSlot::claim(&live, options.max_connections);
    handle_connection(engine.clone(), stream, options.clone(), slot);
}

/// Serves protocol sessions on a TCP listener until the listener errors
/// out; one thread per connection, capped at
/// [`NetOptions::max_connections`]. Blocks the calling thread — spawn it.
pub fn serve_tcp(engine: Arc<Engine>, listener: TcpListener, options: NetOptions) {
    for connection in listener.incoming() {
        match connection {
            Ok(stream) => {
                // Request/reply protocol: a reply is always the last write
                // before the server turns around to read, so Nagle only
                // adds the client's delayed-ACK latency to every round
                // trip.
                let _ = stream.set_nodelay(true);
                accept_one(&engine, stream, &options);
            }
            Err(e) => eprintln!("fdm-serve: tcp accept: {e}"),
        }
    }
}

/// Serves protocol sessions on a Unix-domain listener; one thread per
/// connection, capped at [`NetOptions::max_connections`]. Blocks the
/// calling thread — spawn it.
pub fn serve_unix(engine: Arc<Engine>, listener: UnixListener, options: NetOptions) {
    for connection in listener.incoming() {
        match connection {
            Ok(stream) => accept_one(&engine, stream, &options),
            Err(e) => eprintln!("fdm-serve: unix accept: {e}"),
        }
    }
}
