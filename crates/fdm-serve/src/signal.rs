//! SIGTERM handling for graceful drain, with no `libc` dependency.
//!
//! The environment is offline, so signal registration is done through two
//! raw `extern "C"` declarations (`signal(2)` and `_exit(2)`) — the one
//! sanctioned `unsafe` in this crate, confined to this module (the CI
//! grep guard exempts it by path, like the SIMD kernel backend).
//!
//! The handler itself is strictly async-signal-safe: it bumps an atomic
//! and, on the **second** SIGTERM, calls `_exit(143)` directly — the
//! escape hatch when a drain is stuck. Everything else (refusing new
//! connections, waiting for in-flight sessions, the final snapshot + WAL
//! fsync) runs on an ordinary watcher thread in `main.rs` that polls
//! [`sigterm_received`].
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU32, Ordering};

/// SIGTERMs delivered so far (the handler is the only writer).
static TERM_SIGNALS: AtomicU32 = AtomicU32::new(0);

const SIGTERM: i32 = 15;
/// `SIG_ERR` as returned by `signal(2)`.
const SIG_ERR: usize = usize::MAX;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn _exit(status: i32) -> !;
}

extern "C" fn on_sigterm(_signum: i32) {
    let prior = TERM_SIGNALS.fetch_add(1, Ordering::SeqCst);
    if prior >= 1 {
        // Second SIGTERM: the operator is done waiting. `_exit` is
        // async-signal-safe; 143 = 128 + SIGTERM, the conventional code.
        unsafe { _exit(143) }
    }
}

/// Installs the SIGTERM handler; returns `false` (and leaves the default
/// terminate-on-TERM disposition) if registration fails.
pub fn install_sigterm_handler() -> bool {
    let handler = on_sigterm as extern "C" fn(i32) as usize;
    unsafe { signal(SIGTERM, handler) != SIG_ERR }
}

/// Whether at least one SIGTERM has been delivered (polled by the drain
/// watcher thread).
pub fn sigterm_received() -> bool {
    TERM_SIGNALS.load(Ordering::SeqCst) > 0
}
