//! The `fdm-serve` binary: protocol sessions over stdin/stdout and,
//! optionally, a Unix domain socket and/or a TCP listener, with WAL +
//! auto-snapshot durability.
//!
//! ```text
//! fdm-serve [--data-dir DIR] [--snapshot-every N] [--snapshot-format json|bin]
//!           [--full-every N] [--socket PATH] [--listen ADDR:PORT]
//!           [--read-timeout SECS]
//! ```
//!
//! * `--data-dir DIR` — enable durability: per-stream WAL + snapshots in
//!   `DIR`, with restore-then-replay crash recovery on startup.
//! * `--snapshot-every N` — auto-checkpoint (and truncate the WAL) every N
//!   accepted inserts per stream.
//! * `--snapshot-format json|bin` — encoding for checkpoints and for
//!   `SNAPSHOT` commands without an explicit `format=` (default `bin`;
//!   recovery reads both).
//! * `--full-every N` — collapse the incremental-delta chain into a fresh
//!   full snapshot every N deltas (default 8; `0` disables deltas).
//! * `--socket PATH` — additionally accept protocol sessions on a Unix
//!   domain socket (one thread per connection).
//! * `--listen ADDR:PORT` — additionally accept protocol sessions over
//!   TCP (remote tenants; per-connection read timeout + max-frame guard).
//! * `--read-timeout SECS` — idle-connection timeout for both socket
//!   transports (`0` waits forever). Defaults differ per transport: 300 s
//!   for TCP, none for the trusted local Unix socket.
//!
//! With a socket or listener configured the process keeps serving after
//! stdin closes. See `docs/serve.md` for the protocol and
//! `examples/serve_session.sh` / `examples/serve_tcp_session.sh` for
//! scripted end-to-end sessions.

use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use fdm_core::persist::SnapshotFormat;
use fdm_serve::{serve_tcp, serve_unix, Engine, NetOptions, ServeConfig, Session};

struct Args {
    config: ServeConfig,
    socket: Option<PathBuf>,
    listen: Option<String>,
    /// TCP limits (default: 300 s read timeout).
    tcp_net: NetOptions,
    /// Unix-socket limits (default: no read timeout — local clients are
    /// trusted and often long-lived/idle).
    unix_net: NetOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut config = ServeConfig::default();
    let mut socket = None;
    let mut listen = None;
    let mut read_timeout: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} requires a value"));
        match arg.as_str() {
            "--data-dir" => config.data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--snapshot-every" => {
                let n: u64 = value("--snapshot-every")?
                    .parse()
                    .map_err(|_| "--snapshot-every: invalid number".to_string())?;
                config.snapshot_every = Some(n);
            }
            "--snapshot-format" => {
                config.snapshot_format = SnapshotFormat::parse(&value("--snapshot-format")?)?;
            }
            "--full-every" => {
                config.full_every = value("--full-every")?
                    .parse()
                    .map_err(|_| "--full-every: invalid number".to_string())?;
            }
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--listen" => listen = Some(value("--listen")?),
            "--read-timeout" => {
                let secs: u64 = value("--read-timeout")?
                    .parse()
                    .map_err(|_| "--read-timeout: invalid number of seconds".to_string())?;
                read_timeout = Some(secs);
            }
            "--help" | "-h" => {
                return Err("usage: fdm-serve [--data-dir DIR] [--snapshot-every N] \
                            [--snapshot-format json|bin] [--full-every N] [--socket PATH] \
                            [--listen ADDR:PORT] [--read-timeout SECS]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    if config.snapshot_every.is_some() && config.data_dir.is_none() {
        return Err("--snapshot-every requires --data-dir".to_string());
    }
    // An explicit --read-timeout applies to both transports (0 = never);
    // the defaults differ: TCP times idle remotes out, Unix-socket
    // sessions are trusted local clients and may idle forever.
    let tcp_net = NetOptions {
        read_timeout: match read_timeout {
            Some(secs) => (secs > 0).then(|| Duration::from_secs(secs)),
            None => NetOptions::default().read_timeout,
        },
        ..NetOptions::default()
    };
    let unix_net = NetOptions {
        read_timeout: read_timeout.and_then(|secs| (secs > 0).then(|| Duration::from_secs(secs))),
        ..NetOptions::default()
    };
    Ok(Args {
        config,
        socket,
        listen,
        tcp_net,
        unix_net,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let engine = match Engine::new(args.config) {
        Ok(engine) => Arc::new(engine),
        Err(e) => {
            eprintln!("fdm-serve: recovery failed: {e}");
            std::process::exit(1);
        }
    };
    let recovered = engine.stream_names();
    if !recovered.is_empty() {
        eprintln!("fdm-serve: recovered streams: {}", recovered.join(", "));
    }

    let (tcp_net, unix_net) = (args.tcp_net, args.unix_net);
    let socket_thread = args.socket.map(|path| {
        // A stale socket file from a previous run blocks bind; remove it.
        let _ = std::fs::remove_file(&path);
        let listener = match UnixListener::bind(&path) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("fdm-serve: bind {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        eprintln!("fdm-serve: listening on {}", path.display());
        let engine = engine.clone();
        std::thread::spawn(move || serve_unix(engine, listener, unix_net))
    });

    let listen_thread = args.listen.map(|addr| {
        let listener = match TcpListener::bind(&addr) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("fdm-serve: bind {addr}: {e}");
                std::process::exit(1);
            }
        };
        match listener.local_addr() {
            Ok(local) => eprintln!("fdm-serve: listening on tcp://{local}"),
            Err(_) => eprintln!("fdm-serve: listening on tcp://{addr}"),
        }
        let engine = engine.clone();
        std::thread::spawn(move || serve_tcp(engine, listener, tcp_net))
    });

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    if let Err(e) = Session::new(engine).run(stdin.lock(), stdout.lock()) {
        eprintln!("fdm-serve: stdin session error: {e}");
    }

    // With a socket or TCP listener configured the process is a daemon:
    // keep serving connections after stdin closes.
    if let Some(handle) = socket_thread {
        let _ = handle.join();
    }
    if let Some(handle) = listen_thread {
        let _ = handle.join();
    }
}
