//! The `fdm-serve` binary: protocol sessions over stdin/stdout and,
//! optionally, a Unix domain socket, with WAL + auto-snapshot durability.
//!
//! ```text
//! fdm-serve [--data-dir DIR] [--snapshot-every N] [--socket PATH]
//! ```
//!
//! * `--data-dir DIR` — enable durability: per-stream WAL + snapshots in
//!   `DIR`, with restore-then-replay crash recovery on startup.
//! * `--snapshot-every N` — auto-snapshot (and truncate the WAL) every N
//!   accepted inserts per stream.
//! * `--socket PATH` — additionally accept protocol sessions on a Unix
//!   domain socket (one thread per connection); the process then keeps
//!   serving after stdin closes.
//!
//! See `docs/serve.md` for the protocol and `examples/serve_session.sh`
//! for a scripted end-to-end session.

use std::io::{BufReader, Write as _};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::Arc;

use fdm_serve::{Engine, ServeConfig, Session};

struct Args {
    config: ServeConfig,
    socket: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut config = ServeConfig::default();
    let mut socket = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} requires a value"));
        match arg.as_str() {
            "--data-dir" => config.data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--snapshot-every" => {
                let n: u64 = value("--snapshot-every")?
                    .parse()
                    .map_err(|_| "--snapshot-every: invalid number".to_string())?;
                config.snapshot_every = Some(n);
            }
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: fdm-serve [--data-dir DIR] [--snapshot-every N] [--socket PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    if config.snapshot_every.is_some() && config.data_dir.is_none() {
        return Err("--snapshot-every requires --data-dir".to_string());
    }
    Ok(Args { config, socket })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let engine = match Engine::new(args.config) {
        Ok(engine) => Arc::new(engine),
        Err(e) => {
            eprintln!("fdm-serve: recovery failed: {e}");
            std::process::exit(1);
        }
    };
    let recovered = engine.stream_names();
    if !recovered.is_empty() {
        eprintln!("fdm-serve: recovered streams: {}", recovered.join(", "));
    }

    let socket_thread = args.socket.map(|path| {
        // A stale socket file from a previous run blocks bind; remove it.
        let _ = std::fs::remove_file(&path);
        let listener = match UnixListener::bind(&path) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("fdm-serve: bind {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        eprintln!("fdm-serve: listening on {}", path.display());
        let engine = engine.clone();
        std::thread::spawn(move || {
            for connection in listener.incoming() {
                match connection {
                    Ok(stream) => {
                        let engine = engine.clone();
                        std::thread::spawn(move || {
                            let reader = match stream.try_clone() {
                                Ok(reader) => BufReader::new(reader),
                                Err(e) => {
                                    eprintln!("fdm-serve: clone connection: {e}");
                                    return;
                                }
                            };
                            let mut writer = stream;
                            if let Err(e) = Session::new(engine).run(reader, &mut writer) {
                                eprintln!("fdm-serve: session error: {e}");
                            }
                            let _ = writer.flush();
                        });
                    }
                    Err(e) => eprintln!("fdm-serve: accept: {e}"),
                }
            }
        })
    });

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    if let Err(e) = Session::new(engine).run(stdin.lock(), stdout.lock()) {
        eprintln!("fdm-serve: stdin session error: {e}");
    }

    // With a socket configured the process is a daemon: keep serving
    // connections after stdin closes.
    if let Some(handle) = socket_thread {
        let _ = handle.join();
    }
}
