//! The `fdm-serve` binary: protocol sessions over stdin/stdout and,
//! optionally, a Unix domain socket and/or a TCP listener, with WAL +
//! auto-snapshot durability.
//!
//! ```text
//! fdm-serve [--data-dir DIR] [--snapshot-every N] [--snapshot-format json|bin]
//!           [--full-every N] [--socket PATH] [--listen ADDR:PORT]
//!           [--read-timeout SECS] [--metrics ADDR:PORT] [--auth-token TOKEN]
//!           [--max-connections N] [--max-pending N] [--rate-limit N]
//!           [--drain-grace SECS] [--worker ADDR:PORT]... [--coord-batch N]
//! ```
//!
//! * `--data-dir DIR` — enable durability: per-stream WAL + snapshots in
//!   `DIR`, with restore-then-replay crash recovery on startup.
//! * `--snapshot-every N` — auto-checkpoint (and truncate the WAL) every N
//!   accepted inserts per stream.
//! * `--snapshot-format json|bin` — encoding for checkpoints and for
//!   `SNAPSHOT` commands without an explicit `format=` (default `bin`;
//!   recovery reads both).
//! * `--full-every N` — collapse the incremental-delta chain into a fresh
//!   full snapshot every N deltas (default 8; `0` disables deltas).
//! * `--socket PATH` — additionally accept protocol sessions on a Unix
//!   domain socket (one thread per connection).
//! * `--listen ADDR:PORT` — additionally accept protocol sessions over
//!   TCP (remote tenants; per-connection read timeout + max-frame guard).
//! * `--read-timeout SECS` — idle-connection timeout for both socket
//!   transports (`0` waits forever). Defaults differ per transport: 300 s
//!   for TCP, none for the trusted local Unix socket.
//! * `--metrics ADDR:PORT` — HTTP `GET /metrics` endpoint (Prometheus
//!   text exposition; see `docs/serve.md` for the name/label contract).
//! * `--auth-token TOKEN` — TCP sessions must `AUTH TOKEN` before any
//!   command other than `PING`/`QUIT` (local stdin and Unix-socket
//!   sessions stay trusted).
//! * `--max-connections N` — per-listener concurrent-session cap
//!   (default 1024); excess connections get one `ERR` line.
//! * `--max-pending N` — per-stream bound on in-flight `INSERT`s
//!   (default 256); beyond it inserts get `ERR busy` instead of queueing.
//! * `--rate-limit N` — per-stream insert rate limit in inserts/sec
//!   (token bucket, one-second burst); over-limit inserts get `ERR busy`.
//! * `--drain-grace SECS` — on SIGTERM, how long to wait for in-flight
//!   sessions before checkpointing and exiting anyway (default 30).
//! * `--worker ADDR:PORT` (repeatable) — **coordinator mode**: this node
//!   hosts no summaries; `INSERT`s round-robin across the worker
//!   `fdm-serve` nodes and `QUERY` merges their summaries (pulled via the
//!   `MERGE` verb) bit-identically to a sharded single process. Excludes
//!   `--data-dir` (the workers own all durable state); see
//!   `docs/distributed.md`.
//! * `--coord-batch N` — coordinator mode: flush `INSERTB` batches to the
//!   workers in concurrent rounds of at most N elements (default 256).
//!
//! With a socket or listener configured the process keeps serving after
//! stdin closes. **SIGTERM drains gracefully**: new connections are
//! refused, live sessions get `--drain-grace` seconds to finish, every
//! stream is checkpointed with a full snapshot (zero-replay recovery) and
//! its WAL fsynced, and the process exits 0. A second SIGTERM exits
//! immediately (code 143). See `docs/serve.md` for the protocol and
//! `examples/serve_session.sh` / `examples/serve_tcp_session.sh` for
//! scripted end-to-end sessions.

use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fdm_core::persist::SnapshotFormat;
use fdm_serve::{
    serve_metrics, serve_tcp, serve_unix, signal, Engine, NetOptions, ServeConfig, Session,
};

struct Args {
    config: ServeConfig,
    socket: Option<PathBuf>,
    listen: Option<String>,
    metrics: Option<String>,
    drain_grace: Duration,
    /// TCP limits (default: 300 s read timeout).
    tcp_net: NetOptions,
    /// Unix-socket limits (default: no read timeout — local clients are
    /// trusted and often long-lived/idle).
    unix_net: NetOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut config = ServeConfig::default();
    let mut socket = None;
    let mut listen = None;
    let mut metrics = None;
    let mut read_timeout: Option<u64> = None;
    let mut auth_token: Option<String> = None;
    let mut max_connections: Option<usize> = None;
    let mut drain_grace = Duration::from_secs(30);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} requires a value"));
        match arg.as_str() {
            "--data-dir" => config.data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--snapshot-every" => {
                let n: u64 = value("--snapshot-every")?
                    .parse()
                    .map_err(|_| "--snapshot-every: invalid number".to_string())?;
                config.snapshot_every = Some(n);
            }
            "--snapshot-format" => {
                config.snapshot_format = SnapshotFormat::parse(&value("--snapshot-format")?)?;
            }
            "--full-every" => {
                config.full_every = value("--full-every")?
                    .parse()
                    .map_err(|_| "--full-every: invalid number".to_string())?;
            }
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--listen" => listen = Some(value("--listen")?),
            "--metrics" => metrics = Some(value("--metrics")?),
            "--auth-token" => auth_token = Some(value("--auth-token")?),
            "--read-timeout" => {
                let secs: u64 = value("--read-timeout")?
                    .parse()
                    .map_err(|_| "--read-timeout: invalid number of seconds".to_string())?;
                read_timeout = Some(secs);
            }
            "--max-connections" => {
                let n: usize = value("--max-connections")?
                    .parse()
                    .map_err(|_| "--max-connections: invalid number".to_string())?;
                max_connections = Some(n);
            }
            "--max-pending" => {
                config.max_pending_inserts = value("--max-pending")?
                    .parse()
                    .map_err(|_| "--max-pending: invalid number".to_string())?;
            }
            "--rate-limit" => {
                let per_sec: f64 = value("--rate-limit")?
                    .parse()
                    .map_err(|_| "--rate-limit: invalid inserts/sec".to_string())?;
                if !per_sec.is_finite() || per_sec <= 0.0 {
                    return Err("--rate-limit: must be a positive number".to_string());
                }
                config.rate_limit = Some(per_sec);
            }
            "--drain-grace" => {
                let secs: u64 = value("--drain-grace")?
                    .parse()
                    .map_err(|_| "--drain-grace: invalid number of seconds".to_string())?;
                drain_grace = Duration::from_secs(secs);
            }
            "--worker" => config.workers.push(value("--worker")?),
            "--coord-batch" => {
                let n: usize = value("--coord-batch")?
                    .parse()
                    .map_err(|_| "--coord-batch: invalid number".to_string())?;
                if n == 0 {
                    return Err("--coord-batch: must be at least 1".to_string());
                }
                config.coord_batch = n;
            }
            "--help" | "-h" => {
                return Err("usage: fdm-serve [--data-dir DIR] [--snapshot-every N] \
                            [--snapshot-format json|bin] [--full-every N] [--socket PATH] \
                            [--listen ADDR:PORT] [--read-timeout SECS] [--metrics ADDR:PORT] \
                            [--auth-token TOKEN] [--max-connections N] [--max-pending N] \
                            [--rate-limit N] [--drain-grace SECS] [--worker ADDR:PORT]... \
                            [--coord-batch N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    if config.snapshot_every.is_some() && config.data_dir.is_none() {
        return Err("--snapshot-every requires --data-dir".to_string());
    }
    if !config.workers.is_empty() && config.data_dir.is_some() {
        // The coordinator is stateless by design: durable state lives on
        // the workers, and a coordinator-side WAL would double-apply on
        // recovery.
        return Err("--worker (coordinator mode) excludes --data-dir".to_string());
    }
    // An explicit --read-timeout applies to both transports (0 = never);
    // the defaults differ: TCP times idle remotes out, Unix-socket
    // sessions are trusted local clients and may idle forever. The auth
    // token gates TCP only — stdin and the Unix socket are local-trust.
    let tcp_net = NetOptions {
        read_timeout: match read_timeout {
            Some(secs) => (secs > 0).then(|| Duration::from_secs(secs)),
            None => NetOptions::default().read_timeout,
        },
        max_connections: max_connections.unwrap_or(NetOptions::default().max_connections),
        auth_token: auth_token.map(Into::into),
        ..NetOptions::default()
    };
    let unix_net = NetOptions {
        read_timeout: read_timeout.and_then(|secs| (secs > 0).then(|| Duration::from_secs(secs))),
        max_connections: max_connections.unwrap_or(NetOptions::default().max_connections),
        ..NetOptions::default()
    };
    Ok(Args {
        config,
        socket,
        listen,
        metrics,
        drain_grace,
        tcp_net,
        unix_net,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let engine = match Engine::new(args.config) {
        Ok(engine) => Arc::new(engine),
        Err(e) => {
            eprintln!("fdm-serve: recovery failed: {e}");
            std::process::exit(1);
        }
    };
    let recovered = engine.stream_names();
    if !recovered.is_empty() {
        eprintln!("fdm-serve: recovered streams: {}", recovered.join(", "));
    }

    // Graceful drain: the handler only flips an atomic (and force-exits on
    // a second SIGTERM); this watcher does the actual work — refuse new
    // connections, give in-flight sessions the grace period, checkpoint
    // every stream (zero-replay recovery), fsync, exit 0.
    if signal::install_sigterm_handler() {
        let drain_engine = engine.clone();
        let grace = args.drain_grace;
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(25));
            if !signal::sigterm_received() {
                continue;
            }
            eprintln!("fdm-serve: SIGTERM; draining (new connections refused)");
            drain_engine.begin_drain();
            let deadline = Instant::now() + grace;
            while drain_engine.metrics().live_connections() > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(20));
            }
            match drain_engine.drain() {
                Ok(n) => {
                    eprintln!("fdm-serve: drained {n} stream(s); exiting");
                    std::process::exit(0);
                }
                Err(e) => {
                    eprintln!("fdm-serve: drain checkpoint failed: {e}");
                    std::process::exit(1);
                }
            }
        });
    } else {
        eprintln!("fdm-serve: could not install SIGTERM handler; drain disabled");
    }

    if let Some(addr) = args.metrics {
        let listener = match TcpListener::bind(&addr) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("fdm-serve: bind metrics {addr}: {e}");
                std::process::exit(1);
            }
        };
        match listener.local_addr() {
            Ok(local) => eprintln!("fdm-serve: metrics on http://{local}/metrics"),
            Err(_) => eprintln!("fdm-serve: metrics on http://{addr}/metrics"),
        }
        let engine = engine.clone();
        std::thread::spawn(move || serve_metrics(engine, listener));
    }

    let (tcp_net, unix_net) = (args.tcp_net, args.unix_net);
    let socket_thread = args.socket.map(|path| {
        // A stale socket file from a previous run blocks bind; remove it.
        let _ = std::fs::remove_file(&path);
        let listener = match UnixListener::bind(&path) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("fdm-serve: bind {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        eprintln!("fdm-serve: listening on {}", path.display());
        let engine = engine.clone();
        std::thread::spawn(move || serve_unix(engine, listener, unix_net))
    });

    let listen_thread = args.listen.map(|addr| {
        let listener = match TcpListener::bind(&addr) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("fdm-serve: bind {addr}: {e}");
                std::process::exit(1);
            }
        };
        match listener.local_addr() {
            Ok(local) => eprintln!("fdm-serve: listening on tcp://{local}"),
            Err(_) => eprintln!("fdm-serve: listening on tcp://{addr}"),
        }
        let engine = engine.clone();
        std::thread::spawn(move || serve_tcp(engine, listener, tcp_net))
    });

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    if let Err(e) = Session::new(engine).run(stdin.lock(), stdout.lock()) {
        eprintln!("fdm-serve: stdin session error: {e}");
    }

    // With a socket or TCP listener configured the process is a daemon:
    // keep serving connections after stdin closes.
    if let Some(handle) = socket_thread {
        let _ = handle.join();
    }
    if let Some(handle) = listen_thread {
        let _ = handle.join();
    }
}
