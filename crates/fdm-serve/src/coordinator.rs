//! Coordinator mode: fan one logical stream out over N worker
//! `fdm-serve` nodes.
//!
//! With `--worker ADDR:PORT` flags the engine stops hosting summaries and
//! becomes a router:
//!
//! * `OPEN` forwards the (unsharded) spec to every worker, so each worker
//!   hosts one **shard** of the logical stream — with its own WAL,
//!   snapshot chain, and crash recovery;
//! * `INSERT` round-robins across the workers in fixed order, exactly the
//!   element-to-shard assignment
//!   [`ShardedStream`](fdm_core::streaming::sharded::ShardedStream) uses
//!   for arrival order; `INSERTB` splits a batch into per-worker
//!   sub-sequences by the same arithmetic (element *i* of a flush goes to
//!   worker `(cursor + i) % K`) and flushes all K sub-batches
//!   **concurrently**, one thread per worker — the round-trip cost of a
//!   batch is one RTT plus the slowest worker's apply, not N RTTs;
//! * `QUERY` pulls every worker's summary through the incremental
//!   `MERGE since=<epoch>:<crc>` verb: each worker answers an `FDMDELT2`
//!   delta against the coordinator's cached copy of its state when the
//!   anchor matches, or a full v2 frame otherwise. The per-worker caches
//!   merge through the registry's
//!   [`merge_summary_parts`](fdm_core::streaming::summary::merge_summary_parts)
//!   — the same instance + insertion order `ShardedStream::finalize`
//!   uses, so a coordinator over K workers answers **byte-identically**
//!   to a single-process `ShardedStream` with K shards fed the same
//!   arrivals (pinned by `tests/distributed.rs`). The merged solution is
//!   itself cached: a `QUERY` with no intervening `INSERT` is answered
//!   without touching the fleet.
//!
//! ## Coordinator state and restart
//!
//! The routing state is `processed` (elements acknowledged, in arrival
//! order), the cursor (`cursor ≡ processed mod K`), and per-worker
//! positions `p_w` (how many elements worker `w` holds, refreshed from
//! the worker's own count on every attach). Everything else — the cached
//! per-worker summaries and the cached merged solution — is soft state
//! protected by `(epoch, crc)` anchors: a stale or missing cache costs a
//! full frame, never a wrong answer.
//!
//! After a coordinator restart, re-`OPEN` recomputes the **contiguous
//! acknowledged prefix** from the workers' positions alone: worker `w`
//! (0-indexed) holds 0-based globals `g ≡ w (mod K)`, so its first
//! missing global is `w + p_w·K`, and `processed = min_w (w + p_w·K)`.
//! No coordinator WAL is needed — the workers *are* the durable state.
//!
//! ## Failure semantics
//!
//! A worker that cannot be reached (connect, write, or read failure after
//! `CONNECT_ATTEMPTS` retries with doubling backoff) turns the command
//! into a typed `ERR worker unavailable: <addr>: <cause>` naming the
//! failing node — never a hang. The connection is dropped and re-dialed
//! on the next command touching that worker; health is visible in `STATS`
//! and as `fdm_worker_up`/`fdm_worker_failures_total` in `/metrics`. An
//! insert whose transport fails is **not** retried on another worker
//! (that would silently permute the round-robin assignment and break
//! bit-identity); the client decides whether to retry the same element.
//!
//! A **mid-batch** failure acks only the longest contiguous prefix of the
//! flush (each worker applies its whole sub-batch or none of it — the
//! worker-side `INSERTB` apply is atomic): `processed` advances by that
//! prefix, the cursor follows, and the typed error names the first
//! worker blocking it. Elements beyond the prefix that *did* land on
//! healthy workers are remembered via `p_w`; when the client replays the
//! unacked suffix (replay is deterministic, so the elements are
//! identical), the coordinator **skips** every element its target worker
//! already holds instead of re-sending it — the gap heals without
//! duplicates, for both `INSERT` and `INSERTB` replays.
//!
//! The coordinator authenticates to workers with no token: worker nodes
//! are expected to sit on the same trusted network segment (bind
//! `127.0.0.1` or a private interface), like the Unix-socket transport.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fdm_client::{Client, ClientError, MergeFrame};
use fdm_core::persist::{Snapshot, SnapshotDelta};
use fdm_core::point::Element;
use fdm_core::streaming::summary::{self, DynSummary};

use crate::engine::lock;
use crate::metrics::{help_type, render_histogram_as, StreamMetrics, Which};
use crate::protocol::{ErrorReply, Payload, QueryReply, StreamSpec};

/// Total connect attempts per worker dial (first try + retries with
/// doubling backoff starting at [`INITIAL_BACKOFF`]).
const CONNECT_ATTEMPTS: usize = 5;

/// Backoff before the first connect retry; doubles per retry.
const INITIAL_BACKOFF: Duration = Duration::from_millis(25);

/// Tree-merge fan-in for wide worker fleets: more than this many summaries
/// reduce in chunks before the final merge (see
/// [`summary::merge_summary_parts`]).
const MERGE_FAN_IN: usize = 8;

/// Health of one worker node, shared between command paths and the
/// `/metrics` renderer.
struct WorkerState {
    addr: String,
    /// Last dial/command against this worker succeeded.
    up: AtomicBool,
    /// Commands that failed against this worker (transport-level).
    failures: AtomicU64,
}

/// The coordinator's cached copy of one worker's summary, kept current by
/// the incremental `MERGE since=` exchange. `(epoch, crc)` is the anchor
/// echoed back to the worker: a match means the worker's export mark
/// still describes `base`, so its reply is a delta `apply_to` accepts
/// (the delta's own `base_crc` re-verifies this before any bytes are
/// trusted). Any mismatch — first contact, worker restart, a second
/// consumer polling the same worker — yields a full frame that replaces
/// the whole cache.
struct WorkerCache {
    /// The worker's state as of the last frame, the base deltas chain on.
    base: Snapshot,
    /// `base`, restored — the merge input. Kept alongside the snapshot so
    /// a cache-hit `QUERY` restores nothing.
    summary: Box<dyn DynSummary>,
    /// Export anchor: bumped by the worker on every full frame…
    epoch: u64,
    /// …and the CRC of the exported state, advanced by every delta.
    crc: u32,
    /// The worker's processed count as of the last frame.
    processed: usize,
}

/// Coordinator-side state of one logical stream.
struct CoordStream {
    spec: StreamSpec,
    /// Contiguously acknowledged inserts across all workers (arrival
    /// order).
    processed: usize,
    /// Next worker to receive an `INSERT`; invariant
    /// `cursor == processed % workers.len()`.
    cursor: usize,
    /// Per-worker applied counts `p_w` — the skip/heal watermark.
    /// Refreshed from the worker's own count on every (re-)attach and on
    /// every acknowledged insert, so it may run ahead of the contiguous
    /// prefix after a partial batch.
    positions: Vec<usize>,
    /// One cached connection per worker, re-dialed lazily after a failure.
    conns: Vec<Option<Client>>,
    /// Per-worker summary caches for the incremental `QUERY` fan-in.
    caches: Vec<Option<WorkerCache>>,
    /// The last merged solution; invalidated by any insert attempt.
    cached_query: Option<QueryReply>,
    /// Coordinator-side request latencies (`fdm_coord_*` families).
    metrics: Arc<StreamMetrics>,
}

/// The worker fleet plus per-stream routing state. One mutex per stream:
/// inserts and queries of one logical stream serialize (a query is a
/// consistent cut of the round-robin order), while different streams
/// proceed independently.
pub struct Coordinator {
    workers: Vec<Arc<WorkerState>>,
    streams: Mutex<HashMap<String, Arc<Mutex<CoordStream>>>>,
    /// Snapshot bytes pulled from workers, split by frame kind — the
    /// direct measure of what the delta path saves.
    merge_bytes_full: AtomicU64,
    merge_bytes_delta: AtomicU64,
    /// `QUERY`s answered from the cached merged solution.
    merge_cache_hits: AtomicU64,
}

impl Coordinator {
    /// A coordinator over the given worker addresses (`ADDR:PORT` each).
    pub fn new(addrs: Vec<String>) -> Coordinator {
        Coordinator {
            workers: addrs
                .into_iter()
                .map(|addr| {
                    Arc::new(WorkerState {
                        addr,
                        up: AtomicBool::new(false),
                        failures: AtomicU64::new(0),
                    })
                })
                .collect(),
            streams: Mutex::new(HashMap::new()),
            merge_bytes_full: AtomicU64::new(0),
            merge_bytes_delta: AtomicU64::new(0),
            merge_cache_hits: AtomicU64::new(0),
        }
    }

    /// Records a transport failure against `worker` and renders the typed
    /// `worker unavailable` error naming it.
    fn unavailable(&self, worker: &WorkerState, e: &ClientError) -> ErrorReply {
        let cause = match e {
            // The io::Error text alone ("connection refused", "timed
            // out") — the client-side "transport error: " framing is
            // noise on the wire.
            ClientError::Io(io) => io.to_string(),
            other => other.to_string(),
        };
        worker.up.store(false, Ordering::SeqCst);
        worker.failures.fetch_add(1, Ordering::SeqCst);
        ErrorReply::worker_unavailable(format!("{}: {cause}", worker.addr))
    }

    /// Dials a worker (with retries) and attaches it to `name`/`spec`.
    /// Marks the worker up on success; returns the worker's own processed
    /// count (its authoritative position `p_w`).
    fn attach(
        &self,
        widx: usize,
        name: &str,
        spec: &StreamSpec,
    ) -> Result<(Client, usize), ErrorReply> {
        let worker = &self.workers[widx];
        let mut client = Client::connect_tcp_retry(&worker.addr, CONNECT_ATTEMPTS, INITIAL_BACKOFF)
            .map_err(|e| self.unavailable(worker, &e))?;
        let processed = match client.open(name, spec) {
            Ok(processed) => processed,
            Err(ClientError::Server(err)) => return Err(err),
            Err(e) => return Err(self.unavailable(worker, &e)),
        };
        worker.up.store(true, Ordering::SeqCst);
        Ok((client, processed))
    }

    /// The cached connection for `stream`'s `widx`-th worker, re-dialing
    /// (and re-attaching) if the previous one failed. A re-attach also
    /// refreshes `p_w` from the worker's own count: after an ambiguous
    /// transport failure (line written, ack lost) the worker's position
    /// is the truth the skip/heal logic needs.
    fn conn<'a>(
        &self,
        stream: &'a mut CoordStream,
        name: &str,
        widx: usize,
    ) -> Result<&'a mut Client, ErrorReply> {
        if stream.conns[widx].is_none() {
            let (client, worker_processed) = self.attach(widx, name, &stream.spec)?;
            stream.positions[widx] = worker_processed;
            stream.conns[widx] = Some(client);
        }
        Ok(stream.conns[widx].as_mut().expect("just ensured"))
    }

    /// `OPEN`: forward to every worker, register the routing state, and
    /// recover `processed` as the contiguous acknowledged prefix the
    /// workers' positions imply: worker `w` holds globals `g ≡ w (mod
    /// K)`, so `processed = min_w (w + p_w·K)` — this is how a restarted
    /// coordinator re-attaches, including after a partial batch left
    /// later workers ahead of the prefix.
    pub fn open(&self, name: &str, spec: &StreamSpec) -> Result<Payload, ErrorReply> {
        if spec.shards > 1 {
            return Err(ErrorReply::generic(format!(
                "coordinator streams take shards=1 (the {} workers are the shards)",
                self.workers.len()
            )));
        }
        let mut streams = lock(&self.streams);
        if let Some(existing) = streams.get(name).cloned() {
            drop(streams);
            let existing = lock(&existing);
            if existing.spec != *spec {
                return Err(ErrorReply::generic(format!(
                    "stream `{name}` is already open with different parameters"
                )));
            }
            return Ok(Payload::Attached {
                name: name.to_string(),
                processed: existing.processed,
            });
        }
        let mut conns = Vec::with_capacity(self.workers.len());
        let mut positions = Vec::with_capacity(self.workers.len());
        for widx in 0..self.workers.len() {
            let (client, worker_processed) = self.attach(widx, name, spec)?;
            positions.push(worker_processed);
            conns.push(Some(client));
        }
        let processed = positions
            .iter()
            .enumerate()
            .map(|(w, p)| w + p * self.workers.len())
            .min()
            .unwrap_or(0);
        let cursor = processed % self.workers.len();
        let k = self.workers.len();
        streams.insert(
            name.to_string(),
            Arc::new(Mutex::new(CoordStream {
                spec: spec.clone(),
                processed,
                cursor,
                positions,
                conns,
                caches: (0..k).map(|_| None).collect(),
                cached_query: None,
                metrics: StreamMetrics::new(),
            })),
        );
        if processed == 0 {
            Ok(Payload::Opened {
                name: name.to_string(),
            })
        } else {
            Ok(Payload::Attached {
                name: name.to_string(),
                processed,
            })
        }
    }

    fn stream(&self, name: &str) -> Result<Arc<Mutex<CoordStream>>, ErrorReply> {
        lock(&self.streams).get(name).cloned().ok_or_else(|| {
            ErrorReply::generic(format!(
                "no stream named `{name}` (OPEN or RESTORE one first)"
            ))
        })
    }

    /// `INSERT`: route to the cursor's worker; advance the cursor only on
    /// an acknowledged apply, so the round-robin assignment stays exactly
    /// [`ShardedStream`](fdm_core::streaming::sharded::ShardedStream)'s.
    /// An element the target worker already holds (landed by a partial
    /// batch whose ack was lost) is acknowledged without re-sending.
    pub fn insert(&self, name: &str, element: &Element) -> Result<Payload, ErrorReply> {
        let stream = self.stream(name)?;
        let mut stream = lock(&stream);
        let start = Instant::now();
        // The send below can apply on the worker even if its ack is lost,
        // so the merged solution goes stale on the *attempt*.
        stream.cached_query = None;
        let k = self.workers.len();
        let g = stream.processed; // 0-based global index of this element
        let widx = stream.cursor; // == g % k by the cursor invariant
        let pos = g / k + 1; // 1-based position in widx's sub-stream
        if stream.positions[widx] >= pos {
            // Heal-by-skip: replay is deterministic, so the element the
            // worker already holds is this one.
            stream.processed += 1;
            stream.cursor = stream.processed % k;
            let seq = stream.processed;
            stream.metrics.insert_latency.observe(start.elapsed());
            return Ok(Payload::Inserted { seq });
        }
        let client = self.conn(&mut stream, name, widx)?;
        match client.insert(element) {
            Ok(worker_seq) => {
                self.workers[widx].up.store(true, Ordering::SeqCst);
                stream.positions[widx] = stream.positions[widx].max(worker_seq);
                stream.processed += 1;
                stream.cursor = stream.processed % k;
                let seq = stream.processed;
                stream.metrics.insert_latency.observe(start.elapsed());
                Ok(Payload::Inserted { seq })
            }
            // The worker answered: a typed rejection (dimension mismatch,
            // busy, ...) relays verbatim; the element was not applied, so
            // the cursor stays.
            Err(ClientError::Server(err)) => Err(err),
            Err(e) => {
                // Transport failure: the connection is poisoned (we may
                // have written the line without reading an ack — the
                // worker's WAL decides whether it applied; the re-attach
                // on the next command refreshes `p_w` either way). Drop
                // it, name the worker, leave the cursor for the client's
                // retry.
                stream.conns[widx] = None;
                Err(self.unavailable(&self.workers[widx], &e))
            }
        }
    }

    /// `INSERTB`: the pipelined fan-out. The batch is flushed in rounds
    /// of at most `coord_batch` elements; each round is partitioned into
    /// per-worker sub-sequences by pure cursor arithmetic and all
    /// sub-batches fly **concurrently**, one thread per worker, each over
    /// that worker's own cached connection. An element is acknowledged
    /// only once its worker acknowledged the sub-batch containing it (or
    /// it was skipped as already held); on any failure the round acks the
    /// longest contiguous prefix and the typed error names the first
    /// blocking worker.
    pub fn insert_batch(
        &self,
        name: &str,
        elements: &[Element],
        coord_batch: usize,
    ) -> Result<Payload, ErrorReply> {
        if elements.is_empty() {
            return Err(ErrorReply::generic("INSERTB requires at least one element"));
        }
        let stream = self.stream(name)?;
        let mut stream = lock(&stream);
        let start = Instant::now();
        stream.cached_query = None;
        let k = self.workers.len();
        let count = elements.len();
        for chunk in elements.chunks(coord_batch.max(1)) {
            // Partition: element i of the chunk is global g = processed +
            // i, owned by worker g % k at 1-based position g / k + 1.
            // Elements the target worker already holds are skipped (see
            // the module docs on heal-by-skip).
            let base = stream.processed;
            let mut subs: Vec<Vec<Element>> = (0..k).map(|_| Vec::new()).collect();
            let mut routed: Vec<(usize, bool)> = Vec::with_capacity(chunk.len());
            for (i, element) in chunk.iter().enumerate() {
                let g = base + i;
                let widx = g % k;
                let skip = stream.positions[widx] > g / k;
                if !skip {
                    subs[widx].push(element.clone());
                }
                routed.push((widx, skip));
            }
            // Dial (and re-attach) sequentially before the flush; the
            // flush threads then own only their worker's connection.
            for (widx, sub) in subs.iter().enumerate() {
                if !sub.is_empty() {
                    self.conn(&mut stream, name, widx)?;
                }
            }
            let mut jobs: Vec<(usize, Client, Vec<Element>)> = Vec::new();
            for (widx, sub) in subs.iter_mut().enumerate() {
                if !sub.is_empty() {
                    let client = stream.conns[widx].take().expect("dialed above");
                    jobs.push((widx, client, std::mem::take(sub)));
                }
            }
            let results: Vec<(usize, Client, Result<usize, ClientError>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = jobs
                        .into_iter()
                        .map(|(widx, mut client, batch)| {
                            scope.spawn(move || {
                                let result = client.insert_batch(&batch).map(|(seq, _count)| seq);
                                (widx, client, result)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|handle| handle.join().expect("batch flush thread panicked"))
                        .collect()
                });
            let mut worker_err: Vec<Option<ErrorReply>> = (0..k).map(|_| None).collect();
            for (widx, client, result) in results {
                match result {
                    Ok(worker_seq) => {
                        self.workers[widx].up.store(true, Ordering::SeqCst);
                        stream.positions[widx] = stream.positions[widx].max(worker_seq);
                        stream.conns[widx] = Some(client);
                    }
                    Err(ClientError::Server(err)) => {
                        // The worker answered: the sub-batch was rejected
                        // atomically (nothing applied), the connection
                        // stays usable.
                        stream.conns[widx] = Some(client);
                        worker_err[widx] = Some(err);
                    }
                    Err(e) => {
                        drop(client);
                        worker_err[widx] = Some(self.unavailable(&self.workers[widx], &e));
                    }
                }
            }
            // Ack the longest contiguous prefix of the chunk: an element
            // is applied iff it was skipped or its worker's whole
            // sub-batch was acknowledged (the worker-side apply is
            // atomic, so there is no partial sub-batch case).
            let mut acked = 0usize;
            for (widx, skipped) in &routed {
                if *skipped || worker_err[*widx].is_none() {
                    acked += 1;
                } else {
                    break;
                }
            }
            stream.processed += acked;
            stream.cursor = stream.processed % k;
            if acked < chunk.len() {
                let (widx, _) = routed[acked];
                return Err(worker_err[widx]
                    .take()
                    .expect("the prefix stopped at a failed worker"));
            }
        }
        let seq = stream.processed;
        stream.metrics.insert_latency.observe(start.elapsed());
        Ok(Payload::InsertedBatch { seq, count })
    }

    /// One `MERGE since=` round-trip against worker `widx`, accounting
    /// the transferred bytes by frame kind. A transport failure drops the
    /// connection *and* the worker's cache (the next contact re-anchors
    /// from scratch — a restarted worker's export epoch is fresh anyway).
    fn merge_frame(
        &self,
        stream: &mut CoordStream,
        name: &str,
        widx: usize,
        anchor: (u64, u32),
    ) -> Result<MergeFrame, ErrorReply> {
        let client = self.conn(stream, name, widx)?;
        match client.merge_since(anchor) {
            Ok(frame) => {
                self.workers[widx].up.store(true, Ordering::SeqCst);
                let counter = if frame.delta {
                    &self.merge_bytes_delta
                } else {
                    &self.merge_bytes_full
                };
                counter.fetch_add(frame.bytes.len() as u64, Ordering::Relaxed);
                Ok(frame)
            }
            Err(ClientError::Server(err)) => Err(err),
            Err(e) => {
                stream.conns[widx] = None;
                stream.caches[widx] = None;
                Err(self.unavailable(&self.workers[widx], &e))
            }
        }
    }

    /// Replaces worker `widx`'s cache with a full frame.
    fn anchor_full(
        &self,
        stream: &mut CoordStream,
        widx: usize,
        frame: MergeFrame,
    ) -> Result<(), ErrorReply> {
        if frame.delta {
            // Unreachable by construction (a worker never answers a delta
            // to a `(0, 0)` anchor — export epochs start at 1), but a
            // protocol violation must not become a panic.
            return Err(ErrorReply::generic(format!(
                "worker {} answered a delta frame to an unanchored MERGE",
                self.workers[widx].addr
            )));
        }
        let base =
            Snapshot::from_bytes(&frame.bytes).map_err(|e| ErrorReply::generic(e.to_string()))?;
        let summary = summary::restore(&base).map_err(|e| ErrorReply::generic(e.to_string()))?;
        stream.caches[widx] = Some(WorkerCache {
            base,
            summary,
            epoch: frame.epoch,
            crc: frame.crc,
            processed: frame.processed,
        });
        Ok(())
    }

    /// Brings worker `widx`'s cache current: one `MERGE since=` carrying
    /// the cached anchor. A delta reply advances the cache in place; a
    /// full reply replaces it. A delta that fails to apply (a cache the
    /// crc anchor says should match but does not — defensive, not an
    /// expected state) is retried once as a forced full fetch.
    fn refresh_worker(
        &self,
        stream: &mut CoordStream,
        name: &str,
        widx: usize,
    ) -> Result<(), ErrorReply> {
        let anchor = stream.caches[widx]
            .as_ref()
            .map_or((0, 0), |c| (c.epoch, c.crc));
        let frame = self.merge_frame(stream, name, widx, anchor)?;
        if frame.delta {
            let cache = stream.caches[widx]
                .as_mut()
                .expect("a delta reply implies a cached anchor was sent");
            let applied = SnapshotDelta::from_bytes(&frame.bytes)
                .and_then(|delta| delta.apply_to(&cache.base));
            match applied {
                Ok(next) => {
                    let summary =
                        summary::restore(&next).map_err(|e| ErrorReply::generic(e.to_string()))?;
                    cache.base = next;
                    cache.summary = summary;
                    cache.epoch = frame.epoch;
                    cache.crc = frame.crc;
                    cache.processed = frame.processed;
                    return Ok(());
                }
                Err(_) => {
                    stream.caches[widx] = None;
                    let frame = self.merge_frame(stream, name, widx, (0, 0))?;
                    return self.anchor_full(stream, widx, frame);
                }
            }
        }
        self.anchor_full(stream, widx, frame)
    }

    /// `QUERY`: answered from the cached merged solution when no insert
    /// intervened; otherwise a consistent cut under the stream mutex —
    /// refresh every worker's cache (deltas where anchored, full frames
    /// where not) and merge the caches through the registry in worker
    /// order (= shard order), without moving them.
    pub fn query(&self, name: &str, k: Option<usize>) -> Result<Payload, ErrorReply> {
        let stream = self.stream(name)?;
        let mut stream = lock(&stream);
        let start = Instant::now();
        let configured = stream.spec.k;
        if let Some(k) = k {
            if k != configured {
                return Err(ErrorReply::generic(format!(
                    "QUERY k={k} but stream `{name}` is configured for k={configured}"
                )));
            }
        }
        if let Some(cached) = stream.cached_query.clone() {
            self.merge_cache_hits.fetch_add(1, Ordering::Relaxed);
            stream.metrics.query_latency.observe(start.elapsed());
            return Ok(Payload::Query(cached));
        }
        for widx in 0..self.workers.len() {
            self.refresh_worker(&mut stream, name, widx)?;
        }
        let total: usize = stream
            .caches
            .iter()
            .map(|c| c.as_ref().map_or(0, |c| c.processed))
            .sum();
        if total == 0 {
            return Err(ErrorReply::empty_stream(format!(
                "stream `{name}` has processed no elements; INSERT before QUERY"
            )));
        }
        let spec = stream
            .spec
            .to_summary_spec()
            .map_err(|e| ErrorReply::generic(e.to_string()))?;
        let parts: Vec<&dyn DynSummary> = stream
            .caches
            .iter()
            .map(|c| c.as_ref().expect("refreshed above").summary.as_ref())
            .collect();
        let solution = summary::merge_summary_parts(&spec, &parts, MERGE_FAN_IN)
            .map_err(|e| ErrorReply::generic(e.to_string()))?;
        let reply = QueryReply {
            k: solution.len(),
            diversity: solution.diversity,
            ids: solution.ids(),
        };
        stream.cached_query = Some(reply.clone());
        stream.metrics.query_latency.observe(start.elapsed());
        Ok(Payload::Query(reply))
    }

    /// `STATS`: the coordinator's routing counters plus per-worker health
    /// — one line, `stream=` first so it classifies as a stats payload.
    pub fn stats(&self, name: &str) -> Result<Payload, ErrorReply> {
        let stream = self.stream(name)?;
        let stream = lock(&stream);
        let mut line = format!(
            "stream={name} coordinator=1 workers={} processed={} cursor={}",
            self.workers.len(),
            stream.processed,
            stream.cursor
        );
        for (widx, worker) in self.workers.iter().enumerate() {
            line.push_str(&format!(
                " worker{widx}={} worker{widx}_up={} worker{widx}_failures={} \
                 worker{widx}_position={}",
                worker.addr,
                u8::from(worker.up.load(Ordering::SeqCst)),
                worker.failures.load(Ordering::SeqCst),
                stream.positions[widx]
            ));
        }
        Ok(Payload::Stats(line))
    }

    /// Appends the coordinator's metric families to a `/metrics`
    /// exposition: per-stream routing latency histograms (`fdm_coord_*` —
    /// distinct names because the engine always emits the single-node
    /// family preambles), merge transfer volume by frame kind, solution
    /// cache hits, and per-worker health.
    pub fn render_metrics(&self, out: &mut String) {
        let mut streams: Vec<(String, Arc<StreamMetrics>)> = lock(&self.streams)
            .iter()
            .map(|(name, stream)| (name.clone(), lock(stream).metrics.clone()))
            .collect();
        streams.sort_by(|a, b| a.0.cmp(&b.0));
        help_type(
            out,
            "fdm_coord_insert_latency_seconds",
            "histogram",
            "Coordinator INSERT/INSERTB latency (routing + worker round-trips).",
        );
        for (name, metrics) in &streams {
            render_histogram_as(
                out,
                "fdm_coord_insert_latency_seconds",
                Which::Insert,
                name,
                metrics,
            );
        }
        help_type(
            out,
            "fdm_coord_query_latency_seconds",
            "histogram",
            "Coordinator QUERY latency (cache refresh + merge, or a cache hit).",
        );
        for (name, metrics) in &streams {
            render_histogram_as(
                out,
                "fdm_coord_query_latency_seconds",
                Which::Query,
                name,
                metrics,
            );
        }
        help_type(
            out,
            "fdm_merge_bytes_total",
            "counter",
            "Snapshot bytes pulled from workers by QUERY fan-in, by frame kind.",
        );
        out.push_str(&format!(
            "fdm_merge_bytes_total{{kind=\"full\"}} {}\n",
            self.merge_bytes_full.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "fdm_merge_bytes_total{{kind=\"delta\"}} {}\n",
            self.merge_bytes_delta.load(Ordering::Relaxed)
        ));
        help_type(
            out,
            "fdm_merge_cache_hits_total",
            "counter",
            "QUERYs answered from the cached merged solution without touching the fleet.",
        );
        out.push_str(&format!(
            "fdm_merge_cache_hits_total {}\n",
            self.merge_cache_hits.load(Ordering::Relaxed)
        ));
        help_type(
            out,
            "fdm_worker_up",
            "gauge",
            "Whether the last command against each worker succeeded.",
        );
        for worker in &self.workers {
            out.push_str(&format!(
                "fdm_worker_up{{worker=\"{}\"}} {}\n",
                worker.addr,
                u8::from(worker.up.load(Ordering::SeqCst))
            ));
        }
        help_type(
            out,
            "fdm_worker_failures_total",
            "counter",
            "Transport-level command failures per worker.",
        );
        for worker in &self.workers {
            out.push_str(&format!(
                "fdm_worker_failures_total{{worker=\"{}\"}} {}\n",
                worker.addr,
                worker.failures.load(Ordering::SeqCst)
            ));
        }
    }
}
