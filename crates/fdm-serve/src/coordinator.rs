//! Coordinator mode: fan one logical stream out over N worker
//! `fdm-serve` nodes.
//!
//! With `--worker ADDR:PORT` flags the engine stops hosting summaries and
//! becomes a stateless router:
//!
//! * `OPEN` forwards the (unsharded) spec to every worker, so each worker
//!   hosts one **shard** of the logical stream — with its own WAL,
//!   snapshot chain, and crash recovery;
//! * `INSERT` round-robins across the workers in fixed order, exactly the
//!   element-to-shard assignment
//!   [`ShardedStream`](fdm_core::streaming::sharded::ShardedStream) uses
//!   for arrival order;
//! * `QUERY` pulls every worker's summary through the `MERGE` verb (an
//!   inline v2 binary snapshot frame), restores the frames, and merges
//!   them through the registry's
//!   [`merge_summaries`](fdm_core::streaming::summary::merge_summaries) —
//!   the same instance + insertion order `ShardedStream::finalize` uses,
//!   so a coordinator over K workers answers **byte-identically** to a
//!   single-process `ShardedStream` with K shards fed the same arrivals
//!   (pinned by `tests/distributed.rs`).
//!
//! The round-robin cursor is the one piece of coordinator state:
//! `cursor ≡ processed mod K`, advanced only on an acknowledged insert.
//! After a coordinator restart, re-`OPEN` recomputes `processed` as the
//! sum of the workers' positions and the cursor follows — no coordinator
//! WAL needed, because the workers *are* the durable state.
//!
//! **Failure semantics**: a worker that cannot be reached (connect,
//! write, or read failure after `CONNECT_ATTEMPTS` retries with
//! doubling backoff) turns the command into a typed
//! `ERR worker unavailable: <addr>: <cause>` naming the failing node —
//! never a hang. The connection is dropped and re-dialed on the next
//! command touching that worker; health is visible in `STATS` and as
//! `fdm_worker_up`/`fdm_worker_failures_total` in `/metrics`. An insert
//! whose transport fails is **not** retried on another worker (that would
//! silently permute the round-robin assignment and break bit-identity);
//! the client decides whether to retry the same element.
//!
//! The coordinator authenticates to workers with no token: worker nodes
//! are expected to sit on the same trusted network segment (bind
//! `127.0.0.1` or a private interface), like the Unix-socket transport.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fdm_client::{Client, ClientError};
use fdm_core::persist::Snapshot;
use fdm_core::streaming::summary::{self, DynSummary};

use crate::engine::lock;
use crate::metrics::help_type;
use crate::protocol::{ErrorReply, Payload, QueryReply, StreamSpec};

/// Total connect attempts per worker dial (first try + retries with
/// doubling backoff starting at [`INITIAL_BACKOFF`]).
const CONNECT_ATTEMPTS: usize = 5;

/// Backoff before the first connect retry; doubles per retry.
const INITIAL_BACKOFF: Duration = Duration::from_millis(25);

/// Tree-merge fan-in for wide worker fleets: more than this many summaries
/// reduce in chunks before the final merge (see
/// [`summary::merge_summaries`]).
const MERGE_FAN_IN: usize = 8;

/// Health of one worker node, shared between command paths and the
/// `/metrics` renderer.
struct WorkerState {
    addr: String,
    /// Last dial/command against this worker succeeded.
    up: AtomicBool,
    /// Commands that failed against this worker (transport-level).
    failures: AtomicU64,
}

/// Coordinator-side state of one logical stream.
struct CoordStream {
    spec: StreamSpec,
    /// Total acknowledged inserts across all workers.
    processed: usize,
    /// Next worker to receive an `INSERT`; invariant
    /// `cursor == processed % workers.len()`.
    cursor: usize,
    /// One cached connection per worker, re-dialed lazily after a failure.
    conns: Vec<Option<Client>>,
}

/// The worker fleet plus per-stream routing state. One mutex per stream:
/// inserts and queries of one logical stream serialize (a query is a
/// consistent cut of the round-robin order), while different streams
/// proceed independently.
pub struct Coordinator {
    workers: Vec<Arc<WorkerState>>,
    streams: Mutex<HashMap<String, Arc<Mutex<CoordStream>>>>,
}

impl Coordinator {
    /// A coordinator over the given worker addresses (`ADDR:PORT` each).
    pub fn new(addrs: Vec<String>) -> Coordinator {
        Coordinator {
            workers: addrs
                .into_iter()
                .map(|addr| {
                    Arc::new(WorkerState {
                        addr,
                        up: AtomicBool::new(false),
                        failures: AtomicU64::new(0),
                    })
                })
                .collect(),
            streams: Mutex::new(HashMap::new()),
        }
    }

    /// Records a transport failure against `worker` and renders the typed
    /// `worker unavailable` error naming it.
    fn unavailable(&self, worker: &WorkerState, e: &ClientError) -> ErrorReply {
        let cause = match e {
            // The io::Error text alone ("connection refused", "timed
            // out") — the client-side "transport error: " framing is
            // noise on the wire.
            ClientError::Io(io) => io.to_string(),
            other => other.to_string(),
        };
        worker.up.store(false, Ordering::SeqCst);
        worker.failures.fetch_add(1, Ordering::SeqCst);
        ErrorReply::worker_unavailable(format!("{}: {cause}", worker.addr))
    }

    /// Dials a worker (with retries) and attaches it to `name`/`spec`.
    /// Marks the worker up on success.
    fn attach(
        &self,
        widx: usize,
        name: &str,
        spec: &StreamSpec,
    ) -> Result<(Client, usize), ErrorReply> {
        let worker = &self.workers[widx];
        let mut client = Client::connect_tcp_retry(&worker.addr, CONNECT_ATTEMPTS, INITIAL_BACKOFF)
            .map_err(|e| self.unavailable(worker, &e))?;
        let processed = match client.open(name, spec) {
            Ok(processed) => processed,
            Err(ClientError::Server(err)) => return Err(err),
            Err(e) => return Err(self.unavailable(worker, &e)),
        };
        worker.up.store(true, Ordering::SeqCst);
        Ok((client, processed))
    }

    /// The cached connection for `stream`'s `widx`-th worker, re-dialing
    /// (and re-attaching) if the previous one failed.
    fn conn<'a>(
        &self,
        stream: &'a mut CoordStream,
        name: &str,
        widx: usize,
    ) -> Result<&'a mut Client, ErrorReply> {
        if stream.conns[widx].is_none() {
            let (client, _) = self.attach(widx, name, &stream.spec)?;
            stream.conns[widx] = Some(client);
        }
        Ok(stream.conns[widx].as_mut().expect("just ensured"))
    }

    /// `OPEN`: forward to every worker, register the routing state, and
    /// recover the cursor from the workers' positions (`Σ processed mod
    /// K`) — this is how a restarted coordinator re-attaches.
    pub fn open(&self, name: &str, spec: &StreamSpec) -> Result<Payload, ErrorReply> {
        if spec.shards > 1 {
            return Err(ErrorReply::generic(format!(
                "coordinator streams take shards=1 (the {} workers are the shards)",
                self.workers.len()
            )));
        }
        let mut streams = lock(&self.streams);
        if let Some(existing) = streams.get(name).cloned() {
            drop(streams);
            let existing = lock(&existing);
            if existing.spec != *spec {
                return Err(ErrorReply::generic(format!(
                    "stream `{name}` is already open with different parameters"
                )));
            }
            return Ok(Payload::Attached {
                name: name.to_string(),
                processed: existing.processed,
            });
        }
        let mut conns = Vec::with_capacity(self.workers.len());
        let mut processed = 0usize;
        for widx in 0..self.workers.len() {
            let (client, worker_processed) = self.attach(widx, name, spec)?;
            processed += worker_processed;
            conns.push(Some(client));
        }
        let cursor = processed % self.workers.len();
        streams.insert(
            name.to_string(),
            Arc::new(Mutex::new(CoordStream {
                spec: spec.clone(),
                processed,
                cursor,
                conns,
            })),
        );
        if processed == 0 {
            Ok(Payload::Opened {
                name: name.to_string(),
            })
        } else {
            Ok(Payload::Attached {
                name: name.to_string(),
                processed,
            })
        }
    }

    fn stream(&self, name: &str) -> Result<Arc<Mutex<CoordStream>>, ErrorReply> {
        lock(&self.streams).get(name).cloned().ok_or_else(|| {
            ErrorReply::generic(format!(
                "no stream named `{name}` (OPEN or RESTORE one first)"
            ))
        })
    }

    /// `INSERT`: route to the cursor's worker; advance the cursor only on
    /// an acknowledged apply, so the round-robin assignment stays exactly
    /// [`ShardedStream`](fdm_core::streaming::sharded::ShardedStream)'s.
    pub fn insert(
        &self,
        name: &str,
        element: &fdm_core::point::Element,
    ) -> Result<Payload, ErrorReply> {
        let stream = self.stream(name)?;
        let mut stream = lock(&stream);
        let widx = stream.cursor;
        let client = self.conn(&mut stream, name, widx)?;
        match client.insert(element) {
            Ok(_worker_seq) => {
                self.workers[widx].up.store(true, Ordering::SeqCst);
                stream.processed += 1;
                stream.cursor = (stream.cursor + 1) % self.workers.len();
                Ok(Payload::Inserted {
                    seq: stream.processed,
                })
            }
            // The worker answered: a typed rejection (dimension mismatch,
            // busy, ...) relays verbatim; the element was not applied, so
            // the cursor stays.
            Err(ClientError::Server(err)) => Err(err),
            Err(e) => {
                // Transport failure: the connection is poisoned (we may
                // have written the line without reading an ack — the
                // worker's WAL decides whether it applied). Drop it, name
                // the worker, leave the cursor for the client's retry.
                stream.conns[widx] = None;
                Err(self.unavailable(&self.workers[widx], &e))
            }
        }
    }

    /// `QUERY`: a consistent cut under the stream mutex — pull every
    /// worker's summary via `MERGE`, restore the frames, and merge through
    /// the registry in worker order (= shard order).
    pub fn query(&self, name: &str, k: Option<usize>) -> Result<Payload, ErrorReply> {
        let stream = self.stream(name)?;
        let mut stream = lock(&stream);
        let configured = stream.spec.k;
        if let Some(k) = k {
            if k != configured {
                return Err(ErrorReply::generic(format!(
                    "QUERY k={k} but stream `{name}` is configured for k={configured}"
                )));
            }
        }
        let mut parts: Vec<Box<dyn DynSummary>> = Vec::with_capacity(self.workers.len());
        let mut total = 0usize;
        for widx in 0..self.workers.len() {
            let client = self.conn(&mut stream, name, widx)?;
            let (_algorithm, worker_processed, bytes) = match client.merge() {
                Ok(reply) => reply,
                Err(ClientError::Server(err)) => return Err(err),
                Err(e) => {
                    stream.conns[widx] = None;
                    return Err(self.unavailable(&self.workers[widx], &e));
                }
            };
            self.workers[widx].up.store(true, Ordering::SeqCst);
            total += worker_processed;
            let snapshot =
                Snapshot::from_bytes(&bytes).map_err(|e| ErrorReply::generic(e.to_string()))?;
            parts
                .push(summary::restore(&snapshot).map_err(|e| ErrorReply::generic(e.to_string()))?);
        }
        if total == 0 {
            return Err(ErrorReply::empty_stream(format!(
                "stream `{name}` has processed no elements; INSERT before QUERY"
            )));
        }
        let spec = stream
            .spec
            .to_summary_spec()
            .map_err(|e| ErrorReply::generic(e.to_string()))?;
        let solution = summary::merge_summaries(&spec, &parts, MERGE_FAN_IN)
            .map_err(|e| ErrorReply::generic(e.to_string()))?;
        Ok(Payload::Query(QueryReply {
            k: solution.len(),
            diversity: solution.diversity,
            ids: solution.ids(),
        }))
    }

    /// `STATS`: the coordinator's routing counters plus per-worker health
    /// — one line, `stream=` first so it classifies as a stats payload.
    pub fn stats(&self, name: &str) -> Result<Payload, ErrorReply> {
        let stream = self.stream(name)?;
        let stream = lock(&stream);
        let mut line = format!(
            "stream={name} coordinator=1 workers={} processed={} cursor={}",
            self.workers.len(),
            stream.processed,
            stream.cursor
        );
        for (widx, worker) in self.workers.iter().enumerate() {
            line.push_str(&format!(
                " worker{widx}={} worker{widx}_up={} worker{widx}_failures={}",
                worker.addr,
                u8::from(worker.up.load(Ordering::SeqCst)),
                worker.failures.load(Ordering::SeqCst)
            ));
        }
        Ok(Payload::Stats(line))
    }

    /// Appends the worker-health metric families to a `/metrics`
    /// exposition.
    pub fn render_metrics(&self, out: &mut String) {
        help_type(
            out,
            "fdm_worker_up",
            "gauge",
            "Whether the last command against each worker succeeded.",
        );
        for worker in &self.workers {
            out.push_str(&format!(
                "fdm_worker_up{{worker=\"{}\"}} {}\n",
                worker.addr,
                u8::from(worker.up.load(Ordering::SeqCst))
            ));
        }
        help_type(
            out,
            "fdm_worker_failures_total",
            "counter",
            "Transport-level command failures per worker.",
        );
        for worker in &self.workers {
            out.push_str(&format!(
                "fdm_worker_failures_total{{worker=\"{}\"}} {}\n",
                worker.addr,
                worker.failures.load(Ordering::SeqCst)
            ));
        }
    }
}
