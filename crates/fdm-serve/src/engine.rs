//! The serving engine: named streams, snapshots, WAL, crash recovery.
//!
//! The engine is the process-wide registry behind every session. Each named
//! stream wraps one streaming summary ([`AnyStream`]) behind its **own**
//! lock, so any number of concurrent sessions (stdin + Unix-socket
//! connections) can feed and query different streams without serializing on
//! each other — the registry lock is held only for map lookups, never
//! across algorithm work or disk I/O.
//!
//! Durability (all optional, enabled by [`ServeConfig::data_dir`]):
//!
//! * every accepted `INSERT` is appended to `<data_dir>/<name>.wal`
//!   *before* it is applied (write-ahead), one sequence-numbered protocol
//!   line per element;
//! * every [`ServeConfig::snapshot_every`] inserts the summary is
//!   checkpointed to `<data_dir>/<name>.snap` (atomically — temp file +
//!   rename) and the WAL truncated;
//! * [`Engine::new`] recovers by restoring each `.snap` and replaying the
//!   WAL through the same parser the live protocol uses. Sequence numbers
//!   make replay exactly-once: a crash between the snapshot write and the
//!   WAL truncation leaves records the snapshot already contains, and
//!   recovery skips them instead of double-applying. A recovered stream is
//!   therefore bit-identical to one that never went down.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use fdm_core::error::{FdmError, Result};
use fdm_core::fairness::FairnessConstraint;
use fdm_core::persist::{Snapshot, SnapshotParams, Snapshottable};
use fdm_core::point::Element;
use fdm_core::solution::Solution;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;
use fdm_core::streaming::unconstrained::{StreamingDiversityMaximization, StreamingDmConfig};

use crate::protocol::{parse_insert, StreamSpec};

/// One hosted streaming summary — any algorithm, sharded or not.
#[derive(Debug)]
pub enum AnyStream {
    /// Algorithm 1, unsharded.
    Unconstrained(StreamingDiversityMaximization),
    /// SFDM1 (m = 2), unsharded.
    Sfdm1(Sfdm1),
    /// SFDM2 (any m), unsharded.
    Sfdm2(Sfdm2),
    /// Algorithm 1 behind K-way sharded ingestion.
    ShardedUnconstrained(ShardedStream<StreamingDiversityMaximization>),
    /// SFDM1 behind K-way sharded ingestion.
    ShardedSfdm1(ShardedStream<Sfdm1>),
    /// SFDM2 behind K-way sharded ingestion.
    ShardedSfdm2(ShardedStream<Sfdm2>),
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            AnyStream::Unconstrained($inner) => $body,
            AnyStream::Sfdm1($inner) => $body,
            AnyStream::Sfdm2($inner) => $body,
            AnyStream::ShardedUnconstrained($inner) => $body,
            AnyStream::ShardedSfdm1($inner) => $body,
            AnyStream::ShardedSfdm2($inner) => $body,
        }
    };
}

impl AnyStream {
    /// Builds an empty stream from an `OPEN` specification.
    pub fn build(spec: &StreamSpec) -> Result<AnyStream> {
        let bounds = fdm_core::dataset::DistanceBounds::new(spec.dmin, spec.dmax)?;
        Ok(match spec.algo.as_str() {
            "unconstrained" => {
                let config = StreamingDmConfig {
                    k: spec.k,
                    epsilon: spec.epsilon,
                    bounds,
                    metric: spec.metric,
                };
                if spec.shards > 1 {
                    AnyStream::ShardedUnconstrained(ShardedStream::new(config, spec.shards)?)
                } else {
                    AnyStream::Unconstrained(StreamingDiversityMaximization::new(config)?)
                }
            }
            "sfdm1" => {
                let config = Sfdm1Config {
                    constraint: FairnessConstraint::new(spec.quotas.clone())?,
                    epsilon: spec.epsilon,
                    bounds,
                    metric: spec.metric,
                };
                if spec.shards > 1 {
                    AnyStream::ShardedSfdm1(ShardedStream::new(config, spec.shards)?)
                } else {
                    AnyStream::Sfdm1(Sfdm1::new(config)?)
                }
            }
            "sfdm2" => {
                let config = Sfdm2Config {
                    constraint: FairnessConstraint::new(spec.quotas.clone())?,
                    epsilon: spec.epsilon,
                    bounds,
                    metric: spec.metric,
                };
                if spec.shards > 1 {
                    AnyStream::ShardedSfdm2(ShardedStream::new(config, spec.shards)?)
                } else {
                    AnyStream::Sfdm2(Sfdm2::new(config)?)
                }
            }
            other => {
                return Err(FdmError::IncompatibleSnapshot {
                    detail: format!("unknown algorithm `{other}`"),
                })
            }
        })
    }

    /// Restores a stream from a snapshot, dispatching on the envelope tag.
    pub fn restore(snapshot: &Snapshot) -> Result<AnyStream> {
        Ok(match snapshot.params.algorithm.as_str() {
            "unconstrained" => {
                AnyStream::Unconstrained(StreamingDiversityMaximization::restore(snapshot)?)
            }
            "sfdm1" => AnyStream::Sfdm1(Sfdm1::restore(snapshot)?),
            "sfdm2" => AnyStream::Sfdm2(Sfdm2::restore(snapshot)?),
            "sharded:unconstrained" => {
                AnyStream::ShardedUnconstrained(ShardedStream::restore(snapshot)?)
            }
            "sharded:sfdm1" => AnyStream::ShardedSfdm1(ShardedStream::restore(snapshot)?),
            "sharded:sfdm2" => AnyStream::ShardedSfdm2(ShardedStream::restore(snapshot)?),
            other => {
                return Err(FdmError::IncompatibleSnapshot {
                    detail: format!("snapshot holds unknown algorithm `{other}`"),
                })
            }
        })
    }

    /// Feeds one element.
    pub fn insert(&mut self, element: &Element) {
        dispatch!(self, inner => inner.insert(element));
    }

    /// Runs post-processing and returns the best feasible solution.
    pub fn finalize(&self) -> Result<Solution> {
        dispatch!(self, inner => inner.finalize())
    }

    /// Elements seen so far.
    pub fn processed(&self) -> usize {
        dispatch!(self, inner => inner.processed())
    }

    /// Distinct retained elements (the paper's space metric).
    pub fn stored_elements(&self) -> usize {
        dispatch!(self, inner => inner.stored_elements())
    }

    /// The envelope parameters describing this stream's configuration.
    pub fn params(&self) -> SnapshotParams {
        dispatch!(self, inner => inner.snapshot_params())
    }

    /// Captures a complete snapshot.
    pub fn snapshot(&self) -> Snapshot {
        dispatch!(self, inner => inner.snapshot())
    }
}

/// Engine-level durability configuration.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Directory for per-stream snapshots + WALs; `None` disables
    /// durability (streams live only in memory).
    pub data_dir: Option<PathBuf>,
    /// Auto-snapshot (and truncate the WAL) every N accepted inserts;
    /// `None` keeps the WAL growing until an explicit `SNAPSHOT`.
    pub snapshot_every: Option<u64>,
}

struct StreamEntry {
    stream: AnyStream,
    /// Inserts applied since the last auto-snapshot (drives
    /// `snapshot_every`).
    inserts_since_snapshot: u64,
    /// Open append handle to the WAL (present iff `data_dir` is set).
    wal: Option<File>,
}

type SharedEntry = Arc<Mutex<StreamEntry>>;

/// The process-wide stream registry (see the module docs).
///
/// Command methods return the `OK` payload or the `ERR` message as plain
/// strings: protocol-level problems (unknown stream, `QUERY` size mismatch)
/// are not [`FdmError`]s, while algorithm/persistence errors pass their
/// typed [`FdmError`] display through.
pub struct Engine {
    streams: Mutex<HashMap<String, SharedEntry>>,
    config: ServeConfig,
}

impl Engine {
    /// Creates an engine, running crash recovery over
    /// [`ServeConfig::data_dir`] if one is configured: every `<name>.snap`
    /// is restored and the matching `<name>.wal` tail replayed
    /// exactly-once.
    pub fn new(config: ServeConfig) -> Result<Engine> {
        let engine = Engine {
            streams: Mutex::new(HashMap::new()),
            config,
        };
        if let Some(dir) = engine.config.data_dir.clone() {
            std::fs::create_dir_all(&dir).map_err(|e| FdmError::SnapshotIo {
                detail: format!("create data dir {}: {e}", dir.display()),
            })?;
            engine.recover(&dir)?;
        }
        Ok(engine)
    }

    /// Names of the hosted streams, sorted.
    pub fn stream_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.streams.lock().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    fn snap_path(&self, name: &str) -> Option<PathBuf> {
        self.config
            .data_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.snap")))
    }

    fn wal_path(&self, name: &str) -> Option<PathBuf> {
        self.config
            .data_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.wal")))
    }

    fn open_wal(path: &Path) -> Result<File> {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| FdmError::SnapshotIo {
                detail: format!("open WAL {}: {e}", path.display()),
            })
    }

    /// Anchors the recovery chain for `entry`: checkpoints the current
    /// state to `<name>.snap` (atomic) and truncates the WAL. Called at
    /// `OPEN` (so a crash before the first auto-snapshot still recovers),
    /// at every auto-snapshot, and after `RESTORE`. No-op without a data
    /// dir.
    fn anchor(&self, name: &str, entry: &mut StreamEntry) -> Result<()> {
        if let (Some(snap_path), Some(wal_path)) = (self.snap_path(name), self.wal_path(name)) {
            entry.stream.snapshot().write_to_file(snap_path)?;
            std::fs::write(&wal_path, b"").map_err(|e| FdmError::SnapshotIo {
                detail: format!("truncate WAL {}: {e}", wal_path.display()),
            })?;
            entry.wal = Some(Self::open_wal(&wal_path)?);
        }
        entry.inserts_since_snapshot = 0;
        Ok(())
    }

    /// Restore-then-replay over every snapshot in the data directory.
    fn recover(&self, dir: &Path) -> Result<()> {
        let entries = std::fs::read_dir(dir).map_err(|e| FdmError::SnapshotIo {
            detail: format!("scan data dir {}: {e}", dir.display()),
        })?;
        for entry in entries {
            let path = entry
                .map_err(|e| FdmError::SnapshotIo {
                    detail: format!("scan data dir {}: {e}", dir.display()),
                })?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some("snap") {
                continue;
            }
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string();
            if name.is_empty() {
                continue;
            }
            let snapshot = Snapshot::read_from_file(&path)?;
            let mut stream = AnyStream::restore(&snapshot)?;
            let wal_path = dir.join(format!("{name}.wal"));
            let mut replayed = 0u64;
            if wal_path.exists() {
                let file = File::open(&wal_path).map_err(|e| FdmError::SnapshotIo {
                    detail: format!("open WAL {}: {e}", wal_path.display()),
                })?;
                for (lineno, line) in BufReader::new(file).lines().enumerate() {
                    let line = line.map_err(|e| FdmError::SnapshotIo {
                        detail: format!("read WAL {}: {e}", wal_path.display()),
                    })?;
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    let corrupt = |detail: String| FdmError::CorruptSnapshot {
                        detail: format!("WAL {} line {}: {detail}", wal_path.display(), lineno + 1),
                    };
                    let fields: Vec<&str> = trimmed.split_whitespace().collect();
                    // Record format: `<seq> INSERT <id> <group> <coords...>`.
                    let seq: u64 = fields[0]
                        .parse()
                        .map_err(|_| corrupt(format!("invalid sequence number `{}`", fields[0])))?;
                    if fields.get(1).map(|f| f.to_ascii_uppercase()) != Some("INSERT".into()) {
                        return Err(corrupt(format!("expected INSERT, found `{trimmed}`")));
                    }
                    let processed = stream.processed() as u64;
                    if seq <= processed {
                        // The snapshot was written after this record but
                        // before the WAL truncation; already applied.
                        continue;
                    }
                    if seq != processed + 1 {
                        return Err(corrupt(format!(
                            "sequence gap: record {seq} after {processed} applied arrivals"
                        )));
                    }
                    let element = parse_insert(&fields[2..]).map_err(&corrupt)?;
                    check_element(&stream.params(), &element).map_err(&corrupt)?;
                    stream.insert(&element);
                    replayed += 1;
                }
            }
            let wal = Some(Self::open_wal(&wal_path)?);
            self.streams.lock().unwrap().insert(
                name,
                Arc::new(Mutex::new(StreamEntry {
                    stream,
                    inserts_since_snapshot: replayed,
                    wal,
                })),
            );
        }
        Ok(())
    }

    /// Looks up a stream's shared entry (registry lock held only for the
    /// map access).
    fn entry(&self, name: &str) -> std::result::Result<SharedEntry, String> {
        self.streams
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| format!("no stream named `{name}` (OPEN or RESTORE one first)"))
    }

    /// `OPEN`: creates the stream, or re-attaches if a stream of that name
    /// already exists *and* the requested parameters match its own.
    ///
    /// Creation holds the registry lock through the durable anchor: if two
    /// sessions race the same `OPEN`, the loser attaches instead of
    /// clobbering the winner's snapshot/WAL chain with empty state.
    pub fn open(&self, name: &str, spec: &StreamSpec) -> std::result::Result<String, String> {
        let requested = spec_params(spec)?;
        let mut streams = self.streams.lock().unwrap();
        if let Some(existing) = streams.get(name) {
            let existing = existing.clone();
            drop(streams);
            let entry = existing.lock().unwrap();
            requested
                .ensure_compatible(&entry.stream.params())
                .map_err(|e| e.to_string())?;
            return Ok(format!(
                "attached {name} processed={}",
                entry.stream.processed()
            ));
        }
        let stream = AnyStream::build(spec).map_err(|e| e.to_string())?;
        let mut entry = StreamEntry {
            stream,
            inserts_since_snapshot: 0,
            wal: None,
        };
        self.anchor(name, &mut entry).map_err(|e| e.to_string())?;
        streams.insert(name.to_string(), Arc::new(Mutex::new(entry)));
        Ok(format!("opened {name}"))
    }

    /// `INSERT`: write-ahead (sequence-numbered), apply, maybe
    /// auto-snapshot. Only this stream's lock is held — other tenants keep
    /// running during the disk I/O.
    pub fn insert(
        &self,
        name: &str,
        element: &Element,
        raw_line: &str,
    ) -> std::result::Result<String, String> {
        let shared = self.entry(name)?;
        let mut entry = shared.lock().unwrap();
        check_element(&entry.stream.params(), element)?;
        let seq = entry.stream.processed() as u64 + 1;
        if let Some(wal) = entry.wal.as_mut() {
            writeln!(wal, "{seq} {}", raw_line.trim())
                .and_then(|()| wal.flush())
                .map_err(|e| format!("append WAL for {name}: {e}"))?;
        }
        entry.stream.insert(element);
        entry.inserts_since_snapshot += 1;
        if let Some(every) = self.config.snapshot_every {
            if every > 0 && entry.inserts_since_snapshot >= every {
                self.anchor(name, &mut entry).map_err(|e| e.to_string())?;
            }
        }
        Ok(format!("inserted processed={}", entry.stream.processed()))
    }

    /// `QUERY`: post-processing of the named stream. `k`, when given, must
    /// match the configured solution size.
    pub fn query(&self, name: &str, k: Option<usize>) -> std::result::Result<String, String> {
        let shared = self.entry(name)?;
        let entry = shared.lock().unwrap();
        let configured = entry.stream.params().k;
        if let Some(k) = k {
            if k != configured {
                return Err(format!(
                    "QUERY k={k} but stream `{name}` is configured for k={configured}"
                ));
            }
        }
        let solution = entry.stream.finalize().map_err(|e| e.to_string())?;
        let ids: Vec<String> = solution.ids().iter().map(usize::to_string).collect();
        Ok(format!(
            "k={} diversity={} ids={}",
            solution.len(),
            solution.diversity,
            ids.join(",")
        ))
    }

    /// `SNAPSHOT`: checkpoint the named stream to an explicit path.
    pub fn snapshot(&self, name: &str, path: &str) -> std::result::Result<String, String> {
        let shared = self.entry(name)?;
        let entry = shared.lock().unwrap();
        entry
            .stream
            .snapshot()
            .write_to_file(path)
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "snapshot {path} processed={}",
            entry.stream.processed()
        ))
    }

    /// `RESTORE`: load a snapshot into stream `name`, replacing (after a
    /// compatibility check) any live state of that name.
    pub fn restore(&self, name: &str, path: &str) -> std::result::Result<String, String> {
        let snapshot = Snapshot::read_from_file(path).map_err(|e| e.to_string())?;
        let stream = AnyStream::restore(&snapshot).map_err(|e| e.to_string())?;
        let processed = stream.processed();
        if let Ok(existing) = self.entry(name) {
            // Replace in place so every session bound to this stream sees
            // the restored state.
            let mut entry = existing.lock().unwrap();
            snapshot
                .params
                .ensure_compatible(&entry.stream.params())
                .map_err(|e| e.to_string())?;
            entry.stream = stream;
            // The restored state supersedes the WAL chain: re-anchor it.
            self.anchor(name, &mut entry).map_err(|e| e.to_string())?;
        } else {
            let mut entry = StreamEntry {
                stream,
                inserts_since_snapshot: 0,
                wal: None,
            };
            self.anchor(name, &mut entry).map_err(|e| e.to_string())?;
            self.streams
                .lock()
                .unwrap()
                .insert(name.to_string(), Arc::new(Mutex::new(entry)));
        }
        Ok(format!("restored {name} processed={processed}"))
    }

    /// `STATS` for one stream.
    pub fn stats(&self, name: &str) -> std::result::Result<String, String> {
        let shared = self.entry(name)?;
        let entry = shared.lock().unwrap();
        let params = entry.stream.params();
        Ok(format!(
            "stream={name} algorithm={} processed={} stored={} dim={} k={} shards={}",
            params.algorithm,
            entry.stream.processed(),
            entry.stream.stored_elements(),
            params.dim,
            params.k,
            params.shards
        ))
    }
}

/// The envelope parameters an `OPEN` specification implies, without
/// building the stream (constructing the full guess ladders just to
/// compare parameters on re-attach would be wasted work). Must mirror
/// [`AnyStream::build`]: same tags, `dim = 0` (no element seen), shard
/// counts of 1 and 0 both build the unsharded variant.
fn spec_params(spec: &StreamSpec) -> std::result::Result<SnapshotParams, String> {
    if !matches!(spec.algo.as_str(), "unconstrained" | "sfdm1" | "sfdm2") {
        return Err(format!("unknown algorithm `{}`", spec.algo));
    }
    let bounds =
        fdm_core::dataset::DistanceBounds::new(spec.dmin, spec.dmax).map_err(|e| e.to_string())?;
    let shards = spec.shards.max(1);
    let algorithm = if shards > 1 {
        format!("sharded:{}", spec.algo)
    } else {
        spec.algo.clone()
    };
    Ok(SnapshotParams {
        algorithm,
        dim: 0,
        epsilon: spec.epsilon,
        metric: spec.metric,
        bounds,
        quotas: spec.quotas.clone(),
        k: spec.k,
        shards,
    })
}

/// Validates an arriving element against a stream's live parameters:
/// dimension (once known) and group label (for the fair algorithms).
fn check_element(params: &SnapshotParams, element: &Element) -> std::result::Result<(), String> {
    if params.dim != 0 && element.dim() != params.dim {
        return Err(FdmError::DimensionMismatch {
            expected: params.dim,
            found: element.dim(),
        }
        .to_string());
    }
    if element.dim() == 0 {
        return Err(FdmError::DimensionMismatch {
            expected: params.dim.max(1),
            found: 0,
        }
        .to_string());
    }
    if !params.quotas.is_empty() && element.group >= params.quotas.len() {
        return Err(FdmError::InvalidGroup {
            group: element.group,
            num_groups: params.quotas.len(),
        }
        .to_string());
    }
    Ok(())
}
