//! The serving engine: named streams, snapshots, WAL, crash recovery.
//!
//! The engine is the process-wide registry behind every session. Streams
//! are built and restored exclusively through `fdm-core`'s
//! [`fdm_core::streaming::summary`] registry — the engine holds
//! [`Box<dyn DynSummary>`] and never knows which algorithm (or shard
//! wrapping) it is hosting, so adding an algorithm to the family adds
//! nothing here.
//!
//! ## Concurrency
//!
//! Three lock tiers, always taken in this order:
//!
//! 1. the **registry** (`RwLock<HashMap>`) — held for map lookups (read)
//!    and for stream *creation* (write). Lookups never hold it across
//!    algorithm work or disk I/O; creation (`OPEN`/`RESTORE` of a new
//!    name) deliberately does hold the write lock through the first
//!    durable anchor, so two sessions racing the same name can never
//!    register two entries sharing one WAL — a rare, bounded stall on a
//!    rare operation, traded for chain integrity;
//! 2. each stream's **durable state** (`Mutex`: WAL handle, checkpoint
//!    chain, persistence counters) — the per-stream *write* serialization
//!    point: every `INSERT` holds it across append→apply→checkpoint, so
//!    sequence numbers and the log stay in lockstep;
//! 3. each stream's **summary** (`RwLock<Box<dyn DynSummary>>`) — writers
//!    hold it only for the in-memory apply; `QUERY`/`STATS` and snapshot
//!    *capture* take read locks.
//!
//! Consequences the stress suite pins: sessions on different streams never
//! contend; concurrent `QUERY`s on one stream run in parallel; and
//! snapshot **encode + disk write happen off the summary lock** (capture
//! clones the state under a read lock, the expensive part runs after it is
//! released), so an explicit `SNAPSHOT` of a large stream never stalls
//! that stream's readers — or its writers.
//!
//! ## Durability
//!
//! All optional, enabled by [`ServeConfig::data_dir`]:
//!
//! * every accepted `INSERT` is appended to `<data_dir>/<name>.wal`
//!   *before* it is applied (write-ahead), one sequence-numbered protocol
//!   line per element, each carrying a CRC32 of its own body (so a torn
//!   append can never replay as silently-wrong state);
//! * every [`ServeConfig::snapshot_every`] inserts the summary is
//!   checkpointed (atomically — temp file + rename) and the WAL
//!   truncated. The checkpoint is an **incremental delta**
//!   (`<name>.delta.<i>`, a [`SnapshotDelta`]) built from the summary's
//!   own dirty set: the stream reports an O(changed) [`fdm_core::persist::StatePatch`] since
//!   the last capture, lowered against a retained [`CaptureMark`] digest
//!   tree — the full state is neither cloned nor re-walked, and the bytes
//!   are identical to what a full-tree diff would have produced;
//! * once the chain holds [`ServeConfig::full_every`] deltas a
//!   **background compactor** collapses `full + delta*` into a fresh
//!   `<name>.snap` off the insert path (the decode/encode runs off every
//!   lock; only the final rename and cleanup briefly take the stream's
//!   durable mutex, guarded by a chain epoch). Full snapshots are written
//!   inline only where a delta cannot exist: stream creation, recovery,
//!   drain, `RESTORE`, a summary rewrite the dirty set cannot express
//!   (e.g. a sliding-window rotation), `full_every = 0`, and the backstop
//!   when the chain outgrows `COMPACTION_BACKSTOP`× the cap;
//! * [`Engine::new`] recovers by restoring each `.snap`, chaining every
//!   `<name>.delta.*` found on disk in index order (each link's base
//!   checksum is verified; a stale link left by a crash inside an anchor
//!   or compaction cleanup window is skipped, later links may chain off
//!   the collapsed state), and replaying the WAL through the same parser
//!   the live protocol uses. Sequence numbers make replay exactly-once: a
//!   crash between a checkpoint write and the WAL truncation leaves
//!   records the checkpoint already contains, and recovery skips them
//!   instead of double-applying. A recovered stream is therefore
//!   bit-identical to one that never went down.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use fdm_core::error::{FdmError, Result};
use fdm_core::persist::{CaptureMark, Snapshot, SnapshotDelta, SnapshotFormat, SnapshotParams};
use fdm_core::point::Element;
use fdm_core::streaming::summary::{self, DynSummary};
use serde::Value;

use crate::coordinator::Coordinator;
use crate::metrics::{self, Metrics, StreamMetrics};
use crate::protocol::{parse_insert, ErrorReply, Payload, QueryReply, Request, StreamSpec};

/// Acquires a shared read lock, recovering from poison: a panic in one
/// tenant's session (contained at the session boundary) must degrade to
/// one failed request, not brick every other tenant on a poisoned lock.
/// Readers cannot poison an `RwLock`, so the inner value a recovered
/// guard exposes is whatever the panicking *writer* left — the write
/// paths below keep that window to a single `DynSummary::insert` call.
pub(crate) fn read_lock<T: ?Sized>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Poison-recovering exclusive acquisition; see [`read_lock`].
pub(crate) fn write_lock<T: ?Sized>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Poison-recovering mutex acquisition; see [`read_lock`].
pub(crate) fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders a caught panic payload (the `&str`/`String` forms `panic!`
/// produces) for a typed `ERR` reply.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Engine-level durability configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory for per-stream snapshots + WALs; `None` disables
    /// durability (streams live only in memory).
    pub data_dir: Option<PathBuf>,
    /// Auto-checkpoint (and truncate the WAL) every N accepted inserts;
    /// `None` keeps the WAL growing until an explicit `SNAPSHOT`.
    pub snapshot_every: Option<u64>,
    /// Encoding for auto-snapshots, deltas… and `SNAPSHOT` commands
    /// without an explicit `format=`. Recovery reads both formats
    /// regardless.
    pub snapshot_format: SnapshotFormat,
    /// Chain length cap for incremental checkpoints: after this many
    /// deltas the next auto-checkpoint collapses the chain into a fresh
    /// full snapshot. `0` disables deltas (every checkpoint is full).
    pub full_every: u64,
    /// Backpressure bound: at most this many `INSERT`s may be in flight
    /// or queued per stream; further ones get `ERR busy` instead of
    /// piling another blocked thread onto the stream's write lock.
    pub max_pending_inserts: usize,
    /// Per-stream insert rate limit (token bucket, one-second burst);
    /// `None` disables. Over-limit `INSERT`s get `ERR busy`.
    pub rate_limit: Option<f64>,
    /// Coordinator mode: `ADDR:PORT` of each worker `fdm-serve` node.
    /// Non-empty turns this engine into a stateless router — `INSERT`s
    /// round-robin across the workers, `QUERY` merges their summaries
    /// pulled via `MERGE` (see [`crate::coordinator`]). Empty (the
    /// default) is the ordinary single-node engine.
    pub workers: Vec<String>,
    /// Coordinator flush bound: at most this many elements of one
    /// `INSERTB` are fanned out per concurrent flush round. Larger client
    /// batches are split into successive rounds, so a single giant batch
    /// cannot pin every per-worker connection for its whole duration.
    pub coord_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            data_dir: None,
            snapshot_every: None,
            snapshot_format: SnapshotFormat::Binary,
            full_every: 8,
            max_pending_inserts: 256,
            rate_limit: None,
            workers: Vec::new(),
            coord_batch: 256,
        }
    }
}

/// Per-stream token-bucket insert limiter: refills at `per_sec`, holds at
/// most one second of burst. Guarded by its own tiny mutex — held only for
/// the arithmetic, never across I/O.
struct TokenBucket {
    tokens: f64,
    capacity: f64,
    per_sec: f64,
    last_refill: Instant,
}

impl TokenBucket {
    fn new(per_sec: f64) -> TokenBucket {
        let capacity = per_sec.max(1.0);
        TokenBucket {
            tokens: capacity,
            capacity,
            per_sec,
            last_refill: Instant::now(),
        }
    }

    fn try_take(&mut self) -> bool {
        self.try_take_n(1)
    }

    /// Batch admission: charges one token per element. A batch larger
    /// than the one-second burst capacity is clamped to it — it drains
    /// the bucket completely instead of being unpassable forever.
    fn try_take_n(&mut self, n: usize) -> bool {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * self.per_sec).min(self.capacity);
        let cost = (n as f64).min(self.capacity);
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }
}

/// Per-stream persistence health, reported over the wire by `STATS` so an
/// operator can see checkpointing working (or not) without shelling into
/// the data directory.
#[derive(Debug, Clone, Copy, Default)]
struct PersistCounters {
    /// WAL records appended since this process opened the stream.
    wal_records: u64,
    /// Full snapshot files written (auto-checkpoints, anchors, and
    /// explicit `SNAPSHOT` exports).
    full_snapshots: u64,
    /// Incremental delta files written.
    delta_snapshots: u64,
    /// Total encoded bytes of the dirty-set deltas written — the actual
    /// checkpoint I/O volume, which should track the change rate, not the
    /// stream size.
    dirty_bytes: u64,
    /// Background chain collapses committed by the compactor.
    compactions: u64,
    /// Encoded size of the most recent checkpoint/export, in bytes.
    last_snapshot_bytes: u64,
    /// Encoding of the most recent checkpoint/export.
    last_snapshot_format: Option<&'static str>,
}

/// WAL + checkpoint-chain state of one stream, guarded by its own
/// [`Mutex`] — the summary `RwLock` is **not** held while this is used for
/// disk I/O.
struct DurableState {
    /// Open append handle to the WAL (present iff `data_dir` is set).
    wal: Option<File>,
    /// Digest tree of the last captured state (present iff `data_dir` is
    /// set): the [`CaptureMark`] dirty-set deltas are lowered against. It
    /// retains per-node lengths and CRCs — O(structure), not O(data) —
    /// replacing the full `Snapshot` clone the old full-tree diff needed.
    mark: Option<CaptureMark>,
    /// The summary's own capture cursor paired with `mark`: the opaque
    /// watermark value [`DynSummary::state_patch_since`] diffs from.
    cursor: Option<Value>,
    /// Index the next `<name>.delta.<i>` file will use. Monotonic within
    /// a chain epoch (the compactor removes collapsed prefixes without
    /// renumbering the survivors); reset to 1 by every inline anchor.
    next_delta_index: u64,
    /// Bumped by every inline full anchor. A compaction job commits only
    /// if the epoch still matches the one it was enqueued under — an
    /// anchor in between means the job's collapsed snapshot describes a
    /// superseded chain and must be discarded.
    chain_epoch: u64,
    /// Live (uncollapsed) deltas on disk (drives `full_every` and the
    /// inline backstop).
    deltas_since_full: u64,
    /// Set while a compaction job for this stream is queued or running;
    /// prevents the checkpoint path from flooding the compactor queue.
    compaction_pending: bool,
    /// Inserts applied since the last auto-checkpoint (drives
    /// `snapshot_every`).
    inserts_since_snapshot: u64,
    counters: PersistCounters,
}

impl DurableState {
    fn new() -> DurableState {
        DurableState {
            wal: None,
            mark: None,
            cursor: None,
            next_delta_index: 1,
            chain_epoch: 0,
            deltas_since_full: 0,
            compaction_pending: false,
            inserts_since_snapshot: 0,
            counters: PersistCounters::default(),
        }
    }
}

/// Wire-export anchor for the incremental `MERGE since=` path: the
/// [`CaptureMark`] + capture cursor of the state this stream last shipped
/// to a merge consumer, plus the `(epoch, crc)` pair that consumer must
/// echo back to receive a delta instead of a full frame.
///
/// This is **soft state, fully independent of the checkpoint chain**: the
/// summary's capture cursors are stateless positional markers, so the
/// export path diffing from `cursor` never perturbs the durable path
/// diffing from its own. Guarded by its own mutex — taken *before* the
/// summary read lock, never together with the durable mutex. One export
/// anchor serves one consumer: two coordinators polling the same worker
/// ping-pong each other back to full frames (correct, just uncached).
struct ExportState {
    /// Digest tree of the last exported state; `None` until the first
    /// full frame is served (or after an unlowerable rewrite invalidated
    /// it).
    mark: Option<CaptureMark>,
    /// The summary capture cursor paired with `mark`.
    cursor: Value,
    /// Bumped on every full frame served. An `(epoch, crc)` echo matches
    /// only if both halves do, so a consumer anchored on a superseded
    /// full frame can never be fed a delta built for a newer one.
    epoch: u64,
    /// CRC of the last exported state — the other half of the anchor.
    crc: u32,
}

impl ExportState {
    fn new() -> ExportState {
        ExportState {
            mark: None,
            cursor: Value::Null,
            epoch: 0,
            crc: 0,
        }
    }
}

/// One hosted stream: the summary behind a readers–writer lock, with the
/// durability state split off behind its own mutex (see the module docs
/// for the locking protocol).
struct StreamEntry {
    summary: RwLock<Box<dyn DynSummary>>,
    durable: Mutex<DurableState>,
    /// Soft anchor for incremental `MERGE since=` exports.
    export: Mutex<ExportState>,
    /// Latency histograms, reachable from the hot path without a map
    /// lookup; rendered by [`Engine::render_metrics`].
    metrics: Arc<StreamMetrics>,
    /// `INSERT`s currently in flight or waiting on `durable` — the
    /// bounded pending queue behind `ERR busy`.
    pending_inserts: AtomicUsize,
    /// Optional per-stream insert rate limiter.
    limiter: Option<Mutex<TokenBucket>>,
}

impl StreamEntry {
    fn new(summary: Box<dyn DynSummary>, rate_limit: Option<f64>) -> StreamEntry {
        StreamEntry {
            summary: RwLock::new(summary),
            durable: Mutex::new(DurableState::new()),
            export: Mutex::new(ExportState::new()),
            metrics: StreamMetrics::new(),
            pending_inserts: AtomicUsize::new(0),
            limiter: rate_limit.map(|per_sec| Mutex::new(TokenBucket::new(per_sec))),
        }
    }

    /// The envelope parameters of the hosted summary (short read lock).
    fn params(&self) -> SnapshotParams {
        read_lock(&self.summary).params()
    }
}

/// Decrements a pending-insert counter on every exit path, panics
/// included.
struct PendingGuard<'a>(&'a AtomicUsize);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Deterministic crash injection for the crash-recovery test matrix: when
/// `FDM_SERVE_CRASH_POINT` names this point (`<point>` or `<point>:<n>`
/// to arm the n-th hit, e.g. the second full snapshot), the process
/// aborts here — the same no-cleanup death as SIGKILL, but placeable
/// between any two persistence steps. Inert (one env read) in production.
fn crash_requested(point: &str) -> bool {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    static HITS: AtomicU64 = AtomicU64::new(0);
    // The environment cannot change after startup; cache the parsed
    // directive so the production path (every INSERT passes a crash
    // point) is one static read, not an env lookup.
    static ARMED: OnceLock<Option<(String, u64)>> = OnceLock::new();
    let armed = ARMED.get_or_init(|| {
        let value = std::env::var("FDM_SERVE_CRASH_POINT").ok()?;
        let (name, nth) = match value.split_once(':') {
            Some((name, n)) => (name.to_string(), n.parse::<u64>().unwrap_or(1)),
            None => (value, 1),
        };
        Some((name, nth))
    });
    let Some((name, nth)) = armed else {
        return false;
    };
    if name != point {
        return false;
    }
    // Only one point is ever armed per process, so one global counter
    // tracks its hits.
    HITS.fetch_add(1, Ordering::SeqCst) + 1 == *nth
}

fn crash_point(point: &str) {
    if crash_requested(point) {
        eprintln!("fdm-serve: crash point `{point}` hit; aborting");
        std::process::abort();
    }
}

/// Deterministic **panic** injection for the containment suite: when
/// `FDM_SERVE_PANIC_POINT` names this point, the calling thread panics —
/// exactly the failure the catch-unwind boundaries and poison-recovering
/// locks must degrade to one `ERR` reply. Directive grammar:
///
/// * `<point>` — every hit panics;
/// * `<point>:<n>` (numeric) — only the n-th hit panics;
/// * `<point>:<detail>` — only hits whose `detail` (e.g. the stream
///   name) matches panic.
///
/// Inert (one cached env read) in production.
pub(crate) fn panic_point(point: &str, detail: &str) {
    use std::sync::atomic::AtomicU64;
    use std::sync::OnceLock;
    static HITS: AtomicU64 = AtomicU64::new(0);
    static ARMED: OnceLock<Option<(String, Option<String>)>> = OnceLock::new();
    let armed = ARMED.get_or_init(|| {
        let value = std::env::var("FDM_SERVE_PANIC_POINT").ok()?;
        match value.split_once(':') {
            Some((name, filter)) => Some((name.to_string(), Some(filter.to_string()))),
            None => Some((value, None)),
        }
    });
    let Some((name, filter)) = armed else {
        return;
    };
    if name != point {
        return;
    }
    let fire = match filter.as_deref() {
        None => true,
        Some(f) => match f.parse::<u64>() {
            Ok(nth) => HITS.fetch_add(1, Ordering::SeqCst) + 1 == nth,
            Err(_) => f == detail,
        },
    };
    if fire {
        panic!("deliberate test panic at `{point}` ({detail})");
    }
}

/// Simulates dying halfway through writing `bytes` to the temp file
/// behind `path` — the torn-write case the atomic rename protocol exists
/// to survive. The real file is never renamed into place.
fn crash_mid_write(path: &Path, bytes: &[u8]) {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}.crash", std::process::id()));
    let _ = std::fs::write(tmp, &bytes[..bytes.len() / 2]);
    eprintln!(
        "fdm-serve: crash point mid-write of {}; aborting",
        path.display()
    );
    std::process::abort();
}

/// Test-only slowdown of the snapshot *disk-write* phase
/// (`FDM_SERVE_SNAPSHOT_PAUSE_MS`): the concurrency suite uses it to prove
/// the write happens off the summary lock — inserts and queries must
/// complete while a paused snapshot write is in flight. Inert (one cached
/// env read) in production.
fn snapshot_write_pause() {
    use std::sync::OnceLock;
    static PAUSE: OnceLock<Option<u64>> = OnceLock::new();
    let pause = PAUSE.get_or_init(|| {
        std::env::var("FDM_SERVE_SNAPSHOT_PAUSE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
    });
    if let Some(ms) = pause {
        std::thread::sleep(std::time::Duration::from_millis(*ms));
    }
}

/// First line of every WAL written by this build. Its presence switches
/// replay into strict mode (every applied record must carry a valid
/// per-record checksum); WALs from builds predating the marker replay in
/// legacy mode. The `0` sequence number means even a foreign replayer
/// that ignores the marker would dedupe it as "already applied".
const WAL_HEADER: &str = "0 WALV2";

/// Appends the per-record integrity suffix: ` #<crc32 of the record body
/// in hex>`. A torn append that leaves a prefix which still *parses* as a
/// valid INSERT (e.g. a truncated final coordinate `12.75` → `12.7`)
/// would otherwise replay silently wrong state — the checksum makes every
/// truncation detectable, like the section CRCs do for snapshots.
fn wal_record(body: &str) -> String {
    format!(
        "{body} #{:08x}\n",
        fdm_core::persist::codec::crc32(body.as_bytes())
    )
}

/// Splits a WAL record into its body and stored checksum, when the
/// trailing `#`-field is present.
fn split_wal_crc(record: &str) -> Option<(&str, u32)> {
    let (body, crc_field) = record.rsplit_once(" #")?;
    let stored = u32::from_str_radix(crc_field, 16).ok()?;
    Some((body, stored))
}

/// One stream's WAL replay pass: strict/legacy mode detection, per-record
/// checksum validation, exactly-once sequencing, and torn-tail tolerance.
struct WalReplay<'a> {
    wal_path: &'a Path,
    stream: &'a mut dyn DynSummary,
    /// Set when the first record is the [`WAL_HEADER`]: every applied
    /// record must then carry a valid checksum. Legacy logs (pre-header
    /// builds) replay with parse-level validation only.
    strict: bool,
    seen_first: bool,
    replayed: u64,
}

impl<'a> WalReplay<'a> {
    fn new(wal_path: &'a Path, stream: &'a mut dyn DynSummary) -> Self {
        WalReplay {
            wal_path,
            stream,
            strict: false,
            seen_first: false,
            replayed: 0,
        }
    }

    /// Replays one non-empty WAL line. A record that fails validation is
    /// fatal mid-log (a hole we cannot replay across) but tolerated as
    /// the **final** record: the WAL append is a single (non-atomic)
    /// write, so a crash mid-append legitimately leaves one torn,
    /// never-acknowledged line at the tail. The post-recovery re-anchor
    /// rewrites the WAL, erasing the torn bytes.
    fn record(&mut self, lineno: usize, line: &str, is_last: bool) -> Result<()> {
        let trimmed = line.trim();
        let first = !self.seen_first;
        self.seen_first = true;
        if trimmed == WAL_HEADER {
            // Anywhere but the front it is a leftover from hand-spliced
            // logs; harmless either way (sequence 0 is always deduped).
            self.strict = self.strict || first;
            return Ok(());
        }
        let corrupt = |detail: String| FdmError::CorruptSnapshot {
            detail: format!(
                "WAL {} line {}: {detail}",
                self.wal_path.display(),
                lineno + 1
            ),
        };
        let torn = |detail: String| -> Result<()> {
            if is_last {
                eprintln!(
                    "fdm-serve: WAL {} ends in a torn record ({detail}); \
                     dropping it (crash mid-append)",
                    self.wal_path.display()
                );
                Ok(())
            } else {
                Err(corrupt(detail))
            }
        };
        // Per-record checksum, when present (always written by this
        // build; legacy logs lack it).
        let (body, crc) = match split_wal_crc(trimmed) {
            Some((body, stored)) => {
                let actual = fdm_core::persist::codec::crc32(body.as_bytes());
                if stored != actual {
                    return torn(format!(
                        "record checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
                    ));
                }
                (body, true)
            }
            None => (trimmed, false),
        };
        let fields: Vec<&str> = body.split_whitespace().collect();
        // Record format: `<seq> INSERT <id> <group> <coords...> [#crc]`.
        let Ok(seq) = fields[0].parse::<u64>() else {
            return torn(format!("invalid sequence number `{}`", fields[0]));
        };
        if fields.get(1).map(|f| f.to_ascii_uppercase()) != Some("INSERT".into()) {
            return torn(format!("expected INSERT, found `{body}`"));
        }
        let processed = self.stream.processed() as u64;
        if seq <= processed {
            // The snapshot was written after this record but before the
            // WAL truncation; already applied.
            return Ok(());
        }
        if seq != processed + 1 {
            // A gap is missing history, not a torn append — always
            // fatal, even at the tail.
            return Err(corrupt(format!(
                "sequence gap: record {seq} after {processed} applied arrivals"
            )));
        }
        if self.strict && !crc {
            // In a checksummed log, an applied record without its
            // checksum can only be a truncation that happened to stop at
            // a field boundary.
            return torn("record is missing its checksum".to_string());
        }
        let element = match parse_insert(&fields[2..]) {
            Ok(element) => element,
            Err(e) => return torn(e),
        };
        if let Err(e) = check_element(&self.stream.params(), &element) {
            return torn(e);
        }
        self.stream.insert(&element);
        self.replayed += 1;
        Ok(())
    }
}

/// The process-wide stream registry (see the module docs).
///
/// Command methods return the typed success [`Payload`] or the typed
/// [`ErrorReply`]: protocol-level problems (unknown stream, `QUERY` size
/// mismatch) are not [`FdmError`]s, while algorithm/persistence errors
/// pass their typed [`FdmError`] display through as generic errors. The
/// session layer renders both through
/// [`Response::render`](crate::protocol::Response::render) — the only
/// place an `OK `/`ERR ` line is formatted.
pub struct Engine {
    streams: RwLock<HashMap<String, Arc<StreamEntry>>>,
    config: ServeConfig,
    metrics: Arc<Metrics>,
    /// Set by [`Engine::begin_drain`]: listeners refuse new connections
    /// while in-flight sessions finish.
    draining: AtomicBool,
    /// Present iff [`ServeConfig::workers`] is non-empty: every
    /// stream-touching command is delegated to the worker fleet instead of
    /// the local registry.
    coordinator: Option<Coordinator>,
    /// Work queue of the background chain compactor (present iff
    /// `data_dir` is set). Dropping it is the shutdown signal.
    compactor_tx: Option<mpsc::Sender<CompactJob>>,
    /// Joined (after the queue drains) when the engine drops, so a
    /// successor engine over the same data dir can never race a ghost
    /// compaction commit.
    compactor_thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Engine {
    fn drop(&mut self) {
        drop(self.compactor_tx.take());
        if let Some(handle) = self.compactor_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Chain-length backstop: if the compactor cannot keep up (queue starved,
/// thread dead), the checkpoint path collapses inline once the chain
/// reaches `full_every × COMPACTION_BACKSTOP` deltas — a bounded, rare
/// stall instead of an unbounded chain.
const COMPACTION_BACKSTOP: u64 = 4;

/// One queued chain collapse. The job carries its stream entry (so the
/// compactor never touches the registry lock) and the chain epoch it was
/// enqueued under.
struct CompactJob {
    name: String,
    entry: Arc<StreamEntry>,
    epoch: u64,
}

/// Files of one stream's on-disk delta chain, sorted by index. Listing
/// the directory (instead of probing contiguous indices from 1) is what
/// makes gapped chains — a failed removal, a compacted prefix — visible
/// at all.
fn list_deltas(dir: &Path, name: &str) -> Vec<(u64, PathBuf)> {
    let prefix = format!("{name}.delta.");
    let mut deltas = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return deltas;
    };
    for entry in entries.flatten() {
        let file_name = entry.file_name();
        let Some(file_name) = file_name.to_str() else {
            continue;
        };
        let Some(index) = file_name.strip_prefix(&prefix) else {
            continue;
        };
        // Non-numeric suffixes are temp-file droppings, not chain links.
        let Ok(index) = index.parse::<u64>() else {
            continue;
        };
        deltas.push((index, entry.path()));
    }
    deltas.sort_unstable_by_key(|&(index, _)| index);
    deltas
}

/// Whether a stream name is safe to splice into `<data-dir>/<name>.*`
/// file paths. The protocol parser is stricter ([A-Za-z0-9_-]+); this is
/// the engine-level gate that holds even for callers that bypass the
/// parser — without it `OPEN ../../x` walks out of the data directory.
fn ensure_safe_stream_name(name: &str) -> std::result::Result<(), ErrorReply> {
    let unsafe_name = name.is_empty()
        || name.starts_with('.')
        || name.contains('/')
        || name.contains('\\')
        || name.contains("..");
    if unsafe_name {
        return Err(ErrorReply::generic(format!(
            "invalid stream name `{name}`: must be non-empty and free of \
             `/`, `\\`, `..`, and a leading `.`"
        )));
    }
    Ok(())
}

/// Shorthand for the pervasive "typed core error → generic protocol
/// error" conversion.
fn generic(e: impl std::fmt::Display) -> ErrorReply {
    ErrorReply::generic(e.to_string())
}

impl Engine {
    /// Creates an engine, running crash recovery over
    /// [`ServeConfig::data_dir`] if one is configured: every `<name>.snap`
    /// is restored and the matching `<name>.wal` tail replayed
    /// exactly-once. With [`ServeConfig::workers`] set the engine instead
    /// becomes a stateless coordinator over those nodes.
    pub fn new(config: ServeConfig) -> Result<Engine> {
        let coordinator = if config.workers.is_empty() {
            None
        } else {
            Some(Coordinator::new(config.workers.clone()))
        };
        let (compactor_tx, compactor_thread) = match config.data_dir.clone() {
            Some(dir) => {
                let (tx, rx) = mpsc::channel::<CompactJob>();
                let format = config.snapshot_format;
                let handle = std::thread::Builder::new()
                    .name("fdm-compactor".into())
                    .spawn(move || run_compactor(rx, dir, format))
                    .map_err(|e| FdmError::SnapshotIo {
                        detail: format!("spawn compactor thread: {e}"),
                    })?;
                (Some(tx), Some(handle))
            }
            None => (None, None),
        };
        let engine = Engine {
            streams: RwLock::new(HashMap::new()),
            config,
            metrics: Metrics::new(),
            draining: AtomicBool::new(false),
            coordinator,
            compactor_tx,
            compactor_thread,
        };
        if let Some(dir) = engine.config.data_dir.clone() {
            std::fs::create_dir_all(&dir).map_err(|e| FdmError::SnapshotIo {
                detail: format!("create data dir {}: {e}", dir.display()),
            })?;
            engine.recover(&dir)?;
        }
        Ok(engine)
    }

    /// Names of the hosted streams, sorted.
    pub fn stream_names(&self) -> Vec<String> {
        let mut names: Vec<String> = read_lock(&self.streams).keys().cloned().collect();
        names.sort();
        names
    }

    /// The process-wide metrics registry (connection gauges, contained
    /// panics, busy rejections); per-stream series render with
    /// [`Engine::render_metrics`].
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Flags the engine as draining: listener loops refuse new
    /// connections, already-accepted sessions run to completion.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`Engine::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Graceful-drain finalization: checkpoint every stream with a full
    /// snapshot (anchoring its chain and truncating its WAL, so recovery
    /// after a drain replays **zero** records) and fsync the WAL handle.
    /// Returns the number of streams checkpointed. Serializes with any
    /// still-running `INSERT` on each stream's durable mutex, so an
    /// in-flight insert is either fully checkpointed or fully in the WAL.
    pub fn drain(&self) -> Result<usize> {
        let entries: Vec<(String, Arc<StreamEntry>)> = read_lock(&self.streams)
            .iter()
            .map(|(name, entry)| (name.clone(), entry.clone()))
            .collect();
        for (name, entry) in &entries {
            let mut durable = lock(&entry.durable);
            self.anchor(name, entry, &mut durable)?;
            if let Some(wal) = durable.wal.as_ref() {
                wal.sync_all().map_err(|e| FdmError::SnapshotIo {
                    detail: format!("fsync WAL for {name} during drain: {e}"),
                })?;
            }
        }
        Ok(entries.len())
    }

    fn snap_path(&self, name: &str) -> Option<PathBuf> {
        self.config
            .data_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.snap")))
    }

    fn wal_path(&self, name: &str) -> Option<PathBuf> {
        self.config
            .data_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.wal")))
    }

    fn delta_path(&self, name: &str, index: u64) -> Option<PathBuf> {
        self.config
            .data_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.delta.{index}")))
    }

    /// Removes every `<name>.delta.*` of a superseded chain, found by
    /// directory listing — a gapped chain (compacted prefix, an earlier
    /// failed removal) must not strand the survivors, so one failure is
    /// logged and the sweep continues.
    fn remove_deltas(&self, name: &str) {
        let Some(dir) = self.config.data_dir.as_ref() else {
            return;
        };
        for (_, path) in list_deltas(dir, name) {
            if let Err(e) = std::fs::remove_file(&path) {
                eprintln!(
                    "fdm-serve: could not remove stale delta {}: {e} (left for the next sweep)",
                    path.display()
                );
            }
        }
    }

    fn open_wal(path: &Path) -> Result<File> {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| FdmError::SnapshotIo {
                detail: format!("open WAL {}: {e}", path.display()),
            })
    }

    /// Truncates the WAL to just its header and reopens the append
    /// handle — the step every committed checkpoint ends with.
    fn truncate_wal(wal_path: &Path, durable: &mut DurableState) -> Result<()> {
        std::fs::write(wal_path, format!("{WAL_HEADER}\n")).map_err(|e| FdmError::SnapshotIo {
            detail: format!("truncate WAL {}: {e}", wal_path.display()),
        })?;
        durable.wal = Some(Self::open_wal(wal_path)?);
        Ok(())
    }

    /// Anchors the recovery chain with a **full** snapshot: captures the
    /// state, writes `<name>.snap` (atomic), removes any superseded delta
    /// files, truncates the WAL, and rebuilds the dirty-set capture mark.
    /// Called at `OPEN` (so a crash before the first auto-checkpoint
    /// still recovers), after recovery, after `RESTORE`, at drain, when a
    /// summary reports a patch the mark cannot lower, with
    /// `full_every = 0`, and as the chain-length backstop. No-op without
    /// a data dir.
    ///
    /// Capture is **chunked**: each frame section's source (params, then
    /// the state tree) is cloned under its own short summary read lock
    /// with no lock held in between, and the encode + disk write run off
    /// the summary lock entirely. The durable mutex — held by every
    /// caller — fences writers, so the per-section reads still observe
    /// one consistent state.
    ///
    /// Ordering is load-bearing: the full snapshot lands *before* the old
    /// deltas are removed and the WAL truncated, so a crash at any point
    /// in between leaves either the old complete chain + full WAL, or the
    /// new snapshot + stale-but-detectable deltas + dedupable WAL records
    /// — never a gap.
    fn anchor(&self, name: &str, entry: &StreamEntry, durable: &mut DurableState) -> Result<()> {
        if let (Some(snap_path), Some(wal_path)) = (self.snap_path(name), self.wal_path(name)) {
            let params = read_lock(&entry.summary).params();
            crash_point("mid-chunked-capture");
            snapshot_write_pause();
            let (state, cursor) = {
                let summary = read_lock(&entry.summary);
                (summary.snapshot_state_value(), summary.capture_cursor())
            };
            let snapshot = Snapshot {
                params: params.clone(),
                state,
            };
            let bytes = snapshot.to_bytes(self.config.snapshot_format);
            if crash_requested("mid-full-snapshot") {
                crash_mid_write(&snap_path, &bytes);
            }
            snapshot_write_pause();
            fdm_core::persist::write_bytes_atomic(&snap_path, &bytes)?;
            durable.counters.full_snapshots += 1;
            durable.counters.last_snapshot_bytes = bytes.len() as u64;
            durable.counters.last_snapshot_format = Some(self.config.snapshot_format.name());
            crash_point("between-full-and-delta-cleanup");
            self.remove_deltas(name);
            crash_point("between-full-and-wal-truncate");
            Self::truncate_wal(&wal_path, durable)?;
            durable.mark = Some(CaptureMark::of(params, &snapshot.state));
            durable.cursor = Some(cursor);
            durable.chain_epoch += 1;
            durable.next_delta_index = 1;
        }
        durable.deltas_since_full = 0;
        durable.compaction_pending = false;
        durable.inserts_since_snapshot = 0;
        Ok(())
    }

    /// The auto-checkpoint: an **O(changed)** dirty-set delta. One short
    /// summary read lock collects the summary's own [`fdm_core::persist::StatePatch`] since
    /// the last capture cursor; lowering it against the retained
    /// [`CaptureMark`] yields `<name>.delta.<i>` bytes identical to a
    /// full-tree diff without walking (or cloning) the full state. Falls
    /// back to a full [`Engine::anchor`] when the summary rewrote
    /// structure the mark cannot track (sliding-window rotation, lane
    /// reshuffle, bit-pack width growth) or deltas are disabled.
    ///
    /// Chain-length management happens here too: at
    /// [`ServeConfig::full_every`] live deltas a collapse is handed to
    /// the background compactor (no stall); only past the
    /// [`COMPACTION_BACKSTOP`] bound does the checkpoint collapse inline.
    fn checkpoint(
        &self,
        name: &str,
        entry: &Arc<StreamEntry>,
        durable: &mut DurableState,
    ) -> Result<()> {
        if self.config.data_dir.is_none() {
            durable.inserts_since_snapshot = 0;
            return Ok(());
        }
        let full_every = self.config.full_every;
        if full_every == 0 || durable.mark.is_none() {
            return self.anchor(name, entry, durable);
        }
        let (params, patch, next_cursor) = {
            let summary = read_lock(&entry.summary);
            let cursor = durable.cursor.take().unwrap_or(Value::Null);
            (
                summary.params(),
                summary.state_patch_since(&cursor),
                summary.capture_cursor(),
            )
        };
        let delta = patch.and_then(|patch| {
            let mark = durable.mark.as_mut().expect("checked above");
            SnapshotDelta::from_patch(mark, &params, patch)
        });
        let Some(delta) = delta else {
            // Unlowerable patch: the mark may be partially advanced and
            // is invalid — the anchor below rebuilds it from scratch.
            return self.anchor(name, entry, durable);
        };
        let index = durable.next_delta_index;
        let (delta_path, wal_path) = match (self.delta_path(name, index), self.wal_path(name)) {
            (Some(d), Some(w)) => (d, w),
            _ => unreachable!("data_dir checked above"),
        };
        let bytes = delta.to_bytes();
        if crash_requested("mid-delta-write") {
            crash_mid_write(&delta_path, &bytes);
        }
        snapshot_write_pause();
        fdm_core::persist::write_bytes_atomic(&delta_path, &bytes)?;
        durable.counters.delta_snapshots += 1;
        durable.counters.dirty_bytes += bytes.len() as u64;
        durable.counters.last_snapshot_bytes = bytes.len() as u64;
        durable.counters.last_snapshot_format = Some("delta");
        crash_point("between-delta-and-wal-truncate");
        Self::truncate_wal(&wal_path, durable)?;
        durable.cursor = Some(next_cursor);
        durable.next_delta_index += 1;
        durable.deltas_since_full += 1;
        durable.inserts_since_snapshot = 0;
        if durable.deltas_since_full >= full_every.saturating_mul(COMPACTION_BACKSTOP) {
            // The compactor is starved or dead; collapse inline rather
            // than let the chain (and recovery time) grow without bound.
            return self.anchor(name, entry, durable);
        }
        if durable.deltas_since_full >= full_every && !durable.compaction_pending {
            if let Some(tx) = &self.compactor_tx {
                let job = CompactJob {
                    name: name.to_string(),
                    entry: entry.clone(),
                    epoch: durable.chain_epoch,
                };
                if tx.send(job).is_ok() {
                    durable.compaction_pending = true;
                }
            }
        }
        Ok(())
    }

    /// Restore-then-replay over every snapshot in the data directory:
    /// `<name>.snap`, then the delta chain `<name>.delta.1..`, then the
    /// WAL tail.
    fn recover(&self, dir: &Path) -> Result<()> {
        let entries = std::fs::read_dir(dir).map_err(|e| FdmError::SnapshotIo {
            detail: format!("scan data dir {}: {e}", dir.display()),
        })?;
        for entry in entries {
            let path = entry
                .map_err(|e| FdmError::SnapshotIo {
                    detail: format!("scan data dir {}: {e}", dir.display()),
                })?
                .path();
            let file_name = path
                .file_name()
                .and_then(|f| f.to_str())
                .unwrap_or_default();
            if file_name.contains(".tmp.") {
                // A temp file a crashed writer never renamed into place;
                // its contents were never acknowledged. Sweep it.
                let _ = std::fs::remove_file(&path);
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("snap") {
                continue;
            }
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string();
            if name.is_empty() {
                continue;
            }
            let mut snapshot = Snapshot::read_from_file(&path)?;
            // Chain the deltas — discovered by *listing* the directory,
            // not by probing consecutive indices, because a crashed
            // compactor may have removed only a prefix of the files it
            // consumed and the survivors need not start at 1. Each link's
            // base checksum is verified: a mismatch marks a *stale* delta
            // (left behind by a crash between a full-snapshot write and
            // the delta cleanup, or a partially cleaned-up compaction)
            // and is skipped — later links may still chain off the
            // collapsed snapshot. A delta file that fails its own section
            // checksums is real corruption and refuses recovery.
            for (index, delta_path) in list_deltas(dir, &name) {
                let delta = SnapshotDelta::read_from_file(&delta_path)?;
                match delta.apply_to(&snapshot) {
                    Ok(next) => snapshot = next,
                    Err(FdmError::IncompatibleSnapshot { .. }) => {
                        eprintln!(
                            "fdm-serve: skipping stale delta {} (index {index}): \
                             base checksum does not match the chain",
                            delta_path.display()
                        );
                    }
                    Err(other) => return Err(other),
                }
            }
            let mut stream = summary::restore(&snapshot)?;
            let wal_path = dir.join(format!("{name}.wal"));
            let mut replayed = 0u64;
            if wal_path.exists() {
                let file = File::open(&wal_path).map_err(|e| FdmError::SnapshotIo {
                    detail: format!("open WAL {}: {e}", wal_path.display()),
                })?;
                // Stream the log with one record of lookahead (so the
                // final record is known without buffering the whole file —
                // a WAL without `snapshot_every` can grow without bound).
                let mut replay = WalReplay::new(&wal_path, stream.as_mut());
                let mut pending: Option<(usize, String)> = None;
                for (lineno, line) in BufReader::new(file).lines().enumerate() {
                    let line = line.map_err(|e| FdmError::SnapshotIo {
                        detail: format!("read WAL {}: {e}", wal_path.display()),
                    })?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    if let Some((prev_no, prev)) = pending.replace((lineno, line)) {
                        replay.record(prev_no, &prev, false)?;
                    }
                }
                if let Some((lineno, line)) = pending {
                    replay.record(lineno, &line, true)?;
                }
                replayed = replay.replayed;
            }
            // Re-anchor the chain on a fresh full snapshot: the replayed
            // WAL tail is now part of the state, and the next delta must
            // diff against *this* state, not the pre-crash chain.
            let entry = StreamEntry::new(stream, self.config.rate_limit);
            {
                let mut durable = lock(&entry.durable);
                durable.wal = Some(Self::open_wal(&wal_path)?);
                durable.counters.wal_records = replayed;
                self.anchor(&name, &entry, &mut durable)?;
            }
            write_lock(&self.streams).insert(name, Arc::new(entry));
        }
        Ok(())
    }

    /// Looks up a stream's shared entry (registry lock held only for the
    /// map access).
    fn entry(&self, name: &str) -> std::result::Result<Arc<StreamEntry>, ErrorReply> {
        read_lock(&self.streams).get(name).cloned().ok_or_else(|| {
            generic(format!(
                "no stream named `{name}` (OPEN or RESTORE one first)"
            ))
        })
    }

    /// `OPEN`: creates the stream, or re-attaches if a stream of that name
    /// already exists *and* the requested parameters match its own.
    ///
    /// Creation holds the registry write lock through the durable anchor:
    /// if two sessions race the same `OPEN`, the loser attaches instead of
    /// clobbering the winner's snapshot/WAL chain with empty state.
    pub fn open(&self, name: &str, spec: &StreamSpec) -> std::result::Result<Payload, ErrorReply> {
        ensure_safe_stream_name(name)?;
        if let Some(coordinator) = &self.coordinator {
            return coordinator.open(name, spec);
        }
        let summary_spec = spec.to_summary_spec().map_err(generic)?;
        let requested = summary::spec_params(&summary_spec).map_err(generic)?;
        let mut streams = write_lock(&self.streams);
        if let Some(existing) = streams.get(name) {
            let existing = existing.clone();
            drop(streams);
            requested
                .ensure_compatible(&existing.params())
                .map_err(generic)?;
            return Ok(Payload::Attached {
                name: name.to_string(),
                processed: read_lock(&existing.summary).processed(),
            });
        }
        let stream = summary::build(&summary_spec).map_err(generic)?;
        let entry = StreamEntry::new(stream, self.config.rate_limit);
        {
            let mut durable = lock(&entry.durable);
            self.anchor(name, &entry, &mut durable).map_err(generic)?;
        }
        streams.insert(name.to_string(), Arc::new(entry));
        Ok(Payload::Opened {
            name: name.to_string(),
        })
    }

    /// `INSERT`: write-ahead (sequence-numbered), apply, maybe
    /// auto-checkpoint (a delta while the chain is short, a fresh full
    /// snapshot every [`ServeConfig::full_every`] deltas). Holds only this
    /// stream's durable mutex across the operation — other tenants keep
    /// running during the disk I/O — and the summary write lock only for
    /// the in-memory apply, so concurrent `QUERY`s overlap with everything
    /// but that instant.
    ///
    /// Protection happens *before* the durable mutex is touched:
    ///
    /// * the token-bucket rate limiter (when configured) rejects
    ///   over-limit inserts with `ERR busy` instead of queueing them;
    /// * the bounded pending counter rejects inserts that would pile more
    ///   than [`ServeConfig::max_pending_inserts`] blocked threads onto
    ///   this stream's write path.
    ///
    /// A panic inside the summary apply (the only window where in-memory
    /// state can diverge from the log) is **contained**: the WAL is rolled
    /// back to its pre-append length so log and state stay in lockstep,
    /// and the caller gets a typed `ERR` instead of a dead connection.
    pub fn insert(
        &self,
        name: &str,
        element: &Element,
        raw_line: &str,
    ) -> std::result::Result<Payload, ErrorReply> {
        if let Some(coordinator) = &self.coordinator {
            return coordinator.insert(name, element);
        }
        let start = Instant::now();
        let entry = self.entry(name)?;
        if let Some(limiter) = entry.limiter.as_ref() {
            if !lock(limiter).try_take() {
                self.metrics.busy_rate_limited();
                return Err(ErrorReply::busy(format!(
                    "stream `{name}` is over its insert rate limit; retry later"
                )));
            }
        }
        let queued = entry.pending_inserts.fetch_add(1, Ordering::SeqCst);
        let _pending = PendingGuard(&entry.pending_inserts);
        if queued >= self.config.max_pending_inserts {
            self.metrics.busy_queue_full();
            return Err(ErrorReply::busy(format!(
                "stream `{name}` has {queued} pending inserts (max {}); retry later",
                self.config.max_pending_inserts
            )));
        }
        let mut durable = lock(&entry.durable);
        // `durable` serializes writers, so the sequence number read here
        // cannot race another insert's apply.
        let seq = {
            let summary = read_lock(&entry.summary);
            check_element(&summary.params(), element).map_err(ErrorReply::generic)?;
            summary.processed() as u64 + 1
        };
        let mut wal_len_before = 0u64;
        if let Some(wal) = durable.wal.as_mut() {
            wal_len_before = wal.metadata().map(|m| m.len()).unwrap_or(0);
            // One pre-formatted buffer, one write syscall: a crash can
            // still tear the record (recovery tolerates a torn tail), but
            // the window is a single partial write, not the several
            // writes `writeln!` would issue.
            let record = wal_record(&format!("{seq} {}", raw_line.trim()));
            wal.write_all(record.as_bytes())
                .and_then(|()| wal.flush())
                .map_err(|e| generic(format!("append WAL for {name}: {e}")))?;
            durable.counters.wal_records += 1;
        }
        crash_point("between-wal-append-and-apply");
        let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut summary = write_lock(&entry.summary);
            panic_point("insert-apply", name);
            summary.insert(element);
        }));
        if let Err(payload) = applied {
            // The apply never happened: un-append the WAL record so the
            // log matches the in-memory state — otherwise the next insert
            // would reuse this sequence number and replay after a crash
            // would apply the wrong record.
            if let Some(wal) = durable.wal.as_mut() {
                let _ = wal.set_len(wal_len_before);
                durable.counters.wal_records = durable.counters.wal_records.saturating_sub(1);
            }
            self.metrics.panic_contained();
            return Err(generic(format!(
                "internal error (panic contained) applying INSERT to `{name}`: {}",
                panic_message(&*payload)
            )));
        }
        durable.inserts_since_snapshot += 1;
        if let Some(every) = self.config.snapshot_every {
            if every > 0 && durable.inserts_since_snapshot >= every {
                self.checkpoint(name, &entry, &mut durable)
                    .map_err(generic)?;
            }
        }
        entry.metrics.insert_latency.observe(start.elapsed());
        Ok(Payload::Inserted { seq: seq as usize })
    }

    /// `INSERTB`: the batched insert — one WAL append covering every
    /// element (each record sequence-numbered and CRC-suffixed exactly as
    /// the per-element path writes it, so replay cannot tell the two
    /// apart), then **one atomic apply** via [`DynSummary::insert_batch`]
    /// under a single write-lock acquisition. Atomicity is the contract
    /// the coordinator's mid-batch failure semantics lean on: a worker
    /// either applied its whole sub-batch or none of it, so the set of
    /// elements it holds is always a prefix of its sub-stream.
    ///
    /// Admission control charges the batch size: the token bucket takes
    /// `n` tokens (clamped to its burst capacity), and the reply/latency
    /// accounting treats the batch as one request. A contained apply
    /// panic rolls the WAL back across all `n` records.
    pub fn insert_batch(
        &self,
        name: &str,
        elements: &[Element],
    ) -> std::result::Result<Payload, ErrorReply> {
        if let Some(coordinator) = &self.coordinator {
            return coordinator.insert_batch(name, elements, self.config.coord_batch);
        }
        if elements.is_empty() {
            return Err(generic("INSERTB requires at least one element"));
        }
        let start = Instant::now();
        let entry = self.entry(name)?;
        if let Some(limiter) = entry.limiter.as_ref() {
            if !lock(limiter).try_take_n(elements.len()) {
                self.metrics.busy_rate_limited();
                return Err(ErrorReply::busy(format!(
                    "stream `{name}` is over its insert rate limit; retry later"
                )));
            }
        }
        let queued = entry.pending_inserts.fetch_add(1, Ordering::SeqCst);
        let _pending = PendingGuard(&entry.pending_inserts);
        if queued >= self.config.max_pending_inserts {
            self.metrics.busy_queue_full();
            return Err(ErrorReply::busy(format!(
                "stream `{name}` has {queued} pending inserts (max {}); retry later",
                self.config.max_pending_inserts
            )));
        }
        let mut durable = lock(&entry.durable);
        let base_seq = {
            let summary = read_lock(&entry.summary);
            let params = summary.params();
            for element in elements {
                check_element(&params, element).map_err(ErrorReply::generic)?;
            }
            summary.processed() as u64 + 1
        };
        crash_point("before-batch-wal-append");
        let mut wal_len_before = 0u64;
        if let Some(wal) = durable.wal.as_mut() {
            wal_len_before = wal.metadata().map(|m| m.len()).unwrap_or(0);
            // All n records in one pre-formatted buffer, one write
            // syscall: the torn-write window is a single partial write,
            // and recovery's per-record CRCs make any truncation point
            // detectable. Each body is re-rendered through the protocol
            // (not sliced from the raw line) so it is byte-identical to
            // what a per-element INSERT would have logged.
            let mut records = String::new();
            for (i, element) in elements.iter().enumerate() {
                let line = Request::Insert(element.clone()).render();
                records.push_str(&wal_record(&format!("{} {line}", base_seq + i as u64)));
            }
            wal.write_all(records.as_bytes())
                .and_then(|()| wal.flush())
                .map_err(|e| generic(format!("append WAL for {name}: {e}")))?;
            durable.counters.wal_records += elements.len() as u64;
        }
        crash_point("between-wal-append-and-apply");
        let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut summary = write_lock(&entry.summary);
            panic_point("insert-apply", name);
            summary.insert_batch(elements);
        }));
        if let Err(payload) = applied {
            // None of the batch was applied (`insert_batch` is one call
            // under one lock): un-append all n records.
            if let Some(wal) = durable.wal.as_mut() {
                let _ = wal.set_len(wal_len_before);
                durable.counters.wal_records = durable
                    .counters
                    .wal_records
                    .saturating_sub(elements.len() as u64);
            }
            self.metrics.panic_contained();
            return Err(generic(format!(
                "internal error (panic contained) applying INSERTB to `{name}`: {}",
                panic_message(&*payload)
            )));
        }
        durable.inserts_since_snapshot += elements.len() as u64;
        if let Some(every) = self.config.snapshot_every {
            if every > 0 && durable.inserts_since_snapshot >= every {
                self.checkpoint(name, &entry, &mut durable)
                    .map_err(generic)?;
            }
        }
        entry.metrics.insert_latency.observe(start.elapsed());
        Ok(Payload::InsertedBatch {
            seq: (base_seq - 1) as usize + elements.len(),
            count: elements.len(),
        })
    }

    /// `QUERY`: post-processing of the named stream. `k`, when given, must
    /// match the configured solution size; a stream with zero processed
    /// arrivals answers a typed `empty stream` error instead of the
    /// (opaque) infeasibility the finalize pass would report. Runs under
    /// the summary *read* lock: concurrent queries (and snapshot captures)
    /// overlap freely.
    pub fn query(&self, name: &str, k: Option<usize>) -> std::result::Result<Payload, ErrorReply> {
        if let Some(coordinator) = &self.coordinator {
            return coordinator.query(name, k);
        }
        let start = Instant::now();
        let entry = self.entry(name)?;
        let summary = read_lock(&entry.summary);
        let configured = summary.params().k;
        if let Some(k) = k {
            if k != configured {
                return Err(generic(format!(
                    "QUERY k={k} but stream `{name}` is configured for k={configured}"
                )));
            }
        }
        if summary.processed() == 0 {
            return Err(ErrorReply::empty_stream(format!(
                "stream `{name}` has processed no elements; INSERT before QUERY"
            )));
        }
        // Read-path panics (contained at the session boundary) cannot
        // poison the RwLock — readers don't poison — so no engine-level
        // catch is needed here; the hook pins that claim.
        panic_point("query-finalize", name);
        let solution = summary.finalize().map_err(generic)?;
        drop(summary);
        entry.metrics.query_latency.observe(start.elapsed());
        Ok(Payload::Query(QueryReply {
            k: solution.len(),
            diversity: solution.diversity,
            ids: solution.ids(),
        }))
    }

    /// `MERGE`: export the named stream's summary as an inline v2 binary
    /// snapshot frame — the wire contract the coordinator's `QUERY`
    /// fan-out is built on. Capture (snapshot + counters) happens under a
    /// short summary read lock; the binary encode runs off-lock.
    pub fn merge(&self, name: &str) -> std::result::Result<Payload, ErrorReply> {
        if self.coordinator.is_some() {
            return Err(generic(
                "MERGE is not supported in coordinator mode (the workers own the summaries)",
            ));
        }
        let entry = self.entry(name)?;
        let (snapshot, processed, algorithm) = {
            let summary = read_lock(&entry.summary);
            (
                summary.snapshot(),
                summary.processed(),
                summary.params().algorithm,
            )
        };
        let bytes = snapshot.to_bytes(SnapshotFormat::Binary);
        Ok(Payload::Merge {
            algorithm,
            processed,
            bytes,
        })
    }

    /// `MERGE since=<epoch>:<crc>`: the incremental export. When the
    /// caller's anchor matches this stream's `ExportState`, the reply is
    /// an `FDMDELT2` delta frame built from the summary's own dirty set —
    /// O(changed) bytes instead of O(state) — and the export anchor
    /// advances (same epoch, new crc). On any mismatch, a missing mark, or
    /// an unlowerable structural rewrite, the reply is a **full** v2
    /// snapshot frame under a fresh epoch, which re-anchors the caller.
    ///
    /// Lock order: the export mutex, then short summary read locks; the
    /// durable mutex is never touched, so exports overlap inserts' disk
    /// I/O and never perturb the checkpoint chain (capture cursors are
    /// stateless, each path diffs from its own).
    pub fn merge_since(
        &self,
        name: &str,
        since: (u64, u32),
    ) -> std::result::Result<Payload, ErrorReply> {
        if self.coordinator.is_some() {
            return Err(generic(
                "MERGE is not supported in coordinator mode (the workers own the summaries)",
            ));
        }
        let entry = self.entry(name)?;
        let mut export = lock(&entry.export);
        if since == (export.epoch, export.crc) && export.mark.is_some() {
            let (params, patch, next_cursor, processed) = {
                let summary = read_lock(&entry.summary);
                (
                    summary.params(),
                    summary.state_patch_since(&export.cursor),
                    summary.capture_cursor(),
                    summary.processed(),
                )
            };
            let algorithm = params.algorithm.clone();
            let delta = patch.and_then(|patch| {
                let mark = export.mark.as_mut().expect("checked above");
                SnapshotDelta::from_patch(mark, &params, patch)
            });
            match delta {
                Some(delta) => {
                    let bytes = delta.to_bytes();
                    export.cursor = next_cursor;
                    export.crc = export.mark.as_ref().expect("advanced above").state_crc();
                    return Ok(Payload::MergeSince {
                        algorithm,
                        processed,
                        delta: true,
                        epoch: export.epoch,
                        crc: export.crc,
                        bytes,
                    });
                }
                None => {
                    // The mark may be partially advanced and is invalid;
                    // the full path below rebuilds it from scratch.
                    export.mark = None;
                }
            }
        }
        let (snapshot, cursor, processed) = {
            let summary = read_lock(&entry.summary);
            (
                summary.snapshot(),
                summary.capture_cursor(),
                summary.processed(),
            )
        };
        let algorithm = snapshot.params.algorithm.clone();
        let mark = CaptureMark::of(snapshot.params.clone(), &snapshot.state);
        export.crc = mark.state_crc();
        export.mark = Some(mark);
        export.cursor = cursor;
        export.epoch += 1;
        let bytes = snapshot.to_bytes(SnapshotFormat::Binary);
        Ok(Payload::MergeSince {
            algorithm,
            processed,
            delta: false,
            epoch: export.epoch,
            crc: export.crc,
            bytes,
        })
    }

    /// `SNAPSHOT`: checkpoint the named stream to an explicit path, in the
    /// requested format (default: the server's configured format).
    ///
    /// Capture holds the summary read lock just long enough to clone the
    /// state tree; encoding and the disk write run with **no** lock on the
    /// summary and without the durable mutex, so neither readers nor
    /// writers of this stream stall behind the I/O (pinned by the
    /// concurrency suite via `FDM_SERVE_SNAPSHOT_PAUSE_MS`).
    pub fn snapshot(
        &self,
        name: &str,
        path: &str,
        format: Option<SnapshotFormat>,
    ) -> std::result::Result<Payload, ErrorReply> {
        if self.coordinator.is_some() {
            return Err(generic(
                "SNAPSHOT is not supported in coordinator mode (snapshot the workers)",
            ));
        }
        let format = format.unwrap_or(self.config.snapshot_format);
        let entry = self.entry(name)?;
        let (snapshot, processed) = {
            let summary = read_lock(&entry.summary);
            (summary.snapshot(), summary.processed())
        };
        // Off-lock from here on.
        let bytes = snapshot.to_bytes(format);
        snapshot_write_pause();
        fdm_core::persist::write_bytes_atomic(Path::new(path), &bytes).map_err(generic)?;
        let mut durable = lock(&entry.durable);
        durable.counters.full_snapshots += 1;
        durable.counters.last_snapshot_bytes = bytes.len() as u64;
        durable.counters.last_snapshot_format = Some(format.name());
        Ok(Payload::SnapshotWritten {
            path: path.to_string(),
            format,
            processed,
        })
    }

    /// `RESTORE`: load a snapshot into stream `name`, replacing (after a
    /// compatibility check) any live state of that name.
    ///
    /// Like [`Engine::open`], *creation* of a not-yet-registered name
    /// holds the registry write lock through the durable anchor: a RESTORE
    /// racing an OPEN (or another RESTORE) of the same name must not
    /// register a second entry for it — two entries would append to one
    /// WAL through independent handles with independent sequence
    /// counters, corrupting the recovery chain.
    pub fn restore(&self, name: &str, path: &str) -> std::result::Result<Payload, ErrorReply> {
        ensure_safe_stream_name(name)?;
        if self.coordinator.is_some() {
            return Err(generic(
                "RESTORE is not supported in coordinator mode (restore on a worker)",
            ));
        }
        let snapshot = Snapshot::read_from_file(path).map_err(generic)?;
        let stream = summary::restore(&snapshot).map_err(generic)?;
        let processed = stream.processed();
        // Decode happened above, off every lock; now decide create vs
        // replace under the registry write lock so the check cannot go
        // stale against a concurrent creation.
        let mut streams = write_lock(&self.streams);
        if let Some(existing) = streams.get(name).cloned() {
            drop(streams);
            // Replace in place so every session bound to this stream sees
            // the restored state. Writers are fenced by the durable mutex,
            // readers by the summary write lock below.
            let mut durable = lock(&existing.durable);
            snapshot
                .params
                .ensure_compatible(&existing.params())
                .map_err(generic)?;
            *write_lock(&existing.summary) = stream;
            // The restored state supersedes the WAL chain: re-anchor it.
            self.anchor(name, &existing, &mut durable)
                .map_err(generic)?;
        } else {
            let entry = StreamEntry::new(stream, self.config.rate_limit);
            {
                let mut durable = lock(&entry.durable);
                self.anchor(name, &entry, &mut durable).map_err(generic)?;
            }
            streams.insert(name.to_string(), Arc::new(entry));
        }
        Ok(Payload::Restored {
            name: name.to_string(),
            processed,
        })
    }

    /// `STATS` for one stream: stream geometry plus the per-stream
    /// persistence counters (WAL records appended, checkpoints written,
    /// size + format of the last checkpoint) so operators can see
    /// checkpoint health over the wire.
    pub fn stats(&self, name: &str) -> std::result::Result<Payload, ErrorReply> {
        if let Some(coordinator) = &self.coordinator {
            return coordinator.stats(name);
        }
        let entry = self.entry(name)?;
        let (params, processed, stored, f32_hits, f32_fallbacks) = {
            let summary = read_lock(&entry.summary);
            let (hits, fallbacks) = summary.prefilter_counters();
            (
                summary.params(),
                summary.processed(),
                summary.stored_elements(),
                hits,
                fallbacks,
            )
        };
        let counters = lock(&entry.durable).counters;
        let window = if params.window != 0 {
            format!(" window={}", params.window)
        } else {
            String::new()
        };
        Ok(Payload::Stats(format!(
            "stream={name} algorithm={} processed={processed} stored={stored} dim={} k={} \
             shards={}{window} wal_records={} snapshots={} deltas={} dirty_bytes={} \
             compactions={} last_snapshot_bytes={} last_snapshot_format={} kernel={} \
             f32_hits={f32_hits} f32_fallbacks={f32_fallbacks}",
            params.algorithm,
            params.dim,
            params.k,
            params.shards,
            counters.wal_records,
            counters.full_snapshots,
            counters.delta_snapshots,
            counters.dirty_bytes,
            counters.compactions,
            counters.last_snapshot_bytes,
            counters.last_snapshot_format.unwrap_or("none"),
            fdm_core::kernel::active_kernel(),
        )))
    }

    /// Renders the full Prometheus text exposition for `/metrics`: the
    /// per-stream series (geometry, persistence gauges, pre-filter
    /// counters, latency histograms) followed by the process-wide ones.
    ///
    /// Same lock discipline as `STATS`: per stream, a short summary read
    /// lock to copy the cheap numbers, dropped *before* the durable mutex
    /// is taken (never both at once, so a scrape cannot deadlock against
    /// an insert holding durable and waiting on the summary) — and the
    /// rest is atomic loads. A scrape never blocks inserts for longer
    /// than those copies.
    pub fn render_metrics(&self) -> String {
        struct StreamSample {
            name: String,
            processed: usize,
            stored: usize,
            f32_hits: u64,
            f32_fallbacks: u64,
            counters: PersistCounters,
            metrics: Arc<StreamMetrics>,
        }
        let entries: Vec<(String, Arc<StreamEntry>)> = {
            let streams = read_lock(&self.streams);
            let mut entries: Vec<_> = streams
                .iter()
                .map(|(name, entry)| (name.clone(), entry.clone()))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            entries
        };
        let samples: Vec<StreamSample> = entries
            .into_iter()
            .map(|(name, entry)| {
                let (processed, stored, f32_hits, f32_fallbacks) = {
                    let summary = read_lock(&entry.summary);
                    let (hits, fallbacks) = summary.prefilter_counters();
                    (
                        summary.processed(),
                        summary.stored_elements(),
                        hits,
                        fallbacks,
                    )
                };
                let counters = lock(&entry.durable).counters;
                StreamSample {
                    name,
                    processed,
                    stored,
                    f32_hits,
                    f32_fallbacks,
                    counters,
                    metrics: entry.metrics.clone(),
                }
            })
            .collect();
        let mut out = String::new();
        metrics::help_type(&mut out, "fdm_streams", "gauge", "Hosted streams.");
        out.push_str(&format!("fdm_streams {}\n", samples.len()));
        metrics::help_type(
            &mut out,
            "fdm_stream_processed_total",
            "counter",
            "Elements accepted into each stream since it was opened.",
        );
        for s in &samples {
            out.push_str(&format!(
                "fdm_stream_processed_total{{stream=\"{}\"}} {}\n",
                s.name, s.processed
            ));
        }
        metrics::help_type(
            &mut out,
            "fdm_stream_stored",
            "gauge",
            "Elements currently held in each stream's summary.",
        );
        for s in &samples {
            out.push_str(&format!(
                "fdm_stream_stored{{stream=\"{}\"}} {}\n",
                s.name, s.stored
            ));
        }
        metrics::help_type(
            &mut out,
            "fdm_wal_records_total",
            "counter",
            "WAL records appended per stream since this process opened it.",
        );
        for s in &samples {
            out.push_str(&format!(
                "fdm_wal_records_total{{stream=\"{}\"}} {}\n",
                s.name, s.counters.wal_records
            ));
        }
        metrics::help_type(
            &mut out,
            "fdm_snapshots_total",
            "counter",
            "Checkpoints written per stream, by kind.",
        );
        for s in &samples {
            out.push_str(&format!(
                "fdm_snapshots_total{{stream=\"{}\",kind=\"full\"}} {}\n",
                s.name, s.counters.full_snapshots
            ));
            out.push_str(&format!(
                "fdm_snapshots_total{{stream=\"{}\",kind=\"delta\"}} {}\n",
                s.name, s.counters.delta_snapshots
            ));
        }
        metrics::help_type(
            &mut out,
            "fdm_delta_dirty_bytes_total",
            "counter",
            "Encoded bytes of dirty-set delta checkpoints written per stream.",
        );
        for s in &samples {
            out.push_str(&format!(
                "fdm_delta_dirty_bytes_total{{stream=\"{}\"}} {}\n",
                s.name, s.counters.dirty_bytes
            ));
        }
        metrics::help_type(
            &mut out,
            "fdm_compactions_total",
            "counter",
            "Background chain collapses committed per stream.",
        );
        for s in &samples {
            out.push_str(&format!(
                "fdm_compactions_total{{stream=\"{}\"}} {}\n",
                s.name, s.counters.compactions
            ));
        }
        metrics::help_type(
            &mut out,
            "fdm_last_snapshot_bytes",
            "gauge",
            "Encoded size of each stream's most recent checkpoint/export.",
        );
        for s in &samples {
            out.push_str(&format!(
                "fdm_last_snapshot_bytes{{stream=\"{}\"}} {}\n",
                s.name, s.counters.last_snapshot_bytes
            ));
        }
        metrics::help_type(
            &mut out,
            "fdm_prefilter_hits_total",
            "counter",
            "Distance evaluations settled by the f32 pre-filter's certified band.",
        );
        for s in &samples {
            out.push_str(&format!(
                "fdm_prefilter_hits_total{{stream=\"{}\"}} {}\n",
                s.name, s.f32_hits
            ));
        }
        metrics::help_type(
            &mut out,
            "fdm_prefilter_fallbacks_total",
            "counter",
            "Distance evaluations that fell back to full f64 arithmetic.",
        );
        for s in &samples {
            out.push_str(&format!(
                "fdm_prefilter_fallbacks_total{{stream=\"{}\"}} {}\n",
                s.name, s.f32_fallbacks
            ));
        }
        metrics::help_type(
            &mut out,
            "fdm_kernel_info",
            "gauge",
            "Active distance-kernel backend (constant 1; the label carries the name).",
        );
        out.push_str(&format!(
            "fdm_kernel_info{{kernel=\"{}\"}} 1\n",
            fdm_core::kernel::active_kernel()
        ));
        // Histogram families: all streams' insert series under one
        // preamble, then all query series (Prometheus requires a family's
        // series to be contiguous).
        metrics::help_type(
            &mut out,
            "fdm_insert_latency_seconds",
            "histogram",
            "Accepted-INSERT latency (WAL append through checkpoint decision).",
        );
        for s in &samples {
            metrics::render_stream_histograms(
                &mut out,
                metrics::Which::Insert,
                &s.name,
                &s.metrics,
            );
        }
        metrics::help_type(
            &mut out,
            "fdm_query_latency_seconds",
            "histogram",
            "QUERY latency (post-processing under the summary read lock).",
        );
        for s in &samples {
            metrics::render_stream_histograms(&mut out, metrics::Which::Query, &s.name, &s.metrics);
        }
        if let Some(coordinator) = &self.coordinator {
            coordinator.render_metrics(&mut out);
        }
        self.metrics.render_globals(&mut out);
        out
    }
}

/// The background compactor loop: drains [`CompactJob`]s until the
/// engine drops its sender, collapsing each stream's `full + delta*`
/// chain off every hot-path lock. Failures are logged and the pending
/// flag cleared — the next over-length checkpoint simply re-enqueues.
fn run_compactor(rx: mpsc::Receiver<CompactJob>, dir: PathBuf, format: SnapshotFormat) {
    while let Ok(job) = rx.recv() {
        if let Err(e) = compact_chain(&dir, format, &job) {
            eprintln!(
                "fdm-serve: compaction of `{}` failed (chain left as-is): {e}",
                job.name
            );
        }
        // Clear the flag under durable whatever happened: on success the
        // chain is short again; on failure the next checkpoint should be
        // free to try again.
        lock(&job.entry.durable).compaction_pending = false;
    }
}

/// One chain collapse. Everything expensive — reading the base snapshot,
/// applying the delta files, encoding, writing + fsyncing the temp file —
/// runs with **no** engine lock held; delta files are write-once and the
/// base `.snap` is only replaced by epoch-bumping inline anchors, so the
/// off-lock read sees a stable prefix. The durable mutex is taken only
/// for the commit: if the chain epoch still matches the job's, the
/// collapsed snapshot renames into place and the consumed delta files are
/// removed; if an inline anchor ran in between, the work is discarded.
fn compact_chain(dir: &Path, format: SnapshotFormat, job: &CompactJob) -> Result<()> {
    let name = &job.name;
    let snap_path = dir.join(format!("{name}.snap"));
    let chain = list_deltas(dir, name);
    if chain.is_empty() {
        return Ok(());
    }
    let mut snapshot = Snapshot::read_from_file(&snap_path)?;
    let mut consumed: Vec<PathBuf> = Vec::with_capacity(chain.len());
    for (index, delta_path) in chain {
        let delta = SnapshotDelta::read_from_file(&delta_path)?;
        match delta.apply_to(&snapshot) {
            Ok(next) => snapshot = next,
            Err(FdmError::IncompatibleSnapshot { .. }) => {
                // A stale link (crash debris): recovery would skip it too,
                // so consuming (removing) it below is safe.
                eprintln!(
                    "fdm-serve: compactor skipping stale delta {} (index {index})",
                    delta_path.display()
                );
            }
            Err(other) => return Err(other),
        }
        consumed.push(delta_path);
    }
    let bytes = snapshot.to_bytes(format);
    if crash_requested("compactor-mid-collapse") {
        crash_mid_write(&snap_path, &bytes);
    }
    // Write the collapsed snapshot to a `.tmp.` sibling by hand (instead
    // of `write_bytes_atomic`) so the rename can be deferred into the
    // epoch-checked commit below. The `.tmp.` infix keeps a crashed
    // leftover inside recovery's sweep.
    let tmp_path = dir.join(format!("{name}.snap.tmp.{}.compact", std::process::id()));
    let io_err = |op: &str, e: std::io::Error| FdmError::SnapshotIo {
        detail: format!("{op} {}: {e}", tmp_path.display()),
    };
    {
        let mut tmp = File::create(&tmp_path).map_err(|e| io_err("create", e))?;
        tmp.write_all(&bytes).map_err(|e| io_err("write", e))?;
        tmp.sync_all().map_err(|e| io_err("sync", e))?;
    }
    let mut durable = lock(&job.entry.durable);
    if durable.chain_epoch != job.epoch {
        // An inline anchor replaced the chain while we worked; this
        // collapsed snapshot describes a base that no longer exists.
        drop(durable);
        let _ = std::fs::remove_file(&tmp_path);
        return Ok(());
    }
    std::fs::rename(&tmp_path, &snap_path).map_err(|e| FdmError::SnapshotIo {
        detail: format!(
            "rename {} -> {}: {e}",
            tmp_path.display(),
            snap_path.display()
        ),
    })?;
    crash_point("between-compaction-and-delta-cleanup");
    for path in &consumed {
        if let Err(e) = std::fs::remove_file(path) {
            // A leftover is stale (its base CRC no longer matches) and
            // recovery skips it; the next sweep removes it.
            eprintln!(
                "fdm-serve: failed to remove compacted delta {}: {e}",
                path.display()
            );
        }
    }
    durable.deltas_since_full = durable
        .deltas_since_full
        .saturating_sub(consumed.len() as u64);
    durable.counters.compactions += 1;
    Ok(())
}

/// Validates an arriving element against a stream's live parameters:
/// dimension (once known) and group label (for the fair algorithms).
fn check_element(params: &SnapshotParams, element: &Element) -> std::result::Result<(), String> {
    if params.dim != 0 && element.dim() != params.dim {
        return Err(FdmError::DimensionMismatch {
            expected: params.dim,
            found: element.dim(),
        }
        .to_string());
    }
    if element.dim() == 0 {
        return Err(FdmError::DimensionMismatch {
            expected: params.dim.max(1),
            found: 0,
        }
        .to_string());
    }
    if !params.quotas.is_empty() && element.group >= params.quotas.len() {
        return Err(FdmError::InvalidGroup {
            group: element.group,
            num_groups: params.quotas.len(),
        }
        .to_string());
    }
    Ok(())
}
