//! The line protocol: command grammar and stream specifications.
//!
//! One command per line, fields separated by whitespace, one `OK ...` or
//! `ERR ...` response line per command. The grammar is documented in
//! `docs/serve.md`; parsing lives here so the session loop, the WAL
//! replayer, and the tests all share one implementation.

use fdm_core::metric::Metric;
use fdm_core::persist::SnapshotFormat;
use fdm_core::point::Element;

/// A parsed protocol command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `OPEN <name> <algo> key=value...` — create (or re-attach to) a named
    /// stream.
    Open {
        /// Stream name (`[A-Za-z0-9_-]+`).
        name: String,
        /// Algorithm + parameters.
        spec: StreamSpec,
    },
    /// `INSERT <id> <group> <x1> ... <xd>` — feed one stream element.
    Insert(Element),
    /// `QUERY [k]` — run post-processing and return the current solution.
    Query {
        /// Optional solution size; must match the configured `k`.
        k: Option<usize>,
    },
    /// `SNAPSHOT <path> [format=json|bin]` — checkpoint the bound stream
    /// to a file.
    Snapshot {
        /// Destination path.
        path: String,
        /// Explicit encoding; `None` uses the server's configured format.
        format: Option<SnapshotFormat>,
    },
    /// `RESTORE <path>` — load a snapshot into the session.
    Restore {
        /// Source path.
        path: String,
    },
    /// `STATS` — processed/stored counters of the bound stream.
    Stats,
    /// `AUTH <token>` — authenticate the session (required first when the
    /// server runs with `--auth-token`).
    Auth {
        /// The presented token.
        token: String,
    },
    /// `PING` — liveness check.
    Ping,
    /// `QUIT` — end the session.
    Quit,
}

/// Algorithm choice + parameters from an `OPEN` command.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// A base algorithm tag the summary registry knows:
    /// `unconstrained`, `sfdm1`, `sfdm2`, or `sliding`.
    pub algo: String,
    /// Guess-ladder accuracy `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Lower distance bound `d_min > 0`.
    pub dmin: f64,
    /// Upper distance bound `d_max ≥ d_min`.
    pub dmax: f64,
    /// Distance metric (default Euclidean).
    pub metric: Metric,
    /// Per-group quotas (fair algorithms); empty for `unconstrained`.
    pub quotas: Vec<usize>,
    /// Solution size for `unconstrained` (`Σ quotas` otherwise).
    pub k: usize,
    /// Shard count (default 1 = unsharded).
    pub shards: usize,
    /// Sliding-window size `W` (required for `sliding`, rejected
    /// elsewhere; 0 = not windowed).
    pub window: usize,
}

/// Whether a stream name is safe to bind (and to embed in data-dir file
/// names): ASCII alphanumerics, `_`, `-`, non-empty.
pub fn valid_stream_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_metric(text: &str) -> std::result::Result<Metric, String> {
    match text {
        "euclidean" => Ok(Metric::Euclidean),
        "manhattan" => Ok(Metric::Manhattan),
        "chebyshev" => Ok(Metric::Chebyshev),
        "angular" => Ok(Metric::Angular),
        other => {
            if let Some(p) = other.strip_prefix("minkowski:") {
                let p: f64 = p
                    .parse()
                    .map_err(|_| format!("invalid Minkowski order `{p}`"))?;
                Ok(Metric::Minkowski(p))
            } else {
                Err(format!(
                    "unknown metric `{other}` (expected euclidean, manhattan, \
                     chebyshev, angular, or minkowski:<p>)"
                ))
            }
        }
    }
}

impl StreamSpec {
    /// Parses the `<algo> key=value...` tail of an `OPEN` command. The
    /// algorithm name is validated against the summary registry, so a new
    /// registered algorithm is automatically OPEN-able.
    pub fn parse(fields: &[&str]) -> std::result::Result<StreamSpec, String> {
        let algo = *fields.first().ok_or("OPEN requires an algorithm")?;
        if !fdm_core::streaming::summary::is_known_algorithm(algo) {
            return Err(format!(
                "unknown algorithm `{algo}` (expected one of: {})",
                fdm_core::streaming::summary::algorithm_tags().join(", ")
            ));
        }
        let mut epsilon = None;
        let mut dmin = None;
        let mut dmax = None;
        let mut metric = Metric::Euclidean;
        let mut quotas: Vec<usize> = Vec::new();
        let mut k: Option<usize> = None;
        let mut shards = 1usize;
        let mut window: Option<usize> = None;
        for field in &fields[1..] {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, found `{field}`"))?;
            let bad = |what: &str| format!("invalid {what} `{value}`");
            match key {
                "eps" => epsilon = Some(value.parse::<f64>().map_err(|_| bad("eps"))?),
                "dmin" => dmin = Some(value.parse::<f64>().map_err(|_| bad("dmin"))?),
                "dmax" => dmax = Some(value.parse::<f64>().map_err(|_| bad("dmax"))?),
                "metric" => metric = parse_metric(value)?,
                "quotas" => {
                    quotas = value
                        .split(',')
                        .map(|q| q.parse::<usize>().map_err(|_| bad("quotas")))
                        .collect::<std::result::Result<_, _>>()?;
                }
                "k" => k = Some(value.parse::<usize>().map_err(|_| bad("k"))?),
                "shards" => shards = value.parse::<usize>().map_err(|_| bad("shards"))?,
                "window" => window = Some(value.parse::<usize>().map_err(|_| bad("window"))?),
                other => return Err(format!("unknown OPEN parameter `{other}`")),
            }
        }
        let epsilon = epsilon.ok_or("OPEN requires eps=<f>")?;
        let dmin = dmin.ok_or("OPEN requires dmin=<f>")?;
        let dmax = dmax.ok_or("OPEN requires dmax=<f>")?;
        let k = match (algo, k, quotas.is_empty()) {
            ("unconstrained", Some(k), true) => k,
            ("unconstrained", None, _) => return Err("unconstrained requires k=<n>".into()),
            ("unconstrained", _, false) => {
                return Err("unconstrained takes k=<n>, not quotas".into())
            }
            (_, Some(_), _) => {
                return Err(format!("{algo} takes quotas=a,b,..., not k (k = Σ quotas)"))
            }
            (_, None, true) => return Err(format!("{algo} requires quotas=a,b,...")),
            (_, None, false) => quotas.iter().sum(),
        };
        let window = match (algo, window) {
            ("sliding", Some(w)) if w >= 2 => w,
            ("sliding", Some(w)) => return Err(format!("sliding requires window ≥ 2 (got {w})")),
            ("sliding", None) => return Err("sliding requires window=<n>".into()),
            (_, Some(_)) => return Err(format!("{algo} takes no window= parameter")),
            (_, None) => 0,
        };
        Ok(StreamSpec {
            algo: algo.to_string(),
            epsilon,
            dmin,
            dmax,
            metric,
            quotas,
            k,
            shards,
            window,
        })
    }
}

/// Parses an `INSERT` tail (`<id> <group> <x1> ... <xd>`) into an element,
/// rejecting non-finite coordinates.
pub fn parse_insert(fields: &[&str]) -> std::result::Result<Element, String> {
    if fields.len() < 3 {
        return Err("INSERT requires <id> <group> <x1> [... <xd>]".to_string());
    }
    let id: usize = fields[0]
        .parse()
        .map_err(|_| format!("invalid element id `{}`", fields[0]))?;
    let group: usize = fields[1]
        .parse()
        .map_err(|_| format!("invalid group label `{}`", fields[1]))?;
    let point: Vec<f64> = fields[2..]
        .iter()
        .map(|f| {
            let x = f
                .parse::<f64>()
                .map_err(|_| format!("invalid coordinate `{f}`"))?;
            if !x.is_finite() {
                // Typed, distinct from a parse failure: NaN/±inf would
                // poison every distance this element touches and corrupt
                // snapshots downstream.
                return Err(format!(
                    "non-finite coordinate `{f}` (NaN and ±inf are rejected)"
                ));
            }
            Ok(x)
        })
        .collect::<std::result::Result<_, _>>()?;
    Ok(Element::new(id, point, group))
}

/// Parses one protocol line. Empty lines and `#` comments yield `None`.
pub fn parse_line(line: &str) -> std::result::Result<Option<Command>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    let verb = fields[0].to_ascii_uppercase();
    let command = match verb.as_str() {
        "OPEN" => {
            if fields.len() < 3 {
                return Err("OPEN requires <name> <algo> key=value...".into());
            }
            let name = fields[1].to_string();
            if !valid_stream_name(&name) {
                return Err(format!("invalid stream name `{name}` (use [A-Za-z0-9_-]+)"));
            }
            let spec = StreamSpec::parse(&fields[2..])?;
            Command::Open { name, spec }
        }
        "INSERT" => Command::Insert(parse_insert(&fields[1..])?),
        "QUERY" => {
            let k = match fields.get(1) {
                None => None,
                Some(f) => Some(
                    f.parse::<usize>()
                        .map_err(|_| format!("invalid QUERY size `{f}`"))?,
                ),
            };
            Command::Query { k }
        }
        "SNAPSHOT" => {
            let path = fields.get(1).ok_or("SNAPSHOT requires a path")?.to_string();
            let format = match fields.get(2) {
                None => None,
                Some(field) => {
                    let value = field
                        .strip_prefix("format=")
                        .ok_or_else(|| format!("expected format=json|bin, found `{field}`"))?;
                    Some(SnapshotFormat::parse(value)?)
                }
            };
            if fields.len() > 3 {
                return Err("SNAPSHOT takes at most <path> format=json|bin".into());
            }
            Command::Snapshot { path, format }
        }
        "RESTORE" => Command::Restore {
            path: fields.get(1).ok_or("RESTORE requires a path")?.to_string(),
        },
        "STATS" => Command::Stats,
        "AUTH" => {
            if fields.len() != 2 {
                return Err("AUTH requires exactly one <token>".into());
            }
            Command::Auth {
                token: fields[1].to_string(),
            }
        }
        "PING" => Command::Ping,
        "QUIT" | "EXIT" => Command::Quit,
        other => return Err(format!("unknown command `{other}`")),
    };
    Ok(Some(command))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_open_variants() {
        let cmd = parse_line("OPEN jobs sfdm2 quotas=2,3 eps=0.1 dmin=0.5 dmax=9")
            .unwrap()
            .unwrap();
        match cmd {
            Command::Open { name, spec } => {
                assert_eq!(name, "jobs");
                assert_eq!(spec.algo, "sfdm2");
                assert_eq!(spec.quotas, vec![2, 3]);
                assert_eq!(spec.k, 5);
                assert_eq!(spec.shards, 1);
                assert_eq!(spec.metric, Metric::Euclidean);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_line(
            "open u unconstrained k=6 eps=0.2 dmin=1 dmax=10 metric=minkowski:3 shards=4",
        )
        .unwrap()
        .unwrap();
        match cmd {
            Command::Open { spec, .. } => {
                assert_eq!(spec.k, 6);
                assert_eq!(spec.shards, 4);
                assert_eq!(spec.metric, Metric::Minkowski(3.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn open_rejects_bad_shapes() {
        for line in [
            "OPEN a sfdm2 eps=0.1 dmin=1 dmax=2",                // no quotas
            "OPEN a sfdm2 quotas=2,2 k=4 eps=0.1 dmin=1 dmax=2", // both
            "OPEN a unconstrained eps=0.1 dmin=1 dmax=2",        // no k
            "OPEN a unconstrained k=4 quotas=2 eps=0.1 dmin=1 dmax=2",
            "OPEN a bogus k=4 eps=0.1 dmin=1 dmax=2",
            "OPEN ../evil sfdm2 quotas=2,2 eps=0.1 dmin=1 dmax=2",
            "OPEN a sfdm2 quotas=2,2 dmin=1 dmax=2", // no eps
            "OPEN a sfdm2 quotas=2,2 eps=0.1 dmin=1 dmax=2 bogus=1",
        ] {
            assert!(parse_line(line).is_err(), "{line}");
        }
    }

    #[test]
    fn parses_insert_and_rejects_non_finite() {
        let cmd = parse_line("INSERT 7 1 0.5 -2.25").unwrap().unwrap();
        match cmd {
            Command::Insert(e) => {
                assert_eq!(e.id, 7);
                assert_eq!(e.group, 1);
                assert_eq!(&e.point[..], &[0.5, -2.25]);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_line("INSERT 7").is_err());
        // Non-finite coordinates get their own typed error, at any
        // position, in every spelling `f64::from_str` accepts.
        for line in [
            "INSERT 7 1 NaN",
            "INSERT 7 1 nan",
            "INSERT 7 1 inf",
            "INSERT 7 1 -inf",
            "INSERT 7 1 infinity",
            "INSERT 7 1 0.5 -inf 1.25",
        ] {
            let err = parse_line(line).unwrap_err();
            assert!(err.contains("non-finite coordinate"), "{line}: {err}");
        }
        // ... while an unparseable token stays a plain invalid-coordinate
        // error.
        let err = parse_line("INSERT 7 1 zebra").unwrap_err();
        assert!(err.contains("invalid coordinate"), "{err}");
    }

    #[test]
    fn auth_parses() {
        assert_eq!(
            parse_line("AUTH s3cret").unwrap(),
            Some(Command::Auth {
                token: "s3cret".into()
            })
        );
        assert!(parse_line("AUTH").is_err());
        assert!(parse_line("AUTH a b").is_err());
    }

    #[test]
    fn snapshot_format_switch_parses() {
        assert_eq!(
            parse_line("SNAPSHOT /tmp/x.snap").unwrap().unwrap(),
            Command::Snapshot {
                path: "/tmp/x.snap".into(),
                format: None
            }
        );
        assert_eq!(
            parse_line("SNAPSHOT /tmp/x.snap format=json")
                .unwrap()
                .unwrap(),
            Command::Snapshot {
                path: "/tmp/x.snap".into(),
                format: Some(SnapshotFormat::Json)
            }
        );
        assert_eq!(
            parse_line("SNAPSHOT /tmp/x.snap format=bin")
                .unwrap()
                .unwrap(),
            Command::Snapshot {
                path: "/tmp/x.snap".into(),
                format: Some(SnapshotFormat::Binary)
            }
        );
        assert!(parse_line("SNAPSHOT /tmp/x.snap format=xml").is_err());
        assert!(parse_line("SNAPSHOT /tmp/x.snap json").is_err());
        assert!(parse_line("SNAPSHOT /tmp/x.snap format=bin extra").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("  # hi").unwrap(), None);
        assert_eq!(parse_line("PING").unwrap(), Some(Command::Ping));
        assert_eq!(parse_line("quit").unwrap(), Some(Command::Quit));
    }
}
