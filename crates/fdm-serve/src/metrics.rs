//! Fleet observability: lock-free counters/histograms and a hand-rolled
//! HTTP `/metrics` endpoint in Prometheus text exposition format.
//!
//! The environment is offline, so there is no client library: this module
//! renders the format directly (`# HELP`/`# TYPE` comments, cumulative
//! `_bucket{le=...}` histogram series, `_sum`/`_count`). The contract the
//! CI lint script (`examples/metrics_lint.sh`) enforces:
//!
//! * every sample family is preceded by exactly one `# HELP` and one
//!   `# TYPE` line;
//! * no duplicate series (same name + label set twice);
//! * every histogram ends in an `le="+Inf"` bucket equal to its `_count`.
//!
//! Recording is a handful of relaxed atomic increments — the insert hot
//! path never takes a lock for metrics — and scraping reads engine state
//! under the same short per-stream locks `STATS` uses, so a scrape never
//! blocks inserts for longer than a counter copy (pinned by the storm test
//! in `tests/metrics.rs`).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::Engine;

/// Upper bounds (seconds) of the latency histogram buckets, with their
/// exact label spellings (so the rendered `le=` values never drift with
/// float formatting). Spans 10 µs to 2.5 s; slower observations land in
/// `+Inf`.
const LATENCY_BOUNDS: &[(f64, &str)] = &[
    (0.00001, "0.00001"),
    (0.00005, "0.00005"),
    (0.00025, "0.00025"),
    (0.001, "0.001"),
    (0.005, "0.005"),
    (0.025, "0.025"),
    (0.1, "0.1"),
    (0.5, "0.5"),
    (2.5, "2.5"),
];

/// A fixed-bucket latency histogram; `observe` is a few relaxed atomic
/// adds, rendering cumulates the buckets Prometheus-style.
pub struct Histogram {
    /// Per-bucket (non-cumulative) observation counts, one per
    /// [`LATENCY_BOUNDS`] entry plus a final overflow (`+Inf`) bucket.
    buckets: Vec<AtomicU64>,
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: (0..=LATENCY_BOUNDS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one latency observation.
    pub fn observe(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let idx = LATENCY_BOUNDS
            .iter()
            .position(|(bound, _)| secs <= *bound)
            .unwrap_or(LATENCY_BOUNDS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations (the `+Inf` cumulative bucket).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Appends this histogram's `_bucket`/`_sum`/`_count` series for one
    /// label set (e.g. `stream="jobs"`).
    fn render(&self, out: &mut String, name: &str, labels: &str) {
        let mut cumulative = 0u64;
        for ((_, le), bucket) in LATENCY_BOUNDS.iter().zip(&self.buckets) {
            cumulative += bucket.load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{{{labels}le=\"{le}\"}} {cumulative}\n"
            ));
        }
        let count = self.count();
        out.push_str(&format!("{name}_bucket{{{labels}le=\"+Inf\"}} {count}\n"));
        let sum = self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        out.push_str(&format!(
            "{name}_sum{{{labels_trim}}} {sum}\n",
            labels_trim = labels.trim_end_matches(',')
        ));
        out.push_str(&format!(
            "{name}_count{{{labels_trim}}} {count}\n",
            labels_trim = labels.trim_end_matches(',')
        ));
    }
}

/// Per-stream request metrics, owned by the engine's stream entry so the
/// hot path reaches them without a map lookup.
pub struct StreamMetrics {
    /// Accepted-`INSERT` latency (WAL append through checkpoint decision).
    pub insert_latency: Histogram,
    /// `QUERY` latency (post-processing under the read lock).
    pub query_latency: Histogram,
}

impl StreamMetrics {
    pub(crate) fn new() -> Arc<StreamMetrics> {
        Arc::new(StreamMetrics {
            insert_latency: Histogram::new(),
            query_latency: Histogram::new(),
        })
    }
}

/// Process-wide counters and gauges; per-stream series live with the
/// engine's stream entries and are rendered by [`Engine::render_metrics`].
pub struct Metrics {
    /// Live connections per transport (shared with the listener loops'
    /// slot accounting).
    tcp_connections: Arc<AtomicUsize>,
    unix_connections: Arc<AtomicUsize>,
    /// Connections refused per transport (at the cap, or while draining).
    tcp_refused: AtomicU64,
    unix_refused: AtomicU64,
    /// Panics caught at the session/insert boundary instead of crossing
    /// tenant boundaries.
    panics_contained: AtomicU64,
    /// `AUTH` attempts with a wrong token.
    auth_failures: AtomicU64,
    /// `ERR busy` rejections: pending-insert queue at capacity.
    busy_queue_full: AtomicU64,
    /// `ERR busy` rejections: per-stream insert rate limit.
    busy_rate_limited: AtomicU64,
}

impl Metrics {
    pub(crate) fn new() -> Arc<Metrics> {
        Arc::new(Metrics {
            tcp_connections: Arc::new(AtomicUsize::new(0)),
            unix_connections: Arc::new(AtomicUsize::new(0)),
            tcp_refused: AtomicU64::new(0),
            unix_refused: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
            auth_failures: AtomicU64::new(0),
            busy_queue_full: AtomicU64::new(0),
            busy_rate_limited: AtomicU64::new(0),
        })
    }

    /// The live-connection gauge for a transport ("tcp"/"unix"); the
    /// listener's slot accounting increments/decrements it directly.
    pub fn connection_gauge(&self, transport: &str) -> Arc<AtomicUsize> {
        match transport {
            "unix" => self.unix_connections.clone(),
            _ => self.tcp_connections.clone(),
        }
    }

    /// Total live connections across both transports (the drain
    /// coordinator polls this).
    pub fn live_connections(&self) -> usize {
        self.tcp_connections.load(Ordering::SeqCst) + self.unix_connections.load(Ordering::SeqCst)
    }

    pub(crate) fn connection_refused(&self, transport: &str) {
        match transport {
            "unix" => self.unix_refused.fetch_add(1, Ordering::Relaxed),
            _ => self.tcp_refused.fetch_add(1, Ordering::Relaxed),
        };
    }

    pub(crate) fn panic_contained(&self) {
        self.panics_contained.fetch_add(1, Ordering::Relaxed);
    }

    /// Panics contained so far (test visibility).
    pub fn panics_contained(&self) -> u64 {
        self.panics_contained.load(Ordering::Relaxed)
    }

    pub(crate) fn auth_failure(&self) {
        self.auth_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn busy_queue_full(&self) {
        self.busy_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn busy_rate_limited(&self) {
        self.busy_rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends the process-wide series (everything not per-stream).
    pub(crate) fn render_globals(&self, out: &mut String) {
        help_type(
            out,
            "fdm_connections",
            "gauge",
            "Live protocol connections per transport.",
        );
        out.push_str(&format!(
            "fdm_connections{{transport=\"tcp\"}} {}\n",
            self.tcp_connections.load(Ordering::SeqCst)
        ));
        out.push_str(&format!(
            "fdm_connections{{transport=\"unix\"}} {}\n",
            self.unix_connections.load(Ordering::SeqCst)
        ));
        help_type(
            out,
            "fdm_connections_refused_total",
            "counter",
            "Connections refused at the connection cap or while draining.",
        );
        out.push_str(&format!(
            "fdm_connections_refused_total{{transport=\"tcp\"}} {}\n",
            self.tcp_refused.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "fdm_connections_refused_total{{transport=\"unix\"}} {}\n",
            self.unix_refused.load(Ordering::Relaxed)
        ));
        help_type(
            out,
            "fdm_panics_contained_total",
            "counter",
            "Panics caught at the session/insert boundary and degraded to one ERR reply.",
        );
        out.push_str(&format!(
            "fdm_panics_contained_total {}\n",
            self.panics_contained.load(Ordering::Relaxed)
        ));
        help_type(
            out,
            "fdm_auth_failures_total",
            "counter",
            "AUTH attempts with an invalid token.",
        );
        out.push_str(&format!(
            "fdm_auth_failures_total {}\n",
            self.auth_failures.load(Ordering::Relaxed)
        ));
        help_type(
            out,
            "fdm_busy_rejections_total",
            "counter",
            "INSERTs rejected with ERR busy, by backpressure reason.",
        );
        out.push_str(&format!(
            "fdm_busy_rejections_total{{reason=\"queue_full\"}} {}\n",
            self.busy_queue_full.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "fdm_busy_rejections_total{{reason=\"rate_limit\"}} {}\n",
            self.busy_rate_limited.load(Ordering::Relaxed)
        ));
    }
}

/// Appends one family's `# HELP`/`# TYPE` preamble.
pub(crate) fn help_type(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Appends one stream's latency histograms (both families must already
/// have had their `# HELP`/`# TYPE` emitted by the caller, once).
pub(crate) fn render_stream_histograms(
    out: &mut String,
    which: Which,
    name: &str,
    m: &StreamMetrics,
) {
    let labels = format!("stream=\"{name}\",");
    match which {
        Which::Insert => m
            .insert_latency
            .render(out, "fdm_insert_latency_seconds", &labels),
        Which::Query => m
            .query_latency
            .render(out, "fdm_query_latency_seconds", &labels),
    }
}

/// Selector for [`render_stream_histograms`]: Prometheus requires all
/// series of one family to be contiguous under a single `# TYPE`, so the
/// engine renders all streams' insert histograms, then all query ones.
#[derive(Clone, Copy)]
pub(crate) enum Which {
    Insert,
    Query,
}

/// [`render_stream_histograms`] under an explicit family name — the
/// coordinator exports its routing latencies as `fdm_coord_*` families so
/// they can never collide with the engine's (unconditionally emitted)
/// single-node preambles.
pub(crate) fn render_histogram_as(
    out: &mut String,
    family: &str,
    which: Which,
    stream: &str,
    m: &StreamMetrics,
) {
    let labels = format!("stream=\"{stream}\",");
    match which {
        Which::Insert => m.insert_latency.render(out, family, &labels),
        Which::Query => m.query_latency.render(out, family, &labels),
    }
}

/// Longest request head the scrape listener will buffer before giving up
/// (a scrape is one short GET; anything bigger is not a scraper).
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// Serves `GET /metrics` (Prometheus text exposition v0.0.4) on the
/// listener until it errors out; every other path is a 404. One short
/// thread per request; rendering never blocks the accept loop. Blocks the
/// calling thread — spawn it.
pub fn serve_metrics(engine: Arc<Engine>, listener: TcpListener) {
    for connection in listener.incoming() {
        match connection {
            Ok(stream) => {
                let engine = engine.clone();
                std::thread::spawn(move || handle_scrape(engine, stream));
            }
            Err(e) => eprintln!("fdm-serve: metrics accept: {e}"),
        }
    }
}

fn handle_scrape(engine: Arc<Engine>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    // Read the request head (bounded); we only need the request line.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while head.len() < MAX_REQUEST_HEAD && !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n")
    {
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => break,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let request_line = request_line.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = match (method, path) {
        ("GET", "/metrics") => ("200 OK", engine.render_metrics()),
        ("GET", _) => ("404 Not Found", "not found\n".to_string()),
        _ => ("405 Method Not Allowed", "GET only\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
