//! # fdm-serve
//!
//! A daemon-style front end for the streaming fair-diversity summaries of
//! `fdm-core`: instead of running one batch pass, the process hosts many
//! **named streams** (multi-tenant), each a
//! [`Box<dyn DynSummary>`](fdm_core::streaming::summary::DynSummary) built
//! through the summary registry — any member of the family (unconstrained
//! Algorithm 1, SFDM1, SFDM2, the sliding-window wrapper, each optionally
//! sharded K ways) behind one line protocol:
//!
//! ```text
//! OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=20
//! OPEN recent sliding quotas=2,2 eps=0.1 dmin=0.05 dmax=20 window=1000
//! INSERT 0 1 0.25 3.5
//! QUERY
//! SNAPSHOT /var/lib/fdm/jobs.snap
//! RESTORE /var/lib/fdm/jobs.snap
//! STATS
//! ```
//!
//! Each stream sits behind its own readers–writer lock with the WAL
//! appender split off onto a separate mutex, so sessions on different
//! streams never serialize on each other, concurrent `QUERY`s of one
//! stream overlap, and snapshot encode/disk-write runs **off** the summary
//! lock (see [`engine`] for the locking protocol; pinned by
//! `tests/concurrent.rs`).
//!
//! Sessions speak the protocol over stdin/stdout, a Unix domain socket
//! (`--socket`), or TCP (`--listen addr:port`, for remote tenants — with
//! per-connection read timeouts and a max-frame guard); each session is
//! bound to at most one named stream at a time, while the process serves
//! all of them. See `docs/serve.md` for the full grammar.
//!
//! **Durability** comes from `fdm-core`'s versioned snapshots (v1 JSON or
//! the v2 binary codec, `--snapshot-format`) plus a per-stream write-ahead
//! log: with `--data-dir` every accepted `INSERT` is appended to
//! `<name>.wal` before it is applied, and every `--snapshot-every N`
//! inserts the stream's summary is checkpointed — as an incremental
//! `<name>.delta.<i>` while the chain is short, collapsing into a fresh
//! full `<name>.snap` every `--full-every` deltas — and the log truncated.
//! On startup the engine restores every snapshot it finds, chains the
//! deltas, and replays the tail of the log — the summary is the whole
//! recoverable state, so recovery is restore-then-replay and the recovered
//! process answers queries bit-identically to one that never crashed
//! (pinned by `tests/protocol.rs`, `tests/crash_matrix.rs`, and the CI
//! `serve` job).

// The one sanctioned exception is src/signal.rs (raw `signal(2)` FFI for
// graceful drain), which opts back in with a scoped allow; CI greps that
// `unsafe` stays confined there.
#![deny(unsafe_code)]

pub mod coordinator;
pub mod engine;
pub mod metrics;
pub mod net;
pub mod session;
pub mod signal;

/// The wire grammar — typed [`protocol::Request`]/[`protocol::Response`]
/// with one shared `parse`/`render` pair — lives in `fdm-client` so the
/// server, the coordinator, the client library, and the tests all speak
/// through one implementation. Re-exported here so in-tree consumers keep
/// their `fdm_serve::protocol::...` paths.
pub use fdm_client::protocol;

pub use engine::{Engine, ServeConfig};
pub use metrics::{serve_metrics, Metrics};
pub use net::{serve_tcp, serve_unix, NetOptions};
pub use session::{Session, MAX_LINE_BYTES};
