//! Checkpoint-pipeline tests: stream-name safety at the engine boundary,
//! the directory-listing delta sweep, the `full_every` edge cases (`0` =
//! deltas disabled, `1` = collapse after every checkpoint), deterministic
//! background-compaction commit, and recovery over a chain with a stale
//! (mismatched base-CRC) delta in the *middle* of the list.

use std::io::Cursor;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fdm_client::Client;
use fdm_core::persist::{Snapshot, SnapshotDelta, SnapshotFormat};
use fdm_serve::protocol::{parse_line, Request, StreamSpec};
use fdm_serve::{serve_tcp, serve_unix, Engine, NetOptions, ServeConfig, Session};

const OPEN: &str = "OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30";

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fdm_checkpoint_test_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn insert_lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.7391).sin() * 9.0;
            let y = (i as f64 * 0.2113).cos() * 9.0;
            format!("INSERT {i} {} {x} {y}", i % 2)
        })
        .collect()
}

fn run_script(engine: &Arc<Engine>, script: &str) -> Vec<String> {
    let mut output = Vec::new();
    Session::new(engine.clone())
        .run(Cursor::new(script.as_bytes().to_vec()), &mut output)
        .unwrap();
    String::from_utf8(output)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

fn open_spec() -> StreamSpec {
    match parse_line(OPEN).unwrap().unwrap() {
        Request::Open { spec, .. } => spec,
        other => panic!("{other:?}"),
    }
}

/// The uninterrupted in-memory answer to `QUERY` after `n` inserts.
fn reference_query(n: usize) -> String {
    let engine = Arc::new(Engine::new(ServeConfig::default()).unwrap());
    let mut script = vec![OPEN.to_string()];
    script.extend(insert_lines(n));
    script.push("QUERY".into());
    run_script(&engine, &script.join("\n"))
        .last()
        .unwrap()
        .clone()
}

fn durable_engine(dir: &Path, snapshot_every: u64, full_every: u64) -> Arc<Engine> {
    Arc::new(
        Engine::new(ServeConfig {
            data_dir: Some(dir.to_path_buf()),
            snapshot_every: Some(snapshot_every),
            full_every,
            ..ServeConfig::default()
        })
        .unwrap(),
    )
}

/// Every file in `dir`, relative names, sorted.
fn files_in(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

fn delta_files(dir: &Path, name: &str) -> Vec<String> {
    files_in(dir)
        .into_iter()
        .filter(|f| f.starts_with(&format!("{name}.delta.")) && !f.contains(".tmp."))
        .collect()
}

// --- Stream-name safety ----------------------------------------------------

const EVIL_NAMES: &[&str] = &[
    "../escape",
    "..",
    "a/b",
    "a\\b",
    ".hidden",
    "",
    "x..y",
    "../../etc/passwd",
];

/// `Engine::open` / `Engine::restore` are public API (callable without
/// the protocol parser in front): a raw name must not be spliced into
/// `<data-dir>/<name>.snap`-style paths, or `OPEN ../../x` writes outside
/// the data dir.
#[test]
fn engine_refuses_path_escaping_stream_names() {
    let outer = scratch("name_escape_engine");
    let inner = outer.join("inner");
    std::fs::create_dir_all(&inner).unwrap();
    let engine = durable_engine(&inner, 4, 2);
    for name in EVIL_NAMES {
        let err = engine
            .open(name, &open_spec())
            .expect_err(&format!("`{name}` must be refused"))
            .message;
        assert!(err.contains("invalid stream name"), "`{name}`: {err}");
        let err = engine
            .restore(name, inner.join("nonexistent.snap").to_str().unwrap())
            .expect_err(&format!("RESTORE `{name}` must be refused"))
            .message;
        assert!(err.contains("invalid stream name"), "`{name}`: {err}");
    }
    drop(engine);
    assert_eq!(
        files_in(&inner),
        Vec::<String>::new(),
        "a refused OPEN must create nothing inside the data dir"
    );
    assert_eq!(
        files_in(&outer),
        vec!["inner".to_string()],
        "a refused OPEN must create nothing outside the data dir"
    );
    let _ = std::fs::remove_dir_all(&outer);
}

/// The same escape attempt over every transport front-end (stdin session,
/// TCP, Unix socket) answers a typed `ERR` and creates nothing.
#[test]
fn every_transport_refuses_path_escaping_open() {
    let outer = scratch("name_escape_transports");
    let inner = outer.join("inner");
    std::fs::create_dir_all(&inner).unwrap();
    let engine = durable_engine(&inner, 4, 2);
    let evil_open = "OPEN ../escape sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30";

    // Stdin-style in-process session.
    let replies = run_script(&engine, evil_open);
    assert!(replies[0].starts_with("ERR "), "{replies:?}");

    // TCP.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    {
        let engine = engine.clone();
        std::thread::spawn(move || serve_tcp(engine, listener, NetOptions::default()));
    }
    let mut client = Client::connect_tcp(addr).unwrap();
    let reply = client.roundtrip(evil_open).unwrap();
    assert!(reply.starts_with("ERR "), "{reply}");

    // Unix socket.
    let socket = outer.join("sock");
    let listener = std::os::unix::net::UnixListener::bind(&socket).unwrap();
    {
        let engine = engine.clone();
        std::thread::spawn(move || serve_unix(engine, listener, NetOptions::default()));
    }
    let mut client = Client::connect_unix(&socket).unwrap();
    let reply = client.roundtrip(evil_open).unwrap();
    assert!(reply.starts_with("ERR "), "{reply}");

    drop(engine);
    assert_eq!(
        files_in(&inner),
        Vec::<String>::new(),
        "a refused OPEN must create nothing inside the data dir"
    );
    assert!(
        !outer.join("escape.snap").exists() && !outer.join("escape.wal").exists(),
        "a refused OPEN must not write outside the data dir: {:?}",
        files_in(&outer)
    );
    let _ = std::fs::remove_dir_all(&outer);
}

// --- Delta sweep -----------------------------------------------------------

/// The post-anchor delta sweep walks the *directory listing*, so stale
/// files survive gaps in the index sequence (the old `1..` walk stopped
/// at the first hole and stranded everything after it).
#[test]
fn anchor_sweep_removes_gapped_delta_files() {
    let dir = scratch("gapped_sweep");
    let engine = durable_engine(&dir, 4, 0); // full_every=0: every checkpoint anchors
    let replies = run_script(&engine, OPEN);
    assert_eq!(replies[0], "OK opened jobs");
    // Plant a gapped chain of stale droppings, as a crashed compactor
    // that removed only a prefix of its consumed deltas would leave.
    for index in [1u64, 4, 9] {
        std::fs::write(dir.join(format!("jobs.delta.{index}")), b"stale").unwrap();
    }
    let mut script = vec![OPEN.to_string()];
    script.extend(insert_lines(4));
    let replies = run_script(&engine, &script.join("\n"));
    assert!(replies[1..].iter().all(|r| r.starts_with("OK inserted")));
    drop(engine);
    assert_eq!(
        delta_files(&dir, "jobs"),
        Vec::<String>::new(),
        "the insert-4 anchor must sweep every delta file, gaps included"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// --- full_every edges ------------------------------------------------------

/// `full_every = 0` disables deltas entirely: every checkpoint is an
/// inline full anchor and no `.delta.` file ever exists.
#[test]
fn full_every_zero_disables_deltas() {
    let dir = scratch("full_every_zero");
    let engine = durable_engine(&dir, 4, 0);
    let mut script = vec![OPEN.to_string()];
    script.extend(insert_lines(20));
    script.push("STATS".into());
    let replies = run_script(&engine, &script.join("\n"));
    let stats = replies.last().unwrap();
    // OPEN anchor + checkpoints at 4, 8, 12, 16, 20 — all full.
    assert!(stats.contains("snapshots=6"), "{stats}");
    assert!(stats.contains("deltas=0"), "{stats}");
    assert!(stats.contains("dirty_bytes=0"), "{stats}");
    drop(engine);
    assert_eq!(delta_files(&dir, "jobs"), Vec::<String>::new());

    // Recovery over the pure-full chain is exact.
    let engine = durable_engine(&dir, 4, 0);
    let replies = run_script(&engine, &format!("{OPEN}\nQUERY"));
    assert_eq!(replies[1], reference_query(20));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `full_every = 1` hands a collapse to the compactor after *every* delta
/// checkpoint; the on-disk chain stays collapsed without a single inline
/// stall, and recovery is exact.
#[test]
fn full_every_one_collapses_after_every_checkpoint() {
    let dir = scratch("full_every_one");
    let engine = durable_engine(&dir, 4, 1);
    let mut script = vec![OPEN.to_string()];
    script.extend(insert_lines(40));
    let replies = run_script(&engine, &script.join("\n"));
    assert!(replies[1..].iter().all(|r| r.starts_with("OK inserted")));
    // Dropping the engine joins the compactor: every enqueued collapse
    // has committed (or been superseded by an inline fallback anchor).
    drop(engine);
    assert!(
        delta_files(&dir, "jobs").len() <= 1,
        "chain must stay collapsed to at most full_every deltas: {:?}",
        delta_files(&dir, "jobs")
    );
    let engine = durable_engine(&dir, 4, 1);
    let replies = run_script(&engine, &format!("{OPEN}\nQUERY"));
    assert_eq!(replies[1], reference_query(40));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic background-commit pin: every checkpoint of this insert
/// sequence lowers to a delta, so with `--full-every 2` the chain reaches
/// the cap at insert 8 (deltas at 4 and 8) and nothing after the enqueue
/// can bump the epoch, so the compactor MUST commit: the counter reaches
/// 1 and both consumed delta files disappear while the stream stays open.
/// The rest of the run re-grows the chain; however the collapses
/// interleave with the inserts, the chain is back under the cap once the
/// compactor drains on drop, and recovery from disk alone is exact.
#[test]
fn compactor_commits_in_the_background() {
    let dir = scratch("compactor_commit");
    let engine = durable_engine(&dir, 4, 2);
    let mut script = vec![OPEN.to_string()];
    script.extend(insert_lines(8));
    let replies = run_script(&engine, &script.join("\n"));
    assert!(replies[1..].iter().all(|r| r.starts_with("OK inserted")));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = run_script(&engine, &format!("{OPEN}\nSTATS"))[1].clone();
        if stats.contains("compactions=1") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "compaction never committed: {stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        delta_files(&dir, "jobs"),
        Vec::<String>::new(),
        "the committed collapse must consume both deltas"
    );
    // Keep streaming: later checkpoints hand the compactor more
    // collapses, whose consumed sets depend on the interleaving — only
    // the bound is deterministic.
    let more = format!("{OPEN}\n{}", insert_lines(20)[8..].join("\n"));
    let replies = run_script(&engine, &more);
    assert!(replies[1..].iter().all(|r| r.starts_with("OK inserted")));
    // Dropping the engine joins the compactor: every enqueued collapse
    // has committed, so at most one uncollapsed delta can remain.
    drop(engine);
    assert!(
        delta_files(&dir, "jobs").len() <= 1,
        "chain must stay collapsed after the compactor drains: {:?}",
        delta_files(&dir, "jobs")
    );
    // The collapsed snapshot carries the full state: wipe the WAL records
    // by re-reading from disk alone.
    let engine = durable_engine(&dir, 4, 2);
    let replies = run_script(&engine, &format!("{OPEN}\nQUERY"));
    assert_eq!(replies[1], reference_query(20));
    let _ = std::fs::remove_dir_all(&dir);
}

// --- Stale mid-chain delta -------------------------------------------------

/// A chain whose *middle* delta has a mismatched base CRC — exactly what a
/// compactor crash between rename and cleanup leaves when a later live
/// delta already chained off the collapsed snapshot. Recovery must skip
/// the stale link and keep applying the rest, not end the chain there.
#[test]
fn recovery_skips_stale_mid_chain_delta() {
    let dir = scratch("stale_mid_chain");

    // Build three real snapshots of the same stream at 0, 10, and 20
    // arrivals via the public export path.
    let export = |n: usize, path: &Path| {
        let engine = Arc::new(Engine::new(ServeConfig::default()).unwrap());
        let mut script = vec![OPEN.to_string()];
        script.extend(insert_lines(n));
        script.push(format!("SNAPSHOT {} format=bin", path.display()));
        let replies = run_script(&engine, &script.join("\n"));
        assert!(
            replies.last().unwrap().starts_with("OK snapshot"),
            "{replies:?}"
        );
    };
    let (s0_path, s1_path, s2_path) = (dir.join("s0"), dir.join("s1"), dir.join("s2"));
    export(0, &s0_path);
    export(10, &s1_path);
    export(20, &s2_path);
    let s0 = Snapshot::read_from_file(&s0_path).unwrap();
    let s1 = Snapshot::read_from_file(&s1_path).unwrap();
    let s2 = Snapshot::read_from_file(&s2_path).unwrap();

    // Chain: snap = S0; delta.1 = S0→S1 (live); delta.2 = S0→S1 again —
    // its base CRC (S0) cannot match the post-delta.1 state (S1), so it
    // is stale; delta.3 = S1→S2 (live, chains off delta.1's result).
    std::fs::write(dir.join("jobs.snap"), s0.to_bytes(SnapshotFormat::Binary)).unwrap();
    std::fs::write(
        dir.join("jobs.delta.1"),
        SnapshotDelta::between(&s0, &s1).unwrap().to_bytes(),
    )
    .unwrap();
    std::fs::write(
        dir.join("jobs.delta.2"),
        SnapshotDelta::between(&s0, &s1).unwrap().to_bytes(),
    )
    .unwrap();
    std::fs::write(
        dir.join("jobs.delta.3"),
        SnapshotDelta::between(&s1, &s2).unwrap().to_bytes(),
    )
    .unwrap();
    std::fs::write(dir.join("jobs.wal"), "0 WALV2\n").unwrap();
    let _ = std::fs::remove_file(&s0_path);
    let _ = std::fs::remove_file(&s1_path);
    let _ = std::fs::remove_file(&s2_path);

    let engine = durable_engine(&dir, 4, 2);
    let replies = run_script(&engine, &format!("{OPEN}\nSTATS\nQUERY"));
    assert!(
        replies[0].starts_with("OK attached jobs"),
        "{:?}",
        replies[0]
    );
    assert!(
        replies[1].contains("processed=20"),
        "stale mid-chain delta must be skipped, not end the chain: {}",
        replies[1]
    );
    assert_eq!(replies[2], reference_query(20));
    let _ = std::fs::remove_dir_all(&dir);
}
