//! End-to-end protocol tests: scripted sessions, snapshot/kill/restore
//! byte-identity, WAL crash recovery, Unix-socket sessions, and error
//! surfaces.

use std::io::Cursor;
use std::path::PathBuf;
use std::sync::Arc;

use fdm_serve::{Engine, ServeConfig, Session};

/// Fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdm_serve_test_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs a scripted session against a fresh in-memory engine and returns the
/// response lines.
fn run_script(engine: &Arc<Engine>, script: &str) -> Vec<String> {
    let mut output = Vec::new();
    Session::new(engine.clone())
        .run(Cursor::new(script.as_bytes().to_vec()), &mut output)
        .unwrap();
    String::from_utf8(output)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

fn memory_engine() -> Arc<Engine> {
    Arc::new(Engine::new(ServeConfig::default()).unwrap())
}

/// A deterministic 2-group stream of `n` INSERT lines.
fn insert_lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.7391).sin() * 9.0;
            let y = (i as f64 * 0.2113).cos() * 9.0;
            format!("INSERT {i} {} {x} {y}", i % 2)
        })
        .collect()
}

const OPEN: &str = "OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30";

#[test]
fn uninterrupted_session_answers_queries() {
    let engine = memory_engine();
    let mut script = vec![OPEN.to_string()];
    script.extend(insert_lines(60));
    script.push("STATS".into());
    script.push("QUERY".into());
    script.push("QUERY 4".into());
    script.push("QUIT".into());
    let replies = run_script(&engine, &script.join("\n"));
    assert_eq!(replies[0], "OK opened jobs");
    assert!(replies[1..=60].iter().all(|r| r.starts_with("OK inserted")));
    assert!(replies[61].starts_with("OK stream=jobs algorithm=sfdm2"));
    assert!(replies[62].starts_with("OK k=4 diversity="));
    assert_eq!(
        replies[62], replies[63],
        "explicit k must not change output"
    );
    assert_eq!(replies.last().unwrap(), "OK bye");
}

#[test]
fn snapshot_kill_restore_is_byte_identical() {
    let dir = scratch("snap_restore");
    let snap = dir.join("jobs.snap").display().to_string();
    let inserts = insert_lines(80);

    // Uninterrupted reference run.
    let reference = {
        let engine = memory_engine();
        let mut script = vec![OPEN.to_string()];
        script.extend(inserts.iter().cloned());
        script.push("QUERY".into());
        run_script(&engine, &script.join("\n"))
            .last()
            .unwrap()
            .clone()
    };

    // Interrupted run: first half, SNAPSHOT, then the engine is dropped
    // ("killed"); a brand-new engine RESTOREs and replays the second half.
    {
        let engine = memory_engine();
        let mut script = vec![OPEN.to_string()];
        script.extend(inserts[..40].iter().cloned());
        script.push(format!("SNAPSHOT {snap}"));
        let replies = run_script(&engine, &script.join("\n"));
        assert!(
            replies.last().unwrap().starts_with("OK snapshot"),
            "{replies:?}"
        );
    }
    let resumed = {
        let engine = memory_engine();
        let mut script = vec![format!("RESTORE {snap}")];
        script.extend(inserts[40..].iter().cloned());
        script.push("QUERY".into());
        let replies = run_script(&engine, &script.join("\n"));
        assert_eq!(replies[0], "OK restored jobs processed=40");
        replies.last().unwrap().clone()
    };

    assert!(reference.starts_with("OK k="), "{reference}");
    assert_eq!(
        reference, resumed,
        "post-restore QUERY must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_crash_recovery_replays_the_tail() {
    let dir = scratch("wal_recovery");
    let config = ServeConfig {
        data_dir: Some(dir.clone()),
        snapshot_every: Some(16),
        ..ServeConfig::default()
    };
    let inserts = insert_lines(70);

    // Reference: one uninterrupted in-memory run.
    let reference = {
        let engine = memory_engine();
        let mut script = vec![OPEN.to_string()];
        script.extend(inserts.iter().cloned());
        script.push("QUERY".into());
        run_script(&engine, &script.join("\n"))
            .last()
            .unwrap()
            .clone()
    };

    // Durable run, dropped without any explicit snapshot command: 70
    // inserts = 4 auto-snapshots (at 16/32/48/64) + 6 WAL-tail lines.
    {
        let engine = Arc::new(Engine::new(config.clone()).unwrap());
        let mut script = vec![OPEN.to_string()];
        script.extend(inserts.iter().cloned());
        let replies = run_script(&engine, &script.join("\n"));
        assert!(replies.iter().all(|r| r.starts_with("OK ")), "{replies:?}");
        // Crash: engine dropped here, nothing flushed beyond the WAL.
    }
    let wal = std::fs::read_to_string(dir.join("jobs.wal")).unwrap();
    assert_eq!(
        wal.lines().count(),
        1 + (70 - 64),
        "WAL should hold only the header and the post-snapshot tail"
    );

    // Recovery: a new engine over the same data dir replays snap + WAL.
    let engine = Arc::new(Engine::new(config).unwrap());
    assert_eq!(engine.stream_names(), vec!["jobs".to_string()]);
    let replies = run_script(&engine, &format!("{OPEN}\nSTATS\nQUERY"));
    assert_eq!(replies[0], "OK attached jobs processed=70");
    assert!(replies[1].contains("processed=70"), "{}", replies[1]);
    assert_eq!(replies[2], reference, "recovered QUERY must match");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_skips_wal_records_already_in_snapshot() {
    // The crash window between an auto-snapshot write and the WAL
    // truncation leaves records in the WAL that the snapshot already
    // contains; the sequence numbers must make replay exactly-once (no
    // inflated `processed`, identical QUERY output).
    let dir = scratch("wal_overlap");
    let config = ServeConfig {
        data_dir: Some(dir.clone()),
        snapshot_every: Some(16),
        ..ServeConfig::default()
    };
    let inserts = insert_lines(20);

    let reference = {
        let engine = memory_engine();
        let mut script = vec![OPEN.to_string()];
        script.extend(inserts.iter().cloned());
        script.push("QUERY".into());
        run_script(&engine, &script.join("\n"))
            .last()
            .unwrap()
            .clone()
    };

    {
        let engine = Arc::new(Engine::new(config.clone()).unwrap());
        let mut script = vec![OPEN.to_string()];
        script.extend(inserts.iter().cloned());
        run_script(&engine, &script.join("\n"));
    }
    // Snapshot holds arrivals 1..=16; WAL holds 17..=20. Simulate the
    // crash window by re-prepending records 9..=16 (already snapshotted).
    let wal_path = dir.join("jobs.wal");
    let tail = std::fs::read_to_string(&wal_path).unwrap();
    assert_eq!(tail.lines().count(), 1 + 4, "header + 4 tail records");
    let mut overlapping = String::new();
    for (i, line) in inserts.iter().enumerate().take(16).skip(8) {
        overlapping.push_str(&format!("{} {line}\n", i + 1));
    }
    overlapping.push_str(&tail);
    std::fs::write(&wal_path, overlapping).unwrap();

    let engine = Arc::new(Engine::new(config).unwrap());
    let replies = run_script(&engine, &format!("{OPEN}\nSTATS\nQUERY"));
    assert_eq!(
        replies[0], "OK attached jobs processed=20",
        "overlapping WAL records must not double-apply"
    );
    assert_eq!(replies[2], reference, "recovered QUERY must match");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_sequence_gaps_are_corrupt() {
    let dir = scratch("wal_gap");
    let config = ServeConfig {
        data_dir: Some(dir.clone()),
        snapshot_every: Some(100),
        ..ServeConfig::default()
    };
    {
        let engine = Arc::new(Engine::new(config.clone()).unwrap());
        let mut script = vec![OPEN.to_string()];
        script.extend(insert_lines(5));
        run_script(&engine, &script.join("\n"));
    }
    // Drop record 3 of 5: a hole in the history cannot be replayed
    // faithfully and must refuse recovery instead of guessing.
    let wal_path = dir.join("jobs.wal");
    let wal = std::fs::read_to_string(&wal_path).unwrap();
    let kept: Vec<&str> = wal.lines().filter(|l| !l.starts_with("3 ")).collect();
    assert_eq!(kept.len(), 1 + 4, "header + records 1, 2, 4, 5");
    std::fs::write(&wal_path, kept.join("\n")).unwrap();
    let err = match Engine::new(config) {
        Err(err) => err,
        Ok(_) => panic!("recovery over a gapped WAL must fail"),
    };
    assert!(err.to_string().contains("sequence gap"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_refuses_incompatible_live_stream() {
    let dir = scratch("incompatible");
    let snap = dir.join("other.snap").display().to_string();
    let engine = memory_engine();
    // Snapshot a 3-d unconstrained stream.
    let mut script = vec!["OPEN other unconstrained k=3 eps=0.1 dmin=0.05 dmax=30".to_string()];
    script.push("INSERT 0 0 1 2 3".into());
    script.push(format!("SNAPSHOT {snap}"));
    let replies = run_script(&engine, &script.join("\n"));
    assert!(replies.last().unwrap().starts_with("OK snapshot"));

    // A session bound to an sfdm2 stream must refuse to restore it.
    let engine = memory_engine();
    let script = format!("{OPEN}\nRESTORE {snap}");
    let replies = run_script(&engine, &script);
    assert_eq!(replies[0], "OK opened jobs");
    assert!(
        replies[1].starts_with("ERR incompatible snapshot"),
        "{}",
        replies[1]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let engine = memory_engine();
    let script = [
        "BOGUS",              // unknown command
        "INSERT 0 0 1.0",     // no stream bound
        "QUERY",              // no stream bound
        OPEN,                 // ok
        "INSERT 0 0 1.0",     // dim fixed at 2? no: first insert sets dim
        "INSERT 1 1 2.0 3.0", // dimension mismatch with the 1-d first insert
        "INSERT 2 9 4.0",     // group out of range
        "QUERY 7",            // wrong k
        "PING",
    ]
    .join("\n");
    let replies = run_script(&engine, &script);
    assert!(replies[0].starts_with("ERR unknown command"));
    assert!(replies[1].starts_with("ERR no stream bound"));
    assert!(replies[2].starts_with("ERR no stream bound"));
    assert_eq!(replies[3], "OK opened jobs");
    assert!(replies[4].starts_with("OK inserted"));
    assert!(
        replies[5].starts_with("ERR dimension mismatch"),
        "{}",
        replies[5]
    );
    assert!(replies[6].starts_with("ERR group label"), "{}", replies[6]);
    assert!(replies[7].starts_with("ERR"), "{}", replies[7]);
    assert_eq!(replies[8], "OK pong");
}

#[test]
fn two_sessions_share_one_stream() {
    let engine = memory_engine();
    let a = run_script(&engine, &format!("{OPEN}\nINSERT 0 0 1 1\nINSERT 1 1 5 5"));
    assert!(a.iter().all(|r| r.starts_with("OK ")), "{a:?}");
    // Second session attaches by OPENing the same name with the same spec.
    let b = run_script(&engine, &format!("{OPEN}\nSTATS"));
    assert_eq!(b[0], "OK attached jobs processed=2");
    assert!(b[1].contains("stored=2"), "{}", b[1]);
    // Attaching with a different spec is refused.
    let c = run_script(
        &engine,
        "OPEN jobs sfdm2 quotas=3,3 eps=0.1 dmin=0.05 dmax=30",
    );
    assert!(c[0].starts_with("ERR incompatible snapshot"), "{}", c[0]);
}

#[cfg(unix)]
#[test]
fn unix_socket_sessions_work() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};

    let dir = scratch("socket");
    let socket_path = dir.join("fdm.sock");
    let listener = UnixListener::bind(&socket_path).unwrap();
    let engine = memory_engine();
    let server_engine = engine.clone();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Session::new(server_engine).run(reader, stream).unwrap();
    });

    let mut client = UnixStream::connect(&socket_path).unwrap();
    write!(
        client,
        "{OPEN}\nINSERT 0 0 1 1\nINSERT 1 1 4 4\nSTATS\nQUIT\n"
    )
    .unwrap();
    let replies: Vec<String> = BufReader::new(client.try_clone().unwrap())
        .lines()
        .map(|l| l.unwrap())
        .collect();
    assert_eq!(replies[0], "OK opened jobs");
    assert!(replies[3].contains("processed=2"), "{}", replies[3]);
    assert_eq!(replies[4], "OK bye");
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The sliding-window family member end-to-end: OPEN with a window,
/// ingest past several rotations, STATS reports the window, QUERY stays
/// fair, and old elements age out of the answers.
#[test]
fn sliding_stream_serves_and_ages_out() {
    let engine = memory_engine();
    let mut script =
        vec!["OPEN recent sliding quotas=2,2 eps=0.1 dmin=0.05 dmax=30 window=40".to_string()];
    script.extend(insert_lines(200));
    script.push("STATS".into());
    script.push("QUERY".into());
    let replies = run_script(&engine, &script.join("\n"));
    assert_eq!(replies[0], "OK opened recent");
    let stats = &replies[201];
    assert!(stats.contains("algorithm=sliding"), "{stats}");
    assert!(stats.contains("window=40"), "{stats}");
    assert!(stats.contains("processed=200"), "{stats}");
    let query = &replies[202];
    assert!(query.starts_with("OK k=4"), "{query}");
    // Rotation schedule (W/2 = 20): the queried instance was restarted at
    // arrival 180 at the latest, so nothing older than id 160 can appear.
    let ids = query.split("ids=").nth(1).unwrap();
    for id in ids.split(',') {
        let id: usize = id.parse().unwrap();
        assert!(id >= 160, "stale element {id} leaked into the window");
    }

    // Bad OPEN shapes are protocol errors.
    let errs = run_script(
        &engine,
        "OPEN w sliding quotas=2,2 eps=0.1 dmin=0.05 dmax=30\n\
         OPEN w sliding quotas=2,2 eps=0.1 dmin=0.05 dmax=30 window=1\n\
         OPEN w sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30 window=10",
    );
    assert!(errs.iter().all(|r| r.starts_with("ERR ")), "{errs:?}");

    // Re-attach requires the same window.
    let errs = run_script(
        &engine,
        "OPEN recent sliding quotas=2,2 eps=0.1 dmin=0.05 dmax=30 window=80",
    );
    assert!(
        errs[0].starts_with("ERR") && errs[0].contains("window"),
        "{errs:?}"
    );
}

/// `STATS` surfaces the per-stream persistence counters: WAL appends,
/// full/delta checkpoints, and the last checkpoint's size + format.
#[test]
fn stats_reports_persistence_counters() {
    let dir = scratch("stats_counters");
    let engine = Arc::new(
        Engine::new(ServeConfig {
            data_dir: Some(dir.clone()),
            snapshot_every: Some(10),
            full_every: 3,
            ..ServeConfig::default()
        })
        .unwrap(),
    );
    let mut script = vec![OPEN.to_string()];
    script.extend(insert_lines(25));
    script.push("STATS".into());
    let replies = run_script(&engine, &script.join("\n"));
    let stats = replies.last().unwrap();
    // 25 inserts → every record write-ahead logged; the OPEN anchor wrote
    // the first (and only) full, and the checkpoints at 10 and 20 both
    // lower to dirty-set deltas — a chain of 2, under `full_every`, so
    // the compactor never runs.
    assert!(stats.contains("wal_records=25"), "{stats}");
    assert!(stats.contains("snapshots=1"), "{stats}");
    assert!(stats.contains("deltas=2"), "{stats}");
    assert!(stats.contains("compactions=0"), "{stats}");
    assert!(stats.contains("last_snapshot_format=delta"), "{stats}");
    let bytes: u64 = stats
        .split_whitespace()
        .find_map(|f| f.strip_prefix("last_snapshot_bytes="))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no last_snapshot_bytes in {stats}"));
    assert!(bytes > 0, "{stats}");
    let dirty: u64 = stats
        .split_whitespace()
        .find_map(|f| f.strip_prefix("dirty_bytes="))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no dirty_bytes in {stats}"));
    assert!(
        dirty > 0,
        "the delta checkpoint must count its bytes: {stats}"
    );

    // An explicit export bumps the full-snapshot counter and the format.
    let export = dir.join("x.snap").display().to_string();
    let replies = run_script(
        &engine,
        &format!("OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30\nSNAPSHOT {export} format=json\nSTATS"),
    );
    let stats = replies.last().unwrap();
    assert!(stats.contains("snapshots=2"), "{stats}");
    assert!(stats.contains("last_snapshot_format=json"), "{stats}");

    // A memory-only engine reports zeroed counters (no WAL, no files).
    let engine = memory_engine();
    let mut script = vec![OPEN.to_string()];
    script.extend(insert_lines(5));
    script.push("STATS".into());
    let replies = run_script(&engine, &script.join("\n"));
    let stats = replies.last().unwrap();
    assert!(stats.contains("wal_records=0"), "{stats}");
    assert!(stats.contains("last_snapshot_format=none"), "{stats}");
    let _ = std::fs::remove_dir_all(&dir);
}
