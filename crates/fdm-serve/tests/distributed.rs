//! Distributed-identity suite for coordinator mode.
//!
//! The correctness anchor of the coordinator/worker fan-out: a coordinator
//! over K workers must answer every QUERY **bit-identically** to a
//! single-process `ShardedStream` with K shards fed the same arrival
//! order. The property holds because the coordinator's round-robin insert
//! routing *is* `ShardedStream`'s element-to-shard assignment, and its
//! MERGE fan-in replays `ShardedStream::finalize`'s merge pass
//! operation-for-operation (`summary::merge_summaries`).
//!
//! Plus the failure cells: a dead worker degrades to a typed
//! `ERR worker unavailable: <addr>: <cause>` — never a hang — with the
//! outage visible in STATS and `/metrics`; a SIGKILLed worker restarts
//! from its own WAL and the next QUERY is exact; a worker that crashes
//! *inside* an insert (the WAL append → apply gap, via
//! `FDM_SERVE_CRASH_POINT`) replays the appended record on restart and a
//! restarted coordinator re-derives `processed`/cursor from the workers'
//! positions.

use std::io::Write as _;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use fdm_client::Client;
use fdm_core::point::Element;
use fdm_serve::protocol::{parse_line, ErrorKind, Payload, Request as Cmd, StreamSpec};
use fdm_serve::{serve_tcp, Engine, NetOptions, ServeConfig, Session};
use proptest::prelude::*;

// --- In-process cluster helpers -------------------------------------------

/// Starts one in-process worker engine behind a TCP listener and returns
/// its `ADDR:PORT` (the accept loop runs until the test process exits).
fn start_worker() -> String {
    let engine = Arc::new(Engine::new(ServeConfig::default()).unwrap());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || serve_tcp(engine, listener, NetOptions::default()));
    addr.to_string()
}

/// A coordinator engine over `k` fresh in-process workers.
fn coordinator_over(workers: Vec<String>) -> Arc<Engine> {
    Arc::new(
        Engine::new(ServeConfig {
            workers,
            ..ServeConfig::default()
        })
        .unwrap(),
    )
}

fn coordinator(k: usize) -> Arc<Engine> {
    coordinator_over((0..k).map(|_| start_worker()).collect())
}

/// The OPEN tail for one family member; `shards > 1` only on the
/// single-process reference (coordinator streams are always unsharded —
/// the workers are the shards).
fn open_line(algo: &str, shards: usize) -> String {
    let mut line = format!("OPEN jobs {algo} quotas=2,2 eps=0.1 dmin=0.05 dmax=30");
    if algo == "sliding" {
        line.push_str(" window=16");
    }
    if shards > 1 {
        line.push_str(&format!(" shards={shards}"));
    }
    line
}

fn spec_of(line: &str) -> (String, StreamSpec) {
    match parse_line(line).unwrap().unwrap() {
        Cmd::Open { name, spec } => (name, spec),
        other => panic!("{other:?}"),
    }
}

/// Feeds one arrival order and returns the QUERY outcome (errors included:
/// both sides must fail identically too).
fn feed_and_query(
    engine: &Engine,
    open: &str,
    arrivals: &[Element],
) -> Result<Payload, fdm_serve::protocol::ErrorReply> {
    let (name, spec) = spec_of(open);
    engine.open(&name, &spec)?;
    for e in arrivals {
        let line = format!(
            "INSERT {} {} {}",
            e.id,
            e.group,
            e.point
                .iter()
                .map(f64::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        );
        engine.insert(&name, e, &line)?;
    }
    engine.query(&name, None)
}

fn deterministic_arrivals(n: usize) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.7391).sin() * 9.0;
            let y = (i as f64 * 0.2113).cos() * 9.0;
            Element::new(i, vec![x, y], i % 2)
        })
        .collect()
}

// --- The bit-identity property --------------------------------------------

/// Random two-group streams with every group pinned to ≥ 4 early members,
/// so quotas=2,2 stays feasible regardless of the random labels.
fn arrivals_strategy() -> impl Strategy<Value = Vec<Element>> {
    proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0usize..2), 40..=96).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, g))| {
                let group = if i < 8 { i % 2 } else { g };
                Element::new(i, vec![x, y], group)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary arrival orders × K ∈ {1, 2, 4} × the family: the
    /// coordinator's QUERY must be bit-identical (ids and the exact f64
    /// diversity) to a single-process `ShardedStream` with K shards.
    #[test]
    fn coordinator_query_is_bit_identical_to_sharded_stream(
        arrivals in arrivals_strategy(),
        k in prop_oneof![Just(1usize), Just(2), Just(4)],
        algo in prop_oneof![Just("sfdm1"), Just("sfdm2"), Just("sliding")],
    ) {
        let reference = feed_and_query(
            &Engine::new(ServeConfig::default()).unwrap(),
            &open_line(algo, k),
            &arrivals,
        );
        let distributed = feed_and_query(&coordinator(k), &open_line(algo, 1), &arrivals);
        prop_assert_eq!(&distributed, &reference, "K={} algo={}", k, algo);
        if let (Ok(Payload::Query(d)), Ok(Payload::Query(r))) = (&distributed, &reference) {
            prop_assert_eq!(
                d.diversity.to_bits(),
                r.diversity.to_bits(),
                "diversity must match to the bit (K={}, algo={})",
                k,
                algo
            );
        }
    }
}

/// Steals a worker's export anchor: an external consumer pulling
/// `MERGE since=0:0` straight off the worker bumps its export epoch, so
/// the coordinator's cached `(epoch, crc)` no longer matches and its next
/// refresh is forced through a full-frame re-anchor — no restart needed.
fn poke_worker(addr: &str, open: &str) {
    let (name, spec) = spec_of(open);
    let mut client = Client::connect_tcp_retry(addr, 5, Duration::from_millis(25)).unwrap();
    client.open(&name, &spec).unwrap();
    let frame = client.merge_since((0, 0)).unwrap();
    assert!(
        !frame.delta,
        "epoch 0 can never match: the frame must be full"
    );
}

/// The batch-size grid for the pipelined INSERTB path: 1 (degenerate),
/// 7 (coprime with every K in the grid, so flush rounds straddle worker
/// boundaries), K (exactly one element per worker), 3K+1 (several whole
/// rounds plus a remainder).
fn batch_sizes(k: usize) -> [usize; 4] {
    [1, 7, k, 3 * k + 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched fan-out × interleaved incremental MERGE. Arrivals feed via
    /// `INSERTB` in batches from `batch_sizes`, split into three segments
    /// with a QUERY after each: the first QUERY anchors every worker
    /// cache with a full frame, later ones ride `FDMDELT2` deltas, an
    /// immediate repeat QUERY must come from the merged-solution cache,
    /// and an optional "poke" (an external `MERGE since=0:0` consumer)
    /// steals worker 0's anchor so the next refresh is a forced full
    /// re-anchor. Every QUERY — full, delta, cached, or re-anchored —
    /// must be bit-identical to a single-process `ShardedStream` fed the
    /// same prefix.
    #[test]
    fn batched_inserts_with_incremental_merge_are_bit_identical(
        arrivals in arrivals_strategy(),
        k in prop_oneof![Just(1usize), Just(2), Just(4)],
        algo in prop_oneof![Just("sfdm1"), Just("sfdm2"), Just("sliding")],
        batch_sel in 0usize..4,
        poke in prop_oneof![Just(false), Just(true)],
    ) {
        let batch = batch_sizes(k)[batch_sel];
        let workers: Vec<String> = (0..k).map(|_| start_worker()).collect();
        let engine = coordinator_over(workers.clone());
        let (name, spec) = spec_of(&open_line(algo, 1));
        engine.open(&name, &spec).unwrap();
        let reference = Engine::new(ServeConfig::default()).unwrap();
        let (ref_name, ref_spec) = spec_of(&open_line(algo, k));
        reference.open(&ref_name, &ref_spec).unwrap();

        let segment_len = arrivals.len().div_ceil(3);
        let mut fed = 0usize;
        for (i, segment) in arrivals.chunks(segment_len).enumerate() {
            for chunk in segment.chunks(batch) {
                match engine.insert_batch(&name, chunk).unwrap() {
                    Payload::InsertedBatch { seq, count } => {
                        fed += chunk.len();
                        prop_assert_eq!(seq, fed);
                        prop_assert_eq!(count, chunk.len());
                    }
                    other => prop_assert!(false, "unexpected reply {:?}", other),
                }
                for e in chunk {
                    insert_via(&reference, &ref_name, e).unwrap();
                }
            }
            let distributed = engine.query(&name, None).unwrap();
            let expected = reference.query(&ref_name, None).unwrap();
            prop_assert_eq!(
                &distributed, &expected,
                "segment {} (K={}, algo={}, batch={})", i, k, algo, batch
            );
            if let (Payload::Query(d), Payload::Query(r)) = (&distributed, &expected) {
                prop_assert_eq!(
                    d.diversity.to_bits(),
                    r.diversity.to_bits(),
                    "diversity must match to the bit"
                );
            }
            // No insert intervened: this repeat must be a cache hit — and
            // identical anyway.
            prop_assert_eq!(&engine.query(&name, None).unwrap(), &expected);
            if poke && i == 0 {
                poke_worker(&workers[0], &open_line(algo, 1));
            }
        }
    }
}

/// The golden cell: one fixed stream, K = 2, rendered through a protocol
/// session — the coordinator's reply lines are pinned verbatim, and the
/// QUERY line equals the single-process `shards=2` rendering.
#[test]
fn golden_coordinator_session_matches_sharded_reference() {
    let arrivals = deterministic_arrivals(50);
    let run = |engine: Arc<Engine>, open: &str| -> Vec<String> {
        let mut script = vec![open.to_string()];
        for e in &arrivals {
            let coords: Vec<String> = e.point.iter().map(f64::to_string).collect();
            script.push(format!("INSERT {} {} {}", e.id, e.group, coords.join(" ")));
        }
        script.push("QUERY".into());
        let mut output = Vec::new();
        Session::new(engine)
            .run(
                std::io::Cursor::new(script.join("\n").into_bytes()),
                &mut output,
            )
            .unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    };

    let coordinator_lines = run(coordinator(2), &open_line("sfdm2", 1));
    let reference_lines = run(
        Arc::new(Engine::new(ServeConfig::default()).unwrap()),
        &open_line("sfdm2", 2),
    );
    assert_eq!(
        coordinator_lines, reference_lines,
        "every rendered coordinator reply must match the sharded reference"
    );
    assert_eq!(
        coordinator_lines.last().unwrap(),
        GOLDEN_QUERY,
        "the pinned golden QUERY reply"
    );
}

/// The exact QUERY reply of `golden_coordinator_session_matches_sharded_reference`:
/// 50 deterministic arrivals, sfdm2 quotas=2,2 eps=0.1, K = 2. Any change
/// here is a wire-visible behavior change of the whole merge path.
const GOLDEN_QUERY: &str = "OK k=4 diversity=10.713654459069144 ids=0,6,9,15";

// --- Typed failure cells ---------------------------------------------------

/// A worker nobody listens on: OPEN fails with the typed
/// `worker unavailable` error naming the address — after bounded connect
/// retries, never a hang.
#[test]
fn unreachable_worker_degrades_typed() {
    // Bind-then-drop reserves an address that will refuse connections.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let engine = coordinator_over(vec![addr.clone()]);
    let (name, spec) = spec_of(&open_line("sfdm2", 1));
    let started = std::time::Instant::now();
    let err = engine.open(&name, &spec).unwrap_err();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "the failure must be bounded by the connect retry budget"
    );
    assert_eq!(err.kind, ErrorKind::WorkerUnavailable);
    assert!(
        err.message.starts_with(&addr),
        "the error must name the failing worker: {err}"
    );
    assert!(err.to_string().starts_with("worker unavailable: "), "{err}");
}

/// Coordinator streams reject `shards=` (the workers are the shards) and
/// QUERY on a zero-arrival stream is the typed `empty stream` error — on
/// the coordinator exactly as on a single node.
#[test]
fn coordinator_rejects_shards_and_types_empty_query() {
    let engine = coordinator(2);
    let (name, spec) = spec_of(&open_line("sfdm2", 2));
    let err = engine.open(&name, &spec).unwrap_err();
    assert!(err.message.contains("shards=1"), "{err}");

    for engine in [
        coordinator(2),
        Arc::new(Engine::new(ServeConfig::default()).unwrap()),
    ] {
        let (name, spec) = spec_of(&open_line("sfdm2", 1));
        engine.open(&name, &spec).unwrap();
        let err = engine.query(&name, None).unwrap_err();
        assert_eq!(err.kind, ErrorKind::EmptyStream);
        assert_eq!(
            err.to_string(),
            "empty stream: stream `jobs` has processed no elements; INSERT before QUERY"
        );
    }
}

// --- Crash cells over real worker binaries ---------------------------------

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdm_distributed_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns a real `fdm-serve` worker with a TCP listener and returns the
/// child plus its `ADDR:PORT` (parsed from the "listening on" stderr
/// line). Mirrors the crash-matrix helper; stdin is held open so the
/// process keeps serving.
fn spawn_worker(dir: &Path, crash_point: Option<&str>) -> (std::process::Child, String) {
    spawn_worker_on(dir, crash_point, "127.0.0.1:0")
}

/// `spawn_worker` with an explicit listen address, for restarting a
/// killed worker on the port a still-running coordinator already holds.
fn spawn_worker_on(
    dir: &Path,
    crash_point: Option<&str>,
    listen: &str,
) -> (std::process::Child, String) {
    use std::io::{BufRead, BufReader};
    let mut command = Command::new(env!("CARGO_BIN_EXE_fdm-serve"));
    command
        .args([
            "--data-dir",
            dir.to_str().unwrap(),
            "--snapshot-every",
            "8",
            "--listen",
            listen,
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    if let Some(point) = crash_point {
        command.env("FDM_SERVE_CRASH_POINT", point);
    }
    let mut child = command.spawn().expect("spawn fdm-serve worker");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut addr = None;
    let mut line = String::new();
    while stderr.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(rest) = line.trim().strip_prefix("fdm-serve: listening on tcp://") {
            addr = Some(rest.to_string());
            break;
        }
        line.clear();
    }
    std::thread::spawn(move || {
        let mut sink = String::new();
        while stderr.read_line(&mut sink).unwrap_or(0) > 0 {
            sink.clear();
        }
    });
    (child, addr.expect("no tcp listen line on worker stderr"))
}

fn insert_via(
    engine: &Engine,
    name: &str,
    e: &Element,
) -> Result<Payload, fdm_serve::protocol::ErrorReply> {
    let coords: Vec<String> = e.point.iter().map(f64::to_string).collect();
    let line = format!("INSERT {} {} {}", e.id, e.group, coords.join(" "));
    engine.insert(name, e, &line)
}

/// SIGKILL a worker mid-stream: the next insert routed to it fails typed
/// (named address, health down in STATS and `/metrics`), the worker
/// restarts over its own data dir (WAL replay), a restarted coordinator
/// re-derives `processed`/cursor from the workers — and the next QUERY is
/// byte-identical to an uninterrupted single-process K=2 run.
#[test]
fn worker_sigkill_restart_then_query_exact() {
    let arrivals = deterministic_arrivals(30);
    let dir0 = scratch("sigkill_w0");
    let dir1 = scratch("sigkill_w1");
    let (mut w0, addr0) = spawn_worker(&dir0, None);
    let (w1, addr1) = spawn_worker(&dir1, None);

    let engine = coordinator_over(vec![addr0.clone(), addr1.clone()]);
    let (name, spec) = spec_of(&open_line("sfdm2", 1));
    engine.open(&name, &spec).unwrap();
    for e in &arrivals[..20] {
        insert_via(&engine, &name, e).unwrap();
    }

    // Cursor is at worker 0 (20 % 2): kill exactly the worker the next
    // insert routes to. SIGKILL = no cleanup, the WAL is the recovery.
    w0.kill().unwrap();
    let _ = w0.wait();
    let err = insert_via(&engine, &name, &arrivals[20]).unwrap_err();
    assert_eq!(err.kind, ErrorKind::WorkerUnavailable);
    assert!(err.message.starts_with(&addr0), "{err}");

    // The outage is operator-visible.
    let stats = match engine.stats(&name).unwrap() {
        Payload::Stats(line) => line,
        other => panic!("{other:?}"),
    };
    assert!(stats.contains("worker0_up=0"), "{stats}");
    assert!(stats.contains("worker1_up=1"), "{stats}");
    let metrics = engine.render_metrics();
    assert!(
        metrics.contains(&format!("fdm_worker_up{{worker=\"{addr0}\"}} 0")),
        "{metrics}"
    );
    assert!(
        metrics.contains(&format!(
            "fdm_worker_failures_total{{worker=\"{addr0}\"}} 1"
        )),
        "{metrics}"
    );

    // Restart worker 0 over the same data dir (fresh port — ports are
    // config, the data dir is the identity) and restart the coordinator:
    // it must re-derive processed=20 and cursor=0 from the workers.
    let (_w0b, addr0b) = spawn_worker(&dir0, None);
    let engine = coordinator_over(vec![addr0b, addr1]);
    match engine.open(&name, &spec).unwrap() {
        Payload::Attached { processed, .. } => assert_eq!(processed, 20, "WAL replay"),
        other => panic!("{other:?}"),
    }
    for e in &arrivals[20..] {
        insert_via(&engine, &name, e).unwrap();
    }

    let reference = feed_and_query(
        &Engine::new(ServeConfig::default()).unwrap(),
        &open_line("sfdm2", 2),
        &arrivals,
    )
    .unwrap();
    assert_eq!(
        engine.query(&name, None).unwrap(),
        reference,
        "post-restart QUERY must be bit-identical to the uninterrupted sharded run"
    );
    drop(w1);
    let _ = std::fs::remove_dir_all(&dir0);
    let _ = std::fs::remove_dir_all(&dir1);
}

/// The WAL append → apply gap on a *worker*, under coordinator traffic:
/// the armed insert dies without an ack (typed error at the coordinator),
/// but the record is in the worker's WAL — restart replays it, and the
/// restarted coordinator's re-derived position counts it. The continued
/// stream still matches the uninterrupted reference, because the crashed
/// element landed exactly where the round-robin order says it belongs.
#[test]
fn worker_crash_in_wal_gap_replays_and_stays_identical() {
    let arrivals = deterministic_arrivals(30);
    let dir0 = scratch("walgap_w0");
    let dir1 = scratch("walgap_w1");
    // Worker 0 aborts inside its 11th insert, after the WAL append.
    let (_w0, addr0) = spawn_worker(&dir0, Some("between-wal-append-and-apply:11"));
    let (_w1, addr1) = spawn_worker(&dir1, None);

    let engine = coordinator_over(vec![addr0.clone(), addr1.clone()]);
    let (name, spec) = spec_of(&open_line("sfdm2", 1));
    engine.open(&name, &spec).unwrap();
    for e in &arrivals[..20] {
        insert_via(&engine, &name, e).unwrap();
    }
    // Arrival 20 is worker 0's 11th insert: the crash point fires between
    // its WAL append and its apply — no ack, typed failure.
    let err = insert_via(&engine, &name, &arrivals[20]).unwrap_err();
    assert_eq!(err.kind, ErrorKind::WorkerUnavailable);
    assert!(err.message.starts_with(&addr0), "{err}");

    // Restart worker 0: recovery replays the appended record, so the
    // worker holds 11 arrivals — the un-acked element applied after all.
    // A restarted coordinator derives processed=21, cursor=1 and the
    // stream continues as if the crash never happened.
    let (_w0b, addr0b) = spawn_worker(&dir0, None);
    let engine = coordinator_over(vec![addr0b, addr1]);
    match engine.open(&name, &spec).unwrap() {
        Payload::Attached { processed, .. } => {
            assert_eq!(processed, 21, "the WAL-appended record must replay")
        }
        other => panic!("{other:?}"),
    }
    let stats = match engine.stats(&name).unwrap() {
        Payload::Stats(line) => line,
        other => panic!("{other:?}"),
    };
    assert!(stats.contains("cursor=1"), "{stats}");
    for e in &arrivals[21..] {
        insert_via(&engine, &name, e).unwrap();
    }

    let reference = feed_and_query(
        &Engine::new(ServeConfig::default()).unwrap(),
        &open_line("sfdm2", 2),
        &arrivals,
    )
    .unwrap();
    assert_eq!(engine.query(&name, None).unwrap(), reference);
    let _ = std::fs::remove_dir_all(&dir0);
    let _ = std::fs::remove_dir_all(&dir1);
}

/// Kill a worker *after* the coordinator has fetched MERGE frames from
/// the fleet (its per-worker caches are warm): a repeat QUERY with no
/// intervening insert still answers — served from the merged-solution
/// cache, dead worker notwithstanding; an insert invalidates that cache
/// and the next QUERY fails typed, naming the dead worker, without
/// corrupting the surviving caches; and once the worker restarts over
/// its own data dir (same port) the next QUERY re-anchors it with a full
/// frame and answers bit-identically to the uninterrupted reference.
#[test]
fn worker_killed_mid_query_cycle_recovers_bit_identical() {
    let arrivals = deterministic_arrivals(21);
    let dir0 = scratch("midquery_w0");
    let dir1 = scratch("midquery_w1");
    let (_w0, addr0) = spawn_worker(&dir0, None);
    let (mut w1, addr1) = spawn_worker(&dir1, None);

    let engine = coordinator_over(vec![addr0.clone(), addr1.clone()]);
    let (name, spec) = spec_of(&open_line("sfdm2", 1));
    engine.open(&name, &spec).unwrap();
    engine.insert_batch(&name, &arrivals[..20]).unwrap();

    // Warm the caches: this QUERY pulls one full frame per worker.
    let reference20 = feed_and_query(
        &Engine::new(ServeConfig::default()).unwrap(),
        &open_line("sfdm2", 2),
        &arrivals[..20],
    )
    .unwrap();
    assert_eq!(engine.query(&name, None).unwrap(), reference20);

    w1.kill().unwrap();
    let _ = w1.wait();

    // No insert intervened: the merged solution is served from cache.
    assert_eq!(engine.query(&name, None).unwrap(), reference20);
    let metrics = engine.render_metrics();
    assert!(
        metrics.contains("fdm_merge_cache_hits_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("fdm_merge_bytes_total{kind=\"full\"}"),
        "{metrics}"
    );

    // Cursor is at worker 0 (20 % 2), so the insert lands on the live
    // worker — and invalidates the cached solution. The next QUERY must
    // walk the fleet again and fails typed on the dead worker.
    insert_via(&engine, &name, &arrivals[20]).unwrap();
    let err = engine.query(&name, None).unwrap_err();
    assert_eq!(err.kind, ErrorKind::WorkerUnavailable);
    assert!(err.message.starts_with(&addr1), "{err}");

    // Restart worker 1 on its old port over its own data dir: the
    // coordinator re-dials lazily, and the restarted worker's export
    // epoch restarts from zero, so the coordinator's stale anchor forces
    // a full-frame re-anchor. The answer must be exact.
    let (_w1b, _) = spawn_worker_on(&dir1, None, &addr1);
    let reference21 = feed_and_query(
        &Engine::new(ServeConfig::default()).unwrap(),
        &open_line("sfdm2", 2),
        &arrivals,
    )
    .unwrap();
    assert_eq!(
        engine.query(&name, None).unwrap(),
        reference21,
        "post-restart QUERY must re-anchor and stay bit-identical"
    );
    let _ = std::fs::remove_dir_all(&dir0);
    let _ = std::fs::remove_dir_all(&dir1);
}

/// Mid-batch worker death *before* any WAL append — the acked prefix is
/// exactly what survives. Worker 0 aborts at the start of its second
/// `INSERTB` sub-batch, so of the second coordinator flush only worker
/// 1's half lands: the coordinator acks the longest contiguous prefix
/// (nothing of that flush), names the blocking worker in the typed
/// error, keeps `cursor ≡ processed mod K`, and remembers worker 1's
/// landed extras. After worker 0 restarts, a fresh coordinator
/// re-derives the acked prefix from the workers' positions and the
/// client's replay of the whole unacked suffix heals worker 1's half by
/// skip — ending bit-identical to the uninterrupted reference.
#[test]
fn batch_crash_before_wal_append_acks_exact_prefix() {
    let arrivals = deterministic_arrivals(16);
    let dir0 = scratch("batch_pre_w0");
    let dir1 = scratch("batch_pre_w1");
    let (_w0, addr0) = spawn_worker(&dir0, Some("before-batch-wal-append:2"));
    let (_w1, addr1) = spawn_worker(&dir1, None);
    let engine = coordinator_over(vec![addr0.clone(), addr1.clone()]);
    let (name, spec) = spec_of(&open_line("sfdm2", 1));
    engine.open(&name, &spec).unwrap();

    match engine.insert_batch(&name, &arrivals[..8]).unwrap() {
        Payload::InsertedBatch { seq, count } => {
            assert_eq!((seq, count), (8, 8));
        }
        other => panic!("{other:?}"),
    }
    // Second flush: worker 0 dies before appending anything, worker 1's
    // sub-batch lands. The contiguous prefix of this flush is empty.
    let err = engine.insert_batch(&name, &arrivals[8..]).unwrap_err();
    assert_eq!(err.kind, ErrorKind::WorkerUnavailable);
    assert!(err.message.starts_with(&addr0), "{err}");
    let stats = match engine.stats(&name).unwrap() {
        Payload::Stats(line) => line,
        other => panic!("{other:?}"),
    };
    assert!(stats.contains("processed=8"), "{stats}");
    assert!(stats.contains("cursor=0"), "{stats}");
    assert!(stats.contains("worker1_position=8"), "{stats}");

    // Restart worker 0: nothing of the second flush was appended, so it
    // recovers exactly its half of the acked prefix.
    let (_w0b, addr0b) = spawn_worker(&dir0, None);
    let engine = coordinator_over(vec![addr0b, addr1]);
    match engine.open(&name, &spec).unwrap() {
        Payload::Attached { processed, .. } => {
            assert_eq!(processed, 8, "exactly the acked prefix survives")
        }
        other => panic!("{other:?}"),
    }
    let stats = match engine.stats(&name).unwrap() {
        Payload::Stats(line) => line,
        other => panic!("{other:?}"),
    };
    assert!(stats.contains("cursor=0"), "{stats}");
    assert!(stats.contains("worker0_position=4"), "{stats}");
    assert!(stats.contains("worker1_position=8"), "{stats}");

    // Replay the whole unacked suffix: worker 1's four extras are healed
    // by skip, worker 0 receives its missing half.
    match engine.insert_batch(&name, &arrivals[8..]).unwrap() {
        Payload::InsertedBatch { seq, count } => {
            assert_eq!((seq, count), (16, 8));
        }
        other => panic!("{other:?}"),
    }
    let reference = feed_and_query(
        &Engine::new(ServeConfig::default()).unwrap(),
        &open_line("sfdm2", 2),
        &arrivals,
    )
    .unwrap();
    assert_eq!(engine.query(&name, None).unwrap(), reference);
    let _ = std::fs::remove_dir_all(&dir0);
    let _ = std::fs::remove_dir_all(&dir1);
}

/// Mid-batch death in the WAL append → apply gap — the WAL decides, and
/// here it says *everything* is durable. Worker 0 aborts after appending
/// its whole second sub-batch but before applying it: the coordinator
/// acks nothing of that flush, but on restart the worker replays the
/// appended records, so the re-derived prefix covers the entire stream —
/// `Attached processed` tells the replaying client it has nothing left
/// to send.
#[test]
fn batch_crash_in_wal_gap_makes_whole_flush_durable() {
    let arrivals = deterministic_arrivals(16);
    let dir0 = scratch("batch_gap_w0");
    let dir1 = scratch("batch_gap_w1");
    let (_w0, addr0) = spawn_worker(&dir0, Some("between-wal-append-and-apply:2"));
    let (_w1, addr1) = spawn_worker(&dir1, None);
    let engine = coordinator_over(vec![addr0.clone(), addr1.clone()]);
    let (name, spec) = spec_of(&open_line("sfdm2", 1));
    engine.open(&name, &spec).unwrap();

    engine.insert_batch(&name, &arrivals[..8]).unwrap();
    let err = engine.insert_batch(&name, &arrivals[8..]).unwrap_err();
    assert_eq!(err.kind, ErrorKind::WorkerUnavailable);
    assert!(err.message.starts_with(&addr0), "{err}");
    let stats = match engine.stats(&name).unwrap() {
        Payload::Stats(line) => line,
        other => panic!("{other:?}"),
    };
    assert!(stats.contains("processed=8"), "{stats}");
    assert!(stats.contains("cursor=0"), "{stats}");

    // Restart worker 0: its WAL holds both sub-batches, replay applies
    // them — the whole stream turns out durable.
    let (_w0b, addr0b) = spawn_worker(&dir0, None);
    let engine = coordinator_over(vec![addr0b, addr1]);
    match engine.open(&name, &spec).unwrap() {
        Payload::Attached { processed, .. } => {
            assert_eq!(processed, 16, "the appended sub-batch must replay")
        }
        other => panic!("{other:?}"),
    }
    let stats = match engine.stats(&name).unwrap() {
        Payload::Stats(line) => line,
        other => panic!("{other:?}"),
    };
    assert!(stats.contains("cursor=0"), "{stats}");

    // The re-attach reported processed=16: the client's replay window
    // `arrivals[processed..]` is empty — nothing is sent twice, and the
    // stream already answers over the full 16 elements.
    let reference = feed_and_query(
        &Engine::new(ServeConfig::default()).unwrap(),
        &open_line("sfdm2", 2),
        &arrivals,
    )
    .unwrap();
    assert_eq!(engine.query(&name, None).unwrap(), reference);
    let _ = std::fs::remove_dir_all(&dir0);
    let _ = std::fs::remove_dir_all(&dir1);
}

/// The full distributed loop over real processes end to end: a real
/// coordinator *binary* (not an in-process engine) fronting two real
/// workers, driven over its stdin session — the deployment shape
/// `examples/serve_cluster.sh` ships.
#[test]
fn coordinator_binary_fronts_real_workers() {
    let arrivals = deterministic_arrivals(30);
    let dir0 = scratch("binary_w0");
    let dir1 = scratch("binary_w1");
    let (_w0, addr0) = spawn_worker(&dir0, None);
    let (_w1, addr1) = spawn_worker(&dir1, None);

    let mut script = vec![open_line("sfdm2", 1)];
    for e in &arrivals {
        let coords: Vec<String> = e.point.iter().map(f64::to_string).collect();
        script.push(format!("INSERT {} {} {}", e.id, e.group, coords.join(" ")));
    }
    script.push("QUERY".into());
    script.push("QUIT".into());

    let mut child = Command::new(env!("CARGO_BIN_EXE_fdm-serve"))
        .args(["--worker", &addr0, "--worker", &addr1])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");
    {
        let mut stdin = child.stdin.take().unwrap();
        stdin
            .write_all(format!("{}\n", script.join("\n")).as_bytes())
            .unwrap();
    }
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let query_line = stdout.lines().rev().nth(1).unwrap().to_string();

    let reference = feed_and_query(
        &Engine::new(ServeConfig::default()).unwrap(),
        &open_line("sfdm2", 2),
        &arrivals,
    )
    .unwrap();
    let reference_line = fdm_serve::protocol::Response::Ok(reference).render();
    assert_eq!(query_line, reference_line);
    let _ = std::fs::remove_dir_all(&dir0);
    let _ = std::fs::remove_dir_all(&dir1);
}
