use fdm_core::point::Element;
use fdm_serve::protocol::{parse_line, Payload, Request as Cmd};
use fdm_serve::{Engine, ServeConfig};

#[test]
fn merge_since_answers_delta_after_matching_anchor() {
    let engine = Engine::new(ServeConfig::default()).unwrap();
    let (name, spec) = match parse_line("OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30")
        .unwrap()
        .unwrap()
    {
        Cmd::Open { name, spec } => (name, spec),
        other => panic!("{other:?}"),
    };
    engine.open(&name, &spec).unwrap();
    let arrivals: Vec<Element> = (0..30)
        .map(|i| {
            let x = (i as f64 * 0.7391).sin() * 9.0;
            let y = (i as f64 * 0.2113).cos() * 9.0;
            Element::new(i, vec![x, y], i % 2)
        })
        .collect();
    engine.insert_batch(&name, &arrivals[..20]).unwrap();
    let (epoch, crc) = match engine.merge_since(&name, (0, 0)).unwrap() {
        Payload::MergeSince {
            delta, epoch, crc, ..
        } => {
            assert!(!delta, "first contact must be full");
            (epoch, crc)
        }
        other => panic!("{other:?}"),
    };
    engine.insert_batch(&name, &arrivals[20..]).unwrap();
    match engine.merge_since(&name, (epoch, crc)).unwrap() {
        Payload::MergeSince {
            delta, epoch: e2, ..
        } => {
            assert!(delta, "matching anchor after appends must ride a delta");
            assert_eq!(e2, epoch);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn coordinator_refresh_rides_deltas() {
    use fdm_serve::{serve_tcp, NetOptions};
    use std::net::TcpListener;
    use std::sync::Arc;
    let workers: Vec<String> = (0..2)
        .map(|_| {
            let engine = Arc::new(Engine::new(ServeConfig::default()).unwrap());
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            std::thread::spawn(move || serve_tcp(engine, listener, NetOptions::default()));
            addr.to_string()
        })
        .collect();
    let engine = Engine::new(ServeConfig {
        workers,
        ..ServeConfig::default()
    })
    .unwrap();
    let (name, spec) = match parse_line("OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30")
        .unwrap()
        .unwrap()
    {
        Cmd::Open { name, spec } => (name, spec),
        other => panic!("{other:?}"),
    };
    engine.open(&name, &spec).unwrap();
    let arrivals: Vec<Element> = (0..30)
        .map(|i| {
            let x = (i as f64 * 0.7391).sin() * 9.0;
            let y = (i as f64 * 0.2113).cos() * 9.0;
            Element::new(i, vec![x, y], i % 2)
        })
        .collect();
    engine.insert_batch(&name, &arrivals[..20]).unwrap();
    engine.query(&name, None).unwrap();
    engine.insert_batch(&name, &arrivals[20..]).unwrap();
    engine.query(&name, None).unwrap();
    let metrics = engine.render_metrics();
    let delta_line = metrics
        .lines()
        .find(|l| l.starts_with("fdm_merge_bytes_total{kind=\"delta\"}"))
        .unwrap()
        .to_string();
    let value: f64 = delta_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(value > 0.0, "second QUERY must ride deltas: {metrics}");
}
