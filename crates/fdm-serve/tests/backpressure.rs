//! Backpressure suite: over-limit inserts must get a typed `ERR busy`
//! reply instead of queueing unboundedly — both for the per-stream
//! pending-insert bound and for the token-bucket rate limit — and the
//! rejections must show up in `/metrics`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use fdm_serve::protocol::{parse_line, ErrorReply, Payload, Request as Cmd, StreamSpec};
use fdm_serve::{Engine, ServeConfig};

const OPEN: &str = "OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30";

fn spec_of(line: &str) -> (String, StreamSpec) {
    match parse_line(line).unwrap().unwrap() {
        Cmd::Open { name, spec } => (name, spec),
        other => panic!("{other:?}"),
    }
}

fn insert(engine: &Engine, name: &str, i: usize) -> Result<Payload, ErrorReply> {
    let line = format!("INSERT {i} {} {}.0 {}.5", i % 2, i % 13, i % 7);
    match parse_line(&line).unwrap().unwrap() {
        Cmd::Insert(e) => engine.insert(name, &e, &line),
        other => panic!("{other:?}"),
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdm_backpressure_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Token bucket: capacity = one second's worth of inserts, so a burst of
/// `per_sec` passes and the next immediate insert is rejected with a
/// typed `busy` error; after the bucket refills, inserts flow again.
#[test]
fn rate_limited_streams_reject_with_busy_and_recover() {
    let engine = Engine::new(ServeConfig {
        rate_limit: Some(2.0),
        ..ServeConfig::default()
    })
    .unwrap();
    let (name, spec) = spec_of(OPEN);
    engine.open(&name, &spec).unwrap();

    // The one-second burst (capacity 2) passes...
    insert(&engine, &name, 0).unwrap();
    insert(&engine, &name, 1).unwrap();
    // ...and the next immediate insert is over the limit.
    let err = insert(&engine, &name, 2).unwrap_err();
    assert_eq!(err.kind, fdm_serve::protocol::ErrorKind::Busy);
    assert!(
        err.to_string().starts_with("busy: ") && err.message.contains("rate limit"),
        "{err}"
    );

    // Refill at 2/sec: after ~0.6 s at least one token is back.
    std::thread::sleep(Duration::from_millis(600));
    insert(&engine, &name, 3).unwrap();

    // The rejection is visible to operators.
    let metrics = engine.render_metrics();
    assert!(
        metrics.contains("fdm_busy_rejections_total{reason=\"rate_limit\"} 1"),
        "{metrics}"
    );
}

/// Pending-insert bound: while one insert holds the stream's durable
/// phase (a deliberately slowed checkpoint via
/// `FDM_SERVE_SNAPSHOT_PAUSE_MS`), a concurrent insert over the
/// `max_pending_inserts` bound must be rejected immediately with `busy`
/// rather than queueing behind the stall — and once the stall clears,
/// inserts are accepted again.
#[test]
fn full_pending_queue_rejects_with_busy_instead_of_queueing() {
    // Arm the pause before the engine ever touches a snapshot path. This
    // is the only test in this binary that triggers snapshot writes, so
    // the process-wide cached env value belongs to it alone.
    std::env::set_var("FDM_SERVE_SNAPSHOT_PAUSE_MS", "600");
    let dir = scratch("queue_full");
    let engine = Arc::new(
        Engine::new(ServeConfig {
            data_dir: Some(dir.clone()),
            snapshot_every: Some(2),
            full_every: 0,
            max_pending_inserts: 1,
            ..ServeConfig::default()
        })
        .unwrap(),
    );
    let (name, spec) = spec_of(OPEN);
    engine.open(&name, &spec).unwrap();
    insert(&engine, &name, 0).unwrap();

    // Insert #2 trips the checkpoint and sleeps ~600 ms inside it while
    // holding the stream's durable phase (and its pending slot).
    let slow = {
        let engine = engine.clone();
        let name = name.clone();
        std::thread::spawn(move || insert(&engine, &name, 1))
    };
    std::thread::sleep(Duration::from_millis(200));

    // With max_pending_inserts = 1 the stalled insert owns the only
    // slot: this one must bounce now, not after the 600 ms stall.
    let started = std::time::Instant::now();
    let err = insert(&engine, &name, 2).unwrap_err();
    assert_eq!(err.kind, fdm_serve::protocol::ErrorKind::Busy);
    assert!(
        err.to_string().starts_with("busy: ") && err.message.contains("pending inserts"),
        "{err}"
    );
    assert!(
        started.elapsed() < Duration::from_millis(300),
        "busy rejection must not wait for the stall ({:?})",
        started.elapsed()
    );

    slow.join().unwrap().unwrap();
    // Stall over, slot free: inserts flow again.
    insert(&engine, &name, 3).unwrap();

    let metrics = engine.render_metrics();
    assert!(
        metrics.contains("fdm_busy_rejections_total{reason=\"queue_full\"} 1"),
        "{metrics}"
    );
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}
