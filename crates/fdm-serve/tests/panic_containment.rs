//! Panic-containment suite: a panic injected into one tenant's request
//! (via the deterministic `FDM_SERVE_PANIC_POINT` hook) must degrade to
//! one `ERR` reply on that connection — never a dead process, never a
//! poisoned lock bricking other tenants, never a WAL/state divergence.
//!
//! Every scenario spawns the real binary with the hook armed in the
//! child's environment, so the in-process test threads never race on a
//! process-global env var.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

const OPEN_VICTIM: &str = "OPEN victim sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30";
const OPEN_HEALTHY: &str = "OPEN healthy sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdm_panic_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns the binary with `FDM_SERVE_PANIC_POINT` armed and a TCP
/// listener on an ephemeral port; returns the child and the port.
fn spawn_armed(panic_point: &str, args: &[&str]) -> (std::process::Child, u16) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fdm-serve"))
        .args(args)
        .args(["--listen", "127.0.0.1:0"])
        .env("FDM_SERVE_PANIC_POINT", panic_point)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fdm-serve");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut port = None;
    let mut line = String::new();
    while stderr.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(addr) = line.trim().strip_prefix("fdm-serve: listening on tcp://") {
            port = addr.rsplit(':').next().and_then(|p| p.parse().ok());
            break;
        }
        line.clear();
    }
    std::thread::spawn(move || {
        let mut sink = String::new();
        while stderr.read_line(&mut sink).unwrap_or(0) > 0 {
            sink.clear();
        }
    });
    (child, port.expect("no tcp listen line on stderr"))
}

fn connect(port: u16) -> (TcpStream, BufReader<TcpStream>) {
    let client = TcpStream::connect(("127.0.0.1", port)).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let reader = BufReader::new(client.try_clone().unwrap());
    (client, reader)
}

fn roundtrip(client: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    client.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply.trim_end().to_string()
}

/// The headline acceptance: inserts into `victim` panic (every hit, via
/// the stream-name filter), and that must cost each request one `ERR` —
/// the victim connection survives, the victim stream's WAL stays in
/// lockstep with its (unchanged) state, and the `healthy` stream serves
/// normally throughout on another connection.
#[test]
fn insert_panic_degrades_to_one_err_and_other_tenants_keep_serving() {
    let dir = scratch("insert_apply");
    let (mut child, port) = spawn_armed(
        "insert-apply:victim",
        &["--data-dir", dir.to_str().unwrap(), "--snapshot-every", "4"],
    );

    let (mut victim, mut victim_r) = connect(port);
    let (mut healthy, mut healthy_r) = connect(port);
    assert_eq!(
        roundtrip(&mut victim, &mut victim_r, OPEN_VICTIM),
        "OK opened victim"
    );
    assert_eq!(
        roundtrip(&mut healthy, &mut healthy_r, OPEN_HEALTHY),
        "OK opened healthy"
    );

    // Every victim INSERT panics inside the summary apply; every one must
    // come back as a typed ERR on a connection that stays open.
    for i in 0..8 {
        let reply = roundtrip(&mut victim, &mut victim_r, &format!("INSERT {i} 0 1.0 {i}"));
        assert!(
            reply.starts_with("ERR internal error (panic contained)"),
            "insert {i}: {reply}"
        );
        // Interleave healthy traffic: the other tenant must never notice.
        let reply = roundtrip(
            &mut healthy,
            &mut healthy_r,
            &format!("INSERT {i} {} {}.0 {i}", i % 2, 2 + 3 * i),
        );
        assert_eq!(reply, format!("OK inserted processed={}", i + 1));
    }
    // The victim connection itself still serves (no poisoned-lock panic
    // on the read paths), and its state never advanced.
    let stats = roundtrip(&mut victim, &mut victim_r, "STATS");
    assert!(stats.contains("processed=0"), "{stats}");
    assert!(
        stats.contains("wal_records=0"),
        "WAL must be rolled back to match the unapplied state: {stats}"
    );
    let reply = roundtrip(&mut healthy, &mut healthy_r, "QUERY");
    assert!(reply.starts_with("OK k="), "{reply}");

    drop((victim, victim_r, healthy, healthy_r));
    let _ = child.kill();
    let _ = child.wait();

    // The rolled-back WAL holds zero records: a restart replays nothing
    // and the victim stream recovers to its true (empty) position.
    let wal = std::fs::read_to_string(dir.join("victim.wal")).unwrap();
    assert_eq!(wal, "0 WALV2\n", "victim WAL must be rolled back clean");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A panic on the read path (`QUERY` finalize) is caught at the session
/// boundary; readers cannot poison the summary lock, so both further
/// reads and further writes keep working.
#[test]
fn query_panic_is_contained_at_the_session_boundary() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fdm-serve"))
        .env("FDM_SERVE_PANIC_POINT", "query-finalize")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn fdm-serve");
    {
        let mut stdin = child.stdin.take().unwrap();
        write!(
            stdin,
            "{OPEN_VICTIM}\nINSERT 0 0 1 1\nQUERY\nINSERT 1 1 5 5\nSTATS\nQUIT\n"
        )
        .unwrap();
    }
    let output = child.wait_with_output().unwrap();
    assert!(
        output.status.success(),
        "a contained panic must not kill the process"
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "OK opened victim");
    assert_eq!(lines[1], "OK inserted processed=1");
    assert!(
        lines[2].starts_with("ERR internal error (panic contained)"),
        "{}",
        lines[2]
    );
    assert_eq!(
        lines[3], "OK inserted processed=2",
        "writes must keep working after a contained read-path panic"
    );
    assert!(lines[4].contains("processed=2"), "{}", lines[4]);
    assert_eq!(lines[5], "OK bye");
}

/// Connection-slot RAII (satellite): with the cap filled by a session
/// whose thread panics, the slot must be released on unwind so the next
/// connection is admitted — a leak would refuse everything forever.
#[test]
fn panicking_session_thread_releases_its_connection_slot() {
    let (mut child, port) = spawn_armed("session-thread:1", &["--max-connections", "1"]);

    // Connection 1 fills the cap; its session thread panics immediately
    // (the armed first hit), which we observe as EOF with no reply.
    let (mut first, mut first_r) = connect(port);
    let _ = first.write_all(b"PING\n");
    let mut reply = String::new();
    let n = first_r.read_line(&mut reply).unwrap_or(0);
    assert_eq!(n, 0, "the panicking session must just drop: {reply:?}");

    // The unwound thread must have released the slot: a later connection
    // gets it (retry to absorb scheduling).
    let mut admitted = false;
    for _ in 0..100 {
        let (mut next, mut next_r) = connect(port);
        if roundtrip(&mut next, &mut next_r, "PING") == "OK pong" {
            admitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        admitted,
        "the slot of a panicked session must be released (RAII), not leaked"
    );
    let _ = child.kill();
    let _ = child.wait();
}
