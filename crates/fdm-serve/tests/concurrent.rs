//! Concurrency suite for the dyn-summary engine: one engine hammered from
//! many threads with interleaved INSERT/QUERY/SNAPSHOT/STATS on multiple
//! streams must neither deadlock nor drift from a serial replay, and
//! snapshot encode + disk I/O must happen **off the summary lock** so one
//! stream's checkpoint never stalls another stream — or its own readers.
//!
//! Determinism strategy: each stream has exactly one inserter thread (so
//! its arrival order is fixed), while reader threads fire QUERY/STATS and
//! snapshot threads fire SNAPSHOT against every stream concurrently. After
//! the storm, every stream's QUERY answer must be byte-identical to a
//! serial replay of the same arrival sequence.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fdm_core::persist::SnapshotFormat;
use fdm_serve::protocol::{parse_line, Payload, Request as Cmd, StreamSpec};
use fdm_serve::{Engine, ServeConfig, Session};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdm_concurrent_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec_of(line: &str) -> (String, StreamSpec) {
    match parse_line(line).unwrap().unwrap() {
        Cmd::Open { name, spec } => (name, spec),
        other => panic!("{other:?}"),
    }
}

/// Three differently-shaped streams: a fair SFDM2, a sharded SFDM1, and a
/// sliding window — the whole family surface in one storm.
fn stream_specs() -> Vec<(String, StreamSpec)> {
    [
        "OPEN alpha sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30",
        "OPEN beta sfdm1 quotas=3,2 eps=0.1 dmin=0.05 dmax=30 shards=2",
        "OPEN gamma sliding quotas=2,2 eps=0.1 dmin=0.05 dmax=30 window=40",
    ]
    .iter()
    .map(|l| spec_of(l))
    .collect()
}

fn insert_line(stream_seed: u64, i: usize) -> String {
    let x = ((i as f64 + stream_seed as f64 * 31.0) * 0.7391).sin() * 9.0;
    let y = ((i as f64 + stream_seed as f64 * 17.0) * 0.2113).cos() * 9.0;
    format!("INSERT {i} {} {x} {y}", i % 2)
}

/// The serial reference: one uncontended engine fed the same per-stream
/// sequences, queried at the end. The typed [`Payload`] comparison pins
/// `k`, the exact `diversity` value, and the selected ids.
fn serial_answers(inserts_per_stream: usize) -> Vec<Payload> {
    let engine = Arc::new(Engine::new(ServeConfig::default()).unwrap());
    stream_specs()
        .into_iter()
        .enumerate()
        .map(|(s, (name, spec))| {
            engine.open(&name, &spec).unwrap();
            for i in 0..inserts_per_stream {
                let line = insert_line(s as u64, i);
                match parse_line(&line).unwrap().unwrap() {
                    Cmd::Insert(e) => engine.insert(&name, &e, &line).unwrap(),
                    other => panic!("{other:?}"),
                };
            }
            engine.query(&name, None).unwrap()
        })
        .collect()
}

/// N threads × interleaved verbs × multiple streams, with durability on:
/// no deadlock (watchdog), and answers identical to the serial replay.
#[test]
fn storm_matches_serial_replay() {
    let dir = scratch("storm");
    let inserts = 120usize;
    let engine = Arc::new(
        Engine::new(ServeConfig {
            data_dir: Some(dir.clone()),
            snapshot_every: Some(16),
            snapshot_format: SnapshotFormat::Binary,
            full_every: 3,
            ..ServeConfig::default()
        })
        .unwrap(),
    );
    let specs = stream_specs();
    for (name, spec) in &specs {
        engine.open(name, spec).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // One inserter per stream: fixed arrival order per stream.
    for (s, (name, _)) in specs.iter().enumerate() {
        let engine = engine.clone();
        let name = name.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..inserts {
                let line = insert_line(s as u64, i);
                match parse_line(&line).unwrap().unwrap() {
                    Cmd::Insert(e) => {
                        engine.insert(&name, &e, &line).unwrap();
                    }
                    other => panic!("{other:?}"),
                }
            }
        }));
    }
    // Readers: QUERY + STATS across all streams until the inserters stop.
    for reader in 0..4 {
        let engine = engine.clone();
        let stop = stop.clone();
        let names: Vec<String> = specs.iter().map(|(n, _)| n.clone()).collect();
        handles.push(std::thread::spawn(move || {
            let mut i = reader;
            while !stop.load(Ordering::SeqCst) {
                let name = &names[i % names.len()];
                // Early in the stream a QUERY may legitimately have no
                // feasible candidate; only protocol-level failures matter.
                let _ = engine.query(name, None);
                engine.stats(name).unwrap();
                i += 1;
            }
        }));
    }
    // Snapshotters: explicit SNAPSHOT exports while everything runs.
    for snapper in 0..2 {
        let engine = engine.clone();
        let stop = stop.clone();
        let dir = dir.clone();
        let names: Vec<String> = specs.iter().map(|(n, _)| n.clone()).collect();
        handles.push(std::thread::spawn(move || {
            let mut i = snapper;
            while !stop.load(Ordering::SeqCst) {
                let name = &names[i % names.len()];
                let path = dir.join(format!("export-{snapper}-{}.snap", i % 4));
                engine.snapshot(name, path.to_str().unwrap(), None).unwrap();
                i += 1;
            }
        }));
    }

    // Watchdog: a deadlock must fail the test, not hang CI. The inserter
    // threads are the bounded ones; join them with a timeout by polling.
    let started = Instant::now();
    let (inserters, rest) = handles.split_at(specs.len());
    let mut inserters: Vec<_> = inserters.iter().collect();
    while !inserters.is_empty() {
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "storm did not finish within 120 s — deadlock?"
        );
        inserters.retain(|h| !h.is_finished());
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::SeqCst);
    let _ = rest; // joined implicitly below
    for handle in handles {
        handle.join().unwrap();
    }

    let expected = serial_answers(inserts);
    for ((name, _), expected) in specs.iter().zip(expected) {
        assert_eq!(
            engine.query(name, None).unwrap(),
            expected,
            "{name}: storm answer diverged from serial replay"
        );
    }

    // And the storm's durable state recovers to the same answers.
    drop(engine);
    let recovered = Engine::new(ServeConfig {
        data_dir: Some(dir.clone()),
        snapshot_every: Some(16),
        snapshot_format: SnapshotFormat::Binary,
        full_every: 3,
        ..ServeConfig::default()
    })
    .unwrap();
    let expected = serial_answers(inserts);
    for ((name, _), expected) in specs.iter().zip(expected) {
        assert_eq!(recovered.query(name, None).unwrap(), expected, "{name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The off-lock guarantee, pinned with a deliberately slowed snapshot
/// write (`FDM_SERVE_SNAPSHOT_PAUSE_MS`, honored by the engine's disk
/// phase only): while stream B's SNAPSHOT is stuck in its write, an
/// INSERT into B and a QUERY on A must both complete — i.e. the summary
/// lock (and B's WAL lock) were released before the I/O began. Runs in a
/// child process so the env-var cache cannot leak into other tests.
#[test]
fn snapshot_write_happens_off_the_summary_lock() {
    let exe = std::env::current_exe().unwrap();
    let status = Command::new(exe)
        .args([
            "snapshot_pause_probe_inner",
            "--exact",
            "--ignored",
            "--nocapture",
        ])
        .env("FDM_SERVE_SNAPSHOT_PAUSE_MS", "700")
        .status()
        .unwrap();
    assert!(status.success(), "paused-snapshot probe failed");
}

/// Inner body of `snapshot_write_happens_off_the_summary_lock`; only
/// meaningful with `FDM_SERVE_SNAPSHOT_PAUSE_MS` armed, hence `#[ignore]`.
#[test]
#[ignore = "spawned by snapshot_write_happens_off_the_summary_lock"]
fn snapshot_pause_probe_inner() {
    assert_eq!(
        std::env::var("FDM_SERVE_SNAPSHOT_PAUSE_MS").as_deref(),
        Ok("700"),
        "probe must run with the pause armed"
    );
    let dir = scratch("pause");
    let engine = Arc::new(Engine::new(ServeConfig::default()).unwrap());
    let specs = stream_specs();
    for (name, spec) in &specs {
        engine.open(name, spec).unwrap();
        for i in 0..60 {
            let line = insert_line(1, i);
            match parse_line(&line).unwrap().unwrap() {
                Cmd::Insert(e) => {
                    engine.insert(name, &e, &line).unwrap();
                }
                other => panic!("{other:?}"),
            }
        }
    }
    let pause = Duration::from_millis(700);

    // Kick off the (paused) snapshot of stream "beta".
    let snap_engine = engine.clone();
    let snap_path = dir.join("beta.export.snap");
    let snap_started = Instant::now();
    let snapshot_thread = {
        let path = snap_path.to_str().unwrap().to_string();
        std::thread::spawn(move || {
            snap_engine.snapshot("beta", &path, None).unwrap();
        })
    };
    // Give the snapshot thread time to capture and enter its paused write.
    std::thread::sleep(Duration::from_millis(150));

    // INSERT into the snapshotting stream and QUERY another stream; both
    // must complete while the snapshot write is still sleeping.
    let line = insert_line(1, 60);
    match parse_line(&line).unwrap().unwrap() {
        Cmd::Insert(e) => {
            engine.insert("beta", &e, &line).unwrap();
        }
        other => panic!("{other:?}"),
    }
    engine.query("alpha", None).unwrap();
    let ops_done = snap_started.elapsed();
    snapshot_thread.join().unwrap();
    let snap_done = snap_started.elapsed();

    assert!(
        snap_done >= pause,
        "snapshot must have gone through the paused write ({snap_done:?})"
    );
    assert!(
        ops_done < pause,
        "INSERT/QUERY waited for the snapshot write ({ops_done:?} ≥ {pause:?}) — \
         the encode/write must run off the summary lock"
    );
    assert!(snap_path.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The *per-section* off-lock guarantee for the durable checkpoint path:
/// `FDM_SERVE_SNAPSHOT_PAUSE_MS` sleeps both between the chunked
/// capture's sections (params → state) and before the disk write, so an
/// auto-checkpoint anchor holds this stream's durable mutex for ≥ 2×700
/// ms — but the **summary lock is released between every section**, so a
/// QUERY on the very stream being checkpointed (and an INSERT into
/// another stream) must complete while the anchor is mid-capture. Child
/// process for the same env-cache reason as the probe above.
#[test]
fn chunked_capture_pauses_off_the_summary_lock() {
    let exe = std::env::current_exe().unwrap();
    let status = Command::new(exe)
        .args([
            "chunked_capture_probe_inner",
            "--exact",
            "--ignored",
            "--nocapture",
        ])
        .env("FDM_SERVE_SNAPSHOT_PAUSE_MS", "700")
        .status()
        .unwrap();
    assert!(status.success(), "chunked-capture probe failed");
}

/// Inner body of `chunked_capture_pauses_off_the_summary_lock`.
#[test]
#[ignore = "spawned by chunked_capture_pauses_off_the_summary_lock"]
fn chunked_capture_probe_inner() {
    assert_eq!(
        std::env::var("FDM_SERVE_SNAPSHOT_PAUSE_MS").as_deref(),
        Ok("700"),
        "probe must run with the pause armed"
    );
    let dir = scratch("chunked_pause");
    // full_every = 0: the insert-61 checkpoint is an inline *full* anchor
    // on the insert path — the exact capture whose sections must not pin
    // the summary lock. snapshot_every = 61 keeps the 60 warm-up inserts
    // checkpoint-free.
    let engine = Arc::new(
        Engine::new(ServeConfig {
            data_dir: Some(dir.clone()),
            snapshot_every: Some(61),
            full_every: 0,
            ..ServeConfig::default()
        })
        .unwrap(),
    );
    let specs: Vec<_> = stream_specs().into_iter().take(2).collect();
    // "alpha" stops one insert short of the checkpoint; "beta" stays far
    // from it so its probe INSERT below cannot trigger an anchor itself.
    for ((name, spec), warmup) in specs.iter().zip([60usize, 30]) {
        engine.open(name, spec).unwrap();
        for i in 0..warmup {
            let line = insert_line(1, i);
            match parse_line(&line).unwrap().unwrap() {
                Cmd::Insert(e) => {
                    engine.insert(name, &e, &line).unwrap();
                }
                other => panic!("{other:?}"),
            }
        }
    }
    let pause = Duration::from_millis(700);

    // Insert #61 into "alpha": its ack only returns once the checkpoint
    // anchor (two paused sections) committed.
    let anchor_engine = engine.clone();
    let anchor_started = Instant::now();
    let anchor_thread = std::thread::spawn(move || {
        let line = insert_line(1, 60);
        match parse_line(&line).unwrap().unwrap() {
            Cmd::Insert(e) => {
                anchor_engine.insert("alpha", &e, &line).unwrap();
            }
            other => panic!("{other:?}"),
        }
    });
    // Land inside the first paused section.
    std::thread::sleep(Duration::from_millis(150));

    // QUERY the stream being checkpointed (summary read lock) and INSERT
    // into the other stream (its own durable mutex): both must finish
    // while the anchor is still inside its first pause.
    engine.query("alpha", None).unwrap();
    let line = insert_line(2, 60);
    match parse_line(&line).unwrap().unwrap() {
        Cmd::Insert(e) => {
            engine.insert("beta", &e, &line).unwrap();
        }
        other => panic!("{other:?}"),
    }
    let ops_done = anchor_started.elapsed();
    anchor_thread.join().unwrap();
    let anchor_done = anchor_started.elapsed();

    assert!(
        anchor_done >= 2 * pause,
        "the anchor must sleep once per section ({anchor_done:?})"
    );
    assert!(
        ops_done < pause,
        "QUERY/INSERT waited on the chunked capture ({ops_done:?} ≥ {pause:?}) — \
         each section must drop the summary lock before the pause"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sessions on different streams never serialize on each other: drive two
/// protocol sessions concurrently through the shared engine (the same way
/// socket connections do) and require both transcripts correct.
#[test]
fn two_sessions_on_distinct_streams_interleave() {
    let engine = Arc::new(Engine::new(ServeConfig::default()).unwrap());
    let mut handles = Vec::new();
    for (s, open) in [
        "OPEN left sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30",
        "OPEN right sliding quotas=2,2 eps=0.1 dmin=0.05 dmax=30 window=30",
    ]
    .iter()
    .enumerate()
    {
        let engine = engine.clone();
        let open = open.to_string();
        handles.push(std::thread::spawn(move || {
            let mut script = vec![open];
            for i in 0..150 {
                script.push(insert_line(s as u64, i));
            }
            script.push("STATS".into());
            script.push("QUERY".into());
            let mut output = Vec::new();
            Session::new(engine)
                .run(
                    std::io::Cursor::new(script.join("\n").into_bytes()),
                    &mut output,
                )
                .unwrap();
            let text = String::from_utf8(output).unwrap();
            assert!(
                !text.contains("ERR "),
                "session transcript holds an error:\n{text}"
            );
            let _ = std::io::sink().write_all(text.as_bytes());
            text.lines().last().unwrap().to_string()
        }));
    }
    for handle in handles {
        let last = handle.join().unwrap();
        assert!(last.starts_with("OK k=4"), "{last}");
    }
}
