//! `/metrics` suite: the exposition must be well-formed Prometheus text
//! (format 0.0.4) — every sample preceded by its `# TYPE`, no duplicate
//! series, histogram invariants (`+Inf` bucket == `_count`, cumulative
//! buckets) — and scraping must stay cheap enough that a storm of
//! concurrent inserts is never blocked behind a scrape.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fdm_serve::protocol::{parse_line, Request as Cmd};
use fdm_serve::{serve_metrics, Engine, ServeConfig};

const OPENS: [&str; 2] = [
    "OPEN alpha sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30",
    "OPEN beta sliding quotas=2,2 eps=0.1 dmin=0.05 dmax=30 window=40",
];

fn engine_with_traffic(inserts: usize) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(ServeConfig::default()).unwrap());
    for open in OPENS {
        let (name, spec) = match parse_line(open).unwrap().unwrap() {
            Cmd::Open { name, spec } => (name, spec),
            other => panic!("{other:?}"),
        };
        engine.open(&name, &spec).unwrap();
        for i in 0..inserts {
            let line = format!(
                "INSERT {i} {} {} {}",
                i % 2,
                (i as f64 * 0.7391).sin() * 9.0,
                (i as f64 * 0.2113).cos() * 9.0
            );
            match parse_line(&line).unwrap().unwrap() {
                Cmd::Insert(e) => {
                    engine.insert(&name, &e, &line).unwrap();
                }
                other => panic!("{other:?}"),
            }
        }
    }
    engine
}

/// Splits a sample line into (series-identity, value); the identity is
/// the metric name plus its full label set.
fn split_sample(line: &str) -> (&str, f64) {
    let split_at = if let Some(close) = line.rfind('}') {
        close + 1
    } else {
        line.find(' ').unwrap()
    };
    let (series, value) = line.split_at(split_at);
    (series.trim(), value.trim().parse().unwrap())
}

/// Structural lint for the exposition format; returns the samples.
fn lint_exposition(text: &str) -> Vec<(String, f64)> {
    let mut typed: HashSet<String> = HashSet::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    let mut samples = Vec::new();
    assert!(text.ends_with('\n'), "exposition must end with a newline");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().unwrap().to_string();
            let kind = parts.next().unwrap();
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind} for {family}"
            );
            assert!(
                typed.insert(family.clone()),
                "family {family} TYPE-declared twice — families must be contiguous"
            );
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = split_sample(line);
        let name = series.split(['{', ' ']).next().unwrap();
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains(*f))
            .unwrap_or(name);
        assert!(
            typed.contains(family),
            "sample {series} has no preceding # TYPE {family}"
        );
        assert!(
            seen_series.insert(series.to_string()),
            "duplicate series {series}"
        );
        assert!(value.is_finite(), "non-finite value on {series}");
        samples.push((series.to_string(), value));
    }
    samples
}

/// Asserts histogram invariants for one `<family>{stream="<name>"}`:
/// buckets are cumulative, and the `+Inf` bucket equals `_count`.
fn check_histogram(samples: &[(String, f64)], family: &str, stream: &str) -> f64 {
    let label = format!("stream=\"{stream}\"");
    let buckets: Vec<f64> = samples
        .iter()
        .filter(|(s, _)| s.starts_with(&format!("{family}_bucket{{")) && s.contains(&label))
        .map(|(_, v)| *v)
        .collect();
    assert!(!buckets.is_empty(), "no buckets for {family}/{stream}");
    assert!(
        buckets.windows(2).all(|w| w[0] <= w[1]),
        "{family}/{stream}: buckets must be cumulative: {buckets:?}"
    );
    let count = samples
        .iter()
        .find(|(s, _)| s.starts_with(&format!("{family}_count{{")) && s.contains(&label))
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("no _count for {family}/{stream}"));
    assert_eq!(
        *buckets.last().unwrap(),
        count,
        "{family}/{stream}: +Inf bucket must equal _count"
    );
    count
}

#[test]
fn exposition_is_well_formed_and_counts_the_traffic() {
    let engine = engine_with_traffic(60);
    engine.query("alpha", None).unwrap();
    engine.query("beta", None).unwrap();
    let samples = lint_exposition(&engine.render_metrics());
    let get = |series: &str| -> f64 {
        samples
            .iter()
            .find(|(s, _)| s == series)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing series {series}"))
    };

    assert_eq!(get("fdm_streams"), 2.0);
    assert_eq!(get("fdm_stream_processed_total{stream=\"alpha\"}"), 60.0);
    assert_eq!(get("fdm_stream_processed_total{stream=\"beta\"}"), 60.0);
    assert_eq!(get("fdm_panics_contained_total"), 0.0);

    for stream in ["alpha", "beta"] {
        let inserts = check_histogram(&samples, "fdm_insert_latency_seconds", stream);
        assert_eq!(inserts, 60.0, "{stream}: one observation per insert");
        let queries = check_histogram(&samples, "fdm_query_latency_seconds", stream);
        assert_eq!(queries, 1.0, "{stream}: one observation per query");
    }
}

#[test]
fn http_endpoint_serves_scrapes_and_rejects_everything_else() {
    let engine = engine_with_traffic(10);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || serve_metrics(engine, listener));

    let request = |req: &str| -> String {
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        client.write_all(req.as_bytes()).unwrap();
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        response
    };

    let ok = request("GET /metrics HTTP/1.0\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
    assert!(
        ok.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{ok}"
    );
    let body = ok.split("\r\n\r\n").nth(1).unwrap();
    let samples = lint_exposition(body);
    assert!(samples.iter().any(|(s, _)| s == "fdm_streams"));

    let missing = request("GET /other HTTP/1.0\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.0 404 "), "{missing}");
    let bad_method = request("POST /metrics HTTP/1.0\r\n\r\n");
    assert!(bad_method.starts_with("HTTP/1.0 405 "), "{bad_method}");
}

/// The non-blocking guarantee: a tight scrape loop runs while inserter
/// threads hammer the engine; inserts must keep completing (throughput
/// sanity) and every concurrent scrape must still lint clean.
#[test]
fn scrapes_under_concurrent_load_stay_valid_and_do_not_block_inserts() {
    let engine = engine_with_traffic(5);
    let stop = Arc::new(AtomicBool::new(false));
    let mut inserters = Vec::new();
    for (s, stream) in ["alpha", "beta"].into_iter().enumerate() {
        let engine = engine.clone();
        let stop = stop.clone();
        inserters.push(std::thread::spawn(move || {
            let mut done = 0usize;
            for i in 5..5000 {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let line = format!("INSERT {i} {} {}.0 {s}.5", i % 2, i % 17);
                match parse_line(&line).unwrap().unwrap() {
                    Cmd::Insert(e) => {
                        engine.insert(stream, &e, &line).unwrap();
                    }
                    other => panic!("{other:?}"),
                }
                done += 1;
            }
            done
        }));
    }

    // Scrape continuously for a bounded window while the storm runs.
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut scrapes = 0usize;
    while Instant::now() < deadline {
        let text = engine.render_metrics();
        lint_exposition(&text);
        scrapes += 1;
    }
    stop.store(true, Ordering::SeqCst);
    let done: usize = inserters.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(scrapes >= 3, "scrape loop starved: {scrapes}");
    assert!(
        done >= 100,
        "inserts starved behind scrapes: only {done} completed"
    );

    // After the storm the book-keeping still adds up.
    let samples = lint_exposition(&engine.render_metrics());
    let processed: f64 = samples
        .iter()
        .filter(|(s, _)| s.starts_with("fdm_stream_processed_total{"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(processed as usize, done + 10, "5 warmup inserts per stream");
}
