//! TCP front-end tests: the same line protocol over TCP, Unix socket, and
//! an in-process session must serve identical answers, and the TCP
//! defenses (max-frame guard, read timeout) must hold.
//!
//! Client-side wire access goes through [`fdm_client::Client`] — the typed
//! wrappers where the test cares about the payload, the raw
//! `send_line`/`read_reply_line`/`roundtrip` escape hatches where it
//! deliberately speaks malformed or oversized frames.

use std::io::Cursor;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fdm_client::{Client, ClientError};
use fdm_core::persist::SnapshotFormat;
use fdm_serve::protocol::{parse_line, Request, StreamSpec};
use fdm_serve::{serve_tcp, serve_unix, Engine, NetOptions, ServeConfig, Session};

const OPEN: &str = "OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30";

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(ServeConfig::default()).unwrap())
}

fn open_spec() -> (String, StreamSpec) {
    match parse_line(OPEN).unwrap().unwrap() {
        Request::Open { name, spec } => (name, spec),
        other => panic!("{other:?}"),
    }
}

fn script(n: usize) -> String {
    let mut lines = vec![OPEN.to_string()];
    lines.extend((0..n).map(|i| {
        let x = (i as f64 * 0.7391).sin() * 9.0;
        let y = (i as f64 * 0.2113).cos() * 9.0;
        format!("INSERT {i} {} {x} {y}", i % 2)
    }));
    lines.push("STATS".into());
    lines.push("QUERY".into());
    lines.push("QUIT".into());
    lines.join("\n") + "\n"
}

fn start_tcp(engine: Arc<Engine>, options: NetOptions) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || serve_tcp(engine, listener, options));
    addr
}

/// Round-trips every line of `text` through `client`, one reply per
/// command line (blank lines and comments get no reply).
fn roundtrip_script(client: &mut Client, text: &str) -> Vec<String> {
    text.lines()
        .filter(|line| parse_line(line).map(|c| c.is_some()).unwrap_or(true))
        .map(|line| client.roundtrip(line).unwrap())
        .collect()
}

#[test]
fn tcp_unix_and_inprocess_sessions_serve_identical_answers() {
    // Three transports, three *separate* engines fed the same stream: the
    // answers must be byte-identical across all of them.
    let text = script(60);

    // In-process reference.
    let reference = {
        let mut output = Vec::new();
        Session::new(engine())
            .run(Cursor::new(text.clone().into_bytes()), &mut output)
            .unwrap();
        String::from_utf8(output).unwrap()
    };
    let reference: Vec<String> = reference.lines().map(str::to_string).collect();
    assert!(
        reference.iter().any(|l| l.starts_with("OK k=")),
        "{reference:?}"
    );

    // TCP.
    let tcp_replies = {
        let addr = start_tcp(engine(), NetOptions::default());
        let mut client = Client::connect_tcp(addr).unwrap();
        roundtrip_script(&mut client, &text)
    };

    // Unix socket.
    let unix_replies = {
        use std::os::unix::net::UnixListener;
        let dir = std::env::temp_dir().join(format!("fdm_tcp_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fdm.sock");
        let listener = UnixListener::bind(&path).unwrap();
        let e = engine();
        std::thread::spawn(move || serve_unix(e, listener, NetOptions::default()));
        let mut client = Client::connect_unix(&path).unwrap();
        let replies = roundtrip_script(&mut client, &text);
        let _ = std::fs::remove_dir_all(&dir);
        replies
    };

    assert_eq!(reference, tcp_replies, "TCP answers must match in-process");
    assert_eq!(
        reference, unix_replies,
        "Unix answers must match in-process"
    );
}

#[test]
fn tcp_sessions_share_the_engine_across_connections() {
    let addr = start_tcp(engine(), NetOptions::default());
    let (name, spec) = open_spec();

    // Connection 1 opens and feeds the stream through the typed API.
    let mut a = Client::connect_tcp(addr).unwrap();
    assert_eq!(a.open(&name, &spec).unwrap(), 0, "fresh stream");
    for (i, (x, y)) in [(1.0, 1.0), (5.0, 5.0)].iter().enumerate() {
        let element = fdm_core::point::Element::new(i, vec![*x, *y], i % 2);
        assert_eq!(a.insert(&element).unwrap(), i + 1);
    }
    a.quit().unwrap();

    // Connection 2 attaches to the same named stream; the raw round trip
    // additionally pins the wire bytes of the attach reply.
    let mut b = Client::connect_tcp(addr).unwrap();
    assert_eq!(b.roundtrip(OPEN).unwrap(), "OK attached jobs processed=2");
    assert_eq!(b.open(&name, &spec).unwrap(), 2, "typed re-attach");
}

#[test]
fn oversized_lines_resync_on_the_next_newline() {
    let addr = start_tcp(
        engine(),
        NetOptions {
            read_timeout: Some(Duration::from_secs(5)),
            max_line: 1024,
            ..NetOptions::default()
        },
    );
    let mut client = Client::connect_tcp(addr).unwrap();
    // One >1 MiB line whose unread tail spells a valid command: the tail
    // belongs to the oversized line and must be discarded, never parsed —
    // if it were, the session would answer `OK bye` and close here.
    let mut huge = "x".repeat((1 << 20) + 37);
    huge.push_str(" QUIT");
    client.send_line(&huge).unwrap();
    assert!(client
        .read_reply_line()
        .unwrap()
        .starts_with("ERR line exceeds 1024 bytes"),);
    // The *next* line is a fresh command and must work normally.
    assert_eq!(client.roundtrip("PING").unwrap(), "OK pong");
    assert_eq!(client.roundtrip("QUIT").unwrap(), "OK bye");
}

#[test]
fn auth_token_gates_tcp_sessions() {
    let addr = start_tcp(
        engine(),
        NetOptions {
            read_timeout: Some(Duration::from_secs(5)),
            auth_token: Some(Arc::from("s3cret")),
            ..NetOptions::default()
        },
    );
    let mut client = Client::connect_tcp(addr).unwrap();
    // Raw round trips pin the exact reply lines of the auth choreography.
    assert_eq!(client.roundtrip("PING").unwrap(), "OK pong"); // health checks stay open pre-auth
    assert_eq!(
        client.roundtrip(OPEN).unwrap(),
        "ERR authentication required (AUTH <token> first)"
    );
    assert_eq!(
        client.roundtrip("AUTH wrong").unwrap(),
        "ERR invalid auth token"
    );
    // The typed wrapper surfaces the server rejection as a typed error.
    let err = client.auth("also-wrong").unwrap_err();
    assert!(
        matches!(&err, ClientError::Server(reply) if reply.message == "invalid auth token"),
        "{err}"
    );
    client.auth("s3cret").unwrap();
    assert_eq!(client.roundtrip(OPEN).unwrap(), "OK opened jobs");
    client.quit().unwrap();

    // Without --auth-token, AUTH is a no-op courtesy.
    let addr = start_tcp(engine(), NetOptions::default());
    let mut client = Client::connect_tcp(addr).unwrap();
    assert_eq!(
        client.roundtrip("AUTH anything").unwrap(),
        "OK auth not required"
    );
    client.auth("anything").unwrap();
    client.ping().unwrap();
    client.quit().unwrap();
}

#[test]
fn idle_tcp_connections_time_out() {
    let addr = start_tcp(
        engine(),
        NetOptions {
            read_timeout: Some(Duration::from_millis(200)),
            max_line: 1024,
            ..NetOptions::default()
        },
    );
    let mut client = Client::connect_tcp(addr).unwrap();
    // Send nothing. The server side must drop the connection once the
    // read timeout fires, which we observe as EOF on our read side well
    // before a generous deadline.
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let start = Instant::now();
    let err = client.read_reply_line().unwrap_err();
    assert!(
        matches!(&err, ClientError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof),
        "server must close the idle connection: {err}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "timeout took {:?}",
        start.elapsed()
    );
}

#[test]
fn connection_cap_refuses_excess_connections() {
    let addr = start_tcp(
        engine(),
        NetOptions {
            read_timeout: Some(Duration::from_secs(5)),
            max_connections: 2,
            ..NetOptions::default()
        },
    );
    let mut a = Client::connect_tcp(addr).unwrap();
    a.ping().unwrap();
    let mut b = Client::connect_tcp(addr).unwrap();
    b.ping().unwrap();
    // Third connection: refused with one ERR line, then closed.
    let mut c = Client::connect_tcp(addr).unwrap();
    assert!(c
        .read_reply_line()
        .unwrap()
        .starts_with("ERR server at connection limit"),);
    let err = c.read_reply_line().unwrap_err();
    assert!(
        matches!(&err, ClientError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof),
        "refused connection must be closed: {err}"
    );
    // Freeing a slot admits new connections again (the session thread
    // releases it when the closed connection's loop ends).
    drop(a);
    let mut admitted = false;
    for _ in 0..100 {
        let mut d = Client::connect_tcp(addr).unwrap();
        if d.ping().is_ok() {
            admitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(admitted, "a freed slot must admit new connections");
}

#[test]
fn tcp_snapshot_kill_restore_round_trip() {
    // The full persistence loop over TCP: feed half, SNAPSHOT (binary),
    // drop the engine, restore into a fresh engine over TCP, feed the
    // rest, and match an uninterrupted run.
    let dir = std::env::temp_dir().join(format!("fdm_tcp_snap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("jobs.snap");

    let inserts: Vec<String> = (0..80)
        .map(|i| {
            let x = (i as f64 * 0.7391).sin() * 9.0;
            let y = (i as f64 * 0.2113).cos() * 9.0;
            format!("INSERT {i} {} {x} {y}", i % 2)
        })
        .collect();

    let reference = {
        let mut output = Vec::new();
        let text = format!("{OPEN}\n{}\nQUERY\n", inserts.join("\n"));
        Session::new(engine())
            .run(Cursor::new(text.into_bytes()), &mut output)
            .unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .last()
            .unwrap()
            .to_string()
    };

    {
        let addr = start_tcp(engine(), NetOptions::default());
        let mut client = Client::connect_tcp(addr).unwrap();
        for line in std::iter::once(OPEN.to_string()).chain(inserts[..40].iter().cloned()) {
            let reply = client.roundtrip(&line).unwrap();
            assert!(reply.starts_with("OK "), "{reply}");
        }
        let captured = client
            .snapshot(&snap.display().to_string(), Some(SnapshotFormat::Binary))
            .unwrap();
        assert_eq!(captured, 40);
        client.quit().unwrap();
    }
    assert!(snap.exists());

    let resumed = {
        let addr = start_tcp(engine(), NetOptions::default());
        let mut client = Client::connect_tcp(addr).unwrap();
        assert_eq!(
            client.restore(&snap.display().to_string()).unwrap(),
            ("jobs".to_string(), 40)
        );
        for line in &inserts[40..] {
            let reply = client.roundtrip(line).unwrap();
            assert!(reply.starts_with("OK "), "{reply}");
        }
        let last = client.roundtrip("QUERY").unwrap();
        client.quit().unwrap();
        last
    };
    assert_eq!(
        reference, resumed,
        "post-restore TCP QUERY must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
