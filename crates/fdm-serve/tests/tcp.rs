//! TCP front-end tests: the same line protocol over TCP, Unix socket, and
//! an in-process session must serve identical answers, and the TCP
//! defenses (max-frame guard, read timeout) must hold.

use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fdm_serve::{serve_tcp, serve_unix, Engine, NetOptions, ServeConfig, Session};

const OPEN: &str = "OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30";

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(ServeConfig::default()).unwrap())
}

fn script(n: usize) -> String {
    let mut lines = vec![OPEN.to_string()];
    lines.extend((0..n).map(|i| {
        let x = (i as f64 * 0.7391).sin() * 9.0;
        let y = (i as f64 * 0.2113).cos() * 9.0;
        format!("INSERT {i} {} {x} {y}", i % 2)
    }));
    lines.push("STATS".into());
    lines.push("QUERY".into());
    lines.push("QUIT".into());
    lines.join("\n") + "\n"
}

fn start_tcp(engine: Arc<Engine>, options: NetOptions) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || serve_tcp(engine, listener, options));
    addr
}

fn replies_from(reader: impl Read) -> Vec<String> {
    BufReader::new(reader)
        .lines()
        .map_while(|l| l.ok())
        .collect()
}

#[test]
fn tcp_unix_and_inprocess_sessions_serve_identical_answers() {
    // Three transports, three *separate* engines fed the same stream: the
    // answers must be byte-identical across all of them.
    let text = script(60);

    // In-process reference.
    let reference = {
        let mut output = Vec::new();
        Session::new(engine())
            .run(Cursor::new(text.clone().into_bytes()), &mut output)
            .unwrap();
        String::from_utf8(output).unwrap()
    };
    let reference: Vec<String> = reference.lines().map(str::to_string).collect();
    assert!(
        reference.iter().any(|l| l.starts_with("OK k=")),
        "{reference:?}"
    );

    // TCP.
    let tcp_replies = {
        let addr = start_tcp(engine(), NetOptions::default());
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(text.as_bytes()).unwrap();
        replies_from(client.try_clone().unwrap())
    };

    // Unix socket.
    let unix_replies = {
        use std::os::unix::net::{UnixListener, UnixStream};
        let dir = std::env::temp_dir().join(format!("fdm_tcp_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fdm.sock");
        let listener = UnixListener::bind(&path).unwrap();
        let e = engine();
        std::thread::spawn(move || serve_unix(e, listener, NetOptions::default()));
        let mut client = UnixStream::connect(&path).unwrap();
        client.write_all(text.as_bytes()).unwrap();
        let replies = replies_from(client.try_clone().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
        replies
    };

    assert_eq!(reference, tcp_replies, "TCP answers must match in-process");
    assert_eq!(
        reference, unix_replies,
        "Unix answers must match in-process"
    );
}

#[test]
fn tcp_sessions_share_the_engine_across_connections() {
    let addr = start_tcp(engine(), NetOptions::default());

    // Connection 1 opens and feeds the stream.
    let mut a = TcpStream::connect(addr).unwrap();
    a.write_all(format!("{OPEN}\nINSERT 0 0 1 1\nINSERT 1 1 5 5\nQUIT\n").as_bytes())
        .unwrap();
    let replies = replies_from(a.try_clone().unwrap());
    assert!(replies.iter().all(|r| r.starts_with("OK ")), "{replies:?}");

    // Connection 2 attaches to the same named stream.
    let mut b = TcpStream::connect(addr).unwrap();
    b.write_all(format!("{OPEN}\nSTATS\nQUIT\n").as_bytes())
        .unwrap();
    let replies = replies_from(b.try_clone().unwrap());
    assert_eq!(replies[0], "OK attached jobs processed=2", "{replies:?}");
}

#[test]
fn oversized_lines_resync_on_the_next_newline() {
    let addr = start_tcp(
        engine(),
        NetOptions {
            read_timeout: Some(Duration::from_secs(5)),
            max_line: 1024,
            ..NetOptions::default()
        },
    );
    let mut client = TcpStream::connect(addr).unwrap();
    // One >1 MiB line whose unread tail spells a valid command: the tail
    // belongs to the oversized line and must be discarded, never parsed —
    // if it were, the session would answer `OK bye` and close here.
    let mut huge = vec![b'x'; (1 << 20) + 37];
    huge.extend_from_slice(b" QUIT\n");
    client.write_all(&huge).unwrap();
    // The *next* line is a fresh command and must work normally.
    client.write_all(b"PING\nQUIT\n").unwrap();
    let replies = replies_from(client.try_clone().unwrap());
    assert_eq!(replies.len(), 3, "{replies:?}");
    assert!(
        replies[0].starts_with("ERR line exceeds 1024 bytes"),
        "{}",
        replies[0]
    );
    assert_eq!(replies[1], "OK pong", "session must resync after the ERR");
    assert_eq!(replies[2], "OK bye");
}

#[test]
fn auth_token_gates_tcp_sessions() {
    let addr = start_tcp(
        engine(),
        NetOptions {
            read_timeout: Some(Duration::from_secs(5)),
            auth_token: Some(Arc::from("s3cret")),
            ..NetOptions::default()
        },
    );
    let mut client = TcpStream::connect(addr).unwrap();
    let text = format!("PING\n{OPEN}\nAUTH wrong\nAUTH s3cret\n{OPEN}\nQUIT\n");
    client.write_all(text.as_bytes()).unwrap();
    let replies = replies_from(client.try_clone().unwrap());
    assert_eq!(
        replies,
        vec![
            "OK pong".to_string(), // PING stays open pre-auth (health checks)
            "ERR authentication required (AUTH <token> first)".to_string(),
            "ERR invalid auth token".to_string(),
            "OK authenticated".to_string(),
            "OK opened jobs".to_string(),
            "OK bye".to_string(),
        ]
    );

    // Without --auth-token, AUTH is a no-op courtesy.
    let addr = start_tcp(engine(), NetOptions::default());
    let mut client = TcpStream::connect(addr).unwrap();
    client.write_all(b"AUTH anything\nPING\nQUIT\n").unwrap();
    let replies = replies_from(client.try_clone().unwrap());
    assert_eq!(replies[0], "OK auth not required", "{replies:?}");
}

#[test]
fn idle_tcp_connections_time_out() {
    let addr = start_tcp(
        engine(),
        NetOptions {
            read_timeout: Some(Duration::from_millis(200)),
            max_line: 1024,
            ..NetOptions::default()
        },
    );
    let client = TcpStream::connect(addr).unwrap();
    // Send nothing. The server side must drop the connection once the
    // read timeout fires, which we observe as EOF (or an error) on our
    // read side well before a generous deadline.
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let start = Instant::now();
    let mut buf = [0u8; 64];
    let n = (&client).read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "server must close the idle connection");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "timeout took {:?}",
        start.elapsed()
    );
}

#[test]
fn connection_cap_refuses_excess_connections() {
    let addr = start_tcp(
        engine(),
        NetOptions {
            read_timeout: Some(Duration::from_secs(5)),
            max_connections: 2,
            ..NetOptions::default()
        },
    );
    let ping = |client: &mut TcpStream| -> Option<String> {
        client.write_all(b"PING\n").ok()?;
        let mut reader = BufReader::new(client.try_clone().ok()?);
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        Some(line.trim().to_string())
    };
    let mut a = TcpStream::connect(addr).unwrap();
    assert_eq!(ping(&mut a).as_deref(), Some("OK pong"));
    let mut b = TcpStream::connect(addr).unwrap();
    assert_eq!(ping(&mut b).as_deref(), Some("OK pong"));
    // Third connection: refused with one ERR line, then closed.
    let c = TcpStream::connect(addr).unwrap();
    let replies = replies_from(c);
    assert_eq!(replies.len(), 1, "{replies:?}");
    assert!(
        replies[0].starts_with("ERR server at connection limit"),
        "{}",
        replies[0]
    );
    // Freeing a slot admits new connections again (the session thread
    // releases it when the closed connection's loop ends).
    drop(a);
    let mut admitted = false;
    for _ in 0..100 {
        let mut d = TcpStream::connect(addr).unwrap();
        if ping(&mut d).as_deref() == Some("OK pong") {
            admitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(admitted, "a freed slot must admit new connections");
}

#[test]
fn tcp_snapshot_kill_restore_round_trip() {
    // The full persistence loop over TCP: feed half, SNAPSHOT (binary),
    // drop the engine, restore into a fresh engine over TCP, feed the
    // rest, and match an uninterrupted run.
    let dir = std::env::temp_dir().join(format!("fdm_tcp_snap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("jobs.snap");

    let inserts: Vec<String> = (0..80)
        .map(|i| {
            let x = (i as f64 * 0.7391).sin() * 9.0;
            let y = (i as f64 * 0.2113).cos() * 9.0;
            format!("INSERT {i} {} {x} {y}", i % 2)
        })
        .collect();

    let reference = {
        let mut output = Vec::new();
        let text = format!("{OPEN}\n{}\nQUERY\n", inserts.join("\n"));
        Session::new(engine())
            .run(Cursor::new(text.into_bytes()), &mut output)
            .unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .last()
            .unwrap()
            .to_string()
    };

    {
        let addr = start_tcp(engine(), NetOptions::default());
        let mut client = TcpStream::connect(addr).unwrap();
        let text = format!(
            "{OPEN}\n{}\nSNAPSHOT {} format=bin\nQUIT\n",
            inserts[..40].join("\n"),
            snap.display()
        );
        client.write_all(text.as_bytes()).unwrap();
        let replies = replies_from(client.try_clone().unwrap());
        assert!(
            replies.iter().any(|r| r.starts_with("OK snapshot")),
            "{replies:?}"
        );
    }
    assert!(snap.exists());

    let resumed = {
        let addr = start_tcp(engine(), NetOptions::default());
        let mut client = TcpStream::connect(addr).unwrap();
        let text = format!(
            "RESTORE {}\n{}\nQUERY\nQUIT\n",
            snap.display(),
            inserts[40..].join("\n")
        );
        client.write_all(text.as_bytes()).unwrap();
        let replies = replies_from(client.try_clone().unwrap());
        assert_eq!(replies[0], "OK restored jobs processed=40", "{replies:?}");
        replies[replies.len() - 2].clone()
    };
    assert_eq!(
        reference, resumed,
        "post-restore TCP QUERY must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
