//! Crash-recovery matrix: the real `fdm-serve` binary is killed (via
//! deterministic crash injection — `FDM_SERVE_CRASH_POINT`, the same
//! no-cleanup `abort()` a SIGKILL delivers, but placeable between any two
//! persistence steps) at every phase of the persistence pipeline, and must
//! recover to the exact pre-kill query answers from
//! `full + delta* + WAL` replay.
//!
//! Covered kill windows:
//!
//! * during the WAL append → apply gap of one `INSERT`;
//! * mid-delta write (torn temp file, no rename);
//! * between a delta rename and the WAL truncation (overlap records);
//! * between the chunked-capture sections of a full anchor;
//! * mid-full-snapshot write during an inline anchor (torn temp file);
//! * between a full-snapshot rename and the stale-delta cleanup (the
//!   stale-chain window the delta base-checksum exists for);
//! * between the delta cleanup and the WAL truncation;
//! * inside the background compactor: mid-collapse (torn temp file) and
//!   between the collapsed-snapshot rename and the consumed-delta
//!   cleanup (stale mid-chain deltas recovery must skip over).
//!
//! Plus the **graceful** cells: SIGTERM must drain (in-flight inserts
//! complete, final checkpoint leaves zero WAL records to replay, durable
//! state byte-identical to an uninterrupted run, exit 0), and a second
//! SIGTERM must force an immediate exit.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;

use fdm_serve::{Engine, ServeConfig, Session};

const OPEN: &str = "OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30";
/// The sliding-window cell of the matrix: same stream, windowed summary.
const OPEN_SLIDING: &str = "OPEN swin sliding quotas=2,2 eps=0.1 dmin=0.05 dmax=30 window=16";
const INSERTS: usize = 30;

/// Stream name of an OPEN line (the matrix runs one stream per scenario).
fn stream_name(open: &str) -> &str {
    open.split_whitespace().nth(1).unwrap()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdm_crash_matrix_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn insert_lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.7391).sin() * 9.0;
            let y = (i as f64 * 0.2113).cos() * 9.0;
            format!("INSERT {i} {} {x} {y}", i % 2)
        })
        .collect()
}

/// The reference answer: an uninterrupted in-memory engine fed the first
/// `n` inserts.
fn reference_query_for(open: &str, n: usize) -> String {
    let engine = Arc::new(Engine::new(ServeConfig::default()).unwrap());
    let mut script = vec![open.to_string()];
    script.extend(insert_lines(n));
    script.push("QUERY".into());
    let mut output = Vec::new();
    Session::new(engine)
        .run(
            std::io::Cursor::new(script.join("\n").into_bytes()),
            &mut output,
        )
        .unwrap();
    String::from_utf8(output)
        .unwrap()
        .lines()
        .last()
        .unwrap()
        .to_string()
}

fn reference_query(n: usize) -> String {
    reference_query_for(OPEN, n)
}

/// Runs the real binary against `dir` with the given crash point armed,
/// feeds `open` + INSERTS, and returns its stdout lines after it dies (or
/// finishes, for scenarios whose point never fires). `full_every`
/// parameterizes the chain-length bound (`"0"` disables deltas entirely).
/// With `hold_stdin_open`, no `QUIT` is sent and stdin stays open until
/// the child dies — the shape the *compactor* cells need, because the
/// crash fires on a background thread whose timing is independent of the
/// input stream, and exiting on EOF would race it.
fn run_until_crash_opts(
    open: &str,
    dir: &Path,
    crash_point: &str,
    full_every: &str,
    hold_stdin_open: bool,
) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fdm-serve"))
        .args([
            "--data-dir",
            dir.to_str().unwrap(),
            "--snapshot-every",
            "4",
            "--full-every",
            full_every,
        ])
        .env("FDM_SERVE_CRASH_POINT", crash_point)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn fdm-serve");
    let mut stdin = child.stdin.take().unwrap();
    let mut script = vec![open.to_string()];
    script.extend(insert_lines(INSERTS));
    if !hold_stdin_open {
        script.push("QUIT".into());
    }
    // The child aborts mid-stream; EPIPE on the remainder is expected.
    let _ = stdin.write_all(script.join("\n").as_bytes());
    let _ = stdin.write_all(b"\n");
    let stdin_keepalive = if hold_stdin_open { Some(stdin) } else { None };
    let output = child.wait_with_output().expect("wait for fdm-serve");
    drop(stdin_keepalive);
    String::from_utf8_lossy(&output.stdout)
        .lines()
        .map(str::to_string)
        .collect()
}

fn run_until_crash_with(open: &str, dir: &Path, crash_point: &str) -> Vec<String> {
    run_until_crash_opts(open, dir, crash_point, "2", false)
}

fn run_until_crash(dir: &Path, crash_point: &str) -> Vec<String> {
    run_until_crash_with(OPEN, dir, crash_point)
}

/// Restarts the binary over the same data dir (no crash point) and
/// returns `(processed, query_line)` from STATS + QUERY.
fn recover_with(open: &str, dir: &Path) -> (usize, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fdm-serve"))
        .args(["--data-dir", dir.to_str().unwrap(), "--snapshot-every", "4"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("respawn fdm-serve");
    {
        let mut stdin = child.stdin.take().unwrap();
        write!(stdin, "{open}\nSTATS\nQUERY\nQUIT\n").unwrap();
    }
    let output = child.wait_with_output().expect("wait for recovery");
    assert!(output.status.success(), "recovery process failed");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines[0].starts_with(&format!("OK attached {}", stream_name(open))),
        "recovery must re-attach: {lines:?}"
    );
    let stats = lines[1];
    let processed: usize = stats
        .split_whitespace()
        .find_map(|f| f.strip_prefix("processed="))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no processed= in {stats}"));
    let query = lines[2].to_string();
    assert!(query.starts_with("OK k="), "{query}");
    (processed, query)
}

fn recover(dir: &Path) -> (usize, String) {
    recover_with(OPEN, dir)
}

/// One matrix cell: arm `crash_point`, crash, recover, and require the
/// recovered answers to be byte-identical to an uninterrupted run over
/// exactly the recovered number of arrivals.
fn crash_and_recover(tag: &str, crash_point: &str, expect_processed: usize) {
    crash_and_recover_with(OPEN, tag, crash_point, expect_processed);
}

/// [`crash_and_recover`] for any OPEN line (the sliding cells reuse the
/// whole matrix machinery).
fn crash_and_recover_with(open: &str, tag: &str, crash_point: &str, expect_processed: usize) {
    let dir = scratch(tag);
    let live = run_until_crash_with(open, &dir, crash_point);
    let acked = live.iter().filter(|l| l.starts_with("OK inserted")).count();
    assert!(
        acked < INSERTS,
        "{tag}: the crash point must fire before the stream ends ({acked} acked)"
    );
    let (processed, query) = recover_with(open, &dir);
    assert_eq!(
        processed, expect_processed,
        "{tag}: recovered to an unexpected stream position ({acked} acked)"
    );
    assert!(
        processed >= acked,
        "{tag}: recovery lost acknowledged inserts ({acked} acked, {processed} recovered)"
    );
    assert_eq!(
        query,
        reference_query_for(open, processed),
        "{tag}: recovered QUERY differs from an uninterrupted run over {processed} arrivals"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// Checkpoint schedule with --snapshot-every 4 --full-every 2 under the
// dirty-set pipeline. For the sfdm2 stream every checkpoint lowers to a
// delta (the packed stored-id marks repack their bit width on growth
// instead of refusing the patch):
//
// OPEN → full#1 (processed 0); insert 4 → delta 1; 8 → delta 2 (chain at
// full-every → background compaction enqueued); 12..28 → more deltas,
// with collapses interleaving.
//
// Deterministic for this fixed insert sequence — the delta/full decision
// depends only on the stream's own state, never on compactor timing (the
// compactor changes which *files* hold the prefix, not the live mark).
// Mid-stream inline full anchors therefore happen only with
// `--full-every 0` (deltas disabled) or on a summary whose patch is
// genuinely unlowerable — the sliding window's rotation crossing at
// insert 8 (window=16, half 8) — and the full-anchor cells below arm one
// of those two shapes.

#[test]
fn kill_between_wal_append_and_apply() {
    // The armed insert is in the WAL but never applied or acknowledged;
    // recovery replays it (the WAL is the source of truth once appended).
    crash_and_recover("wal_gap", "between-wal-append-and-apply:13", 13);
}

#[test]
fn kill_mid_delta_write() {
    // Torn delta temp file, never renamed: recovery uses full#1 + WAL 1..4.
    crash_and_recover("mid_delta", "mid-delta-write:1", 4);
}

#[test]
fn kill_between_delta_and_wal_truncate() {
    // The second delta checkpoint lands at insert 8: the delta renamed
    // but the WAL still holds records 5..8; sequence numbers must dedupe
    // them against full#1 + delta 1 + delta 2.
    crash_and_recover("delta_wal_overlap", "between-delta-and-wal-truncate:2", 8);
}

#[test]
fn kill_mid_full_snapshot() {
    // `--full-every 0`: every checkpoint is an inline full anchor, so hit
    // 1 is the OPEN anchor and hit 2 the insert-4 checkpoint. Torn full#2
    // temp file, never renamed: recovery walks full#1 (empty) + WAL 1..4.
    let dir = scratch("mid_full");
    let live = run_until_crash_opts(OPEN, &dir, "mid-full-snapshot:2", "0", false);
    let acked = live.iter().filter(|l| l.starts_with("OK inserted")).count();
    assert!(acked < INSERTS, "the crash point must fire ({acked} acked)");
    let (processed, query) = recover(&dir);
    assert_eq!(processed, 4, "mid_full: expected full#1 + WAL 1..4");
    assert!(processed >= acked, "lost acknowledged inserts");
    assert_eq!(query, reference_query(4));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_between_full_snapshot_and_delta_cleanup() {
    // The sliding stream's insert-8 fallback anchor (full#2) landed but
    // delta 1 of the superseded chain lingers; the delta base-checksum
    // must recognize it as stale and skip it, with the WAL records 5..8
    // deduped by sequence number.
    crash_and_recover_with(
        OPEN_SLIDING,
        "stale_deltas",
        "between-full-and-delta-cleanup:2",
        8,
    );
}

#[test]
fn kill_between_delta_cleanup_and_wal_truncate() {
    // Same insert-8 sliding anchor, one step later: delta 1 is swept but
    // the WAL still overlaps full#2 with records 5..8.
    crash_and_recover_with(
        OPEN_SLIDING,
        "full_wal_overlap",
        "between-full-and-wal-truncate:2",
        8,
    );
}

/// The chunked-capture window: the crash lands between the params section
/// and the state section of a full anchor, before any file is touched —
/// the chain on disk must be exactly what the previous checkpoint left.
#[test]
fn kill_mid_chunked_capture() {
    // --full-every 0: every checkpoint is an inline full anchor, so hit 1
    // is the OPEN anchor and hit 2 the insert-4 checkpoint. Nothing was
    // written yet: recovery is full#1 (empty) + WAL 1..4.
    let dir = scratch("mid_chunked");
    let live = run_until_crash_opts(OPEN, &dir, "mid-chunked-capture:2", "0", false);
    let acked = live.iter().filter(|l| l.starts_with("OK inserted")).count();
    assert!(acked < INSERTS, "the crash point must fire ({acked} acked)");
    let (processed, query) = recover(&dir);
    assert_eq!(processed, 4, "mid_chunked: expected full#1 + WAL 1..4");
    assert!(processed >= acked, "lost acknowledged inserts");
    assert_eq!(query, reference_query(4));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn final WAL record (crash mid-append) must be dropped with a
/// warning, not brick recovery: the record was never acknowledged, so
/// dropping it is the correct contract.
#[test]
fn torn_wal_tail_is_dropped_not_fatal() {
    let dir = scratch("torn_tail");
    // Clean run: checkpoints at 4..28, WAL holds records 29 and 30.
    run_until_crash(&dir, "never-fires");
    let wal = dir.join("jobs.wal");
    let intact = std::fs::read_to_string(&wal).unwrap();
    assert_eq!(
        intact.lines().count(),
        3,
        "header + records 29, 30: {intact:?}"
    );
    // Simulate a crash mid-append: a record with its checksum (and part
    // of its coordinates) torn off, no trailing newline. The remaining
    // prefix still *parses* as a complete INSERT — only the per-record
    // checksum requirement exposes it as torn.
    std::fs::write(&wal, format!("{intact}31 INSERT 31 1 4.2")).unwrap();
    let (processed, query) = recover(&dir);
    assert_eq!(processed, 30, "the torn record must be dropped");
    assert_eq!(query, reference_query(30));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A malformed record in the *middle* of the WAL is missing history, not
/// a torn append — recovery must still refuse it.
#[test]
fn corrupt_mid_wal_record_still_refuses_recovery() {
    let dir = scratch("mid_wal_corrupt");
    run_until_crash(&dir, "never-fires");
    let wal = dir.join("jobs.wal");
    let intact = std::fs::read_to_string(&wal).unwrap();
    let lines: Vec<&str> = intact.lines().collect();
    assert_eq!(lines.len(), 3, "header + records 29, 30");
    // Mangle the first record but keep the header and the second record.
    std::fs::write(&wal, format!("{}\n29 INS\n{}\n", lines[0], lines[2])).unwrap();
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_fdm-serve"))
        .args(["--data-dir", dir.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run fdm-serve");
    assert!(
        !output.status.success(),
        "recovery over a mid-log corruption must fail"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("recovery failed"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The stale-delta window actually leaves delta files behind — prove the
/// scenario is real, not vacuously passing.
#[test]
fn stale_delta_window_leaves_files_that_recovery_ignores() {
    let dir = scratch("stale_delta_files");
    run_until_crash_with(OPEN_SLIDING, &dir, "between-full-and-delta-cleanup:2");
    assert!(
        dir.join("swin.delta.1").exists(),
        "the crash window must leave the superseded chain's delta file behind"
    );
    let (processed, _) = recover_with(OPEN_SLIDING, &dir);
    assert_eq!(processed, 8);
    let _ = std::fs::remove_dir_all(&dir);
}

// --- Background-compactor cells -------------------------------------------
//
// The compactor collapses `full + delta*` on its own thread, so the crash
// lands at a point whose *insert-stream* position is nondeterministic (the
// first job is enqueued at insert 8; inserts keep flowing while it runs). The
// assertions are therefore relational rather than positional: recovery
// must land exactly on an uninterrupted run over however many arrivals
// survived, never behind an acknowledged insert — and the on-disk debris
// each window leaves must actually be there.

/// Kills the process from inside the compactor, after it read the chain
/// but before the collapsed temp file is renamed: the live chain must be
/// untouched (both consumed deltas still on disk) and recovery exact.
#[test]
fn kill_compactor_mid_collapse() {
    let dir = scratch("compactor_mid_collapse");
    let live = run_until_crash_opts(OPEN, &dir, "compactor-mid-collapse:1", "2", true);
    let acked = live.iter().filter(|l| l.starts_with("OK inserted")).count();
    assert!(
        acked >= 7,
        "the job is enqueued during insert 8's checkpoint; it cannot crash earlier ({acked} acked)"
    );
    assert!(
        dir.join("jobs.delta.1").exists() && dir.join("jobs.delta.2").exists(),
        "a collapse that never renamed must leave the chain untouched"
    );
    let (processed, query) = recover(&dir);
    assert!(
        processed >= acked,
        "recovery lost acknowledged inserts ({acked} acked, {processed} recovered)"
    );
    assert_eq!(query, reference_query(processed));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kills the process between the compactor's snapshot rename and the
/// consumed-delta cleanup: the consumed deltas linger as *stale* files
/// whose base checksums no longer match the collapsed snapshot, possibly
/// with a *live* later delta behind them — recovery must skip the stale
/// links and keep walking.
#[test]
fn kill_between_compaction_and_delta_cleanup() {
    let dir = scratch("compactor_stale_deltas");
    let live = run_until_crash_opts(
        OPEN,
        &dir,
        "between-compaction-and-delta-cleanup:1",
        "2",
        true,
    );
    let acked = live.iter().filter(|l| l.starts_with("OK inserted")).count();
    assert!(acked >= 7, "{acked} acked before the compactor window");
    assert!(
        dir.join("jobs.delta.1").exists() && dir.join("jobs.delta.2").exists(),
        "the crash window must leave the consumed (now stale) deltas behind"
    );
    let (processed, query) = recover(&dir);
    assert!(
        processed >= acked,
        "recovery lost acknowledged inserts ({acked} acked, {processed} recovered)"
    );
    assert_eq!(query, reference_query(processed));
    let _ = std::fs::remove_dir_all(&dir);
}

// --- Sliding-window cells -------------------------------------------------
//
// The sliding summary rides the identical persistence pipeline; these
// cells prove its rotation state survives the same kill windows, and that
// an explicit v2-binary snapshot restores byte-identically after SIGKILL.

#[test]
fn sliding_kill_between_wal_append_and_apply() {
    crash_and_recover_with(
        OPEN_SLIDING,
        "sliding_wal_gap",
        "between-wal-append-and-apply:13",
        13,
    );
}

// The sliding summary (window=16, half 8) refuses to lower its patch
// across a rotation crossing, so the insert-8 checkpoint falls back to an
// inline full anchor — full#2 and the windows below land at insert 8.

#[test]
fn sliding_kill_mid_full_snapshot() {
    crash_and_recover_with(OPEN_SLIDING, "sliding_mid_full", "mid-full-snapshot:2", 8);
}

// (The stale-delta and WAL-overlap windows of the insert-8 sliding anchor
// are exercised by `kill_between_full_snapshot_and_delta_cleanup` and
// `kill_between_delta_cleanup_and_wal_truncate` above.)

/// OPEN → insert → QUERY → SNAPSHOT (v2 bin) → SIGKILL → RESTORE in a
/// fresh process: the restored stream answers the pre-kill QUERY
/// byte-identically, and re-encoding it reproduces the snapshot file
/// byte-for-byte.
#[test]
fn sliding_snapshot_kill_restore_is_byte_identical() {
    use std::io::{BufRead, BufReader};
    let dir = scratch("sliding_snap_kill");
    let snap = dir.join("export.bin");
    let mut child = Command::new(env!("CARGO_BIN_EXE_fdm-serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn fdm-serve");
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut script = vec![OPEN_SLIDING.to_string()];
    script.extend(insert_lines(INSERTS));
    script.push(format!("SNAPSHOT {} format=bin", snap.display()));
    script.push("QUERY".into());
    stdin
        .write_all(format!("{}\n", script.join("\n")).as_bytes())
        .unwrap();
    stdin.flush().unwrap();
    // One response per command; the last is the pre-kill QUERY answer.
    let mut lines = Vec::new();
    for _ in 0..script.len() {
        let mut line = String::new();
        stdout.read_line(&mut line).unwrap();
        lines.push(line.trim_end().to_string());
    }
    let pre_kill_query = lines.last().unwrap().clone();
    assert!(pre_kill_query.starts_with("OK k=4"), "{pre_kill_query}");
    assert!(
        lines[lines.len() - 2].contains("format=bin"),
        "{:?}",
        lines.last()
    );
    // The no-cleanup death.
    child.kill().unwrap();
    let _ = child.wait();
    let first_bytes = std::fs::read(&snap).unwrap();
    assert!(first_bytes.starts_with(b"FDMSNAP2"), "v2 binary frame");

    // Fresh process, no data dir: RESTORE the export, answer, re-export.
    let snap2 = dir.join("reexport.bin");
    let mut child = Command::new(env!("CARGO_BIN_EXE_fdm-serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("respawn fdm-serve");
    {
        let mut stdin = child.stdin.take().unwrap();
        write!(
            stdin,
            "RESTORE {}\nQUERY\nSNAPSHOT {} format=bin\nQUIT\n",
            snap.display(),
            snap2.display()
        )
        .unwrap();
    }
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines[0].starts_with(&format!("OK restored export processed={INSERTS}")),
        "{lines:?}"
    );
    assert_eq!(
        lines[1], pre_kill_query,
        "restored QUERY must be byte-identical to the pre-kill answer"
    );
    assert_eq!(
        std::fs::read(&snap2).unwrap(),
        first_bytes,
        "re-encoding the restored sliding stream must reproduce the snapshot byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// --- SIGTERM drain cells --------------------------------------------------

/// Spawns the binary with a TCP listener on an ephemeral port and returns
/// the child plus the bound port (parsed from its stderr "listening on"
/// line). Stdin is held open so the process keeps serving.
fn spawn_with_tcp(args: &[&str]) -> (std::process::Child, u16) {
    use std::io::{BufRead, BufReader};
    let mut child = Command::new(env!("CARGO_BIN_EXE_fdm-serve"))
        .args(args)
        .args(["--listen", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fdm-serve");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut port = None;
    let mut line = String::new();
    while stderr.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(addr) = line.trim().strip_prefix("fdm-serve: listening on tcp://") {
            port = addr.rsplit(':').next().and_then(|p| p.parse().ok());
            break;
        }
        line.clear();
    }
    // Keep draining stderr on a throwaway thread: closing the pipe would
    // make the child's later eprintln!s fail, and letting it fill would
    // block the child.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while stderr.read_line(&mut sink).unwrap_or(0) > 0 {
            sink.clear();
        }
    });
    (child, port.expect("no tcp listen line on stderr"))
}

/// Sends `sig` to `pid` without unsafe code (the workspace policy keeps
/// FFI out of tests): plain `kill(1)` via `sh`.
fn send_signal(pid: u32, sig: &str) {
    let status = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -{sig} {pid}"))
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -{sig} {pid} failed");
}

/// SIGTERM drain: every acknowledged insert survives, the final
/// checkpoint leaves **zero** WAL records to replay, the drained snapshot
/// is byte-identical to an uninterrupted run's export, and the exit is
/// clean (code 0).
#[test]
fn sigterm_drains_with_zero_replay_recovery() {
    use std::io::{BufRead, BufReader};
    let dir = scratch("sigterm_drain");
    let (mut child, port) = spawn_with_tcp(&[
        "--data-dir",
        dir.to_str().unwrap(),
        "--snapshot-every",
        "4",
        "--full-every",
        "2",
    ]);

    // Feed the stream over TCP and wait for every ack: nothing is
    // in-flight when the signal lands, so "in-flight inserts complete"
    // degenerates to "acknowledged inserts survive" — the stronger
    // overlapping case is exercised by the drain serialization on the
    // durable mutex.
    let mut client = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
    let mut script = vec![OPEN.to_string()];
    script.extend(insert_lines(INSERTS));
    script.push("QUERY".into());
    client
        .write_all(format!("{}\n", script.join("\n")).as_bytes())
        .unwrap();
    let mut reader = BufReader::new(client.try_clone().unwrap());
    let mut pre_drain_query = String::new();
    for i in 0..script.len() {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK "), "command {i}: {line}");
        pre_drain_query = line.trim_end().to_string();
    }

    send_signal(child.id(), "TERM");
    // Close our connection so the drain's grace wait sees zero live
    // sessions and proceeds to the final checkpoint.
    drop(reader);
    drop(client);
    let status = child.wait().expect("wait for drained fdm-serve");
    assert_eq!(status.code(), Some(0), "drain must exit cleanly: {status}");

    // Zero-replay contract: the drained WAL is just its header.
    let wal = std::fs::read_to_string(dir.join("jobs.wal")).unwrap();
    assert_eq!(wal, "0 WALV2\n", "drained WAL must hold zero records");
    assert!(
        !dir.join("jobs.delta.1").exists(),
        "the drain anchor must collapse the delta chain"
    );

    // Byte-identical durable state: an uninterrupted in-process run over
    // the same arrivals exports the same binary snapshot.
    let reference_snap = dir.join("reference.bin");
    {
        let engine = Arc::new(Engine::new(ServeConfig::default()).unwrap());
        let mut output = Vec::new();
        let mut script = vec![OPEN.to_string()];
        script.extend(insert_lines(INSERTS));
        script.push(format!("SNAPSHOT {} format=bin", reference_snap.display()));
        Session::new(engine)
            .run(
                std::io::Cursor::new(script.join("\n").into_bytes()),
                &mut output,
            )
            .unwrap();
    }
    assert_eq!(
        std::fs::read(dir.join("jobs.snap")).unwrap(),
        std::fs::read(&reference_snap).unwrap(),
        "drained snapshot must be byte-identical to an uninterrupted run's export"
    );

    // Recovery replays nothing and answers the pre-drain QUERY verbatim.
    let mut child = Command::new(env!("CARGO_BIN_EXE_fdm-serve"))
        .args(["--data-dir", dir.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("respawn fdm-serve");
    {
        let mut stdin = child.stdin.take().unwrap();
        write!(stdin, "{OPEN}\nSTATS\nQUERY\nQUIT\n").unwrap();
    }
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines[1].contains(&format!("processed={INSERTS}")) && lines[1].contains("wal_records=0"),
        "zero-replay recovery: {}",
        lines[1]
    );
    assert_eq!(lines[2], pre_drain_query, "recovered QUERY must match");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A second SIGTERM while a live connection stalls the drain must force
/// an immediate exit (code 143 = 128 + SIGTERM).
#[test]
fn second_sigterm_forces_immediate_exit() {
    use std::time::{Duration, Instant};
    let dir = scratch("sigterm_twice");
    let (mut child, port) =
        spawn_with_tcp(&["--data-dir", dir.to_str().unwrap(), "--drain-grace", "60"]);
    // Hold a connection open so the 60 s grace period would stall the
    // drain far past this test's patience.
    let mut client = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
    client.write_all(b"PING\n").unwrap();
    let mut reader = std::io::BufReader::new(client.try_clone().unwrap());
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert_eq!(line.trim(), "OK pong");

    send_signal(child.id(), "TERM");
    std::thread::sleep(Duration::from_millis(300));
    send_signal(child.id(), "TERM");
    let start = Instant::now();
    let status = child.wait().expect("wait for force-killed fdm-serve");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "second SIGTERM must not wait out the grace period"
    );
    assert_eq!(
        status.code(),
        Some(143),
        "forced exit must use 128+SIGTERM: {status}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
