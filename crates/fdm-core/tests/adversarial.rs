//! Adversarial and edge-case integration tests for the streaming
//! algorithms: clustered minorities, duplicates, extreme spreads,
//! worst-case arrival orders, and non-Euclidean metrics.

use fdm_core::dataset::{Dataset, DistanceBounds};
use fdm_core::error::FdmError;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::metric::Metric;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::unconstrained::{StreamingDiversityMaximization, StreamingDmConfig};

fn run_sfdm1(
    dataset: &Dataset,
    quotas: Vec<usize>,
    eps: f64,
) -> Result<fdm_core::Solution, FdmError> {
    let constraint = FairnessConstraint::new(quotas)?;
    let bounds = dataset.exact_distance_bounds()?;
    let mut alg = Sfdm1::new(Sfdm1Config {
        constraint,
        epsilon: eps,
        bounds,
        metric: dataset.metric(),
    })?;
    for e in dataset.iter() {
        alg.insert(&e);
    }
    alg.finalize()
}

fn run_sfdm2(
    dataset: &Dataset,
    quotas: Vec<usize>,
    eps: f64,
) -> Result<fdm_core::Solution, FdmError> {
    let constraint = FairnessConstraint::new(quotas)?;
    let bounds = dataset.exact_distance_bounds()?;
    let mut alg = Sfdm2::new(Sfdm2Config {
        constraint,
        epsilon: eps,
        bounds,
        metric: dataset.metric(),
    })?;
    for e in dataset.iter() {
        alg.insert(&e);
    }
    alg.finalize()
}

#[test]
fn tight_minority_cluster_inside_majority_spread() {
    // Group 1 lives in a tiny ball at the center of group 0's line: the
    // group-specific candidates are what rescue fairness here.
    let mut rows = Vec::new();
    let mut groups = Vec::new();
    for i in 0..200 {
        rows.push(vec![i as f64, 0.0]);
        groups.push(0);
    }
    for i in 0..10 {
        rows.push(vec![100.0 + 0.001 * i as f64, 0.0]);
        groups.push(1);
    }
    let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
    let sol = run_sfdm1(&d, vec![3, 3], 0.1).unwrap();
    assert_eq!(sol.group_counts(2), vec![3, 3]);
    // The three minority picks are within 0.01 of each other, so the
    // diversity is tiny — but the solution must still be valid and fair.
    assert!(sol.diversity > 0.0);
}

#[test]
fn minority_arrives_last() {
    // All of group 1 arrives after every group-0 element: the group-blind
    // candidates are saturated with group 0 by then.
    let mut rows = Vec::new();
    let mut groups = Vec::new();
    for i in 0..300 {
        rows.push(vec![(i % 60) as f64, (i / 60) as f64]);
        groups.push(0);
    }
    for i in 0..20 {
        rows.push(vec![(i * 3) as f64, 10.0]);
        groups.push(1);
    }
    let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
    let sol = run_sfdm1(&d, vec![4, 4], 0.1).unwrap();
    assert_eq!(sol.group_counts(2), vec![4, 4]);
    let sol = run_sfdm2(&d, vec![4, 4], 0.1).unwrap();
    assert_eq!(sol.group_counts(2), vec![4, 4]);
}

#[test]
fn stream_full_of_duplicates() {
    // Only 6 distinct locations, each duplicated 50×.
    let mut rows = Vec::new();
    let mut groups = Vec::new();
    for rep in 0..50 {
        for loc in 0..6 {
            rows.push(vec![loc as f64 * 10.0, 0.0]);
            groups.push(usize::from(rep % 2 == 0));
        }
    }
    let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
    let sol = run_sfdm1(&d, vec![2, 2], 0.1).unwrap();
    assert_eq!(sol.group_counts(2), vec![2, 2]);
    // Duplicates must never be selected twice (distance 0 pairs).
    assert!(sol.diversity > 0.0, "duplicate pair selected: div = 0");
}

#[test]
fn extreme_metric_spread() {
    // Distances spanning 6 orders of magnitude stress the guess ladder.
    let mut rows = Vec::new();
    let mut groups = Vec::new();
    for i in 0..40 {
        rows.push(vec![i as f64 * 1e-3]);
        groups.push(0);
    }
    for i in 0..40 {
        rows.push(vec![1e3 + i as f64 * 40.0]);
        groups.push(1);
    }
    let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
    let bounds = d.exact_distance_bounds().unwrap();
    assert!(bounds.spread() > 1e5);
    let sol = run_sfdm1(&d, vec![2, 2], 0.2).unwrap();
    assert_eq!(sol.group_counts(2), vec![2, 2]);
    // OPT_f is limited by the two group-0 picks (all of group 0 spans just
    // 0.039), so the fair diversity is inherently tiny; require at least
    // half of that bottleneck, which means the ladder resolved the small
    // scale correctly despite the 10^5 spread.
    assert!(
        sol.diversity >= 0.039 / 2.0,
        "div {} below half the group-0 bottleneck",
        sol.diversity
    );
    // And the solution must still span the far group.
    let max_pair = sol
        .elements
        .iter()
        .flat_map(|a| sol.elements.iter().map(move |b| (a, b)))
        .map(|(a, b)| Metric::Euclidean.dist(&a.point, &b.point))
        .fold(0.0f64, f64::max);
    assert!(
        max_pair > 500.0,
        "solution collapsed to one scale: {max_pair}"
    );
}

#[test]
fn manhattan_and_chebyshev_streams() {
    let rows: Vec<Vec<f64>> = (0..120)
        .map(|i| vec![(i % 12) as f64, (i / 12) as f64, ((i * 7) % 5) as f64])
        .collect();
    let groups: Vec<usize> = (0..120).map(|i| i % 3).collect();
    for metric in [Metric::Manhattan, Metric::Chebyshev] {
        let d = Dataset::from_rows(rows.clone(), groups.clone(), metric).unwrap();
        let sol = run_sfdm2(&d, vec![2, 2, 2], 0.1).unwrap();
        assert_eq!(sol.group_counts(3), vec![2, 2, 2], "{metric:?}");
        assert!(sol.diversity > 0.0);
    }
}

#[test]
fn angular_metric_stream() {
    // Unit-ish vectors in the positive orthant; angular distances ≤ π/2.
    let rows: Vec<Vec<f64>> = (0..100)
        .map(|i| {
            let t = i as f64 / 100.0 * std::f64::consts::FRAC_PI_2;
            vec![t.cos(), t.sin(), 0.1]
        })
        .collect();
    let groups: Vec<usize> = (0..100).map(|i| i % 2).collect();
    let d = Dataset::from_rows(rows, groups, Metric::Angular).unwrap();
    let sol = run_sfdm1(&d, vec![3, 3], 0.05).unwrap();
    assert_eq!(sol.group_counts(2), vec![3, 3]);
    assert!(sol.diversity <= std::f64::consts::FRAC_PI_2 + 1e-9);
}

#[test]
fn quota_one_groups() {
    // Minimum quotas everywhere (k_i = 1): post-processing has the least
    // slack.
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| {
            vec![
                (i as f64 * 0.73).sin() * 20.0,
                (i as f64 * 0.31).cos() * 20.0,
            ]
        })
        .collect();
    let groups: Vec<usize> = (0..200).map(|i| i % 5).collect();
    let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
    let sol = run_sfdm2(&d, vec![1, 1, 1, 1, 1], 0.1).unwrap();
    assert_eq!(sol.group_counts(5), vec![1, 1, 1, 1, 1]);
}

#[test]
fn wildly_unbalanced_quotas() {
    let rows: Vec<Vec<f64>> = (0..400)
        .map(|i| vec![(i % 20) as f64 * 3.0, (i / 20) as f64 * 3.0])
        .collect();
    let groups: Vec<usize> = (0..400).map(|i| usize::from(i % 4 == 0)).collect();
    let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
    // Group 1 (25% of data) must supply 9 of 10 elements.
    let sol = run_sfdm1(&d, vec![1, 9], 0.1).unwrap();
    assert_eq!(sol.group_counts(2), vec![1, 9]);
}

#[test]
fn loose_distance_bounds_still_work() {
    // Bounds 100× wider than the true spread: more ladder rungs, same
    // guarantees (the best candidate wins regardless).
    let rows: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64]).collect();
    let groups: Vec<usize> = (0..150).map(|i| i % 2).collect();
    let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
    let constraint = FairnessConstraint::new(vec![3, 3]).unwrap();
    let bounds = DistanceBounds::new(0.01, 10_000.0).unwrap();
    let mut alg = Sfdm1::new(Sfdm1Config {
        constraint: constraint.clone(),
        epsilon: 0.1,
        bounds,
        metric: Metric::Euclidean,
    })
    .unwrap();
    for e in d.iter() {
        alg.insert(&e);
    }
    let sol = alg.finalize().unwrap();
    assert!(constraint.is_satisfied_by(&sol.group_counts(2)));
    // Optimal fair div on 0..149 with k=6 is ~149/5; require half of the
    // (1−ε)/4 guarantee comfortably.
    assert!(
        sol.diversity >= 0.2 * (149.0 / 5.0),
        "div {}",
        sol.diversity
    );
}

#[test]
fn unconstrained_on_identical_scales() {
    // All pairwise distances equal (simplex corners in L1): every k-subset
    // is optimal; the algorithm must return one without numerical issues.
    let rows = vec![
        vec![1.0, 0.0, 0.0, 0.0],
        vec![0.0, 1.0, 0.0, 0.0],
        vec![0.0, 0.0, 1.0, 0.0],
        vec![0.0, 0.0, 0.0, 1.0],
    ];
    let d = Dataset::from_rows(rows, vec![0; 4], Metric::Manhattan).unwrap();
    let bounds = d.exact_distance_bounds().unwrap();
    assert_eq!(bounds.spread(), 1.0);
    let mut alg = StreamingDiversityMaximization::new(StreamingDmConfig {
        k: 3,
        epsilon: 0.1,
        bounds,
        metric: Metric::Manhattan,
    })
    .unwrap();
    for e in d.iter() {
        alg.insert(&e);
    }
    let sol = alg.finalize().unwrap();
    assert_eq!(sol.len(), 3);
    assert!((sol.diversity - 2.0).abs() < 1e-12);
}

#[test]
fn sfdm2_with_fourteen_groups_like_census() {
    let rows: Vec<Vec<f64>> = (0..1400)
        .map(|i| {
            vec![
                (i as f64 * 0.17).sin() * 30.0,
                (i as f64 * 0.07).cos() * 30.0,
            ]
        })
        .collect();
    let groups: Vec<usize> = (0..1400).map(|i| i % 14).collect();
    let d = Dataset::from_rows(rows, groups, Metric::Manhattan).unwrap();
    let quotas = vec![1; 14];
    let sol = run_sfdm2(&d, quotas.clone(), 0.2).unwrap();
    assert_eq!(sol.group_counts(14), quotas);
}

#[test]
fn infeasible_bounds_error_cleanly() {
    let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
    let groups: Vec<usize> = (0..20).map(|i| i % 2).collect();
    let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
    // Bounds entirely below the true distances: every candidate fills with
    // the first k elements; the algorithm still returns a fair solution
    // (bounds misuse degrades quality, not validity).
    let constraint = FairnessConstraint::new(vec![2, 2]).unwrap();
    let bounds = DistanceBounds::new(1e-6, 1e-5).unwrap();
    let mut alg = Sfdm1::new(Sfdm1Config {
        constraint: constraint.clone(),
        epsilon: 0.1,
        bounds,
        metric: Metric::Euclidean,
    })
    .unwrap();
    for e in d.iter() {
        alg.insert(&e);
    }
    match alg.finalize() {
        Ok(sol) => assert!(constraint.is_satisfied_by(&sol.group_counts(2))),
        Err(e) => assert_eq!(e, FdmError::NoFeasibleCandidate),
    }
}
