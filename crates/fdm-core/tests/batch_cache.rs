//! The batch-path arrival cache must be a pure memoization: for every
//! candidate, [`Candidate::probe_batch_cached`] (table lookups against the
//! shared [`BatchProxies`]) must return the **exact** accept list the
//! uncached [`Candidate::probe_batch`] (bounded per-lane scans) returns —
//! across metrics, group restrictions, capacities, and partially-filled
//! candidates. The full-pipeline equality (batched vs element-by-element
//! ingestion) is additionally pinned per algorithm in their own suites.

use fdm_core::metric::{kernels, Metric};
use fdm_core::point::{Element, PointStore};
use fdm_core::streaming::candidate::{BatchProxies, Candidate};
use rand::prelude::*;

fn random_elements(rng: &mut StdRng, n: usize, dim: usize, m: usize, spread: f64) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let point: Vec<f64> = (0..dim)
                .map(|_| (rng.random::<f64>() - 0.5) * spread)
                .collect();
            Element::new(i, point, rng.random_range(0..m))
        })
        .collect()
}

fn norms_for(metric: Metric, batch: &[Element]) -> Vec<f64> {
    if metric.uses_norms() {
        batch.iter().map(|e| kernels::norm_sq(&e.point)).collect()
    } else {
        vec![0.0; batch.len()]
    }
}

/// Probes a whole guess ladder both ways over a growing arena and demands
/// identical accept lists lane by lane, batch by batch.
fn assert_bit_identical(metric: Metric, seed: u64, dim: usize, spread: f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = 3;
    let mut store = PointStore::new(dim);
    // A spread of guesses so some candidates accept eagerly (filling up)
    // and others almost never do.
    let mus = [0.05, 0.4, 1.1, 2.9, 6.5, 14.0];
    let mut lanes: Vec<(Candidate, Option<usize>)> = Vec::new();
    for &mu in &mus {
        lanes.push((Candidate::new(mu, 6, metric), None));
        for g in 0..m {
            lanes.push((Candidate::new(mu, 4, metric), Some(g)));
        }
    }
    for round in 0..6 {
        let batch = random_elements(&mut rng, 48, dim, m, spread);
        let norms = norms_for(metric, &batch);
        let proxies = BatchProxies::compute(true, &store, metric, &batch, &norms);
        let mut commits: Vec<(usize, Vec<u32>)> = Vec::new();
        for (lane, (candidate, restrict)) in lanes.iter().enumerate() {
            let plain = candidate.probe_batch(&store, &batch, &norms, *restrict);
            let cached = candidate.probe_batch_cached(&batch, &norms, *restrict, &proxies);
            assert_eq!(
                plain, cached,
                "{metric:?} seed {seed} round {round} lane {lane}: cached probe diverged"
            );
            commits.push((lane, cached));
        }
        // Commit exactly like the algorithms do (intern once, push into
        // every acceptor) so later rounds probe a realistic shared arena
        // with partially-filled candidates.
        let mut id_of_pos = vec![None; batch.len()];
        for (_, accepted) in &commits {
            for &pos in accepted {
                let slot = &mut id_of_pos[pos as usize];
                if slot.is_none() {
                    *slot = Some(store.push_element(&batch[pos as usize]));
                }
            }
        }
        for (lane, accepted) in commits {
            for pos in accepted {
                lanes[lane].0.push(id_of_pos[pos as usize].unwrap());
            }
        }
    }
    assert!(!store.is_empty(), "the scenario must exercise a real arena");
}

#[test]
fn cached_probe_is_bit_identical_euclidean() {
    for seed in 0..4 {
        assert_bit_identical(Metric::Euclidean, seed, 3, 20.0);
    }
}

#[test]
fn cached_probe_is_bit_identical_manhattan() {
    assert_bit_identical(Metric::Manhattan, 11, 2, 16.0);
}

#[test]
fn cached_probe_is_bit_identical_chebyshev() {
    assert_bit_identical(Metric::Chebyshev, 12, 4, 24.0);
}

#[test]
fn cached_probe_is_bit_identical_angular() {
    // Angular distances live in [0, π]; use thresholds that still bite by
    // keeping the spread moderate (the µ ladder above includes 0.05–2.9).
    assert_bit_identical(Metric::Angular, 13, 3, 8.0);
}

#[test]
fn cached_probe_is_bit_identical_minkowski() {
    assert_bit_identical(Metric::Minkowski(3.0), 14, 3, 18.0);
}

/// Duplicate and near-threshold points: exactly-at-µ decisions must agree
/// (the documented monotone-proxy property, not floating-point luck).
#[test]
fn cached_probe_agrees_on_exact_threshold_hits() {
    let metric = Metric::Euclidean;
    let mut store = PointStore::new(1);
    let candidate = {
        let mut c = Candidate::new(1.0, 8, metric);
        c.try_insert(&mut store, &Element::new(0, vec![0.0], 0));
        c.try_insert(&mut store, &Element::new(1, vec![5.0], 0));
        c
    };
    // 1.0 away (exactly µ), 0.999.. away, duplicates, and far points.
    let batch: Vec<Element> = [1.0, 0.9999999999, 0.0, 5.0, 6.0, 2.5, -1.0]
        .iter()
        .enumerate()
        .map(|(i, &x)| Element::new(10 + i, vec![x], 0))
        .collect();
    let norms = norms_for(metric, &batch);
    let proxies = BatchProxies::compute(true, &store, metric, &batch, &norms);
    assert_eq!(
        candidate.probe_batch(&store, &batch, &norms, None),
        candidate.probe_batch_cached(&batch, &norms, None, &proxies),
    );
}
