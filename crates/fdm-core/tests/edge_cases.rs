//! Edge-case coverage for the matroid-intersection and FairSwap paths that
//! the mainline tests never hit: empty groups, constraints larger than the
//! population, duplicate points, and fully degenerate (all-equal) streams.

use fdm_core::dataset::{Dataset, DistanceBounds};
use fdm_core::error::FdmError;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::matroid::intersection::max_common_independent_set;
use fdm_core::matroid::{Matroid, PartitionMatroid};
use fdm_core::metric::Metric;
use fdm_core::offline::fair_swap::{FairSwap, FairSwapConfig};
use fdm_core::point::Element;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;

// ---------------------------------------------------------------------------
// matroid/intersection.rs
// ---------------------------------------------------------------------------

#[test]
fn intersection_with_empty_ground_set() {
    let m1 = PartitionMatroid::new(vec![], vec![1, 1]).unwrap();
    let m2 = PartitionMatroid::new(vec![], vec![2]).unwrap();
    let result = max_common_independent_set(&m1, &m2, &[], None);
    assert!(result.is_empty());
}

#[test]
fn intersection_with_empty_part_in_one_matroid() {
    // M1 declares 3 parts but part 1 has no members (an "empty group"):
    // its capacity can never be used, and the algorithm must not stall.
    let m1 = PartitionMatroid::new(vec![0, 0, 2, 2], vec![1, 5, 1]).unwrap();
    let m2 = PartitionMatroid::new(vec![0, 1, 0, 1], vec![1, 1]).unwrap();
    let result = max_common_independent_set(&m1, &m2, &[], None);
    assert_eq!(result.len(), 2);
    assert!(m1.is_independent(&result));
    assert!(m2.is_independent(&result));
}

#[test]
fn intersection_with_all_capacities_zero() {
    let m1 = PartitionMatroid::new(vec![0, 0, 0], vec![0]).unwrap();
    let m2 = PartitionMatroid::new(vec![0, 1, 2], vec![1, 1, 1]).unwrap();
    let result = max_common_independent_set(&m1, &m2, &[], None);
    assert!(result.is_empty(), "zero capacity admits nothing");
}

#[test]
fn intersection_duplicate_scores_are_deterministic() {
    // All elements tie under the score: the greedy phase must still make
    // progress and terminate with a maximum set (first-maximum tie-break).
    let m1 = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1]).unwrap();
    let m2 = PartitionMatroid::new(vec![0, 1, 0, 1], vec![1, 1]).unwrap();
    let score = |_x: usize, _s: &[usize]| 1.0;
    let a = max_common_independent_set(&m1, &m2, &[], Some(&score));
    let b = max_common_independent_set(&m1, &m2, &[], Some(&score));
    assert_eq!(a, b);
    assert_eq!(a.len(), 2);
}

#[test]
fn intersection_initial_set_saturating_one_matroid() {
    // The initial set already saturates M2 (one part, capacity 1): no
    // augmentation is possible, and the initial choice survives.
    let m1 = PartitionMatroid::new(vec![0, 1, 2], vec![1, 1, 1]).unwrap();
    let m2 = PartitionMatroid::new(vec![0, 0, 0], vec![1]).unwrap();
    let result = max_common_independent_set(&m1, &m2, &[2], None);
    assert_eq!(result, vec![2]);
}

#[test]
fn intersection_nan_scores_do_not_panic() {
    // A pathological score function returning NaN must not break the
    // greedy comparisons (NaN never beats a real score under `>=`).
    let m1 = PartitionMatroid::new(vec![0, 1], vec![1, 1]).unwrap();
    let m2 = PartitionMatroid::new(vec![0, 1], vec![1, 1]).unwrap();
    let score = |x: usize, _s: &[usize]| if x == 0 { f64::NAN } else { 1.0 };
    let result = max_common_independent_set(&m1, &m2, &[], Some(&score));
    assert_eq!(result.len(), 2, "both elements are addable regardless");
}

// ---------------------------------------------------------------------------
// offline/fair_swap.rs
// ---------------------------------------------------------------------------

fn two_group_dataset(rows: Vec<Vec<f64>>, groups: Vec<usize>) -> Dataset {
    Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap()
}

fn swap(k1: usize, k2: usize) -> FairSwap {
    FairSwap::new(FairSwapConfig {
        constraint: FairnessConstraint::new(vec![k1, k2]).unwrap(),
        seed: 0,
        strategy: Default::default(),
    })
    .unwrap()
}

#[test]
fn fair_swap_empty_group_is_infeasible_not_a_panic() {
    // Group 1 exists in the constraint but not in the data at all: the
    // dataset infers one group, and feasibility checking reports the
    // constraint's out-of-range group rather than panicking.
    let d = two_group_dataset((0..20).map(|i| vec![i as f64]).collect(), vec![0; 20]);
    let err = swap(2, 2).run(&d).unwrap_err();
    assert!(
        matches!(
            err,
            FdmError::InvalidGroup {
                group: 1,
                num_groups: 1
            } | FdmError::InfeasibleConstraint { group: 1, .. }
        ),
        "got {err:?}"
    );
}

#[test]
fn fair_swap_quota_exceeding_group_size() {
    // "k smaller than group count" mirror: a quota larger than the group.
    let d = two_group_dataset(
        (0..10).map(|i| vec![i as f64]).collect(),
        vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1],
    );
    let err = swap(2, 3).run(&d).unwrap_err();
    assert!(matches!(
        err,
        FdmError::InfeasibleConstraint {
            group: 1,
            requested: 3,
            available: 1
        }
    ));
}

#[test]
fn fair_swap_duplicate_points_still_fair() {
    // Heavy duplication: balancing must not select the same row twice and
    // the result stays exactly fair.
    let mut rows = Vec::new();
    let mut groups = Vec::new();
    for i in 0..12 {
        let x = (i / 3) as f64 * 5.0; // four distinct sites, three copies each
        rows.push(vec![x]);
        groups.push(i % 2);
    }
    let sol = swap(2, 2).run(&two_group_dataset(rows, groups)).unwrap();
    assert_eq!(sol.group_counts(2), vec![2, 2]);
    let mut ids = sol.ids();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 4, "no row may be selected twice");
}

#[test]
fn fair_swap_all_equal_coordinates_degenerates_gracefully() {
    // Every point identical: any fair selection has diversity 0; the
    // algorithm must return one (or a clean error), never panic or loop.
    let d = two_group_dataset(vec![vec![3.0, 3.0]; 16], (0..16).map(|i| i % 2).collect());
    match swap(3, 3).run(&d) {
        Ok(sol) => {
            assert_eq!(sol.group_counts(2), vec![3, 3]);
            assert_eq!(sol.diversity, 0.0);
        }
        Err(e) => assert_eq!(e, FdmError::NoFeasibleCandidate),
    }
}

// ---------------------------------------------------------------------------
// degenerate streams through the streaming algorithms
// ---------------------------------------------------------------------------

#[test]
fn sfdm1_all_equal_stream_errors_cleanly() {
    // All arrivals coincide: every candidate keeps exactly one element, so
    // no guess reaches k and finalize reports infeasibility (not a panic).
    let mut alg = Sfdm1::new(Sfdm1Config {
        constraint: FairnessConstraint::new(vec![2, 2]).unwrap(),
        epsilon: 0.1,
        bounds: DistanceBounds::new(0.5, 10.0).unwrap(),
        metric: Metric::Euclidean,
    })
    .unwrap();
    for i in 0..50 {
        alg.insert(&Element::new(i, vec![1.0, 1.0], i % 2));
    }
    // One retained copy per group (each group-specific ladder keeps the
    // first element it sees); duplicates beyond that are never re-retained.
    assert_eq!(alg.stored_elements(), 2);
    assert_eq!(alg.finalize().unwrap_err(), FdmError::NoFeasibleCandidate);
}

#[test]
fn sfdm2_all_equal_stream_errors_cleanly() {
    let mut alg = Sfdm2::new(Sfdm2Config {
        constraint: FairnessConstraint::new(vec![1, 1, 1]).unwrap(),
        epsilon: 0.1,
        bounds: DistanceBounds::new(0.5, 10.0).unwrap(),
        metric: Metric::Euclidean,
    })
    .unwrap();
    for i in 0..60 {
        alg.insert(&Element::new(i, vec![7.0], i % 3));
    }
    // One retained copy per group (m = 3).
    assert_eq!(alg.stored_elements(), 3);
    assert_eq!(alg.finalize().unwrap_err(), FdmError::NoFeasibleCandidate);
}

#[test]
fn sharded_all_equal_stream_errors_cleanly() {
    // The same degenerate stream through the sharded path: every shard
    // retains one copy, the merge sees K identical points, and the final
    // answer is the same clean error as unsharded.
    let cfg = Sfdm2Config {
        constraint: FairnessConstraint::new(vec![1, 1]).unwrap(),
        epsilon: 0.1,
        bounds: DistanceBounds::new(0.5, 10.0).unwrap(),
        metric: Metric::Euclidean,
    };
    let mut alg: ShardedStream<Sfdm2> = ShardedStream::new(cfg, 3).unwrap();
    for i in 0..30 {
        alg.insert(&Element::new(i, vec![2.0, 2.0], i % 2));
    }
    assert_eq!(
        alg.stored_elements(),
        6,
        "one retained copy per shard per group (3 shards × 2 groups)"
    );
    assert_eq!(alg.finalize().unwrap_err(), FdmError::NoFeasibleCandidate);
}

#[test]
fn constraint_rejects_zero_quota_groups() {
    // "k smaller than the group count" cannot be expressed with positive
    // quotas; the constraint constructor rejects the zero-quota encoding.
    assert_eq!(
        FairnessConstraint::new(vec![2, 0, 1]).unwrap_err(),
        FdmError::EmptyConstraint
    );
    assert!(matches!(
        FairnessConstraint::equal_representation(2, 3).unwrap_err(),
        FdmError::SolutionSizeTooSmall { k: 2 }
    ));
}
