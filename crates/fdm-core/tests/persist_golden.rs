//! Golden snapshot fixtures: format compatibility pinned at the byte
//! level.
//!
//! For each of the four summary types a canonical v1 (JSON) and v2
//! (binary) snapshot is checked in under `tests/fixtures/snapshots/`. The
//! tests assert that today's code (a) restores each fixture, (b) lands on
//! the exact recorded stream position, and (c) re-encodes the restored
//! summary **byte-identically** to the fixture — so any unannounced change
//! to either format, the state schema, or the restore path fails CI here
//! under its own name.
//!
//! Re-recording: `UPDATE_GOLDEN=1 cargo test -p fdm-core --test
//! persist_golden` rewrites the **v2** fixtures (the binary format may
//! evolve with a version bump). The v1 fixtures are frozen forever — they
//! are only written if missing, and a v1 mismatch means v1
//! reading/writing compatibility broke, which must never happen silently.
//!
//! The fixture streams are closed-form (no RNG), so the fixtures do not
//! depend on any random-number implementation detail.

use std::path::PathBuf;

use fdm_core::dataset::DistanceBounds;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::metric::Metric;
use fdm_core::persist::{Snapshot, SnapshotFormat, Snapshottable};
use fdm_core::point::Element;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;
use fdm_core::streaming::sliding::{SlidingWindowConfig, SlidingWindowFdm};
use fdm_core::streaming::unconstrained::{StreamingDiversityMaximization, StreamingDmConfig};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("snapshots")
}

/// Deterministic 2-group stream, no RNG involved.
fn stream(n: usize, m: usize, dim: usize) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let point: Vec<f64> = (0..dim)
                .map(|d| ((i * (d + 3)) as f64 * 0.7391).sin() * 9.0)
                .collect();
            Element::new(i, point, i % m)
        })
        .collect()
}

fn bounds() -> DistanceBounds {
    DistanceBounds::new(0.05, 25.0).unwrap()
}

fn unconstrained() -> StreamingDiversityMaximization {
    let mut alg = StreamingDiversityMaximization::new(StreamingDmConfig {
        k: 5,
        epsilon: 0.1,
        bounds: bounds(),
        metric: Metric::Euclidean,
    })
    .unwrap();
    for e in stream(90, 1, 3) {
        alg.insert(&e);
    }
    alg
}

fn sfdm1() -> Sfdm1 {
    let mut alg = Sfdm1::new(Sfdm1Config {
        constraint: FairnessConstraint::new(vec![2, 2]).unwrap(),
        epsilon: 0.1,
        bounds: bounds(),
        metric: Metric::Euclidean,
    })
    .unwrap();
    for e in stream(90, 2, 3) {
        alg.insert(&e);
    }
    alg
}

fn sfdm2() -> Sfdm2 {
    let mut alg = Sfdm2::new(Sfdm2Config {
        constraint: FairnessConstraint::new(vec![2, 1, 2]).unwrap(),
        epsilon: 0.1,
        bounds: bounds(),
        metric: Metric::Manhattan,
    })
    .unwrap();
    for e in stream(90, 3, 3) {
        alg.insert(&e);
    }
    alg
}

fn sharded() -> ShardedStream<Sfdm2> {
    let mut alg: ShardedStream<Sfdm2> = ShardedStream::new(
        Sfdm2Config {
            constraint: FairnessConstraint::new(vec![2, 2]).unwrap(),
            epsilon: 0.1,
            bounds: bounds(),
            metric: Metric::Euclidean,
        },
        3,
    )
    .unwrap();
    for e in stream(120, 2, 3) {
        alg.insert(&e);
    }
    alg
}

fn sliding() -> SlidingWindowFdm {
    let mut alg = SlidingWindowFdm::new(
        Sfdm2Config {
            constraint: FairnessConstraint::new(vec![2, 2]).unwrap(),
            epsilon: 0.1,
            bounds: bounds(),
            metric: Metric::Euclidean,
        },
        40,
    )
    .unwrap();
    // 90 arrivals with W/2 = 20: four rotations, both instances mid-cycle.
    for e in stream(90, 2, 3) {
        alg.insert(&e);
    }
    alg
}

fn sharded_sliding() -> ShardedStream<SlidingWindowFdm> {
    let mut alg: ShardedStream<SlidingWindowFdm> = ShardedStream::new(
        SlidingWindowConfig {
            inner: Sfdm2Config {
                constraint: FairnessConstraint::new(vec![2, 2]).unwrap(),
                epsilon: 0.1,
                bounds: bounds(),
                metric: Metric::Euclidean,
            },
            window: 30,
        },
        3,
    )
    .unwrap();
    for e in stream(120, 2, 3) {
        alg.insert(&e);
    }
    alg
}

fn check<T: Snapshottable>(name: &str, build: impl Fn() -> T) {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let live = build();
    let snapshot = live.snapshot();

    for (format, file, frozen) in [
        (SnapshotFormat::Json, format!("{name}.v1.json"), true),
        (SnapshotFormat::Binary, format!("{name}.v2.bin"), false),
    ] {
        let path = dir.join(&file);
        let expected = snapshot.to_bytes(format);
        if update && (!frozen || !path.exists()) {
            // v2 may be re-recorded; v1 is frozen — only created when the
            // fixture does not exist yet.
            std::fs::write(&path, &expected).unwrap();
        }
        let fixture = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); run UPDATE_GOLDEN=1 once",
                path.display()
            )
        });

        // 1. Today's reader restores the fixture...
        let parsed = Snapshot::from_bytes(&fixture)
            .unwrap_or_else(|e| panic!("{file}: fixture no longer parses: {e}"));
        let restored = T::restore(&parsed)
            .unwrap_or_else(|e| panic!("{file}: fixture no longer restores: {e}"));

        // 2. ...to the exact recorded stream position and envelope...
        assert_eq!(
            restored.snapshot_params(),
            snapshot.params,
            "{file}: restored envelope drifted"
        );

        // 3. ...and today's writer reproduces the fixture byte-for-byte.
        let reencoded = restored.snapshot().to_bytes(format);
        assert_eq!(
            reencoded,
            fixture,
            "{file}: re-encoding the restored summary no longer matches the fixture \
             ({} vs {} bytes){}",
            reencoded.len(),
            fixture.len(),
            if frozen {
                " — v1 is frozen forever; keep the legacy read AND write paths intact"
            } else {
                " — if this is an intended v2 format change, bump the version and re-record \
                 with UPDATE_GOLDEN=1"
            }
        );
    }
}

#[test]
fn golden_unconstrained() {
    check("unconstrained", unconstrained);
}

#[test]
fn golden_sfdm1() {
    check("sfdm1", sfdm1);
}

#[test]
fn golden_sfdm2() {
    check("sfdm2", sfdm2);
}

#[test]
fn golden_sharded() {
    check("sharded-sfdm2", sharded);
}

#[test]
fn golden_sliding() {
    check("sliding", sliding);
}

#[test]
fn golden_sharded_sliding() {
    check("sharded-sliding", sharded_sliding);
}

/// The sliding envelope must carry its window (a different window is a
/// different deployment) while the pre-sliding fixtures stay window-free —
/// the serialization is additive, never reshaping old documents.
#[test]
fn sliding_fixture_envelope_carries_window() {
    let path = fixture_dir().join("sliding.v1.json");
    if !path.exists() {
        return; // created by golden_sliding's first UPDATE_GOLDEN run
    }
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"algorithm\":\"sliding\""));
    assert!(text.contains("\"window\":40"));
    for name in ["unconstrained", "sfdm1", "sfdm2", "sharded-sfdm2"] {
        let old = fixture_dir().join(format!("{name}.v1.json"));
        if old.exists() {
            let text = std::fs::read_to_string(&old).unwrap();
            assert!(
                !text.contains("\"window\""),
                "{name}: pre-sliding envelope grew a window field"
            );
        }
    }
}

/// PR3-era v1 documents carried a full `mus` array per ladder (today's
/// writer stores a CRC digest instead). That legacy shape must restore
/// forever: this test pins a checked-in legacy-`mus` fixture through the
/// compatibility read path and requires the restored summary to match
/// the digest-form snapshot exactly.
#[test]
fn golden_v1_legacy_mus_shape_still_restores() {
    use serde::{Map, Value};

    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sfdm2.v1-legacy-mus.json");
    let live = sfdm2();
    let snapshot = live.snapshot();

    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") && !path.exists() {
        // Synthesize the pre-digest shape once: every ladder object swaps
        // its `mu_crc` for the explicit `mus` list the old writer emitted
        // (all ladders share the configuration-implied guess values).
        let mus: Vec<f64> = fdm_core::guess::GuessLadder::new(bounds(), 0.1)
            .unwrap()
            .values()
            .to_vec();
        fn legacify(value: &Value, mus: &[f64]) -> Value {
            match value {
                Value::Object(map) => {
                    let mut out = Map::new();
                    for (key, item) in map.iter() {
                        if key == "mu_crc" {
                            out.insert(
                                "mus".to_string(),
                                serde::Serialize::to_value(&mus.to_vec()),
                            );
                        } else {
                            out.insert(key.clone(), legacify(item, mus));
                        }
                    }
                    Value::Object(out)
                }
                Value::Array(items) => {
                    Value::Array(items.iter().map(|i| legacify(i, mus)).collect())
                }
                other => other.clone(),
            }
        }
        let legacy = Snapshot {
            params: snapshot.params.clone(),
            state: legacify(&snapshot.state, &mus),
        };
        std::fs::write(&path, legacy.to_bytes(SnapshotFormat::Json)).unwrap();
    }

    let fixture = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing legacy fixture {} ({e}); run UPDATE_GOLDEN=1 once",
            path.display()
        )
    });
    let text = String::from_utf8(fixture.clone()).unwrap();
    assert!(
        text.contains("\"mus\":["),
        "fixture must carry the legacy shape"
    );
    assert!(!text.contains("mu_crc"), "fixture must predate the digest");

    let parsed = Snapshot::from_bytes(&fixture).expect("legacy v1 parses");
    let restored = Sfdm2::restore(&parsed).expect("legacy v1 restores");
    // The legacy document restores to the same summary today's writer
    // would capture — digest and explicit thresholds are interchangeable.
    assert_eq!(restored.snapshot(), snapshot);
}

/// The v1 fixtures must parse as plain JSON with the frozen envelope
/// constants — belt and braces beyond the byte comparison above.
#[test]
fn v1_fixtures_are_json_version_1() {
    for name in [
        "unconstrained",
        "sfdm1",
        "sfdm2",
        "sharded-sfdm2",
        "sliding",
        "sharded-sliding",
    ] {
        let path = fixture_dir().join(format!("{name}.v1.json"));
        if !path.exists() {
            continue; // created by the per-summary tests' first UPDATE_GOLDEN run
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"magic\":\"FDMSNAP\""), "{name}");
        assert!(text.contains("\"version\":1"), "{name}");
    }
}
