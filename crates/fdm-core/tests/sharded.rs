//! Property tests for [`ShardedStream`]: on random multi-group streams the
//! merged solution must satisfy the fairness constraint *exactly* and keep
//! its diversity within the base algorithm's approximation factor of the
//! single-shard run, and `K = 1` must be indistinguishable (bit-for-bit)
//! from the unsharded algorithm.
//!
//! All properties use the default proptest configuration, so CI can pin a
//! fixed fast case count through `PROPTEST_CASES`.

use fdm_core::dataset::Dataset;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::metric::Metric;
use fdm_core::point::Element;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;
use proptest::prelude::*;

/// A generated stream instance: points, dense group labels, group count.
#[derive(Debug, Clone)]
struct Instance {
    rows: Vec<Vec<f64>>,
    groups: Vec<usize>,
    m: usize,
}

impl Instance {
    fn dataset(&self) -> Dataset {
        Dataset::from_rows(self.rows.clone(), self.groups.clone(), Metric::Euclidean).unwrap()
    }
}

/// Streams of 40–120 points in 2–4 groups; every group is guaranteed at
/// least 4 members so small equal quotas stay feasible.
fn instances(max_m: usize) -> impl Strategy<Value = Instance> {
    (2usize..=max_m).prop_flat_map(move |m| {
        (
            Just(m),
            proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0usize..m), 40..=120),
        )
            .prop_map(|(m, raw)| {
                let rows: Vec<Vec<f64>> = raw.iter().map(|&(x, y, _)| vec![x, y]).collect();
                let mut groups: Vec<usize> = raw.iter().map(|&(_, _, g)| g).collect();
                // Pin 4 members per group up front so quotas ≤ 4 are
                // feasible regardless of the random labels.
                for g in 0..m {
                    for slot in 0..4 {
                        groups[g * 4 + slot] = g;
                    }
                }
                Instance { rows, groups, m }
            })
    })
}

fn run_sfdm2_sharded(inst: &Instance, quota: usize, shards: usize) -> ShardedStream<Sfdm2> {
    let d = inst.dataset();
    let cfg = Sfdm2Config {
        constraint: FairnessConstraint::new(vec![quota; inst.m]).unwrap(),
        epsilon: 0.1,
        bounds: d.exact_distance_bounds().unwrap(),
        metric: Metric::Euclidean,
    };
    let mut alg: ShardedStream<Sfdm2> = ShardedStream::new(cfg, shards).unwrap();
    for e in d.iter() {
        alg.insert(&e);
    }
    alg
}

proptest! {
    #[test]
    fn merged_sfdm2_is_exactly_fair_and_within_factor(
        inst in instances(4),
        quota in 1usize..=2,
        shards in 2usize..=4,
    ) {
        // Duplicate points can make the exact bounds degenerate; such
        // streams are exercised separately in tests/edge_cases.rs.
        prop_assume!(inst.dataset().exact_distance_bounds().is_ok());
        let sharded = run_sfdm2_sharded(&inst, quota, shards);
        let single = run_sfdm2_sharded(&inst, quota, 1);

        let merged = sharded.finalize();
        let baseline = single.finalize();
        prop_assume!(baseline.is_ok());
        let baseline = baseline.unwrap();
        // The union of shard summaries retains at least the single run's
        // feasibility: the merged run must produce a solution too.
        prop_assert!(merged.is_ok(), "merged run failed where single-shard succeeded");
        let merged = merged.unwrap();

        // Fairness holds *exactly* (not approximately).
        let constraint = FairnessConstraint::new(vec![quota; inst.m]).unwrap();
        let k = constraint.total();
        prop_assert_eq!(merged.len(), k);
        prop_assert!(
            constraint.is_satisfied_by(&merged.group_counts(inst.m)),
            "unfair merged solution: {:?}", merged.group_counts(inst.m)
        );

        // Quality: within SFDM2's (1−ε)/(3m+2) factor of the single-shard
        // diversity (the merge pass re-runs the same approximation over a
        // summary that certifies the single-shard value).
        let factor = (1.0 - 0.1) / (3.0 * inst.m as f64 + 2.0);
        prop_assert!(
            merged.diversity >= factor * baseline.diversity - 1e-9,
            "merged {} below {} × single-shard {}",
            merged.diversity, factor, baseline.diversity
        );
    }

    #[test]
    fn merged_sfdm1_is_exactly_fair_and_within_factor(
        inst in instances(2),
        quota in 1usize..=3,
        shards in 2usize..=4,
    ) {
        prop_assume!(inst.dataset().exact_distance_bounds().is_ok());
        let d = inst.dataset();
        let constraint = FairnessConstraint::new(vec![quota; 2]).unwrap();
        let cfg = Sfdm1Config {
            constraint: constraint.clone(),
            epsilon: 0.1,
            bounds: d.exact_distance_bounds().unwrap(),
            metric: Metric::Euclidean,
        };
        let mut sharded: ShardedStream<Sfdm1> = ShardedStream::new(cfg.clone(), shards).unwrap();
        let mut single = Sfdm1::new(cfg).unwrap();
        for e in d.iter() {
            sharded.insert(&e);
            single.insert(&e);
        }
        let baseline = single.finalize();
        prop_assume!(baseline.is_ok());
        let baseline = baseline.unwrap();
        let merged = sharded.finalize();
        prop_assert!(merged.is_ok(), "merged run failed where single-shard succeeded");
        let merged = merged.unwrap();
        prop_assert!(
            constraint.is_satisfied_by(&merged.group_counts(2)),
            "unfair merged solution: {:?}", merged.group_counts(2)
        );
        // SFDM1's factor is (1−ε)/4.
        let factor = (1.0 - 0.1) / 4.0;
        prop_assert!(
            merged.diversity >= factor * baseline.diversity - 1e-9,
            "merged {} below {} × single-shard {}",
            merged.diversity, factor, baseline.diversity
        );
    }

    #[test]
    fn one_shard_is_bit_identical_to_unsharded(
        inst in instances(3),
        quota in 1usize..=2,
    ) {
        prop_assume!(inst.dataset().exact_distance_bounds().is_ok());
        let d = inst.dataset();
        let cfg = Sfdm2Config {
            constraint: FairnessConstraint::new(vec![quota; inst.m]).unwrap(),
            epsilon: 0.1,
            bounds: d.exact_distance_bounds().unwrap(),
            metric: Metric::Euclidean,
        };
        let mut sharded: ShardedStream<Sfdm2> = ShardedStream::new(cfg.clone(), 1).unwrap();
        let mut plain = Sfdm2::new(cfg).unwrap();
        for e in d.iter() {
            sharded.insert(&e);
            plain.insert(&e);
        }
        prop_assert_eq!(sharded.stored_elements(), plain.stored_elements());
        match (sharded.finalize(), plain.finalize()) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.ids(), b.ids());
                prop_assert_eq!(a.diversity.to_bits(), b.diversity.to_bits());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "outcome mismatch: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn shard_routing_is_a_partition(
        n in 10usize..200,
        shards in 1usize..=5,
    ) {
        // Round-robin dealing: every element lands in exactly one shard and
        // counts differ by at most one.
        let cfg = Sfdm2Config {
            constraint: FairnessConstraint::new(vec![1, 1]).unwrap(),
            epsilon: 0.2,
            bounds: fdm_core::dataset::DistanceBounds::new(0.5, 300.0).unwrap(),
            metric: Metric::Euclidean,
        };
        let mut sharded: ShardedStream<Sfdm2> = ShardedStream::new(cfg, shards).unwrap();
        for i in 0..n {
            sharded.insert(&Element::new(i, vec![i as f64, 0.0], i % 2));
        }
        prop_assert_eq!(sharded.processed(), n);
        let counts: Vec<usize> = sharded.shards().iter().map(|s| s.processed()).collect();
        prop_assert_eq!(counts.iter().sum::<usize>(), n);
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        prop_assert!(hi - lo <= 1, "unbalanced round-robin: {counts:?}");
    }
}
