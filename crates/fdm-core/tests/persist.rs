//! Snapshot/restore persistence: round-trip bit-identity for every
//! snapshot-able summary, and typed errors for corrupted, truncated,
//! wrong-version, and incompatible snapshot documents.
//!
//! The load-bearing property (the repo's acceptance criterion): snapshot →
//! restore → replay of any remaining stream suffix yields **bit-identical**
//! solutions to an uninterrupted run, for SFDM1, SFDM2, the unconstrained
//! algorithm, and `ShardedStream`.

use fdm_core::dataset::DistanceBounds;
use fdm_core::error::FdmError;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::metric::Metric;
use fdm_core::persist::{Snapshot, Snapshottable, SNAPSHOT_VERSION};
use fdm_core::point::Element;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;
use fdm_core::streaming::unconstrained::{StreamingDiversityMaximization, StreamingDmConfig};
use proptest::prelude::*;
use rand::prelude::*;

fn random_elements(n: usize, m: usize, dim: usize, seed: u64) -> Vec<Element> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let point: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 10.0).collect();
            // Ensure every group appears early so fair runs are feasible.
            let group = if i < m { i } else { rng.random_range(0..m) };
            Element::new(i, point, group)
        })
        .collect()
}

fn bounds() -> DistanceBounds {
    DistanceBounds::new(0.05, 20.0).unwrap()
}

/// Restores a snapshot into the same summary type as `_witness` (pins the
/// trait-method type inference inside the round-trip macro).
fn restore_like<T: Snapshottable>(_witness: &T, snap: &Snapshot) -> fdm_core::error::Result<T> {
    T::restore(snap)
}

fn sfdm1_config() -> Sfdm1Config {
    Sfdm1Config {
        constraint: FairnessConstraint::new(vec![2, 2]).unwrap(),
        epsilon: 0.1,
        bounds: bounds(),
        metric: Metric::Euclidean,
    }
}

fn sfdm2_config(m: usize) -> Sfdm2Config {
    Sfdm2Config {
        constraint: FairnessConstraint::equal_representation(2 * m, m).unwrap(),
        epsilon: 0.1,
        bounds: bounds(),
        metric: Metric::Euclidean,
    }
}

fn dm_config() -> StreamingDmConfig {
    StreamingDmConfig {
        k: 5,
        epsilon: 0.1,
        bounds: bounds(),
        metric: Metric::Euclidean,
    }
}

/// Runs the interrupted pipeline (prefix → snapshot → JSON → restore →
/// suffix) against the uninterrupted reference and asserts bit-identity of
/// the stored state and the final solution.
macro_rules! assert_roundtrip_bit_identical {
    ($build:expr, $elements:expr, $split:expr) => {{
        let elements: &[Element] = $elements;
        let split = $split.min(elements.len());

        let mut reference = $build;
        for e in elements {
            reference.insert(e);
        }

        let mut prefix = $build;
        for e in &elements[..split] {
            prefix.insert(e);
        }
        let snap = prefix.snapshot();
        let text = snap.to_json();
        let parsed = Snapshot::from_json(&text).expect("snapshot JSON parses");
        assert_eq!(parsed, snap, "envelope survives the text round trip");
        let mut restored = restore_like(&prefix, &parsed).expect("snapshot restores");
        drop(prefix);
        for e in &elements[split..] {
            restored.insert(e);
        }

        assert_eq!(reference.processed(), restored.processed());
        assert_eq!(reference.stored_elements(), restored.stored_elements());
        match (reference.finalize(), restored.finalize()) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.ids(), b.ids(), "solution ids must be bit-identical");
                assert_eq!(
                    a.diversity.to_bits(),
                    b.diversity.to_bits(),
                    "diversity must be bit-identical"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("reference {a:?} and restored {b:?} disagree"),
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn unconstrained_roundtrip(seed in 0u64..1000, n in 40usize..160, split_pct in 0usize..=100) {
        let elements = random_elements(n, 1, 3, seed);
        assert_roundtrip_bit_identical!(
            StreamingDiversityMaximization::new(dm_config()).unwrap(),
            &elements,
            n * split_pct / 100
        );
    }

    #[test]
    fn sfdm1_roundtrip(seed in 0u64..1000, n in 40usize..160, split_pct in 0usize..=100) {
        let elements = random_elements(n, 2, 3, seed);
        assert_roundtrip_bit_identical!(
            Sfdm1::new(sfdm1_config()).unwrap(),
            &elements,
            n * split_pct / 100
        );
    }

    #[test]
    fn sfdm2_roundtrip(seed in 0u64..1000, n in 40usize..160, split_pct in 0usize..=100, m in 2usize..4) {
        let elements = random_elements(n, m, 3, seed);
        assert_roundtrip_bit_identical!(
            Sfdm2::new(sfdm2_config(m)).unwrap(),
            &elements,
            n * split_pct / 100
        );
    }

    #[test]
    fn sharded_roundtrip(seed in 0u64..1000, n in 60usize..180, split_pct in 0usize..=100, shards in 1usize..5) {
        let elements = random_elements(n, 2, 3, seed);
        assert_roundtrip_bit_identical!(
            ShardedStream::<Sfdm2>::new(sfdm2_config(2), shards).unwrap(),
            &elements,
            n * split_pct / 100
        );
    }
}

#[test]
fn snapshot_of_untouched_stream_restores() {
    // Edge case: snapshot before the first element (dimension unknown).
    let alg = Sfdm2::new(sfdm2_config(2)).unwrap();
    let snap = alg.snapshot();
    assert_eq!(snap.params.dim, 0, "dimension is a wildcard before data");
    let mut restored = Sfdm2::restore(&snap).unwrap();
    for e in random_elements(60, 2, 2, 7) {
        restored.insert(&e);
    }
    assert!(restored.finalize().is_ok());
}

#[test]
fn file_round_trip() {
    let mut alg = Sfdm1::new(sfdm1_config()).unwrap();
    for e in random_elements(80, 2, 3, 3) {
        alg.insert(&e);
    }
    let path = std::env::temp_dir().join("fdm_persist_file_round_trip.snap");
    alg.snapshot().write_to_file(&path).unwrap();
    let back = Snapshot::read_from_file(&path).unwrap();
    let restored = Sfdm1::restore(&back).unwrap();
    assert_eq!(restored.processed(), alg.processed());
    assert_eq!(
        restored.finalize().unwrap().ids(),
        alg.finalize().unwrap().ids()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_snapshot_io_error() {
    let err = Snapshot::read_from_file("/nonexistent/fdm.snap").unwrap_err();
    assert!(matches!(err, FdmError::SnapshotIo { .. }), "{err}");
}

fn sample_snapshot() -> Snapshot {
    let mut alg = Sfdm2::new(sfdm2_config(2)).unwrap();
    for e in random_elements(100, 2, 2, 11) {
        alg.insert(&e);
    }
    alg.snapshot()
}

#[test]
fn truncated_and_garbage_documents_are_corrupt() {
    let text = sample_snapshot().to_json();
    for cut in [0, 1, text.len() / 2, text.len() - 1] {
        let err = Snapshot::from_json(&text[..cut]).unwrap_err();
        assert!(
            matches!(err, FdmError::CorruptSnapshot { .. }),
            "cut at {cut}: {err}"
        );
    }
    assert!(matches!(
        Snapshot::from_json("not json at all"),
        Err(FdmError::CorruptSnapshot { .. })
    ));
    assert!(matches!(
        Snapshot::from_json("{\"magic\":\"WRONG\",\"version\":1}"),
        Err(FdmError::CorruptSnapshot { .. })
    ));
}

#[test]
fn future_version_is_rejected() {
    let text = sample_snapshot()
        .to_json()
        .replace("\"version\":1", "\"version\":2");
    assert_eq!(
        Snapshot::from_json(&text).unwrap_err(),
        FdmError::UnsupportedSnapshotVersion {
            found: 2,
            supported: SNAPSHOT_VERSION
        }
    );
}

#[test]
fn wrong_algorithm_is_incompatible() {
    let snap = sample_snapshot(); // sfdm2
    let err = Sfdm1::restore(&snap).unwrap_err();
    assert!(
        matches!(err, FdmError::IncompatibleSnapshot { .. }),
        "{err}"
    );
    let err = StreamingDiversityMaximization::restore(&snap).unwrap_err();
    assert!(
        matches!(err, FdmError::IncompatibleSnapshot { .. }),
        "{err}"
    );
    let err = ShardedStream::<Sfdm2>::restore(&snap).unwrap_err();
    assert!(
        matches!(err, FdmError::IncompatibleSnapshot { .. }),
        "{err}"
    );
}

#[test]
fn tampered_envelope_params_are_incompatible() {
    // The envelope advertises ε = 0.2 but the state was built with 0.1: the
    // cross-check must refuse rather than hand back a summary whose ladder
    // disagrees with its own description.
    let mut snap = sample_snapshot();
    snap.params.epsilon = 0.2;
    let err = Sfdm2::restore(&snap).unwrap_err();
    assert!(
        matches!(err, FdmError::IncompatibleSnapshot { .. }),
        "{err}"
    );
}

#[test]
fn dimension_mismatch_is_rejected_by_compatibility_check() {
    // A deployment ingesting 2-d points must refuse a 5-d snapshot instead
    // of producing garbage distances.
    let live = {
        let mut alg = Sfdm2::new(sfdm2_config(2)).unwrap();
        for e in random_elements(50, 2, 2, 1) {
            alg.insert(&e);
        }
        alg.snapshot_params()
    };
    let foreign = {
        let mut alg = Sfdm2::new(sfdm2_config(2)).unwrap();
        for e in random_elements(50, 2, 5, 1) {
            alg.insert(&e);
        }
        alg.snapshot()
    };
    let err = foreign.params.ensure_compatible(&live).unwrap_err();
    match err {
        FdmError::IncompatibleSnapshot { detail } => {
            assert!(detail.contains("dimension"), "{detail}");
        }
        other => panic!("expected IncompatibleSnapshot, got {other:?}"),
    }
}

#[test]
fn quota_mismatch_is_rejected_by_compatibility_check() {
    let a = Sfdm2::new(sfdm2_config(2)).unwrap().snapshot_params();
    let b = Sfdm2::new(sfdm2_config(3)).unwrap().snapshot_params();
    let err = a.ensure_compatible(&b).unwrap_err();
    assert!(
        matches!(err, FdmError::IncompatibleSnapshot { .. }),
        "{err}"
    );
}

#[test]
fn member_ids_past_the_arena_are_corrupt() {
    // Swap the arena for an empty one while the candidate lanes still
    // reference points: the member-id bounds check must fire.
    let snap = sample_snapshot();
    let empty_store = {
        let fresh = Sfdm2::new(sfdm2_config(2)).unwrap();
        let fresh_snap = fresh.snapshot();
        fresh_snap.state.get("store").cloned().unwrap()
    };
    let mut state = serde::Map::new();
    if let Some(obj) = snap.state.as_object() {
        for (key, value) in obj.iter() {
            state.insert(key.clone(), value.clone());
        }
    }
    state.insert("store".to_string(), empty_store);
    let tampered = Snapshot {
        params: snap.params.clone(),
        state: serde::Value::Object(state),
    };
    let err = Sfdm2::restore_state(&tampered.state).unwrap_err();
    assert!(matches!(err, FdmError::CorruptSnapshot { .. }), "{err}");
}

#[test]
fn mangled_state_fields_are_corrupt() {
    let snap = sample_snapshot();
    for (key, bogus) in [
        ("processed", serde::Value::String("many".into())),
        ("store", serde::Value::Number(3.0)),
        ("blind", serde::Value::Null),
    ] {
        let mut state = serde::Map::new();
        if let Some(obj) = snap.state.as_object() {
            for (k, v) in obj.iter() {
                state.insert(k.clone(), v.clone());
            }
        }
        state.insert(key.to_string(), bogus);
        let err = Sfdm2::restore_state(&serde::Value::Object(state)).unwrap_err();
        assert!(
            matches!(err, FdmError::CorruptSnapshot { .. }),
            "{key}: {err}"
        );
    }
}

#[test]
fn sliced_constraint_totals_are_rejected() {
    // A fairness constraint whose cached total disagrees with its quotas is
    // validation-level corruption, caught by the constraint deserializer.
    let text = sample_snapshot().to_json();
    let tampered = text.replace("\"total\":4", "\"total\":9");
    assert_ne!(text, tampered, "fixture must contain the quota total");
    let snap = Snapshot::from_json(&tampered);
    // The quotas live both in the envelope params and in the state config;
    // whichever is hit first, the outcome must be a typed error.
    match snap {
        Err(FdmError::CorruptSnapshot { .. }) => {}
        Ok(snap) => {
            let err = Sfdm2::restore(&snap).unwrap_err();
            assert!(
                matches!(
                    err,
                    FdmError::CorruptSnapshot { .. } | FdmError::IncompatibleSnapshot { .. }
                ),
                "{err}"
            );
        }
        Err(other) => panic!("unexpected error {other:?}"),
    }
}
