//! Property tests pinning the vectorized/bounded distance kernels to naive
//! scalar references: across all five metrics and dimensions 1–257 (covering
//! every `chunks_exact` remainder and multi-block row), the chunked kernels,
//! the proxy round trip, cached-norm proxies, and the bounded
//! `proxy_at_least` test must agree with straightforward one-accumulator
//! loops to 1e-9.

use fdm_core::metric::{kernels, Metric};
use fdm_core::point::PointStore;
use proptest::prelude::*;

/// Naive single-accumulator reference implementations.
mod reference {
    pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    pub fn minkowski(a: &[f64], b: &[f64], p: f64) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs().powf(p))
            .sum::<f64>()
            .powf(1.0 / p)
    }

    pub fn angular(a: &[f64], b: &[f64]) -> f64 {
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum();
        let nb: f64 = b.iter().map(|y| y * y).sum();
        if na == 0.0 || nb == 0.0 {
            return std::f64::consts::FRAC_PI_2;
        }
        (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0).acos()
    }
}

fn reference_dist(metric: Metric, a: &[f64], b: &[f64]) -> f64 {
    match metric {
        Metric::Euclidean => reference::euclidean(a, b),
        Metric::Manhattan => reference::manhattan(a, b),
        Metric::Chebyshev => reference::chebyshev(a, b),
        Metric::Minkowski(p) => reference::minkowski(a, b, p),
        Metric::Angular => reference::angular(a, b),
    }
}

fn all_metrics() -> Vec<Metric> {
    vec![
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Minkowski(1.0),
        Metric::Minkowski(2.0),
        Metric::Minkowski(3.5),
        Metric::Angular,
    ]
}

/// Relative-or-absolute 1e-9 agreement.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chunked_kernels_match_scalar_references(
        dim in 1usize..258,
        seed in 0u64..1_000_000,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 40.0 - 20.0).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 40.0 - 20.0).collect();
        for metric in all_metrics() {
            let fast = metric.dist(&a, &b);
            let slow = reference_dist(metric, &a, &b);
            prop_assert!(
                close(fast, slow),
                "{metric:?} dim {dim}: chunked {fast} vs reference {slow}"
            );
        }
    }

    #[test]
    fn proxies_round_trip_and_match_references(
        dim in 1usize..258,
        seed in 0u64..1_000_000,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(7));
        let a: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 10.0 - 5.0).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 10.0 - 5.0).collect();
        for metric in all_metrics() {
            let via_proxy = metric.dist_from_proxy(metric.proxy(&a, &b));
            let slow = reference_dist(metric, &a, &b);
            prop_assert!(
                close(via_proxy, slow),
                "{metric:?} dim {dim}: proxy path {via_proxy} vs reference {slow}"
            );
        }
    }

    #[test]
    fn cached_norm_proxies_match_inline_norms(
        dim in 1usize..258,
        seed in 0u64..1_000_000,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(13));
        let a: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 6.0 - 3.0).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 6.0 - 3.0).collect();
        let mut store = PointStore::new(dim);
        let ia = store.push(0, &a, 0);
        let ib = store.push(1, &b, 0);
        for metric in all_metrics() {
            let cached = metric.dist_from_proxy(metric.proxy_with_norms(
                store.row(ia),
                store.row(ib),
                store.norm_sq(ia),
                store.norm_sq(ib),
            ));
            let slow = reference_dist(metric, &a, &b);
            prop_assert!(
                close(cached, slow),
                "{metric:?} dim {dim}: cached-norm {cached} vs reference {slow}"
            );
        }
    }

    #[test]
    fn bounded_threshold_test_matches_full_comparison(
        dim in 1usize..258,
        seed in 0u64..1_000_000,
        scale in 0.1f64..3.0,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(29));
        let a: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 8.0 - 4.0).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 8.0 - 4.0).collect();
        let na = kernels::norm_sq(&a);
        let nb = kernels::norm_sq(&b);
        for metric in all_metrics() {
            let d = reference_dist(metric, &a, &b);
            // Thresholds strictly below and above the true distance must be
            // decided exactly; near the boundary we only require agreement
            // with the full proxy comparison (identical arithmetic).
            for mu in [d * scale.min(0.95), d * (1.05 + scale)] {
                if mu <= 0.0 {
                    continue;
                }
                let bound = metric.proxy_from_dist(mu);
                let fast = metric.proxy_at_least(&a, &b, na, nb, bound);
                let full = metric.proxy_with_norms(&a, &b, na, nb) >= bound;
                prop_assert_eq!(
                    fast, full,
                    "{:?} dim {}: bounded test disagrees with full proxy at mu {}",
                    metric, dim, mu
                );
            }
        }
    }
}
