//! Property tests pinning the vectorized/bounded distance kernels to naive
//! scalar references: across all five metrics and dimensions 1–257 (covering
//! every `chunks_exact` remainder and multi-block row), the chunked kernels,
//! the proxy round trip, cached-norm proxies, and the bounded
//! `proxy_at_least` test must agree with straightforward one-accumulator
//! loops to 1e-9.

use fdm_core::kernel::{self, simd, PrefilterKind};
use fdm_core::metric::{kernels, Metric};
use fdm_core::point::PointStore;
use fdm_core::streaming::candidate::ArrivalProxies;
use proptest::prelude::*;

/// Naive single-accumulator reference implementations.
mod reference {
    pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    pub fn minkowski(a: &[f64], b: &[f64], p: f64) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs().powf(p))
            .sum::<f64>()
            .powf(1.0 / p)
    }

    pub fn angular(a: &[f64], b: &[f64]) -> f64 {
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum();
        let nb: f64 = b.iter().map(|y| y * y).sum();
        if na == 0.0 || nb == 0.0 {
            return std::f64::consts::FRAC_PI_2;
        }
        (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0).acos()
    }
}

fn reference_dist(metric: Metric, a: &[f64], b: &[f64]) -> f64 {
    match metric {
        Metric::Euclidean => reference::euclidean(a, b),
        Metric::Manhattan => reference::manhattan(a, b),
        Metric::Chebyshev => reference::chebyshev(a, b),
        Metric::Minkowski(p) => reference::minkowski(a, b, p),
        Metric::Angular => reference::angular(a, b),
    }
}

fn all_metrics() -> Vec<Metric> {
    vec![
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Minkowski(1.0),
        Metric::Minkowski(2.0),
        Metric::Minkowski(3.5),
        Metric::Angular,
    ]
}

/// Relative-or-absolute 1e-9 agreement.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chunked_kernels_match_scalar_references(
        dim in 1usize..258,
        seed in 0u64..1_000_000,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 40.0 - 20.0).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 40.0 - 20.0).collect();
        for metric in all_metrics() {
            let fast = metric.dist(&a, &b);
            let slow = reference_dist(metric, &a, &b);
            prop_assert!(
                close(fast, slow),
                "{metric:?} dim {dim}: chunked {fast} vs reference {slow}"
            );
        }
    }

    #[test]
    fn proxies_round_trip_and_match_references(
        dim in 1usize..258,
        seed in 0u64..1_000_000,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(7));
        let a: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 10.0 - 5.0).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 10.0 - 5.0).collect();
        for metric in all_metrics() {
            let via_proxy = metric.dist_from_proxy(metric.proxy(&a, &b));
            let slow = reference_dist(metric, &a, &b);
            prop_assert!(
                close(via_proxy, slow),
                "{metric:?} dim {dim}: proxy path {via_proxy} vs reference {slow}"
            );
        }
    }

    #[test]
    fn cached_norm_proxies_match_inline_norms(
        dim in 1usize..258,
        seed in 0u64..1_000_000,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(13));
        let a: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 6.0 - 3.0).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 6.0 - 3.0).collect();
        let mut store = PointStore::new(dim);
        let ia = store.push(0, &a, 0);
        let ib = store.push(1, &b, 0);
        for metric in all_metrics() {
            let cached = metric.dist_from_proxy(metric.proxy_with_norms(
                store.row(ia),
                store.row(ib),
                store.norm_sq(ia),
                store.norm_sq(ib),
            ));
            let slow = reference_dist(metric, &a, &b);
            prop_assert!(
                close(cached, slow),
                "{metric:?} dim {dim}: cached-norm {cached} vs reference {slow}"
            );
        }
    }

    #[test]
    fn bounded_threshold_test_matches_full_comparison(
        dim in 1usize..258,
        seed in 0u64..1_000_000,
        scale in 0.1f64..3.0,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(29));
        let a: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 8.0 - 4.0).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 8.0 - 4.0).collect();
        let na = kernels::norm_sq(&a);
        let nb = kernels::norm_sq(&b);
        for metric in all_metrics() {
            let d = reference_dist(metric, &a, &b);
            // Thresholds strictly below and above the true distance must be
            // decided exactly; near the boundary we only require agreement
            // with the full proxy comparison (identical arithmetic).
            for mu in [d * scale.min(0.95), d * (1.05 + scale)] {
                if mu <= 0.0 {
                    continue;
                }
                let bound = metric.proxy_from_dist(mu);
                let fast = metric.proxy_at_least(&a, &b, na, nb, bound);
                let full = metric.proxy_with_norms(&a, &b, na, nb) >= bound;
                prop_assert_eq!(
                    fast, full,
                    "{:?} dim {}: bounded test disagrees with full proxy at mu {}",
                    metric, dim, mu
                );
            }
        }
    }

    /// The explicit SIMD backends must reproduce the scalar reference
    /// kernels *bit for bit* — same lane association, same reduction order,
    /// no FMA contraction — across every `chunks_exact` remainder class.
    /// (On non-x86_64 targets the forced wrappers return `None` and the
    /// assertions are vacuous.)
    #[test]
    fn simd_backends_bit_match_scalar_kernels(
        dim in 1usize..258,
        seed in 0u64..1_000_000,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(43));
        let a: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 40.0 - 20.0).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 40.0 - 20.0).collect();
        #[allow(clippy::type_complexity)]
        let checks: [(&str, fn(&[f64], &[f64]) -> f64, Option<f64>, Option<f64>); 4] = [
            ("sum_sq_diff", kernels::sum_sq_diff,
                simd::force_sse2_sum_sq_diff(&a, &b), simd::force_avx2_sum_sq_diff(&a, &b)),
            ("sum_abs_diff", kernels::sum_abs_diff,
                simd::force_sse2_sum_abs_diff(&a, &b), simd::force_avx2_sum_abs_diff(&a, &b)),
            ("max_abs_diff", kernels::max_abs_diff,
                simd::force_sse2_max_abs_diff(&a, &b), simd::force_avx2_max_abs_diff(&a, &b)),
            ("dot", kernels::dot,
                simd::force_sse2_dot(&a, &b), simd::force_avx2_dot(&a, &b)),
        ];
        for (name, scalar_fn, sse2, avx2) in checks {
            let scalar = scalar_fn(&a, &b);
            if let Some(v) = sse2 {
                prop_assert_eq!(
                    v.to_bits(), scalar.to_bits(),
                    "{} dim {}: SSE2 {} != scalar {}", name, dim, v, scalar
                );
            }
            if let Some(v) = avx2 {
                prop_assert_eq!(
                    v.to_bits(), scalar.to_bits(),
                    "{} dim {}: AVX2 {} != scalar {}", name, dim, v, scalar
                );
            }
        }
        let scalar_norm = kernels::norm_sq(&a);
        if let Some(v) = simd::force_sse2_norm_sq(&a) {
            prop_assert_eq!(v.to_bits(), scalar_norm.to_bits(), "norm_sq dim {}: SSE2", dim);
        }
        if let Some(v) = simd::force_avx2_norm_sq(&a) {
            prop_assert_eq!(v.to_bits(), scalar_norm.to_bits(), "norm_sq dim {}: AVX2", dim);
        }
    }

    /// The bounded SIMD scans must take the *same decision* as the scalar
    /// bounded kernels for bounds below, at, and above the exact value —
    /// including the blockwise early-exit points, which see identical
    /// partial sums by construction.
    #[test]
    fn bounded_simd_scans_bit_match_scalar(
        dim in 1usize..258,
        seed in 0u64..1_000_000,
        frac in 0.0f64..2.0,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(59));
        let a: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 8.0 - 4.0).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 8.0 - 4.0).collect();
        let sq = kernels::sum_sq_diff(&a, &b);
        let ab = kernels::sum_abs_diff(&a, &b);
        for bound in [sq * frac, sq, f64::MIN_POSITIVE] {
            let scalar = kernels::sum_sq_diff_at_least(&a, &b, bound);
            if let Some(v) = simd::force_sse2_sum_sq_diff_at_least(&a, &b, bound) {
                prop_assert_eq!(v, scalar, "sum_sq bound {} dim {}: SSE2", bound, dim);
            }
            if let Some(v) = simd::force_avx2_sum_sq_diff_at_least(&a, &b, bound) {
                prop_assert_eq!(v, scalar, "sum_sq bound {} dim {}: AVX2", bound, dim);
            }
        }
        for bound in [ab * frac, ab, f64::MIN_POSITIVE] {
            let scalar = kernels::sum_abs_diff_at_least(&a, &b, bound);
            if let Some(v) = simd::force_sse2_sum_abs_diff_at_least(&a, &b, bound) {
                prop_assert_eq!(v, scalar, "sum_abs bound {} dim {}: SSE2", bound, dim);
            }
            if let Some(v) = simd::force_avx2_sum_abs_diff_at_least(&a, &b, bound) {
                prop_assert_eq!(v, scalar, "sum_abs bound {} dim {}: AVX2", bound, dim);
            }
        }
    }

    /// Soundness of the f32 pre-filter: whenever `certified_at_least`
    /// commits to an answer, that answer must equal the exact-f64 decision.
    /// Bounds are sampled well away from, near, and exactly at the true
    /// value so both certified branches and the uncertain band are
    /// exercised.
    #[test]
    fn f32_prefilter_never_flips_threshold_decisions(
        dim in 1usize..258,
        seed in 0u64..1_000_000,
        frac in 0.0f64..2.0,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(71));
        let a: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 20.0 - 10.0).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 20.0 - 10.0).collect();
        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        let max_abs = a.iter().chain(&b).fold(0.0f64, |m, &x| m.max(x.abs()));
        for (kind, exact) in [
            (PrefilterKind::SumSq, kernels::sum_sq_diff(&a, &b)),
            (PrefilterKind::SumAbs, kernels::sum_abs_diff(&a, &b)),
        ] {
            let p32 = kernel::proxy_f32(kind, &a32, &b32) as f64;
            let (base, slope) = kernel::f32_error_coefficients(kind, dim, max_abs);
            let err = base + slope * p32;
            // Bounds: far below, near, exactly at, near above, far above.
            let bounds = [
                exact * 0.25,
                exact * frac,
                exact,
                exact * 1.000001 + 1e-12,
                exact * 4.0 + 1.0,
            ];
            for bound in bounds {
                if let Some(answer) = kernel::certified_at_least(p32, bound, err) {
                    prop_assert_eq!(
                        answer,
                        exact >= bound,
                        "{:?} dim {} bound {}: f32 pre-filter flipped the decision \
                         (p32 {} err {} exact {})",
                        kind, dim, bound, p32, err, exact
                    );
                }
            }
        }
    }
}

/// A bound sitting *inside* the f32 uncertainty band must never be decided
/// by the pre-filter. With exactly representable coordinates `p32 == exact`,
/// so `bound == exact` lands within `±err` and `certified_at_least` must
/// return `None` — the caller then takes the exact-f64 fallback path, which
/// we observe through the arena's fallback counter.
#[test]
fn boundary_band_falls_back_to_exact_path() {
    let a: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
    let b: Vec<f64> = (0..64).map(|i| ((i + 3) % 5) as f64).collect();
    let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
    let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
    let max_abs = 6.0;
    for (kind, exact) in [
        (PrefilterKind::SumSq, kernels::sum_sq_diff(&a, &b)),
        (PrefilterKind::SumAbs, kernels::sum_abs_diff(&a, &b)),
    ] {
        let p32 = kernel::proxy_f32(kind, &a32, &b32) as f64;
        assert_eq!(
            p32, exact,
            "{kind:?}: small-integer sums must be exactly representable in f32"
        );
        let (base, slope) = kernel::f32_error_coefficients(kind, 64, max_abs);
        let err = base + slope * p32;
        assert!(err > 0.0, "{kind:?}: error bound must be strictly positive");
        assert_eq!(
            kernel::certified_at_least(p32, exact, err),
            None,
            "{kind:?}: a bound inside the uncertainty band must not be certified"
        );
        // Clearly separated bounds are certified on both sides.
        assert_eq!(
            kernel::certified_at_least(p32, exact * 0.5, err),
            Some(true)
        );
        assert_eq!(
            kernel::certified_at_least(p32, exact * 2.0, err),
            Some(false)
        );
    }

    // End-to-end through `ArrivalProxies::at_least`: when the pre-filter is
    // active (non-scalar kernel level, pre-filter forced on), an
    // exact-boundary bound must be answered by the fallback path and
    // recorded in the arena counters.
    if kernel::active_kernel() == "scalar" {
        return; // FDM_KERNEL=scalar: the pre-filter never arms; nothing to count.
    }
    kernel::force_prefilter(Some(true));
    let mut store = PointStore::new(64);
    let id = store.push(0, &b, 0);
    store.sync_f32_mirror();
    let metric = Metric::Euclidean;
    let mut cache = ArrivalProxies::new();
    cache.begin_arrival(&store, metric, &a);
    let exact = kernels::sum_sq_diff(&a, &b);
    // Boundary bound: must fall back to exact f64. Tallies batch in the
    // cache until flushed (the hot paths flush once per arrival).
    assert!(cache.at_least(&store, metric, &a, id, exact));
    cache.flush_prefilter_counters(&store);
    let (hits, fallbacks) = store.prefilter_counters();
    assert_eq!(
        (hits, fallbacks),
        (0, 1),
        "boundary-band query must be answered by the exact fallback path"
    );
    // A far-away bound is certified by the f32 path alone.
    cache.begin_arrival(&store, metric, &a);
    assert!(cache.at_least(&store, metric, &a, id, exact * 0.25));
    cache.flush_prefilter_counters(&store);
    let (hits, fallbacks) = store.prefilter_counters();
    assert_eq!(
        (hits, fallbacks),
        (1, 1),
        "clearly separated query must be certified by the f32 pre-filter"
    );
    kernel::force_prefilter(None);
}
