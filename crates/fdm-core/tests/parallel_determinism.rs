//! Serial-vs-parallel determinism: with the `parallel` cargo feature the
//! streaming algorithms fan batch probing and per-guess post-processing out
//! over threads, and the results must be *identical* to a forced-sequential
//! run — same retained elements, same solution ids, same diversity bits.
//!
//! Without the feature both sides are sequential and the tests pass
//! trivially; CI runs this suite with `--features parallel` to exercise the
//! real comparison.

use fdm_core::dataset::Dataset;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::metric::Metric;
use fdm_core::point::Element;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;
use fdm_core::streaming::unconstrained::{StreamingDiversityMaximization, StreamingDmConfig};
use rand::prelude::*;

fn random_dataset(n: usize, m: usize, dim: usize, metric: Metric, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0 + 0.1).collect())
        .collect();
    let mut groups: Vec<usize> = (0..n).map(|_| rng.random_range(0..m)).collect();
    for g in 0..m {
        groups[g] = g;
    }
    Dataset::from_rows(rows, groups, metric).unwrap()
}

fn metrics() -> Vec<Metric> {
    vec![Metric::Euclidean, Metric::Manhattan, Metric::Angular]
}

#[test]
fn sfdm1_parallel_equals_sequential() {
    for (trial, metric) in metrics().into_iter().enumerate() {
        let d = random_dataset(400, 2, 8, metric, 100 + trial as u64);
        let bounds = d.sampled_distance_bounds(100, 2.0).unwrap();
        let cfg = Sfdm1Config {
            constraint: FairnessConstraint::new(vec![4, 3]).unwrap(),
            epsilon: 0.1,
            bounds,
            metric,
        };
        let elements: Vec<Element> = d.iter().collect();

        let mut parallel = Sfdm1::new(cfg.clone()).unwrap();
        for chunk in elements.chunks(64) {
            parallel.insert_batch(chunk);
        }
        let mut sequential = Sfdm1::new(cfg).unwrap();
        sequential.set_sequential(true);
        for e in &elements {
            sequential.insert(e);
        }

        assert_eq!(parallel.stored_elements(), sequential.stored_elements());
        let (p, s) = (parallel.finalize(), sequential.finalize());
        match (p, s) {
            (Ok(p), Ok(s)) => {
                assert_eq!(p.ids(), s.ids(), "{metric:?}: solution ids differ");
                assert_eq!(
                    p.diversity.to_bits(),
                    s.diversity.to_bits(),
                    "{metric:?}: diversity bits differ"
                );
            }
            (p, s) => panic!("{metric:?}: outcome mismatch {p:?} vs {s:?}"),
        }
    }
}

#[test]
fn sfdm2_parallel_equals_sequential() {
    for (trial, metric) in metrics().into_iter().enumerate() {
        let d = random_dataset(500, 3, 6, metric, 200 + trial as u64);
        let bounds = d.sampled_distance_bounds(100, 2.0).unwrap();
        let cfg = Sfdm2Config {
            constraint: FairnessConstraint::new(vec![2, 3, 2]).unwrap(),
            epsilon: 0.1,
            bounds,
            metric,
        };
        let elements: Vec<Element> = d.iter().collect();

        let mut parallel = Sfdm2::new(cfg.clone()).unwrap();
        for chunk in elements.chunks(96) {
            parallel.insert_batch(chunk);
        }
        let mut sequential = Sfdm2::new(cfg).unwrap();
        sequential.set_sequential(true);
        for e in &elements {
            sequential.insert(e);
        }

        assert_eq!(parallel.stored_elements(), sequential.stored_elements());
        let (p, s) = (parallel.finalize(), sequential.finalize());
        match (p, s) {
            (Ok(p), Ok(s)) => {
                assert_eq!(p.ids(), s.ids(), "{metric:?}: solution ids differ");
                assert_eq!(
                    p.diversity.to_bits(),
                    s.diversity.to_bits(),
                    "{metric:?}: diversity bits differ"
                );
            }
            (p, s) => panic!("{metric:?}: outcome mismatch {p:?} vs {s:?}"),
        }
    }
}

#[test]
fn algorithm1_parallel_equals_sequential() {
    let d = random_dataset(600, 1, 16, Metric::Euclidean, 300);
    let bounds = d.sampled_distance_bounds(100, 2.0).unwrap();
    let cfg = StreamingDmConfig {
        k: 10,
        epsilon: 0.1,
        bounds,
        metric: Metric::Euclidean,
    };
    let elements: Vec<Element> = d.iter().collect();

    let mut parallel = StreamingDiversityMaximization::new(cfg.clone()).unwrap();
    for chunk in elements.chunks(128) {
        parallel.insert_batch(chunk);
    }
    let mut sequential = StreamingDiversityMaximization::new(cfg).unwrap();
    sequential.set_sequential(true);
    for e in &elements {
        sequential.insert(e);
    }

    assert_eq!(parallel.stored_elements(), sequential.stored_elements());
    let p = parallel.finalize().unwrap();
    let s = sequential.finalize().unwrap();
    assert_eq!(p.ids(), s.ids());
    assert_eq!(p.diversity.to_bits(), s.diversity.to_bits());
}

#[test]
fn sharded_parallel_equals_sequential() {
    // Shard fan-out runs sub-batches concurrently on the pool; a forced-
    // sequential sharded run must agree id-for-id, bit-for-bit.
    for (trial, metric) in metrics().into_iter().enumerate() {
        let d = random_dataset(600, 3, 6, metric, 400 + trial as u64);
        let bounds = d.sampled_distance_bounds(100, 2.0).unwrap();
        let cfg = Sfdm2Config {
            constraint: FairnessConstraint::new(vec![2, 2, 2]).unwrap(),
            epsilon: 0.1,
            bounds,
            metric,
        };
        let elements: Vec<Element> = d.iter().collect();

        let mut parallel: ShardedStream<Sfdm2> = ShardedStream::new(cfg.clone(), 4).unwrap();
        for chunk in elements.chunks(128) {
            parallel.insert_batch(chunk);
        }
        let mut sequential: ShardedStream<Sfdm2> = ShardedStream::new(cfg, 4).unwrap();
        sequential.set_sequential(true);
        for e in &elements {
            sequential.insert(e);
        }

        assert_eq!(parallel.stored_elements(), sequential.stored_elements());
        match (parallel.finalize(), sequential.finalize()) {
            (Ok(p), Ok(s)) => {
                assert_eq!(p.ids(), s.ids(), "{metric:?}: sharded ids differ");
                assert_eq!(
                    p.diversity.to_bits(),
                    s.diversity.to_bits(),
                    "{metric:?}: sharded diversity bits differ"
                );
            }
            (p, s) => panic!("{metric:?}: outcome mismatch {p:?} vs {s:?}"),
        }
    }
}

#[test]
fn parallel_finalize_tie_break_matches_sequential() {
    // A stream engineered so several guesses yield full candidates with
    // similar diversities: the reduction must pick the same guess either
    // way (first maximum under strict `>`).
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![(i % 40) as f64, (i / 40) as f64])
        .collect();
    let groups: Vec<usize> = (0..200).map(|i| i % 2).collect();
    let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
    let bounds = d.exact_distance_bounds().unwrap();
    let cfg = Sfdm2Config {
        constraint: FairnessConstraint::new(vec![3, 3]).unwrap(),
        epsilon: 0.2,
        bounds,
        metric: Metric::Euclidean,
    };
    let mut a = Sfdm2::new(cfg.clone()).unwrap();
    let mut b = Sfdm2::new(cfg).unwrap();
    b.set_sequential(true);
    for e in d.iter() {
        a.insert(&e);
        b.insert(&e);
    }
    let pa = a.finalize().unwrap();
    let pb = b.finalize().unwrap();
    assert_eq!(pa.ids(), pb.ids());
}
