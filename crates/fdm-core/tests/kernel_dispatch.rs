//! End-to-end bit-identity of the kernel dispatch layer: the same stream
//! fed to SFDM2 (plain and sliding-window) under `FDM_KERNEL=scalar`,
//! `simd`, and `auto` must retain exactly the same elements and finalize to
//! exactly the same solution — the SIMD backends reproduce scalar
//! arithmetic bit for bit, and the f32 pre-filter only answers when its
//! certified error band cannot flip the decision.
//!
//! This binary holds a SINGLE test on purpose: `kernel::force_mode` flips a
//! process-global override, so it must never race a concurrently running
//! test. Keep any future mode-switching assertions inside this one `fn`.

use fdm_core::dataset::Dataset;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::kernel::{self, KernelMode};
use fdm_core::metric::Metric;
use fdm_core::solution::Solution;
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardAlgorithm;
use fdm_core::streaming::sliding::SlidingWindowFdm;

/// Deterministic 3-group stream in 32 dimensions.
fn instance() -> Dataset {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(20_220_517);
    let n = 240;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..32).map(|_| rng.random::<f64>() * 10.0 - 5.0).collect())
        .collect();
    let groups: Vec<usize> = (0..n).map(|i| i % 3).collect();
    Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap()
}

/// One full run of plain + sliding-window SFDM2 under the active kernel
/// mode; returns both solutions, the retained-id sets, and the pre-filter
/// counters of the plain run.
#[allow(clippy::type_complexity)]
fn run(d: &Dataset) -> (Solution, Solution, Vec<usize>, Vec<usize>, (u64, u64)) {
    let cfg = Sfdm2Config {
        constraint: FairnessConstraint::new(vec![2; 3]).unwrap(),
        epsilon: 0.1,
        bounds: d.exact_distance_bounds().unwrap(),
        metric: Metric::Euclidean,
    };
    let mut plain = Sfdm2::new(cfg.clone()).unwrap();
    let mut sliding = SlidingWindowFdm::new(cfg, 160).unwrap();
    for e in d.iter() {
        ShardAlgorithm::insert(&mut plain, &e);
        ShardAlgorithm::insert(&mut sliding, &e);
    }
    let store = plain.store();
    let retained_plain: Vec<usize> = store.ids().map(|id| store.external_id(id)).collect();
    let counters = plain.store().prefilter_counters();
    let sol_plain = ShardAlgorithm::finalize(&plain).unwrap();
    let sol_sliding = ShardAlgorithm::finalize(&sliding).unwrap();
    let stored_sliding = vec![ShardAlgorithm::stored_elements(&sliding)];
    (
        sol_plain,
        sol_sliding,
        retained_plain,
        stored_sliding,
        counters,
    )
}

fn assert_solutions_identical(a: &Solution, b: &Solution, what: &str) {
    assert_eq!(
        a.diversity.to_bits(),
        b.diversity.to_bits(),
        "{what}: diversity differs ({} vs {})",
        a.diversity,
        b.diversity
    );
    assert_eq!(a.elements.len(), b.elements.len(), "{what}: solution size");
    for (x, y) in a.elements.iter().zip(&b.elements) {
        assert_eq!(x.id, y.id, "{what}: element ids");
        assert_eq!(x.group, y.group, "{what}: element groups");
        assert_eq!(x.point.len(), y.point.len(), "{what}: dims");
        for (cx, cy) in x.point.iter().zip(y.point.iter()) {
            assert_eq!(cx.to_bits(), cy.to_bits(), "{what}: coordinates");
        }
    }
}

#[test]
fn all_kernel_modes_produce_bit_identical_summaries() {
    let d = instance();

    // Force the pre-filter on (it is opt-in via FDM_PREFILTER): this test
    // exists to prove the fast paths — SIMD kernels AND the f32 pre-filter
    // — cannot change a single retained element.
    kernel::force_prefilter(Some(true));

    kernel::force_mode(Some(KernelMode::Scalar));
    assert_eq!(kernel::active_kernel(), "scalar");
    let scalar = run(&d);
    assert_eq!(
        scalar.4,
        (0, 0),
        "FDM_KERNEL=scalar must never arm the f32 pre-filter"
    );

    kernel::force_mode(Some(KernelMode::Simd));
    let simd_level = kernel::active_kernel();
    let simd = run(&d);

    kernel::force_mode(Some(KernelMode::Auto));
    let auto = run(&d);

    // Restore env-driven resolution for any other code in this process.
    kernel::force_mode(None);
    kernel::force_prefilter(None);

    for (label, other) in [("simd", &simd), ("auto", &auto)] {
        assert_solutions_identical(
            &scalar.0,
            &other.0,
            &format!("plain sfdm2 scalar vs {label}"),
        );
        assert_solutions_identical(
            &scalar.1,
            &other.1,
            &format!("sliding sfdm2 scalar vs {label}"),
        );
        assert_eq!(
            scalar.2, other.2,
            "retained arena elements must match scalar run under {label}"
        );
        assert_eq!(
            scalar.3, other.3,
            "sliding stored-element count must match scalar run under {label}"
        );
    }

    // On hardware with a SIMD backend the pre-filter must actually engage:
    // certified answers (hits) and boundary fallbacks are both expected on
    // a 240-element stream, and every query is one or the other.
    if simd_level != "scalar" {
        let (hits, fallbacks) = simd.4;
        assert!(
            hits > 0,
            "f32 pre-filter never certified an answer under {simd_level}"
        );
        assert!(
            hits + fallbacks > 0,
            "pre-filter counters must record activity under {simd_level}"
        );
        let (auto_hits, auto_fallbacks) = auto.4;
        assert_eq!(
            (hits, fallbacks),
            (auto_hits, auto_fallbacks),
            "simd and auto runs must take identical pre-filter paths"
        );
    }
}
