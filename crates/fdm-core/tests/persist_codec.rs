//! Format-v2 persistence properties: for all four summary types and both
//! snapshot encodings, `encode → decode → continue suffix` is bit-identical
//! to the uncheckpointed run, and restoring a `full + k·delta` chain is
//! bit-identical to restoring the equivalent full snapshot.

use fdm_core::dataset::DistanceBounds;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::metric::Metric;
use fdm_core::persist::delta::state_crc;
use fdm_core::persist::{CaptureMark, Snapshot, SnapshotDelta, SnapshotFormat, Snapshottable};
use fdm_core::point::Element;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;
use fdm_core::streaming::sliding::{SlidingWindowConfig, SlidingWindowFdm};
use fdm_core::streaming::unconstrained::{StreamingDiversityMaximization, StreamingDmConfig};
use proptest::prelude::*;
use rand::prelude::*;

fn random_elements(n: usize, m: usize, dim: usize, seed: u64) -> Vec<Element> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let point: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 10.0).collect();
            let group = if i < m { i } else { rng.random_range(0..m) };
            Element::new(i, point, group)
        })
        .collect()
}

fn bounds() -> DistanceBounds {
    DistanceBounds::new(0.05, 20.0).unwrap()
}

fn sfdm1_config() -> Sfdm1Config {
    Sfdm1Config {
        constraint: FairnessConstraint::new(vec![2, 2]).unwrap(),
        epsilon: 0.1,
        bounds: bounds(),
        metric: Metric::Euclidean,
    }
}

fn sfdm2_config(m: usize) -> Sfdm2Config {
    Sfdm2Config {
        constraint: FairnessConstraint::equal_representation(2 * m, m).unwrap(),
        epsilon: 0.1,
        bounds: bounds(),
        metric: Metric::Euclidean,
    }
}

fn dm_config() -> StreamingDmConfig {
    StreamingDmConfig {
        k: 5,
        epsilon: 0.1,
        bounds: bounds(),
        metric: Metric::Euclidean,
    }
}

fn restore_like<T: Snapshottable>(_witness: &T, snap: &Snapshot) -> fdm_core::error::Result<T> {
    T::restore(snap)
}

fn assert_same_outcome<T: Snapshottable + Finalizable>(reference: &T, restored: &T) {
    assert_eq!(reference.processed_count(), restored.processed_count());
    match (reference.finalize_solution(), restored.finalize_solution()) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.0, b.0, "solution ids must be bit-identical");
            assert_eq!(
                a.1.to_bits(),
                b.1.to_bits(),
                "diversity must be bit-identical"
            );
        }
        (Err(a), Err(b)) => assert_eq!(a, b),
        (a, b) => panic!("reference {a:?} and restored {b:?} disagree"),
    }
}

/// The minimal observable surface the assertions need, implemented for all
/// four summaries so one generic harness covers them.
trait Finalizable {
    fn feed(&mut self, element: &Element);
    fn processed_count(&self) -> usize;
    fn finalize_solution(&self) -> Result<(Vec<usize>, f64), fdm_core::FdmError>;
}

macro_rules! impl_finalizable {
    ($($ty:ty),* $(,)?) => {$(
        impl Finalizable for $ty {
            fn feed(&mut self, element: &Element) {
                self.insert(element);
            }
            fn processed_count(&self) -> usize {
                self.processed()
            }
            fn finalize_solution(&self) -> Result<(Vec<usize>, f64), fdm_core::FdmError> {
                self.finalize().map(|s| (s.ids().to_vec(), s.diversity))
            }
        }
    )*};
}

impl_finalizable!(
    StreamingDiversityMaximization,
    Sfdm1,
    Sfdm2,
    SlidingWindowFdm,
    ShardedStream<Sfdm2>,
    ShardedStream<Sfdm1>,
    ShardedStream<StreamingDiversityMaximization>,
    ShardedStream<SlidingWindowFdm>,
);

fn sliding_config(window: usize) -> SlidingWindowConfig {
    SlidingWindowConfig {
        inner: sfdm2_config(2),
        window,
    }
}

/// `prefix → snapshot(format) → bytes → decode → restore → suffix` must be
/// bit-identical to the uncheckpointed run, in both formats.
fn roundtrip_both_formats<T: Snapshottable + Finalizable>(
    build: impl Fn() -> T,
    elements: &[Element],
    split: usize,
) {
    let split = split.min(elements.len());
    let mut reference = build();
    for e in elements {
        reference.feed(e);
    }
    for format in [SnapshotFormat::Json, SnapshotFormat::Binary] {
        let mut prefix = build();
        for e in &elements[..split] {
            prefix.feed(e);
        }
        let snap = prefix.snapshot();
        let bytes = snap.to_bytes(format);
        let parsed = Snapshot::from_bytes(&bytes).expect("snapshot bytes parse");
        assert_eq!(
            parsed, snap,
            "{format:?}: envelope survives the byte round trip"
        );
        let mut restored = restore_like(&prefix, &parsed).expect("snapshot restores");
        for e in &elements[split..] {
            restored.feed(e);
        }
        assert_same_outcome(&reference, &restored);
    }
}

/// Capture checkpoints every `stride` arrivals as `full + delta*`, chain
/// them back together, and require the chained restore (plus suffix
/// replay) to match both the full-only restore and the uncheckpointed run.
fn delta_chain_matches_full<T: Snapshottable + Finalizable>(
    build: impl Fn() -> T,
    elements: &[Element],
    stride: usize,
    checkpoints: usize,
) {
    let stride = stride.max(1);
    let chain_end = (stride * checkpoints).min(elements.len());

    let mut reference = build();
    for e in elements {
        reference.feed(e);
    }

    // One instance walks the stream, capturing a full snapshot first and a
    // delta at every subsequent checkpoint.
    let mut walker = build();
    let full = walker.snapshot();
    let mut deltas: Vec<SnapshotDelta> = Vec::new();
    let mut tail = full.clone();
    for chunk in elements[..chain_end].chunks(stride) {
        for e in chunk {
            walker.feed(e);
        }
        let next = walker.snapshot();
        let delta = SnapshotDelta::between(&tail, &next).expect("delta diffs");
        // Deltas survive their own byte round trip.
        let delta = SnapshotDelta::from_bytes(&delta.to_bytes()).expect("delta bytes parse");
        deltas.push(delta);
        tail = next;
    }

    // Chain apply: full + delta* must reproduce the walker's snapshot
    // bit-exactly...
    let mut chained = full;
    for delta in &deltas {
        chained = delta.apply_to(&chained).expect("chain link applies");
    }
    assert_eq!(
        chained, tail,
        "full + delta* must equal the full-only capture"
    );

    // ...and restoring it + replaying the suffix matches the reference.
    let mut restored = restore_like(&walker, &chained).expect("chained snapshot restores");
    for e in &elements[chain_end..] {
        restored.feed(e);
    }
    assert_same_outcome(&reference, &restored);

    // Deltas applied out of order are refused, not silently wrong.
    if deltas.len() >= 2 {
        let full_again = build().snapshot();
        let err = deltas[1].apply_to(&full_again).unwrap_err();
        assert!(
            matches!(err, fdm_core::FdmError::IncompatibleSnapshot { .. }),
            "{err}"
        );
    }
}

/// Dirty-set capture must be **byte-identical** to the full-tree diff: at
/// every checkpoint, the delta lowered from the summary's own
/// [`StatePatch`](fdm_core::persist::StatePatch) through a [`CaptureMark`]
/// equals `SnapshotDelta::between(prev, cur)` byte for byte, and the
/// advanced mark's checksum equals the new state's. A refused patch
/// (`None`) exercises the engine's fallback: full capture, fresh mark.
fn dirty_set_matches_full_diff<T: Snapshottable + Finalizable>(
    build: impl Fn() -> T,
    elements: &[Element],
    stride: usize,
    checkpoints: usize,
    expect_lowerable: bool,
) {
    let stride = stride.max(1);
    let chain_end = (stride * checkpoints).min(elements.len());
    let mut walker = build();
    let mut tail = walker.snapshot();
    let mut mark = CaptureMark::of(tail.params.clone(), &tail.state);
    let mut cursor = walker.capture_cursor();
    let mut lowered_any = false;
    for chunk in elements[..chain_end].chunks(stride) {
        for e in chunk {
            walker.feed(e);
        }
        let next = walker.snapshot();
        let oracle = SnapshotDelta::between(&tail, &next).expect("full-tree diff");
        let fast = walker
            .state_patch_since(&cursor)
            .and_then(|patch| SnapshotDelta::from_patch(&mut mark, &next.params, patch));
        match fast {
            Some(delta) => {
                lowered_any = true;
                assert_eq!(
                    delta.to_bytes(),
                    oracle.to_bytes(),
                    "dirty-set delta must be byte-identical to the full-tree diff"
                );
                assert_eq!(
                    mark.state_crc(),
                    state_crc(&next.state),
                    "advanced mark checksum must match the new state"
                );
                // The lowered delta actually applies onto the old state.
                let applied = delta.apply_to(&tail).expect("dirty-set delta applies");
                assert_eq!(applied, next);
            }
            None => {
                // The engine's fallback path: anchor a full snapshot and
                // rebuild the mark from it.
                mark = CaptureMark::of(next.params.clone(), &next.state);
            }
        }
        cursor = walker.capture_cursor();
        tail = next;
    }
    if expect_lowerable && chain_end > 0 {
        assert!(
            lowered_any,
            "an append-only summary should lower at least one checkpoint incrementally"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn unconstrained_both_formats(seed in 0u64..1000, n in 40usize..140, split_pct in 0usize..=100) {
        let elements = random_elements(n, 1, 3, seed);
        roundtrip_both_formats(
            || StreamingDiversityMaximization::new(dm_config()).unwrap(),
            &elements,
            n * split_pct / 100,
        );
    }

    #[test]
    fn sfdm1_both_formats(seed in 0u64..1000, n in 40usize..140, split_pct in 0usize..=100) {
        let elements = random_elements(n, 2, 3, seed);
        roundtrip_both_formats(|| Sfdm1::new(sfdm1_config()).unwrap(), &elements, n * split_pct / 100);
    }

    #[test]
    fn sfdm2_both_formats(seed in 0u64..1000, n in 40usize..140, split_pct in 0usize..=100, m in 2usize..4) {
        let elements = random_elements(n, m, 3, seed);
        roundtrip_both_formats(|| Sfdm2::new(sfdm2_config(m)).unwrap(), &elements, n * split_pct / 100);
    }

    #[test]
    fn sliding_both_formats(seed in 0u64..1000, n in 40usize..140, split_pct in 0usize..=100, window in 8usize..64) {
        let elements = random_elements(n, 2, 3, seed);
        roundtrip_both_formats(
            || SlidingWindowFdm::new(sfdm2_config(2), window).unwrap(),
            &elements,
            n * split_pct / 100,
        );
    }

    #[test]
    fn sharded_sliding_both_formats(seed in 0u64..1000, n in 60usize..160, split_pct in 0usize..=100, shards in 1usize..4, window in 8usize..48) {
        let elements = random_elements(n, 2, 3, seed);
        roundtrip_both_formats(
            || ShardedStream::<SlidingWindowFdm>::new(sliding_config(window), shards).unwrap(),
            &elements,
            n * split_pct / 100,
        );
    }

    #[test]
    fn sharded_both_formats(seed in 0u64..1000, n in 60usize..160, split_pct in 0usize..=100, shards in 1usize..5) {
        let elements = random_elements(n, 2, 3, seed);
        roundtrip_both_formats(
            || ShardedStream::<Sfdm2>::new(sfdm2_config(2), shards).unwrap(),
            &elements,
            n * split_pct / 100,
        );
    }

    #[test]
    fn unconstrained_delta_chain(seed in 0u64..1000, n in 60usize..160, stride in 5usize..40, checkpoints in 1usize..6) {
        let elements = random_elements(n, 1, 3, seed);
        delta_chain_matches_full(
            || StreamingDiversityMaximization::new(dm_config()).unwrap(),
            &elements,
            stride,
            checkpoints,
        );
    }

    #[test]
    fn sfdm1_delta_chain(seed in 0u64..1000, n in 60usize..160, stride in 5usize..40, checkpoints in 1usize..6) {
        let elements = random_elements(n, 2, 3, seed);
        delta_chain_matches_full(|| Sfdm1::new(sfdm1_config()).unwrap(), &elements, stride, checkpoints);
    }

    #[test]
    fn sfdm2_delta_chain(seed in 0u64..1000, n in 60usize..160, stride in 5usize..40, checkpoints in 1usize..6, m in 2usize..4) {
        let elements = random_elements(n, m, 3, seed);
        delta_chain_matches_full(|| Sfdm2::new(sfdm2_config(m)).unwrap(), &elements, stride, checkpoints);
    }

    #[test]
    fn sliding_delta_chain(seed in 0u64..1000, n in 60usize..160, stride in 5usize..40, checkpoints in 1usize..6, window in 8usize..64) {
        let elements = random_elements(n, 2, 3, seed);
        delta_chain_matches_full(
            || SlidingWindowFdm::new(sfdm2_config(2), window).unwrap(),
            &elements,
            stride,
            checkpoints,
        );
    }

    #[test]
    fn sharded_delta_chain(seed in 0u64..1000, n in 80usize..180, stride in 10usize..50, checkpoints in 1usize..5, shards in 1usize..5) {
        let elements = random_elements(n, 2, 3, seed);
        delta_chain_matches_full(
            || ShardedStream::<Sfdm2>::new(sfdm2_config(2), shards).unwrap(),
            &elements,
            stride,
            checkpoints,
        );
    }

    #[test]
    fn unconstrained_dirty_set_matches_diff(seed in 0u64..1000, n in 60usize..160, stride in 5usize..40, checkpoints in 1usize..6) {
        let elements = random_elements(n, 1, 3, seed);
        dirty_set_matches_full_diff(
            || StreamingDiversityMaximization::new(dm_config()).unwrap(),
            &elements,
            stride,
            checkpoints,
            true,
        );
    }

    #[test]
    fn sfdm1_dirty_set_matches_diff(seed in 0u64..1000, n in 60usize..160, stride in 5usize..40, checkpoints in 1usize..6) {
        let elements = random_elements(n, 2, 3, seed);
        dirty_set_matches_full_diff(|| Sfdm1::new(sfdm1_config()).unwrap(), &elements, stride, checkpoints, true);
    }

    #[test]
    fn sfdm2_dirty_set_matches_diff(seed in 0u64..1000, n in 60usize..160, stride in 5usize..40, checkpoints in 1usize..6, m in 2usize..4) {
        let elements = random_elements(n, m, 3, seed);
        dirty_set_matches_full_diff(|| Sfdm2::new(sfdm2_config(m)).unwrap(), &elements, stride, checkpoints, true);
    }

    #[test]
    fn sliding_dirty_set_matches_diff(seed in 0u64..1000, n in 60usize..160, stride in 5usize..40, checkpoints in 1usize..6, window in 8usize..64) {
        // Rotations rebuild both staggered instances, so patches are only
        // available on rotation-free stretches — correctness (byte
        // identity whenever a patch IS produced) is still pinned.
        let elements = random_elements(n, 2, 3, seed);
        dirty_set_matches_full_diff(
            || SlidingWindowFdm::new(sfdm2_config(2), window).unwrap(),
            &elements,
            stride,
            checkpoints,
            false,
        );
    }

    #[test]
    fn sharded_dirty_set_matches_diff(seed in 0u64..1000, n in 80usize..180, stride in 10usize..50, checkpoints in 1usize..5, shards in 1usize..5) {
        let elements = random_elements(n, 2, 3, seed);
        dirty_set_matches_full_diff(
            || ShardedStream::<Sfdm2>::new(sfdm2_config(2), shards).unwrap(),
            &elements,
            stride,
            checkpoints,
            true,
        );
    }
}

/// Deltas of an append-only stream must be far smaller than the full
/// snapshot they advance — the economic reason the chain exists.
#[test]
fn deltas_are_much_smaller_than_full_snapshots() {
    let elements = random_elements(600, 2, 8, 42);
    let mut alg = Sfdm2::new(sfdm2_config(2)).unwrap();
    for e in &elements[..500] {
        alg.insert(e);
    }
    let base = alg.snapshot();
    for e in &elements[500..] {
        alg.insert(e);
    }
    let full = alg.snapshot();
    let delta = SnapshotDelta::between(&base, &full).unwrap();
    let full_len = full.to_bytes(SnapshotFormat::Binary).len();
    let delta_len = delta.encoded_len();
    assert!(
        delta_len * 4 < full_len,
        "delta of a late-stream window should be <1/4 of the full snapshot \
         (delta {delta_len} B vs full {full_len} B)"
    );
}

/// The binary encoding is the size win the format exists for.
///
/// Two workload shapes, because the physics differ: full-entropy
/// continuous coordinates cap the ratio near 19/8 ≈ 2.4× (shortest
/// round-trip text vs 8 raw bytes), while categorical / binary-attribute
/// coordinates (the CelebA-style datasets this repo ships) bit-pack and
/// clear 3× with a wide margin.
#[test]
fn binary_snapshots_are_at_least_3x_smaller_than_json() {
    // Categorical: 40 binary attributes per element, like CelebA.
    let mut rng = StdRng::seed_from_u64(7);
    let categorical: Vec<Element> = (0..800)
        .map(|i| {
            let point: Vec<f64> = (0..40)
                .map(|_| f64::from(rng.random_range(0u32..2)))
                .collect();
            Element::new(i, point, if i < 2 { i } else { rng.random_range(0..2) })
        })
        .collect();
    let mut alg = Sfdm2::new(Sfdm2Config {
        constraint: FairnessConstraint::new(vec![5, 5]).unwrap(),
        epsilon: 0.1,
        bounds: DistanceBounds::new(0.5, 7.0).unwrap(),
        metric: Metric::Euclidean,
    })
    .unwrap();
    for e in &categorical {
        alg.insert(e);
    }
    let snap = alg.snapshot();
    let json = snap.to_bytes(SnapshotFormat::Json).len();
    let bin = snap.to_bytes(SnapshotFormat::Binary).len();
    assert!(
        bin * 3 <= json,
        "binary snapshot of a categorical workload must be ≥3× smaller \
         (bin {bin} B vs json {json} B)"
    );

    // Continuous full-entropy coordinates: still a solid win, capped by
    // the 8-bytes-vs-17-digits physics.
    let elements = random_elements(800, 2, 16, 7);
    let mut alg = Sfdm2::new(sfdm2_config(2)).unwrap();
    for e in &elements {
        alg.insert(e);
    }
    let snap = alg.snapshot();
    let json = snap.to_bytes(SnapshotFormat::Json).len();
    let bin = snap.to_bytes(SnapshotFormat::Binary).len();
    assert!(
        bin * 19 <= json * 10,
        "binary snapshot of a continuous workload must be ≥1.9× smaller \
         (bin {bin} B vs json {json} B)"
    );
}
