//! Corruption fuzz harness for the binary persistence decoders.
//!
//! A deterministic byte-mutator (seeded from `FDM_FUZZ_SEED`, case count
//! from `FDM_FUZZ_CASES` — `PROPTEST_CASES`-style, no wall clock anywhere)
//! flips, truncates, duplicates, inserts, and zeroes bytes in valid v2
//! snapshots and delta files, and asserts that **every** mutation yields a
//! typed `CorruptSnapshot` / `UnsupportedSnapshotVersion` error — never a
//! panic, never an unbounded allocation, and never a silently wrong
//! restore (if a mutant somehow decodes, it must decode to exactly the
//! original document).
//!
//! Why this holds by construction: every byte of a v2 frame is either the
//! magic, the version, or covered by a section's length + CRC32, so
//! single-byte damage is always detected before the value decoder runs,
//! and structural damage (truncation, duplication, shifts) breaks the
//! section framing. The harness is the regression net for that invariant
//! as the format evolves.

use fdm_core::dataset::DistanceBounds;
use fdm_core::error::FdmError;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::metric::Metric;
use fdm_core::persist::{Snapshot, SnapshotDelta, SnapshotFormat, Snapshottable};
use fdm_core::point::Element;
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;
use fdm_core::streaming::sliding::SlidingWindowFdm;
use rand::prelude::*;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn elements(n: usize, dim: usize, seed: u64) -> Vec<Element> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let point: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 10.0).collect();
            Element::new(i, point, if i < 2 { i } else { rng.random_range(0..2) })
        })
        .collect()
}

fn config() -> Sfdm2Config {
    Sfdm2Config {
        constraint: FairnessConstraint::new(vec![2, 2]).unwrap(),
        epsilon: 0.1,
        bounds: DistanceBounds::new(0.05, 20.0).unwrap(),
        metric: Metric::Euclidean,
    }
}

fn sample_snapshot() -> Snapshot {
    let mut alg = Sfdm2::new(config()).unwrap();
    for e in elements(120, 3, 11) {
        alg.insert(&e);
    }
    alg.snapshot()
}

fn sample_sliding_snapshot() -> Snapshot {
    let mut alg = SlidingWindowFdm::new(config(), 24).unwrap();
    for e in elements(70, 3, 17) {
        alg.insert(&e);
    }
    alg.snapshot()
}

fn sample_sharded_snapshot() -> Snapshot {
    let mut alg: ShardedStream<Sfdm2> = ShardedStream::new(config(), 3).unwrap();
    for e in elements(150, 3, 13) {
        alg.insert(&e);
    }
    alg.snapshot()
}

fn sample_delta() -> (Snapshot, SnapshotDelta) {
    let mut alg = Sfdm2::new(config()).unwrap();
    let all = elements(120, 3, 17);
    for e in &all[..80] {
        alg.insert(e);
    }
    let base = alg.snapshot();
    for e in &all[80..] {
        alg.insert(e);
    }
    let delta = SnapshotDelta::between(&base, &alg.snapshot()).unwrap();
    (base, delta)
}

/// One deterministic mutation of `bytes`; returns `None` when the mutation
/// would be the identity (e.g. truncation at full length).
fn mutate(rng: &mut StdRng, bytes: &[u8]) -> Option<Vec<u8>> {
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return None;
    }
    match rng.random_range(0..5u32) {
        // Flip: xor a random byte with a non-zero pattern.
        0 => {
            let pos = rng.random_range(0..out.len());
            out[pos] ^= rng.random_range(1..=255u32) as u8;
        }
        // Truncate to a strict prefix.
        1 => {
            let len = rng.random_range(0..out.len());
            out.truncate(len);
        }
        // Duplicate a random slice in place (shifts everything after it).
        2 => {
            let start = rng.random_range(0..out.len());
            let max_len = (out.len() - start).min(64);
            let len = rng.random_range(1..=max_len);
            let slice: Vec<u8> = out[start..start + len].to_vec();
            let at = start + len;
            out.splice(at..at, slice);
        }
        // Insert a random byte.
        3 => {
            let pos = rng.random_range(0..=out.len());
            out.insert(pos, rng.random_range(0..=255u32) as u8);
        }
        // Zero a short run.
        _ => {
            let start = rng.random_range(0..out.len());
            let len = rng.random_range(1..=(out.len() - start).min(16));
            for b in &mut out[start..start + len] {
                *b = 0;
            }
            if out == bytes {
                return None; // the run was already zero
            }
        }
    }
    Some(out)
}

fn assert_snapshot_mutation_is_safe(original: &Snapshot, mutant: &[u8]) {
    match Snapshot::from_bytes(mutant) {
        Err(FdmError::CorruptSnapshot { .. })
        | Err(FdmError::UnsupportedSnapshotVersion { .. }) => {}
        Err(other) => panic!("unexpected error class from mutated snapshot: {other:?}"),
        Ok(decoded) => {
            // A decodable mutant is only acceptable if it is literally the
            // same document (can happen for e.g. mutations the sniffing
            // never reaches); anything else would be a silent wrong
            // restore.
            assert_eq!(
                &decoded, original,
                "mutated snapshot decoded to a different document"
            );
            // And it must still restore through the full validation stack
            // without panicking.
            let _ = Sfdm2::restore(&decoded);
        }
    }
}

#[test]
fn mutated_v2_snapshots_never_panic_or_restore_wrong() {
    let seed = env_u64("FDM_FUZZ_SEED", 20260729);
    let cases = env_u64("FDM_FUZZ_CASES", 256) as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    for (label, snapshot) in [
        ("sfdm2", sample_snapshot()),
        ("sharded", sample_sharded_snapshot()),
        ("sliding", sample_sliding_snapshot()),
    ] {
        let bytes = snapshot.to_bytes(SnapshotFormat::Binary);
        assert!(
            Snapshot::from_bytes(&bytes).is_ok(),
            "{label}: baseline parses"
        );
        for case in 0..cases {
            let Some(mutant) = mutate(&mut rng, &bytes) else {
                continue;
            };
            // A panic here fails the test run; the assert distinguishes
            // typed errors from silent corruption.
            let result = std::panic::catch_unwind(|| {
                assert_snapshot_mutation_is_safe(&snapshot, &mutant);
            });
            assert!(result.is_ok(), "{label} case {case} (seed {seed}) panicked");
        }
    }
}

#[test]
fn mutated_deltas_never_panic_or_apply_wrong() {
    let seed = env_u64("FDM_FUZZ_SEED", 20260729).wrapping_add(1);
    let cases = env_u64("FDM_FUZZ_CASES", 256) as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let (base, delta) = sample_delta();
    let bytes = delta.to_bytes();
    let reference = delta.apply_to(&base).unwrap();
    assert!(SnapshotDelta::from_bytes(&bytes).is_ok(), "baseline parses");
    for case in 0..cases {
        let Some(mutant) = mutate(&mut rng, &bytes) else {
            continue;
        };
        let result = std::panic::catch_unwind(|| match SnapshotDelta::from_bytes(&mutant) {
            Err(FdmError::CorruptSnapshot { .. })
            | Err(FdmError::UnsupportedSnapshotVersion { .. }) => {}
            Err(other) => panic!("unexpected error class from mutated delta: {other:?}"),
            Ok(decoded) => match decoded.apply_to(&base) {
                // The base-checksum link or patch validation may refuse;
                // both are typed errors, fine.
                Err(FdmError::CorruptSnapshot { .. })
                | Err(FdmError::IncompatibleSnapshot { .. }) => {}
                Err(other) => panic!("unexpected apply error: {other:?}"),
                Ok(applied) => assert_eq!(
                    applied, reference,
                    "mutated delta applied to a different result"
                ),
            },
        });
        assert!(result.is_ok(), "delta case {case} (seed {seed}) panicked");
    }
}

/// Truncations at *every* byte boundary (not just sampled ones) are typed
/// errors — the cheapest exhaustive slice of the fuzz space.
#[test]
fn every_truncation_of_a_v2_snapshot_is_a_typed_error() {
    let snapshot = sample_snapshot();
    let bytes = snapshot.to_bytes(SnapshotFormat::Binary);
    for cut in 0..bytes.len() {
        match Snapshot::from_bytes(&bytes[..cut]) {
            Err(FdmError::CorruptSnapshot { .. })
            | Err(FdmError::UnsupportedSnapshotVersion { .. }) => {}
            other => panic!("truncation at {cut}/{} gave {other:?}", bytes.len()),
        }
    }
}

/// Flipping any single byte of the header or either section is detected —
/// exhaustively for a small snapshot, one bit pattern per byte.
#[test]
fn every_single_byte_flip_is_detected() {
    let mut alg = Sfdm2::new(config()).unwrap();
    for e in elements(30, 2, 5) {
        alg.insert(&e);
    }
    let snapshot = alg.snapshot();
    let bytes = snapshot.to_bytes(SnapshotFormat::Binary);
    for pos in 0..bytes.len() {
        let mut mutant = bytes.clone();
        mutant[pos] ^= 0x41;
        assert_snapshot_mutation_is_safe(&snapshot, &mutant);
    }
}
