//! Systematic Monte-Carlo validation of every approximation guarantee the
//! paper proves, against exact brute-force optima on small instances:
//!
//! * Theorem 1 — Algorithm 1 is `(1−ε)/2`-approximate (all metrics).
//! * Theorem 2 — SFDM1 is `(1−ε)/4`-approximate (m = 2).
//! * Theorem 4 — SFDM2 is `(1−ε)/(3m+2)`-approximate (m = 2, 3).
//! * GMM is `1/2`-approximate; FairSwap `1/4`; FairGMM `1/5`.
//!
//! Every check runs across a grid of ε and several seeded instances per
//! cell; tolerances are purely for floating point, not for slack in the
//! bounds.

use fdm_core::brute::{exact_fair_optimum, exact_unconstrained_optimum};
use fdm_core::dataset::Dataset;
use fdm_core::diversity::diversity;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::metric::Metric;
use fdm_core::offline::fair_gmm::{FairGmm, FairGmmConfig};
use fdm_core::offline::fair_swap::{FairSwap, FairSwapConfig};
use fdm_core::offline::gmm::gmm;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::unconstrained::{StreamingDiversityMaximization, StreamingDmConfig};
use rand::prelude::*;

const FP_TOL: f64 = 1e-9;

fn random_instance(n: usize, m: usize, metric: Metric, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            // Positive coordinates keep the Angular metric within a
            // quarter-turn (as for topic vectors).
            vec![
                rng.random::<f64>() * 10.0 + 0.1,
                rng.random::<f64>() * 10.0 + 0.1,
            ]
        })
        .collect();
    let mut groups: Vec<usize> = (0..n).map(|_| rng.random_range(0..m)).collect();
    for g in 0..m {
        groups[g] = g;
        groups[m + g] = g; // at least two per group
    }
    Dataset::from_rows(rows, groups, metric).unwrap()
}

#[test]
fn theorem1_all_metrics() {
    for metric in [
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Angular,
    ] {
        for eps in [0.05, 0.1, 0.25] {
            for seed in 0..4 {
                let d = random_instance(14, 1, metric, 1000 + seed);
                let k = 4;
                let opt = exact_unconstrained_optimum(&d, k);
                let bounds = d.exact_distance_bounds().unwrap();
                let mut alg = StreamingDiversityMaximization::new(StreamingDmConfig {
                    k,
                    epsilon: eps,
                    bounds,
                    metric,
                })
                .unwrap();
                for e in d.iter() {
                    alg.insert(&e);
                }
                let sol = alg.finalize().unwrap();
                let bound = (1.0 - eps) / 2.0 * opt;
                assert!(
                    sol.diversity >= bound - FP_TOL,
                    "{metric:?} eps={eps} seed={seed}: {} < {bound}",
                    sol.diversity
                );
            }
        }
    }
}

#[test]
fn theorem2_sfdm1_grid() {
    for eps in [0.05, 0.1, 0.2] {
        for seed in 0..5 {
            let d = random_instance(14, 2, Metric::Euclidean, 2000 + seed);
            let c = FairnessConstraint::new(vec![2, 2]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &c);
            let bounds = d.exact_distance_bounds().unwrap();
            let mut alg = Sfdm1::new(Sfdm1Config {
                constraint: c,
                epsilon: eps,
                bounds,
                metric: Metric::Euclidean,
            })
            .unwrap();
            for e in d.iter() {
                alg.insert(&e);
            }
            let sol = alg.finalize().unwrap();
            let bound = (1.0 - eps) / 4.0 * opt;
            assert!(
                sol.diversity >= bound - FP_TOL,
                "eps={eps} seed={seed}: {} < {bound}",
                sol.diversity
            );
        }
    }
}

#[test]
fn theorem2_sfdm1_manhattan_and_angular() {
    for metric in [Metric::Manhattan, Metric::Angular] {
        for seed in 0..3 {
            let d = random_instance(12, 2, metric, 3000 + seed);
            let c = FairnessConstraint::new(vec![2, 2]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &c);
            if opt <= 0.0 {
                continue;
            }
            let bounds = d.exact_distance_bounds().unwrap();
            let eps = 0.1;
            let mut alg = Sfdm1::new(Sfdm1Config {
                constraint: c,
                epsilon: eps,
                bounds,
                metric,
            })
            .unwrap();
            for e in d.iter() {
                alg.insert(&e);
            }
            let sol = alg.finalize().unwrap();
            let bound = (1.0 - eps) / 4.0 * opt;
            assert!(
                sol.diversity >= bound - FP_TOL,
                "{metric:?} seed={seed}: {} < {bound}",
                sol.diversity
            );
        }
    }
}

#[test]
fn theorem4_sfdm2_m2_and_m3() {
    for (m, quotas) in [(2usize, vec![2, 2]), (3, vec![1, 2, 1])] {
        for eps in [0.1, 0.2] {
            for seed in 0..4 {
                let d = random_instance(13, m, Metric::Euclidean, 4000 + seed);
                let c = FairnessConstraint::new(quotas.clone()).unwrap();
                let (opt, _) = exact_fair_optimum(&d, &c);
                if opt <= 0.0 {
                    continue;
                }
                let bounds = d.exact_distance_bounds().unwrap();
                let mut alg = Sfdm2::new(Sfdm2Config {
                    constraint: c,
                    epsilon: eps,
                    bounds,
                    metric: Metric::Euclidean,
                })
                .unwrap();
                for e in d.iter() {
                    alg.insert(&e);
                }
                let sol = alg.finalize().unwrap();
                let bound = (1.0 - eps) / (3.0 * m as f64 + 2.0) * opt;
                assert!(
                    sol.diversity >= bound - FP_TOL,
                    "m={m} eps={eps} seed={seed}: {} < {bound}",
                    sol.diversity
                );
            }
        }
    }
}

#[test]
fn gmm_half_approximation_grid() {
    for k in [3usize, 5] {
        for seed in 0..5 {
            let d = random_instance(12, 1, Metric::Euclidean, 5000 + seed);
            let opt = exact_unconstrained_optimum(&d, k);
            let sol = gmm(&d, k, seed);
            let div = diversity(&d, &sol);
            assert!(
                div >= opt / 2.0 - FP_TOL,
                "k={k} seed={seed}: GMM {div} < OPT/2 {}",
                opt / 2.0
            );
        }
    }
}

#[test]
fn fair_swap_quarter_grid() {
    for seed in 0..5 {
        let d = random_instance(13, 2, Metric::Euclidean, 6000 + seed);
        let c = FairnessConstraint::new(vec![2, 2]).unwrap();
        let (opt, _) = exact_fair_optimum(&d, &c);
        let alg = FairSwap::new(FairSwapConfig {
            constraint: c,
            seed,
            strategy: Default::default(),
        })
        .unwrap();
        let sol = alg.run(&d).unwrap();
        assert!(
            sol.diversity >= opt / 4.0 - FP_TOL,
            "seed={seed}: FairSwap {} < OPT/4 {}",
            sol.diversity,
            opt / 4.0
        );
    }
}

#[test]
fn fair_gmm_fifth_grid() {
    for seed in 0..5 {
        let d = random_instance(12, 2, Metric::Euclidean, 7000 + seed);
        let c = FairnessConstraint::new(vec![2, 2]).unwrap();
        let (opt, _) = exact_fair_optimum(&d, &c);
        let alg = FairGmm::new(FairGmmConfig::new(c, seed)).unwrap();
        let sol = alg.run(&d).unwrap();
        assert!(
            sol.diversity >= opt / 5.0 - FP_TOL,
            "seed={seed}: FairGMM {} < OPT/5 {}",
            sol.diversity,
            opt / 5.0
        );
    }
}

#[test]
fn streaming_never_beats_exact_optimum() {
    // Sanity direction: no algorithm may exceed the brute-force optimum.
    for seed in 0..4 {
        let d = random_instance(12, 2, Metric::Euclidean, 8000 + seed);
        let c = FairnessConstraint::new(vec![2, 2]).unwrap();
        let (opt, _) = exact_fair_optimum(&d, &c);
        let bounds = d.exact_distance_bounds().unwrap();
        let mut alg = Sfdm1::new(Sfdm1Config {
            constraint: c,
            epsilon: 0.1,
            bounds,
            metric: Metric::Euclidean,
        })
        .unwrap();
        for e in d.iter() {
            alg.insert(&e);
        }
        let sol = alg.finalize().unwrap();
        assert!(sol.diversity <= opt + FP_TOL);
    }
}
