//! Property-based tests of the core substrates: metric axioms, guess
//! ladder, candidate invariants, balancing, threshold clustering, matroid
//! intersection, and max-flow.

use fdm_core::clustering::threshold_clusters;
use fdm_core::dataset::{Dataset, DistanceBounds};
use fdm_core::flow::FlowNetwork;
use fdm_core::guess::GuessLadder;
use fdm_core::matroid::intersection::max_common_independent_set;
use fdm_core::matroid::{Matroid, PartitionMatroid};
use fdm_core::metric::Metric;
use fdm_core::point::{Element, PointStore};
use fdm_core::streaming::candidate::Candidate;
use proptest::prelude::*;

fn any_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![
        Just(Metric::Euclidean),
        Just(Metric::Manhattan),
        Just(Metric::Chebyshev),
        (1.0f64..5.0).prop_map(Metric::Minkowski),
        Just(Metric::Angular),
    ]
}

fn point(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-50.0f64..50.0, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---------- metric axioms ----------

    #[test]
    fn metric_axioms(metric in any_metric(), a in point(4), b in point(4), c in point(4)) {
        let dab = metric.dist(&a, &b);
        let dba = metric.dist(&b, &a);
        let dac = metric.dist(&a, &c);
        let dcb = metric.dist(&c, &b);
        // Non-negativity and symmetry.
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() < 1e-9);
        // Identity (up to fp): d(a, a) == 0 for the Lp metrics; Angular is
        // 0 for parallel vectors, which includes a == a (non-zero norm).
        let daa = metric.dist(&a, &a);
        prop_assert!(daa.abs() < 1e-6, "d(a,a) = {daa}");
        // Triangle inequality with a small tolerance for Angular's acos.
        prop_assert!(
            dab <= dac + dcb + 1e-7,
            "triangle violated: {dab} > {dac} + {dcb}"
        );
    }

    // ---------- guess ladder ----------

    #[test]
    fn ladder_covers_bounds_geometrically(
        lo in 1e-3f64..10.0,
        spread in 1.0f64..1e4,
        eps in 0.01f64..0.9,
    ) {
        let bounds = DistanceBounds::new(lo, lo * spread).unwrap();
        let ladder = GuessLadder::new(bounds, eps).unwrap();
        let v = ladder.values();
        prop_assert_eq!(v[0], lo);
        // Strictly increasing by the 1/(1−ε) ratio.
        for w in v.windows(2) {
            prop_assert!((w[1] * (1.0 - eps) - w[0]).abs() < 1e-6 * w[0].max(1.0));
        }
        // Last rung within the bounds; next rung would exceed them.
        prop_assert!(*v.last().unwrap() <= lo * spread * (1.0 + 1e-9));
        prop_assert!(v.last().unwrap() / (1.0 - eps) > lo * spread);
        // Every value of [lo, hi] is within a (1−ε) factor of some rung.
        prop_assert!(!ladder.is_empty());
    }

    // ---------- candidate invariants ----------

    #[test]
    fn candidate_invariants_hold_for_any_stream(
        xs in proptest::collection::vec(point(2), 1..60),
        mu in 0.1f64..20.0,
        cap in 1usize..10,
    ) {
        let mut store = PointStore::new(2);
        let mut c = Candidate::new(mu, cap, Metric::Euclidean);
        let mut rejected = Vec::new();
        for (i, x) in xs.iter().enumerate() {
            let e = Element::new(i, x.clone(), 0);
            if !c.try_insert(&mut store, &e) {
                rejected.push(e);
            }
        }
        // Invariant 1: never exceeds capacity.
        prop_assert!(c.len() <= cap);
        // Invariant 2: pairwise distances within the candidate are >= mu.
        prop_assert!(c.diversity(&store) >= mu || c.len() < 2);
        // Invariant 3: if not full, every rejected element is within mu.
        if !c.is_full() {
            for e in &rejected {
                prop_assert!(c.distance_to(&store, &e.point) < mu);
            }
        }
    }

    // ---------- threshold clustering ----------

    #[test]
    fn clustering_separation_and_cohesion(
        xs in proptest::collection::vec(point(2), 2..40),
        threshold in 0.5f64..30.0,
    ) {
        let (labels, count) = threshold_clusters(&xs, Metric::Euclidean, threshold);
        prop_assert_eq!(labels.len(), xs.len());
        prop_assert!(count >= 1 && count <= xs.len());
        // Property (i) of Lemma 3: cross-cluster pairs are >= threshold apart.
        for i in 0..xs.len() {
            for j in (i + 1)..xs.len() {
                if labels[i] != labels[j] {
                    prop_assert!(Metric::Euclidean.dist(&xs[i], &xs[j]) >= threshold);
                }
            }
        }
        // Each non-singleton cluster is connected: every member has some
        // other member within the threshold.
        for i in 0..xs.len() {
            let same: Vec<usize> =
                (0..xs.len()).filter(|&j| j != i && labels[j] == labels[i]).collect();
            if !same.is_empty() {
                let nearest = same
                    .iter()
                    .map(|&j| Metric::Euclidean.dist(&xs[i], &xs[j]))
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(nearest < threshold, "member {i} disconnected");
            }
        }
    }

    // ---------- matroid intersection ----------

    #[test]
    fn intersection_is_common_independent_and_maximum(
        parts1 in proptest::collection::vec(0usize..3, 4..10),
        parts2_seed in proptest::collection::vec(0usize..3, 4..10),
        caps1 in proptest::collection::vec(1usize..3, 3),
        caps2 in proptest::collection::vec(1usize..3, 3),
    ) {
        let n = parts1.len().min(parts2_seed.len());
        let parts1 = parts1[..n].to_vec();
        let parts2 = parts2_seed[..n].to_vec();
        let m1 = PartitionMatroid::new(parts1, caps1).unwrap();
        let m2 = PartitionMatroid::new(parts2, caps2).unwrap();
        let result = max_common_independent_set(&m1, &m2, &[], None);
        prop_assert!(m1.is_independent(&result));
        prop_assert!(m2.is_independent(&result));
        // Maximality vs exhaustive search.
        let mut best = 0usize;
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            if set.len() > best && m1.is_independent(&set) && m2.is_independent(&set) {
                best = set.len();
            }
        }
        prop_assert_eq!(result.len(), best);
    }

    #[test]
    fn intersection_with_any_valid_seed_is_still_maximum(
        parts in proptest::collection::vec(0usize..4, 5..9),
        seed_index in 0usize..5,
    ) {
        let n = parts.len();
        // M1: parts with capacity 1 each; M2: positions mod 3, capacity 1.
        let m1 = PartitionMatroid::unit_capacities(parts.clone(), 4).unwrap();
        let m2 =
            PartitionMatroid::unit_capacities((0..n).map(|i| i % 3).collect(), 3).unwrap();
        let init = vec![seed_index.min(n - 1)];
        let result = max_common_independent_set(&m1, &m2, &init, None);
        let baseline = max_common_independent_set(&m1, &m2, &[], None);
        prop_assert_eq!(result.len(), baseline.len(), "seeding must not lose cardinality");
    }

    // ---------- max-flow ----------

    #[test]
    fn flow_value_bounded_by_cuts(
        caps in proptest::collection::vec(0i64..20, 5),
    ) {
        // Series-parallel network: s -(c0)- a -(c1)- t plus s -(c2)- b -(c3)- t
        // plus a cross edge a -(c4)- b. Max flow <= min(c0,c1) + min(c2,c3) + c4-ish;
        // check against the trivial source/sink cut bounds.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, caps[0]);
        net.add_edge(1, 3, caps[1]);
        net.add_edge(0, 2, caps[2]);
        net.add_edge(2, 3, caps[3]);
        net.add_edge(1, 2, caps[4]);
        let flow = net.max_flow(0, 3);
        prop_assert!(flow >= 0);
        prop_assert!(flow <= caps[0] + caps[2], "source cut violated");
        prop_assert!(flow <= caps[1] + caps[3], "sink cut violated");
    }

    // ---------- dataset round trips ----------

    #[test]
    fn dataset_row_round_trip(
        rows in proptest::collection::vec(point(3), 1..30),
        metric in any_metric(),
    ) {
        let groups = vec![0usize; rows.len()];
        let d = Dataset::from_rows(rows.clone(), groups, metric).unwrap();
        prop_assert_eq!(d.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(d.point(i), row.as_slice());
        }
        // Element views agree with storage.
        for e in d.iter() {
            prop_assert_eq!(&e.point[..], d.point(e.id));
        }
    }
}
