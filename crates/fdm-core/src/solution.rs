//! Solution containers returned by the algorithms.

use crate::diversity::{diversity_of_ids, diversity_of_points};
use crate::metric::Metric;
use crate::point::{Element, PointId, PointStore};

/// A selected subset together with its max–min diversity.
///
/// Solutions own their elements (ids, points, group labels), so they remain
/// valid after the stream or dataset is gone.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The selected elements.
    pub elements: Vec<Element>,
    /// `div(S) = min_{x≠y ∈ S} d(x, y)` under the algorithm's metric.
    pub diversity: f64,
}

impl Solution {
    /// Builds a solution from elements, computing its diversity.
    pub fn from_elements(elements: Vec<Element>, metric: Metric) -> Self {
        let points: Vec<&[f64]> = elements.iter().map(|e| &e.point[..]).collect();
        let diversity = diversity_of_points(&points, metric);
        Solution {
            elements,
            diversity,
        }
    }

    /// Builds a solution by materializing arena ids: the diversity is
    /// computed over the arena rows (proxy kernels, cached norms) and the
    /// elements are copied out so the solution outlives the store.
    pub fn from_ids(store: &PointStore, ids: &[PointId], metric: Metric) -> Self {
        let diversity = diversity_of_ids(store, ids, metric);
        let elements = ids.iter().map(|&id| store.element(id)).collect();
        Solution {
            elements,
            diversity,
        }
    }

    /// Number of selected elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the solution is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Ids of the selected elements, in selection order.
    pub fn ids(&self) -> Vec<usize> {
        self.elements.iter().map(|e| e.id).collect()
    }

    /// Per-group counts over `m` groups.
    ///
    /// # Panics
    ///
    /// Panics if an element's group label is `≥ m`.
    pub fn group_counts(&self, m: usize) -> Vec<usize> {
        let mut counts = vec![0usize; m];
        for e in &self.elements {
            counts[e.group] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elems() -> Vec<Element> {
        vec![
            Element::new(0, vec![0.0, 0.0], 0),
            Element::new(1, vec![3.0, 4.0], 1),
            Element::new(2, vec![6.0, 8.0], 0),
        ]
    }

    #[test]
    fn from_elements_computes_diversity() {
        let s = Solution::from_elements(elems(), Metric::Euclidean);
        assert_eq!(s.len(), 3);
        assert!((s.diversity - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ids_and_group_counts() {
        let s = Solution::from_elements(elems(), Metric::Euclidean);
        assert_eq!(s.ids(), vec![0, 1, 2]);
        assert_eq!(s.group_counts(2), vec![2, 1]);
        assert_eq!(s.group_counts(3), vec![2, 1, 0]);
    }

    #[test]
    fn empty_solution() {
        let s = Solution::from_elements(vec![], Metric::Euclidean);
        assert!(s.is_empty());
        assert_eq!(s.diversity, f64::INFINITY);
    }
}
