//! In-memory datasets and distance-bound estimation.
//!
//! A [`Dataset`] is the offline view of the data: a [`PointStore`] arena
//! (flat row-major storage with cached norms), a group label per row, and
//! the metric. Offline baselines (GMM, FairSwap, FairFlow, FairGMM) operate
//! on it directly with random access; streaming algorithms consume it
//! through [`Dataset::iter`], which yields owned [`Element`]s in row order
//! (use `fdm-datasets`' permutation streams for randomized arrival orders).
//!
//! Loaders that produce rows one at a time should go through
//! [`DatasetBuilder`], which validates and appends each row straight into
//! the arena without materializing a `Vec<Vec<f64>>` first.

use crate::error::{FdmError, Result};
use crate::metric::Metric;
use crate::point::{Element, PointId, PointStore};

/// Known or estimated bounds `0 < lower ≤ OPT ≤ upper` on pairwise
/// distances, required by the guess ladder of Algorithm 1.
///
/// The paper assumes `d_min` and `d_max` (and hence the spread
/// `∆ = d_max/d_min`) are known. [`Dataset::exact_distance_bounds`] computes
/// them exactly in `O(n²)`; [`Dataset::sampled_distance_bounds`] estimates
/// them from a sample, which is what a practical streaming deployment would
/// do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceBounds {
    /// Lower bound on the minimum pairwise distance (must be > 0).
    pub lower: f64,
    /// Upper bound on the maximum pairwise distance.
    pub upper: f64,
}

impl DistanceBounds {
    /// Creates validated bounds.
    pub fn new(lower: f64, upper: f64) -> Result<Self> {
        if !(lower.is_finite() && upper.is_finite()) || lower <= 0.0 || lower > upper {
            return Err(FdmError::InvalidDistanceBounds { lower, upper });
        }
        Ok(DistanceBounds { lower, upper })
    }

    /// The metric spread `∆ = d_max / d_min`.
    pub fn spread(&self) -> f64 {
        self.upper / self.lower
    }
}

impl serde::Serialize for DistanceBounds {
    fn to_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("lower".to_string(), serde::Serialize::to_value(&self.lower));
        map.insert("upper".to_string(), serde::Serialize::to_value(&self.upper));
        serde::Value::Object(map)
    }
}

// Hand-written (rather than derived) so restored bounds re-run the
// constructor's validation: `lower ≤ 0`, non-finite, or inverted bounds in a
// tampered snapshot must surface as an error, not loop the guess ladder.
impl serde::Deserialize for DistanceBounds {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let get = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| serde::DeError::custom(format!("missing field `{key}`")))
        };
        let lower = <f64 as serde::Deserialize>::from_value(get("lower")?)?;
        let upper = <f64 as serde::Deserialize>::from_value(get("upper")?)?;
        DistanceBounds::new(lower, upper).map_err(serde::DeError::custom)
    }
}

/// Incremental [`Dataset`] construction: rows are validated and appended
/// straight into the point arena.
#[derive(Debug)]
pub struct DatasetBuilder {
    store: PointStore,
    metric: Metric,
}

impl DatasetBuilder {
    /// Starts a dataset of dimension `dim` under `metric`.
    pub fn new(dim: usize, metric: Metric) -> Result<Self> {
        Self::with_capacity(dim, metric, 0)
    }

    /// Like [`DatasetBuilder::new`] with an expected row-count hint.
    pub fn with_capacity(dim: usize, metric: Metric, capacity: usize) -> Result<Self> {
        if dim == 0 {
            return Err(FdmError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        metric.validate()?;
        Ok(DatasetBuilder {
            store: PointStore::with_capacity(dim, capacity),
            metric,
        })
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no rows were pushed yet.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Validates and appends one row (external id = row index).
    pub fn push_row(&mut self, row: &[f64], group: usize) -> Result<()> {
        if row.len() != self.store.dim() {
            return Err(FdmError::DimensionMismatch {
                expected: self.store.dim(),
                found: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(FdmError::NonFiniteCoordinate);
        }
        let id = self.store.len();
        self.store.push(id, row, group);
        Ok(())
    }

    /// Finishes the dataset (must hold at least one row).
    pub fn finish(self) -> Result<Dataset> {
        if self.store.is_empty() {
            return Err(FdmError::NotEnoughElements {
                required: 1,
                available: 0,
            });
        }
        let num_groups = self
            .store
            .groups_raw()
            .iter()
            .map(|&g| g as usize)
            .max()
            .unwrap_or(0)
            + 1;
        let mut group_sizes = vec![0usize; num_groups];
        for &g in self.store.groups_raw() {
            group_sizes[g as usize] += 1;
        }
        Ok(Dataset {
            store: self.store,
            num_groups,
            group_sizes,
            metric: self.metric,
        })
    }
}

/// A finite set of points with group labels in a metric space.
///
/// Storage is a row-major [`PointStore`] arena (`n × dim` contiguous
/// coordinates plus cached squared norms), with one group label in `0..m`
/// per row.
#[derive(Debug, Clone)]
pub struct Dataset {
    store: PointStore,
    num_groups: usize,
    group_sizes: Vec<usize>,
    metric: Metric,
}

impl Dataset {
    /// Builds a dataset from row vectors and per-row group labels.
    ///
    /// Validates that all rows share one dimensionality, all coordinates are
    /// finite, and group labels are dense in `0..m` where
    /// `m = max(label) + 1` (empty intermediate groups are permitted but make
    /// most constraints infeasible).
    pub fn from_rows(rows: Vec<Vec<f64>>, groups: Vec<usize>, metric: Metric) -> Result<Self> {
        if rows.len() != groups.len() {
            return Err(FdmError::InvalidGroup {
                group: groups.len(),
                num_groups: rows.len(),
            });
        }
        if rows.is_empty() {
            return Err(FdmError::NotEnoughElements {
                required: 1,
                available: 0,
            });
        }
        let dim = rows[0].len();
        let mut builder = DatasetBuilder::with_capacity(dim, metric, rows.len())?;
        for (row, &group) in rows.iter().zip(&groups) {
            builder.push_row(row, group)?;
        }
        builder.finish()
    }

    /// Builds a dataset from flat row-major storage.
    pub fn from_flat(
        data: Vec<f64>,
        dim: usize,
        groups: Vec<usize>,
        metric: Metric,
    ) -> Result<Self> {
        if dim == 0 {
            return Err(FdmError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        if data.len() != groups.len() * dim {
            return Err(FdmError::DimensionMismatch {
                expected: groups.len() * dim,
                found: data.len(),
            });
        }
        let mut builder = DatasetBuilder::with_capacity(dim, metric, groups.len())?;
        for (row, &group) in data.chunks_exact(dim).zip(&groups) {
            builder.push_row(row, group)?;
        }
        builder.finish()
    }

    /// Number of elements `n`.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the dataset is empty (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Dimensionality of each point.
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// Number of groups `m`.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Number of elements in each group.
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    /// The metric the dataset was constructed with.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The underlying point arena (rows, groups, cached norms).
    pub fn store(&self) -> &PointStore {
        &self.store
    }

    /// The arena id of row `i`.
    #[inline]
    pub fn point_id(&self, i: usize) -> PointId {
        PointId(i as u32)
    }

    /// The point at row `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        self.store.row(PointId(i as u32))
    }

    /// The group label of row `i`.
    #[inline]
    pub fn group(&self, i: usize) -> usize {
        self.store.group(PointId(i as u32))
    }

    /// Distance between rows `i` and `j` under the dataset metric (uses the
    /// arena's cached norms for the Angular kernel).
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (PointId(i as u32), PointId(j as u32));
        self.metric
            .dist_from_proxy(self.metric.proxy_with_sqrt_norms(
                self.store.row(a),
                self.store.row(b),
                self.store.norm(a),
                self.store.norm(b),
            ))
    }

    /// Distance between row `i` and an external point.
    #[inline]
    pub fn dist_to(&self, i: usize, p: &[f64]) -> f64 {
        self.metric.dist(self.point(i), p)
    }

    /// Iterates over the dataset as a stream of owned [`Element`]s in row
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = Element> + '_ {
        (0..self.len()).map(move |i| self.element(i))
    }

    /// Materializes row `i` as an owned [`Element`].
    pub fn element(&self, i: usize) -> Element {
        self.store.element(PointId(i as u32))
    }

    /// Exact `d_min`/`d_max` over all pairs — `O(n²)` distance computations;
    /// intended for small datasets and tests. Pairs at distance zero
    /// (duplicate points) are ignored for the lower bound, matching the
    /// paper's `d_min = min_{x≠y} d(x,y)` over *distinct* elements; if all
    /// pairs coincide the bounds are degenerate and an error is returned.
    pub fn exact_distance_bounds(&self) -> Result<DistanceBounds> {
        let n = self.len();
        if n < 2 {
            return Err(FdmError::NotEnoughElements {
                required: 2,
                available: n,
            });
        }
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.dist(i, j);
                if d > 0.0 {
                    lo = lo.min(d);
                }
                hi = hi.max(d);
            }
        }
        DistanceBounds::new(lo, hi)
    }

    /// Estimates distance bounds from `sample_size` seeded-deterministic
    /// rows: the upper bound uses the triangle inequality
    /// (`d_max ≤ 2·max_x d(x, x_0)` scanned over the whole dataset) so it is
    /// a true upper bound, while the lower bound is the minimum non-zero
    /// pairwise distance within the sample divided by `slack` (the guess
    /// ladder only loses a `log(slack)/ε` factor in candidate count if the
    /// estimate is off).
    pub fn sampled_distance_bounds(
        &self,
        sample_size: usize,
        slack: f64,
    ) -> Result<DistanceBounds> {
        let n = self.len();
        if n < 2 {
            return Err(FdmError::NotEnoughElements {
                required: 2,
                available: n,
            });
        }
        // Upper bound: one pass relative to row 0.
        let mut max_to_anchor: f64 = 0.0;
        for i in 1..n {
            max_to_anchor = max_to_anchor.max(self.dist(0, i));
        }
        let upper = (2.0 * max_to_anchor).max(f64::MIN_POSITIVE);

        // Lower bound: deterministic stratified sample (every n/s-th row).
        let s = sample_size.clamp(2, n);
        let stride = (n / s).max(1);
        let sample: Vec<usize> = (0..n).step_by(stride).take(s).collect();
        let mut lo = f64::INFINITY;
        for (a, &i) in sample.iter().enumerate() {
            for &j in &sample[a + 1..] {
                let d = self.dist(i, j);
                if d > 0.0 {
                    lo = lo.min(d);
                }
            }
        }
        if !lo.is_finite() {
            return Err(FdmError::InvalidDistanceBounds { lower: 0.0, upper });
        }
        let slack = slack.max(1.0);
        DistanceBounds::new(lo / slack, upper)
    }

    /// Indices of all elements belonging to `group`.
    pub fn group_indices(&self, group: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.group(i) == group)
            .collect()
    }

    /// Segments the arena into `k` round-robin shards of row indices —
    /// exactly the sub-streams each shard of a
    /// [`crate::streaming::sharded::ShardedStream`] would see if this
    /// dataset were streamed in row order. Useful for comparing offline
    /// shard pipelines (coresets) against sharded ingestion on identical
    /// partitions, and for replaying one shard's view in isolation.
    pub fn round_robin_shards(&self, k: usize) -> Vec<Vec<usize>> {
        crate::coreset::round_robin_chunks(self.len(), k)
    }

    /// Iterates one round-robin shard's sub-stream (see
    /// [`Dataset::round_robin_shards`]): every `k`-th element starting at
    /// `shard`, as owned [`Element`]s in arrival order.
    pub fn shard_iter(&self, shard: usize, k: usize) -> impl Iterator<Item = Element> + '_ {
        let k = k.max(1);
        debug_assert!(shard < k, "shard index {shard} out of range for {k} shards");
        (shard..self.len()).step_by(k).map(move |i| self.element(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dataset() -> Dataset {
        // Points 0, 1, 2, 3 on a line; alternating groups.
        Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![0, 1, 0, 1],
            Metric::Euclidean,
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = line_dataset();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 1);
        assert_eq!(d.num_groups(), 2);
        assert_eq!(d.group_sizes(), &[2, 2]);
        assert_eq!(d.point(2), &[2.0]);
        assert_eq!(d.group(3), 1);
        assert_eq!(d.dist(0, 3), 3.0);
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let a = line_dataset();
        let b = Dataset::from_flat(
            vec![0.0, 1.0, 2.0, 3.0],
            1,
            vec![0, 1, 0, 1],
            Metric::Euclidean,
        )
        .unwrap();
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.point(i), b.point(i));
            assert_eq!(a.group(i), b.group(i));
        }
    }

    #[test]
    fn builder_matches_from_rows() {
        let a = line_dataset();
        let mut builder = DatasetBuilder::new(1, Metric::Euclidean).unwrap();
        for (i, x) in [0.0, 1.0, 2.0, 3.0].iter().enumerate() {
            builder.push_row(&[*x], i % 2).unwrap();
        }
        assert_eq!(builder.len(), 4);
        let b = builder.finish().unwrap();
        assert_eq!(a.num_groups(), b.num_groups());
        for i in 0..a.len() {
            assert_eq!(a.point(i), b.point(i));
            assert_eq!(a.group(i), b.group(i));
        }
    }

    #[test]
    fn builder_validates_rows() {
        let mut builder = DatasetBuilder::new(2, Metric::Euclidean).unwrap();
        assert!(matches!(
            builder.push_row(&[1.0], 0),
            Err(FdmError::DimensionMismatch { .. })
        ));
        assert_eq!(
            builder.push_row(&[1.0, f64::NAN], 0),
            Err(FdmError::NonFiniteCoordinate)
        );
        assert!(builder.is_empty());
        assert!(builder.finish().is_err(), "empty dataset rejected");
    }

    #[test]
    fn store_is_exposed_with_cached_norms() {
        let d = line_dataset();
        let store = d.store();
        assert_eq!(store.len(), 4);
        assert_eq!(store.norm_sq(d.point_id(3)), 9.0);
        assert_eq!(store.row(d.point_id(2)), d.point(2));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Dataset::from_rows(
            vec![vec![0.0, 1.0], vec![2.0]],
            vec![0, 0],
            Metric::Euclidean,
        )
        .unwrap_err();
        assert!(matches!(err, FdmError::DimensionMismatch { .. }));
    }

    #[test]
    fn rejects_non_finite() {
        let err = Dataset::from_rows(vec![vec![f64::NAN]], vec![0], Metric::Euclidean).unwrap_err();
        assert_eq!(err, FdmError::NonFiniteCoordinate);
    }

    #[test]
    fn rejects_mismatched_group_count() {
        let err = Dataset::from_rows(vec![vec![0.0]], vec![0, 1], Metric::Euclidean).unwrap_err();
        assert!(matches!(err, FdmError::InvalidGroup { .. }));
    }

    #[test]
    fn rejects_empty() {
        assert!(Dataset::from_rows(vec![], vec![], Metric::Euclidean).is_err());
        assert!(Dataset::from_flat(vec![], 2, vec![], Metric::Euclidean).is_err());
    }

    #[test]
    fn exact_bounds_on_line() {
        let d = line_dataset();
        let b = d.exact_distance_bounds().unwrap();
        assert_eq!(b.lower, 1.0);
        assert_eq!(b.upper, 3.0);
        assert_eq!(b.spread(), 3.0);
    }

    #[test]
    fn exact_bounds_ignore_duplicates() {
        let d = Dataset::from_rows(
            vec![vec![0.0], vec![0.0], vec![5.0]],
            vec![0, 0, 0],
            Metric::Euclidean,
        )
        .unwrap();
        let b = d.exact_distance_bounds().unwrap();
        assert_eq!(b.lower, 5.0);
        assert_eq!(b.upper, 5.0);
    }

    #[test]
    fn exact_bounds_all_duplicates_is_error() {
        let d =
            Dataset::from_rows(vec![vec![1.0], vec![1.0]], vec![0, 0], Metric::Euclidean).unwrap();
        assert!(d.exact_distance_bounds().is_err());
    }

    #[test]
    fn sampled_bounds_bracket_exact() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i as f64) * 0.37, (i as f64 * 0.11).sin()])
            .collect();
        let groups = vec![0; 200];
        let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
        let exact = d.exact_distance_bounds().unwrap();
        let est = d.sampled_distance_bounds(50, 4.0).unwrap();
        assert!(est.upper >= exact.upper, "upper must be a true bound");
        assert!(est.lower <= exact.lower * 4.0 + 1e-9);
        assert!(est.lower > 0.0);
    }

    #[test]
    fn group_indices() {
        let d = line_dataset();
        assert_eq!(d.group_indices(0), vec![0, 2]);
        assert_eq!(d.group_indices(1), vec![1, 3]);
    }

    #[test]
    fn round_robin_shards_match_shard_iter() {
        let d = line_dataset();
        let shards = d.round_robin_shards(3);
        assert_eq!(shards, vec![vec![0, 3], vec![1], vec![2]]);
        for (s, indices) in shards.iter().enumerate() {
            let via_iter: Vec<usize> = d.shard_iter(s, 3).map(|e| e.id).collect();
            assert_eq!(&via_iter, indices);
        }
        // k = 1 is the whole stream in order.
        let all: Vec<usize> = d.shard_iter(0, 1).map(|e| e.id).collect();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn iter_yields_elements_in_order() {
        let d = line_dataset();
        let elems: Vec<Element> = d.iter().collect();
        assert_eq!(elems.len(), 4);
        assert_eq!(elems[2].id, 2);
        assert_eq!(&elems[2].point[..], &[2.0]);
        assert_eq!(elems[2].group, 0);
    }

    #[test]
    fn bounds_validation() {
        assert!(DistanceBounds::new(0.0, 1.0).is_err());
        assert!(DistanceBounds::new(2.0, 1.0).is_err());
        assert!(DistanceBounds::new(f64::NAN, 1.0).is_err());
        assert!(DistanceBounds::new(0.5, 0.5).is_ok());
    }
}
