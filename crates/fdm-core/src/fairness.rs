//! Fairness constraints (per-group quotas).
//!
//! The paper's group-fairness notion assigns a quota `k_i ≥ 1` to each of
//! the `m` disjoint groups and requires `|S ∩ X_i| = k_i` (Definition 1).
//! Two standard quota policies from §V-A are provided:
//!
//! * **Equal representation (ER)**: `k_i ∈ {⌊k/m⌋, ⌈k/m⌉}` with
//!   `Σ k_i = k` — the paper's default.
//! * **Proportional representation (PR)**: `k_i ∝ |X_i|`, rounded with
//!   largest-remainder so that `Σ k_i = k` and every group keeps at least
//!   one slot (Fig. 9).

use serde::Serialize;

use crate::error::{FdmError, Result};

/// A per-group quota vector `k_1..k_m` with `k = Σ k_i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FairnessConstraint {
    quotas: Vec<usize>,
    total: usize,
}

// Hand-written (rather than derived) so any document — in particular a
// tampered snapshot — goes back through [`FairnessConstraint::new`]'s
// validation, and an inconsistent cached `total` is rejected instead of
// silently trusted.
impl serde::Deserialize for FairnessConstraint {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let quotas_value = value
            .get("quotas")
            .ok_or_else(|| serde::DeError::custom("missing field `quotas`"))?;
        let quotas = <Vec<usize> as serde::Deserialize>::from_value(quotas_value)?;
        let constraint = FairnessConstraint::new(quotas).map_err(serde::DeError::custom)?;
        if let Some(total) = value.get("total") {
            let total = <usize as serde::Deserialize>::from_value(total)?;
            if total != constraint.total {
                return Err(serde::DeError::custom(format!(
                    "quota total {total} does not match sum {}",
                    constraint.total
                )));
            }
        }
        Ok(constraint)
    }
}

impl FairnessConstraint {
    /// Creates a constraint from explicit quotas; each must be ≥ 1 and the
    /// total must be ≥ 2 (diversity is undefined for singleton solutions).
    pub fn new(quotas: Vec<usize>) -> Result<Self> {
        if quotas.is_empty() || quotas.contains(&0) {
            return Err(FdmError::EmptyConstraint);
        }
        let total: usize = quotas.iter().sum();
        if total < 2 {
            return Err(FdmError::SolutionSizeTooSmall { k: total });
        }
        Ok(FairnessConstraint { quotas, total })
    }

    /// Equal representation: split `k` as evenly as possible over `m`
    /// groups, giving the first `k mod m` groups one extra slot.
    ///
    /// Requires `k ≥ m` so every group receives at least one slot, matching
    /// the paper's restriction "an algorithm must pick at least one element
    /// from each group".
    pub fn equal_representation(k: usize, m: usize) -> Result<Self> {
        if m == 0 {
            return Err(FdmError::EmptyConstraint);
        }
        if k < m || k < 2 {
            return Err(FdmError::SolutionSizeTooSmall { k });
        }
        let base = k / m;
        let extra = k % m;
        let quotas = (0..m).map(|i| base + usize::from(i < extra)).collect();
        FairnessConstraint::new(quotas)
    }

    /// Proportional representation: quota `k_i ∝ group_sizes[i]`, with
    /// largest-remainder rounding, a floor of one slot per group, and
    /// `Σ k_i = k` exactly.
    pub fn proportional_representation(k: usize, group_sizes: &[usize]) -> Result<Self> {
        let m = group_sizes.len();
        if m == 0 {
            return Err(FdmError::EmptyConstraint);
        }
        if k < m || k < 2 {
            return Err(FdmError::SolutionSizeTooSmall { k });
        }
        let n: usize = group_sizes.iter().sum();
        if n == 0 {
            return Err(FdmError::NotEnoughElements {
                required: k,
                available: 0,
            });
        }
        // Start from the floor of the exact share, but at least 1.
        let shares: Vec<f64> = group_sizes
            .iter()
            .map(|&s| k as f64 * s as f64 / n as f64)
            .collect();
        let mut quotas: Vec<usize> = shares
            .iter()
            .map(|&x| (x.floor() as usize).max(1))
            .collect();
        let mut assigned: usize = quotas.iter().sum();
        // Largest-remainder: hand out remaining slots by descending
        // fractional part; withdraw from smallest-remainder groups (quota
        // permitting) if the floor+min-1 overshoots.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            let fa = shares[a] - shares[a].floor();
            let fb = shares[b] - shares[b].floor();
            fb.partial_cmp(&fa).unwrap()
        });
        let mut idx = 0;
        while assigned < k {
            let g = order[idx % m];
            quotas[g] += 1;
            assigned += 1;
            idx += 1;
        }
        let mut idx = 0;
        while assigned > k {
            let g = order[m - 1 - (idx % m)];
            if quotas[g] > 1 {
                quotas[g] -= 1;
                assigned -= 1;
            }
            idx += 1;
        }
        FairnessConstraint::new(quotas)
    }

    /// Number of groups `m`.
    pub fn num_groups(&self) -> usize {
        self.quotas.len()
    }

    /// Total solution size `k = Σ k_i`.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Quota for group `i`.
    pub fn quota(&self, i: usize) -> usize {
        self.quotas[i]
    }

    /// All quotas.
    pub fn quotas(&self) -> &[usize] {
        &self.quotas
    }

    /// Checks a per-group count vector against the quotas (exact equality).
    pub fn is_satisfied_by(&self, counts: &[usize]) -> bool {
        counts.len() == self.quotas.len() && counts.iter().zip(&self.quotas).all(|(&c, &q)| c == q)
    }

    /// Verifies that a dataset with the given group sizes admits a fair
    /// solution (`k_i ≤ |X_i|` for all `i`).
    pub fn check_feasible(&self, group_sizes: &[usize]) -> Result<()> {
        if group_sizes.len() < self.quotas.len() {
            return Err(FdmError::InvalidGroup {
                group: self.quotas.len() - 1,
                num_groups: group_sizes.len(),
            });
        }
        for (i, &q) in self.quotas.iter().enumerate() {
            if group_sizes[i] < q {
                return Err(FdmError::InfeasibleConstraint {
                    group: i,
                    requested: q,
                    available: group_sizes[i],
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_quotas() {
        let c = FairnessConstraint::new(vec![3, 2, 1]).unwrap();
        assert_eq!(c.num_groups(), 3);
        assert_eq!(c.total(), 6);
        assert_eq!(c.quota(0), 3);
        assert_eq!(c.quotas(), &[3, 2, 1]);
    }

    #[test]
    fn rejects_zero_quota_and_empty() {
        assert!(FairnessConstraint::new(vec![]).is_err());
        assert!(FairnessConstraint::new(vec![2, 0]).is_err());
        assert!(
            FairnessConstraint::new(vec![1]).is_err(),
            "total k=1 undefined"
        );
    }

    #[test]
    fn equal_representation_divisible() {
        let c = FairnessConstraint::equal_representation(20, 5).unwrap();
        assert_eq!(c.quotas(), &[4, 4, 4, 4, 4]);
    }

    #[test]
    fn equal_representation_remainder() {
        let c = FairnessConstraint::equal_representation(20, 3).unwrap();
        assert_eq!(c.total(), 20);
        assert_eq!(c.quotas(), &[7, 7, 6]);
        for &q in c.quotas() {
            assert!(q == 6 || q == 7);
        }
    }

    #[test]
    fn equal_representation_requires_k_at_least_m() {
        assert!(FairnessConstraint::equal_representation(3, 5).is_err());
        assert!(FairnessConstraint::equal_representation(5, 5).is_ok());
    }

    #[test]
    fn proportional_sums_to_k_with_floor_one() {
        // Adult-like skew: 87% / 5% / 4% / 3% / 1%.
        let sizes = [8700, 500, 400, 300, 100];
        let c = FairnessConstraint::proportional_representation(20, &sizes).unwrap();
        assert_eq!(c.total(), 20);
        assert!(c.quotas().iter().all(|&q| q >= 1));
        // Dominant group takes the bulk.
        assert!(c.quota(0) >= 15, "quotas {:?}", c.quotas());
    }

    #[test]
    fn proportional_equal_sizes_matches_equal_representation() {
        let sizes = [100, 100, 100, 100];
        let pr = FairnessConstraint::proportional_representation(20, &sizes).unwrap();
        let er = FairnessConstraint::equal_representation(20, 4).unwrap();
        assert_eq!(pr.quotas(), er.quotas());
    }

    #[test]
    fn proportional_extreme_skew_keeps_minimum_one() {
        let sizes = [1_000_000, 1, 1];
        let c = FairnessConstraint::proportional_representation(5, &sizes).unwrap();
        assert_eq!(c.total(), 5);
        assert!(c.quota(1) >= 1 && c.quota(2) >= 1);
    }

    #[test]
    fn satisfied_by_checks_exact_counts() {
        let c = FairnessConstraint::new(vec![2, 3]).unwrap();
        assert!(c.is_satisfied_by(&[2, 3]));
        assert!(!c.is_satisfied_by(&[3, 2]));
        assert!(!c.is_satisfied_by(&[2, 3, 0]));
        assert!(!c.is_satisfied_by(&[2]));
    }

    #[test]
    fn feasibility_check() {
        let c = FairnessConstraint::new(vec![2, 3]).unwrap();
        assert!(c.check_feasible(&[5, 5]).is_ok());
        let err = c.check_feasible(&[5, 2]).unwrap_err();
        assert!(matches!(
            err,
            FdmError::InfeasibleConstraint { group: 1, .. }
        ));
        assert!(c.check_feasible(&[5]).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = FairnessConstraint::new(vec![4, 4, 2]).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: FairnessConstraint = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
