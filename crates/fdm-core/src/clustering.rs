//! Threshold (single-linkage) clustering via union–find.
//!
//! SFDM2's post-processing (Algorithm 3, lines 13–16) repeatedly merges any
//! two clusters containing a cross pair at distance `< µ/(m+1)`; the result
//! is exactly the connected components of the graph with an edge between
//! every pair closer than the threshold, which a union–find computes in one
//! `O(l²)` pass over the pairs. Lemma 3's properties (cross-cluster
//! separation ≥ threshold, ≤ one element per candidate per cluster) are
//! asserted in the tests.

use crate::metric::Metric;
use crate::point::{PointId, PointStore};

/// Disjoint-set forest with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns whether they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[ra] == self.rank[rb] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in one set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Dense labels `0..num_components` per element.
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut label_of_root = vec![usize::MAX; n];
        let mut labels = vec![0usize; n];
        let mut next = 0usize;
        for x in 0..n {
            let r = self.find(x);
            if label_of_root[r] == usize::MAX {
                label_of_root[r] = next;
                next += 1;
            }
            labels[x] = label_of_root[r];
        }
        labels
    }
}

/// Clusters `points` by merging every pair at distance `< threshold`
/// (strict, matching Algorithm 3 line 14); returns
/// `(cluster label per point, number of clusters)`.
///
/// # Examples
///
/// ```
/// use fdm_core::clustering::threshold_clusters;
/// use fdm_core::metric::Metric;
///
/// let points = vec![vec![0.0], vec![0.3], vec![5.0]];
/// let (labels, count) = threshold_clusters(&points, Metric::Euclidean, 1.0);
/// assert_eq!(count, 2);
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// ```
pub fn threshold_clusters<P: AsRef<[f64]>>(
    points: &[P],
    metric: Metric,
    threshold: f64,
) -> (Vec<usize>, usize) {
    let n = points.len();
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if metric.dist(points[i].as_ref(), points[j].as_ref()) < threshold {
                uf.union(i, j);
            }
        }
    }
    let labels = uf.labels();
    let count = uf.num_components();
    (labels, count)
}

/// [`threshold_clusters`] over arena ids: the `O(l²)` pair scan — the
/// dominant cost of SFDM2's post-processing — runs in proxy space over
/// contiguous [`PointStore`] rows with cached norms, so no `sqrt`/`acos` is
/// evaluated per pair.
pub fn threshold_clusters_ids(
    store: &PointStore,
    ids: &[PointId],
    metric: Metric,
    threshold: f64,
) -> (Vec<usize>, usize) {
    let n = ids.len();
    let threshold_proxy = metric.proxy_from_dist(threshold);
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        let (row_a, norm_a) = (store.row(ids[i]), store.norm(ids[i]));
        for j in (i + 1)..n {
            let b = ids[j];
            let p = metric.proxy_with_sqrt_norms(row_a, store.row(b), norm_a, store.norm(b));
            if p < threshold_proxy {
                uf.union(i, j);
            }
        }
    }
    let labels = uf.labels();
    let count = uf.num_components();
    (labels, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0), "repeated union is a no-op");
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 3));
        uf.union(1, 3);
        assert!(uf.connected(0, 4));
        assert_eq!(uf.num_components(), 2);
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let labels = uf.labels();
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[2], labels[4]);
        assert_eq!(labels[1], labels[5]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
        let max = *labels.iter().max().unwrap();
        assert_eq!(max + 1, uf.num_components());
    }

    #[test]
    fn clusters_two_blobs() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.2, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let (labels, count) = threshold_clusters(&points, Metric::Euclidean, 0.5);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn chain_merging_is_transitive() {
        // Points spaced 0.9 apart with threshold 1.0: a single chain.
        let points: Vec<Vec<f64>> = (0..6).map(|i| vec![0.9 * i as f64]).collect();
        let (_, count) = threshold_clusters(&points, Metric::Euclidean, 1.0);
        assert_eq!(count, 1);
    }

    #[test]
    fn threshold_is_strict() {
        // Distance exactly equal to the threshold must NOT merge
        // (Algorithm 3 merges on d < µ/(m+1)).
        let points = vec![vec![0.0], vec![1.0]];
        let (_, count) = threshold_clusters(&points, Metric::Euclidean, 1.0);
        assert_eq!(count, 2);
        let (_, count) = threshold_clusters(&points, Metric::Euclidean, 1.0 + 1e-9);
        assert_eq!(count, 1);
    }

    #[test]
    fn cross_cluster_separation_invariant() {
        // Lemma 3 property (i): after clustering, any two points in
        // different clusters are at distance ≥ threshold.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        let points: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![rng.random::<f64>() * 4.0, rng.random::<f64>() * 4.0])
            .collect();
        let threshold = 0.7;
        let (labels, _) = threshold_clusters(&points, Metric::Euclidean, threshold);
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if labels[i] != labels[j] {
                    let d = Metric::Euclidean.dist(&points[i], &points[j]);
                    assert!(d >= threshold, "cross-cluster pair at {d}");
                }
            }
        }
    }

    #[test]
    fn id_variant_matches_slice_variant() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        let points: Vec<Vec<f64>> = (0..30)
            .map(|_| vec![rng.random::<f64>() * 4.0, rng.random::<f64>() * 4.0])
            .collect();
        let mut store = PointStore::new(2);
        let ids: Vec<PointId> = points
            .iter()
            .enumerate()
            .map(|(i, p)| store.push(i, p, 0))
            .collect();
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Angular] {
            let (a, ca) = threshold_clusters(&points, metric, 0.8);
            let (b, cb) = threshold_clusters_ids(&store, &ids, metric, 0.8);
            assert_eq!(ca, cb, "{metric:?} cluster count");
            assert_eq!(a, b, "{metric:?} labels");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<Vec<f64>> = vec![];
        let (labels, count) = threshold_clusters(&empty, Metric::Euclidean, 1.0);
        assert!(labels.is_empty());
        assert_eq!(count, 0);
        let one = vec![vec![1.0]];
        let (labels, count) = threshold_clusters(&one, Metric::Euclidean, 1.0);
        assert_eq!(labels, vec![0]);
        assert_eq!(count, 1);
    }
}
