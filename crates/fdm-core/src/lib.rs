//! # fdm-core
//!
//! Core algorithms for **fair max–min diversity maximization (FDM)** in data
//! streams, reproducing:
//!
//! > Yanhao Wang, Francesco Fabbri, Michael Mathioudakis.
//! > *Streaming Algorithms for Diversity Maximization with Fairness
//! > Constraints.* ICDE 2022 (arXiv:2208.00194).
//!
//! Given a set `X` of `n` elements in a metric space partitioned into `m`
//! disjoint groups with per-group quotas `k_1..k_m` (`k = Σ k_i`), FDM asks
//! for a subset `S` containing exactly `k_i` elements of each group `i` that
//! maximizes `div(S) = min_{x≠y ∈ S} d(x, y)`.
//!
//! ## What this crate provides
//!
//! * **Streaming algorithms** (one pass, memory independent of `n`):
//!   - [`streaming::unconstrained::StreamingDiversityMaximization`] — the
//!     unconstrained guess-ladder algorithm (Algorithm 1),
//!     `(1−ε)/2`-approximate.
//!   - [`streaming::sfdm1::Sfdm1`] — `(1−ε)/4`-approximate FDM for `m = 2`
//!     (Algorithm 2).
//!   - [`streaming::sfdm2::Sfdm2`] — `(1−ε)/(3m+2)`-approximate FDM for any
//!     `m` (Algorithm 3), built on matroid intersection (Algorithm 4).
//! * **Offline baselines** used in the paper's evaluation:
//!   [`offline::gmm`] (Gonzalez greedy), [`offline::fair_swap`],
//!   [`offline::fair_flow`], [`offline::fair_gmm`].
//! * **Substrates** those algorithms need, implemented from scratch:
//!   metric kernels ([`metric::Metric`]), partition matroids and
//!   Cunningham's matroid-intersection algorithm ([`matroid`]), threshold
//!   clustering ([`clustering`]), Dinic max-flow ([`flow`]), and exact
//!   brute-force oracles for testing ([`brute`]).
//!
//! ## Quick start
//!
//! ```
//! use fdm_core::prelude::*;
//!
//! // Eight points on a line, alternating between two groups.
//! let points: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
//! let groups: Vec<usize> = (0..8).map(|i| i % 2).collect();
//! let dataset = Dataset::from_rows(points, groups, Metric::Euclidean).unwrap();
//!
//! // Ask for 2 elements of each group (k = 4).
//! let constraint = FairnessConstraint::new(vec![2, 2]).unwrap();
//! let bounds = dataset.exact_distance_bounds().unwrap();
//!
//! let mut alg = Sfdm1::new(Sfdm1Config {
//!     constraint: constraint.clone(),
//!     epsilon: 0.1,
//!     bounds,
//!     metric: Metric::Euclidean,
//! })
//! .unwrap();
//! for element in dataset.iter() {
//!     alg.insert(&element);
//! }
//! let solution = alg.finalize().unwrap();
//! assert_eq!(solution.len(), 4);
//! assert!(constraint.is_satisfied_by(solution.group_counts(2).as_slice()));
//! assert!(solution.diversity > 0.0);
//! ```

// `deny` rather than `forbid`: the SIMD backend in `kernel::simd` opts back
// in with a scoped `#![allow(unsafe_code)]`, and CI greps that `unsafe`
// never escapes that module.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod brute;
pub mod clustering;
pub mod coreset;
pub mod dataset;
pub mod diversity;
pub mod error;
pub mod fairness;
pub mod flow;
pub mod guess;
pub mod kernel;
pub mod matroid;
pub mod metric;
pub mod multifair;
pub mod offline;
mod par;
pub mod persist;
pub mod point;
pub mod solution;
pub mod streaming;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::dataset::{Dataset, DistanceBounds};
    pub use crate::diversity::{diversity, diversity_upper_bound};
    pub use crate::error::{FdmError, Result};
    pub use crate::fairness::FairnessConstraint;
    pub use crate::guess::GuessLadder;
    pub use crate::metric::Metric;
    pub use crate::offline::fair_flow::{FairFlow, FairFlowConfig};
    pub use crate::offline::fair_gmm::{FairGmm, FairGmmConfig};
    pub use crate::offline::fair_swap::{FairSwap, FairSwapConfig};
    pub use crate::offline::gmm::{gmm, gmm_with_start};
    pub use crate::persist::{Snapshot, SnapshotParams, Snapshottable};
    pub use crate::point::{Element, PointId, PointStore};
    pub use crate::solution::Solution;
    pub use crate::streaming::sfdm1::{Sfdm1, Sfdm1Config};
    pub use crate::streaming::sfdm2::{Sfdm2, Sfdm2Config};
    pub use crate::streaming::sharded::{ShardAlgorithm, ShardedStream};
    pub use crate::streaming::sliding::{SlidingWindowConfig, SlidingWindowFdm};
    pub use crate::streaming::summary::{DynSummary, SummarySpec};
    pub use crate::streaming::unconstrained::{StreamingDiversityMaximization, StreamingDmConfig};
}

pub use dataset::{Dataset, DistanceBounds};
pub use error::{FdmError, Result};
pub use fairness::FairnessConstraint;
pub use metric::Metric;
pub use persist::{Snapshot, SnapshotParams, Snapshottable};
pub use point::{Element, PointId, PointStore};
pub use solution::Solution;
