//! Runtime kernel dispatch: scalar reference, explicit SIMD, and a
//! certified `f32` pre-filter for threshold tests.
//!
//! Every distance evaluation in this crate funnels through the scalar
//! kernels in [`crate::metric::kernels`]. This module is the layer above
//! them: callers invoke [`sum_sq_diff`], [`dot`], … here, and the call is
//! routed at runtime to one of
//!
//! * the **scalar reference** kernels (always available, the semantics
//!   every other backend must reproduce),
//! * an **explicit SIMD** backend (`std::arch` on x86_64: AVX2 when the CPU
//!   reports it, SSE2 otherwise — SSE2 is part of the x86_64 baseline), or
//! * nothing else — on other architectures the scalar kernels run as-is.
//!
//! # Bit-identical by construction
//!
//! The SIMD kernels are not merely "close": they reproduce the scalar
//! kernels' exact association — 16-dim blocks with four block-local lanes,
//! reduced as `(acc0 + acc1) + (acc2 + acc3)`, then a 4-chunk middle region
//! and a scalar tail — using vector lanes as the accumulator lanes and no
//! FMA contraction (which would change rounding). A summary ingesting the
//! same stream therefore retains the same elements under `FDM_KERNEL=auto`
//! and `FDM_KERNEL=scalar`, which is what lets golden fixtures, snapshots,
//! and replicated deployments mix backends freely. `tests/kernel_parity.rs`
//! pins exact equality across dimensions 1–257.
//!
//! # Selection
//!
//! The `FDM_KERNEL` environment variable picks the policy, read once on
//! first use:
//!
//! | value | effect |
//! |---|---|
//! | `scalar` | scalar reference kernels, `f32` pre-filter off |
//! | `simd` | SIMD when the architecture has it, scalar fallback otherwise |
//! | `auto` (default, also any unrecognized value) | same as `simd` |
//!
//! `simd`/`auto` differ only in intent (`simd` documents that the operator
//! expects the fast path); both fall back to scalar safely. The resolved
//! backend is one relaxed atomic load per kernel call ([`active_kernel`]
//! reports it for `STATS`).
//!
//! # The `f32` pre-filter
//!
//! Threshold tests (`proxy(a, b) ≥ bound`, the candidate acceptance test)
//! do not need the exact proxy — only which side of the bound it falls on.
//! For the additive Lp proxies (squared L2 and L1) this module offers a
//! reduced-precision path: evaluate the proxy over packed `f32` mirrors of
//! the rows (half the memory traffic, twice the vector lanes) and compare
//! against the bound with a **certified error margin**. Writing `p32` for
//! the `f32` result and `E = base + slope · p32` for the margin from
//! [`f32_error_coefficients`], the true `f64` proxy provably lies within
//! `p32 ± E`, so
//!
//! * `p32 − E ≥ bound` certifies the answer **true**,
//! * `p32 + E < bound` certifies the answer **false**,
//! * anything inside the band re-runs the exact `f64` kernel.
//!
//! Decisions are therefore *exactly* those of the `f64` kernels — the
//! pre-filter can only change costs, never an answer. The margin is
//! derived from the maximum coordinate magnitude the
//! [`PointStore`](crate::point::PointStore) mirror tracks (an upper bound
//! on the data's `DistanceBounds` geometry) and standard floating-point
//! error analysis; `tests/kernel_parity.rs` proves empirically that the
//! band always contains the exact value and that boundary cases take the
//! exact path (visible through the mirror's fallback counter).
//!
//! The pre-filter is **opt-in** (`FDM_PREFILTER=1`, requires a non-scalar
//! backend), because on the ladder's arrival path it usually loses: the
//! per-arrival proxy cache already evaluates the exact kernel once per
//! `(arrival, row)` pair and answers every repeated test from a cached
//! slot, so the pre-filter's per-test interval checks add work to probes
//! that were effectively free. It pays off only where threshold tests are
//! *not* amortized by a cache — measured end-to-end numbers live in
//! `docs/performance.md`.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::metric::{kernels, Metric};

pub mod simd;

/// Kernel selection policy (the parsed `FDM_KERNEL` value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Scalar reference kernels only; the `f32` pre-filter is disabled.
    Scalar,
    /// Prefer SIMD; identical to [`KernelMode::Auto`] after resolution.
    Simd,
    /// Use the best backend the architecture offers (the default).
    Auto,
}

/// Resolved backend, cached after first use: 0 = uninitialized,
/// 1 = scalar, 2 = SSE2, 3 = AVX2.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

const LEVEL_SCALAR: u8 = 1;
#[cfg(target_arch = "x86_64")]
const LEVEL_SSE2: u8 = 2;
#[cfg(target_arch = "x86_64")]
const LEVEL_AVX2: u8 = 3;

fn parse_mode(raw: Option<&str>) -> KernelMode {
    match raw.map(str::trim) {
        Some(s) if s.eq_ignore_ascii_case("scalar") => KernelMode::Scalar,
        Some(s) if s.eq_ignore_ascii_case("simd") => KernelMode::Simd,
        // `auto`, unset, and unrecognized values all mean "best available";
        // a typo must never silently force the slow path in production.
        _ => KernelMode::Auto,
    }
}

fn resolve_level(mode: KernelMode) -> u8 {
    match mode {
        KernelMode::Scalar => LEVEL_SCALAR,
        KernelMode::Simd | KernelMode::Auto => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    LEVEL_AVX2
                } else {
                    LEVEL_SSE2
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            LEVEL_SCALAR
        }
    }
}

#[cold]
fn init_level() -> u8 {
    let mode = parse_mode(std::env::var("FDM_KERNEL").ok().as_deref());
    let level = resolve_level(mode);
    ACTIVE.store(level, Ordering::Relaxed);
    level
}

#[inline]
fn active_level() -> u8 {
    let level = ACTIVE.load(Ordering::Relaxed);
    if level != 0 {
        level
    } else {
        init_level()
    }
}

/// The backend kernel calls currently execute on: `"scalar"`, `"sse2"`, or
/// `"avx2"` (surfaced per stream by `fdm-serve`'s `STATS`).
pub fn active_kernel() -> &'static str {
    match active_level() {
        LEVEL_SCALAR => "scalar",
        #[cfg(target_arch = "x86_64")]
        LEVEL_SSE2 => "sse2",
        #[cfg(target_arch = "x86_64")]
        LEVEL_AVX2 => "avx2",
        _ => unreachable!("active_level returns a resolved backend"),
    }
}

/// Overrides (or with `None`, re-resolves from the environment) the cached
/// backend decision. Test-only plumbing: lets one process compare backends
/// without re-exec; production selection is the `FDM_KERNEL` variable.
#[doc(hidden)]
pub fn force_mode(mode: Option<KernelMode>) {
    match mode {
        Some(mode) => ACTIVE.store(resolve_level(mode), Ordering::Relaxed),
        None => ACTIVE.store(0, Ordering::Relaxed),
    }
}

/// Cached `FDM_PREFILTER` policy: 0 = uninitialized, 1 = off, 2 = on.
static PREFILTER: AtomicU8 = AtomicU8::new(0);

const PREFILTER_OFF: u8 = 1;
const PREFILTER_ON: u8 = 2;

fn parse_prefilter(raw: Option<&str>) -> u8 {
    match raw.map(str::trim) {
        Some(s)
            if s == "1"
                || s.eq_ignore_ascii_case("on")
                || s.eq_ignore_ascii_case("true")
                || s.eq_ignore_ascii_case("yes") =>
        {
            PREFILTER_ON
        }
        // Unset and everything else mean off: the pre-filter only helps
        // workloads whose threshold tests are not already amortized by the
        // arrival cache, so it must be a deliberate choice.
        _ => PREFILTER_OFF,
    }
}

#[cold]
fn init_prefilter() -> u8 {
    let policy = parse_prefilter(std::env::var("FDM_PREFILTER").ok().as_deref());
    PREFILTER.store(policy, Ordering::Relaxed);
    policy
}

#[inline]
fn prefilter_policy() -> u8 {
    let policy = PREFILTER.load(Ordering::Relaxed);
    if policy != 0 {
        policy
    } else {
        init_prefilter()
    }
}

/// Overrides (or with `None`, re-resolves from the environment) the cached
/// `FDM_PREFILTER` policy. Test-only plumbing, like [`force_mode`].
#[doc(hidden)]
pub fn force_prefilter(on: Option<bool>) {
    let policy = match on {
        Some(true) => PREFILTER_ON,
        Some(false) => PREFILTER_OFF,
        None => 0,
    };
    PREFILTER.store(policy, Ordering::Relaxed);
}

macro_rules! dispatch2 {
    ($(#[$doc:meta])* $name:ident, $level_fn:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(a: &[f64], b: &[f64]) -> f64 {
            #[cfg(target_arch = "x86_64")]
            {
                let level = active_level();
                // SIMD assumes equal lengths; the scalar kernels' zip
                // semantics (shorter slice wins) cover the mismatch case.
                if level >= LEVEL_SSE2 && a.len() == b.len() {
                    return simd::$level_fn(level, a, b);
                }
            }
            kernels::$name(a, b)
        }
    };
}

dispatch2!(
    /// Dispatched `Σ (a_i − b_i)²` (see [`kernels::sum_sq_diff`]).
    sum_sq_diff,
    sum_sq_diff_level
);
dispatch2!(
    /// Dispatched `Σ |a_i − b_i|` (see [`kernels::sum_abs_diff`]).
    sum_abs_diff,
    sum_abs_diff_level
);
dispatch2!(
    /// Dispatched `max |a_i − b_i|` (see [`kernels::max_abs_diff`]).
    max_abs_diff,
    max_abs_diff_level
);
dispatch2!(
    /// Dispatched inner product (see [`kernels::dot`]).
    dot,
    dot_level
);

/// Dispatched squared L2 norm (see [`kernels::norm_sq`]).
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        let level = active_level();
        if level >= LEVEL_SSE2 {
            return simd::norm_sq_level(level, a);
        }
    }
    kernels::norm_sq(a)
}

/// Dispatched bounded threshold scan for the squared-L2 proxy (see
/// [`kernels::sum_sq_diff_at_least`]); decisions are bit-identical to
/// comparing the full dispatched sum.
#[inline]
pub fn sum_sq_diff_at_least(a: &[f64], b: &[f64], bound: f64) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let level = active_level();
        if level >= LEVEL_SSE2 && a.len() == b.len() {
            return simd::sum_sq_diff_at_least_level(level, a, b, bound);
        }
    }
    kernels::sum_sq_diff_at_least(a, b, bound)
}

/// Dispatched bounded threshold scan for the L1 proxy (see
/// [`kernels::sum_abs_diff_at_least`]).
#[inline]
pub fn sum_abs_diff_at_least(a: &[f64], b: &[f64], bound: f64) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let level = active_level();
        if level >= LEVEL_SSE2 && a.len() == b.len() {
            return simd::sum_abs_diff_at_least_level(level, a, b, bound);
        }
    }
    kernels::sum_abs_diff_at_least(a, b, bound)
}

// ---------------------------------------------------------------------------
// f32 pre-filter
// ---------------------------------------------------------------------------

/// Which additive proxy the `f32` pre-filter evaluates for a metric.
///
/// Only the two Lp proxies whose terms are non-negative sums qualify;
/// Chebyshev is already a single-pass max (nothing to pre-filter), general
/// Minkowski is dominated by `powf`, and the Angular proxy divides by norms
/// (a ratio has no simple additive error envelope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefilterKind {
    /// Squared Euclidean distance (`Euclidean`, `Minkowski(2)`).
    SumSq,
    /// L1 distance (`Manhattan`, `Minkowski(1)`).
    SumAbs,
}

/// The pre-filter proxy for `metric`, or `None` if the metric does not
/// admit one.
#[inline]
pub fn prefilter_kind(metric: Metric) -> Option<PrefilterKind> {
    match metric {
        Metric::Euclidean => Some(PrefilterKind::SumSq),
        Metric::Manhattan => Some(PrefilterKind::SumAbs),
        Metric::Minkowski(2.0) => Some(PrefilterKind::SumSq),
        Metric::Minkowski(1.0) => Some(PrefilterKind::SumAbs),
        _ => None,
    }
}

/// Whether the `f32` pre-filter should run for `metric` under the current
/// policy: it must be opted into (`FDM_PREFILTER=1`) on top of a
/// non-scalar backend (`FDM_KERNEL=scalar` turns it off so the scalar leg
/// exercises pure reference arithmetic end to end), and the metric's proxy
/// must admit a certified envelope.
#[inline]
pub fn prefilter_enabled(metric: Metric) -> bool {
    prefilter_policy() == PREFILTER_ON
        && active_level() != LEVEL_SCALAR
        && prefilter_kind(metric).is_some()
}

/// `Σ (a_i − b_i)²` in `f32` — the pre-filter's cheap pass. Eight
/// accumulator lanes; no identity with any `f64` kernel is required (or
/// claimed), only the certified error envelope.
pub fn sum_sq_diff_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let split8 = n - n % 8;
    let mut acc = [0.0f32; 8];
    let mut i = 0;
    while i < split8 {
        for lane in 0..8 {
            let d = a[i + lane] - b[i + lane];
            acc[lane] += d * d;
        }
        i += 8;
    }
    let mut total =
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    while i < n {
        let d = a[i] - b[i];
        total += d * d;
        i += 1;
    }
    total
}

/// `Σ |a_i − b_i|` in `f32` (see [`sum_sq_diff_f32`]).
pub fn sum_abs_diff_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let split8 = n - n % 8;
    let mut acc = [0.0f32; 8];
    let mut i = 0;
    while i < split8 {
        for lane in 0..8 {
            acc[lane] += (a[i + lane] - b[i + lane]).abs();
        }
        i += 8;
    }
    let mut total =
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    while i < n {
        total += (a[i] - b[i]).abs();
        i += 1;
    }
    total
}

/// The `f32` proxy of `kind` between two packed `f32` rows, dispatched to
/// the active SIMD backend when available (8 `f32` lanes per AVX2 vector —
/// twice the `f64` kernels' element throughput, which is what makes the
/// pre-filter cheaper than the exact kernel it screens for). Backends need
/// not agree bit for bit: every backend's result stays inside the certified
/// error envelope, which is the only property decisions rest on.
#[inline]
pub fn proxy_f32(kind: PrefilterKind, a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        let level = active_level();
        if level >= LEVEL_SSE2 && a.len() == b.len() {
            return match kind {
                PrefilterKind::SumSq => simd::sum_sq_diff_f32_level(level, a, b),
                PrefilterKind::SumAbs => simd::sum_abs_diff_f32_level(level, a, b),
            };
        }
    }
    match kind {
        PrefilterKind::SumSq => sum_sq_diff_f32(a, b),
        PrefilterKind::SumAbs => sum_abs_diff_f32(a, b),
    }
}

/// Certified error envelope `(base, slope)` for the `f32` proxy of `kind`
/// over `dim`-dimensional points whose coordinates are bounded by
/// `max_abs` in magnitude: the exact `f64` proxy lies within
/// `p32 ± (base + slope · p32)` of the `f32` result `p32`.
///
/// Derivation sketch (ε = [`f32::EPSILON`], `M = max_abs`, `n = dim`):
/// each input conversion errs by ≤ εM; each difference then lies within
/// `≈ 5εM` of the true difference, so each squared term errs by
/// `≤ ≈ 26εM²` (respectively `≈ 8εM` for absolute terms), and `f32`
/// summation of `n` non-negative terms adds `≤ ≈ 1.1·n·ε` relative error.
/// The constants below double the worst case on both components, so the
/// envelope is conservative by ≥ 2× — certified answers can never flip.
#[inline]
pub fn f32_error_coefficients(kind: PrefilterKind, dim: usize, max_abs: f64) -> (f64, f64) {
    const EPS: f64 = f32::EPSILON as f64;
    let n = dim as f64;
    let slope = 4.0 * EPS * n;
    let base = match kind {
        PrefilterKind::SumSq => 64.0 * EPS * n * max_abs * max_abs,
        PrefilterKind::SumAbs => 32.0 * EPS * n * max_abs,
    };
    (base, slope)
}

/// Decides `proxy ≥ bound` from the `f32` result `p32` with certified
/// margin `err`, or `None` when the bound falls inside the uncertainty
/// band (the caller must re-run the exact `f64` kernel).
///
/// Non-finite inputs (coordinate overflow during `f64 → f32` conversion
/// makes `p32` infinite) always return `None`: the exact path is the only
/// one that can answer.
#[inline]
pub fn certified_at_least(p32: f64, bound: f64, err: f64) -> Option<bool> {
    if !(p32.is_finite() && err.is_finite()) {
        return None;
    }
    if p32 - err >= bound {
        Some(true)
    } else if p32 + err < bound {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefilter_parsing() {
        assert_eq!(parse_prefilter(Some("1")), PREFILTER_ON);
        assert_eq!(parse_prefilter(Some("on")), PREFILTER_ON);
        assert_eq!(parse_prefilter(Some(" TRUE ")), PREFILTER_ON);
        assert_eq!(parse_prefilter(Some("yes")), PREFILTER_ON);
        assert_eq!(parse_prefilter(Some("0")), PREFILTER_OFF);
        assert_eq!(parse_prefilter(Some("off")), PREFILTER_OFF);
        assert_eq!(parse_prefilter(None), PREFILTER_OFF);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(parse_mode(Some("scalar")), KernelMode::Scalar);
        assert_eq!(parse_mode(Some("SCALAR")), KernelMode::Scalar);
        assert_eq!(parse_mode(Some(" simd ")), KernelMode::Simd);
        assert_eq!(parse_mode(Some("auto")), KernelMode::Auto);
        assert_eq!(parse_mode(Some("warp-drive")), KernelMode::Auto);
        assert_eq!(parse_mode(None), KernelMode::Auto);
    }

    #[test]
    fn scalar_mode_resolves_to_scalar_everywhere() {
        assert_eq!(resolve_level(KernelMode::Scalar), LEVEL_SCALAR);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn auto_mode_never_resolves_to_scalar_on_x86_64() {
        // SSE2 is baseline on x86_64, so auto always finds a SIMD backend.
        assert!(resolve_level(KernelMode::Auto) >= LEVEL_SSE2);
        assert_eq!(
            resolve_level(KernelMode::Auto),
            resolve_level(KernelMode::Simd)
        );
    }

    #[test]
    fn active_kernel_names_are_known() {
        assert!(["scalar", "sse2", "avx2"].contains(&active_kernel()));
    }

    #[test]
    fn certified_decisions_respect_the_band() {
        // Clearly above, clearly below, and inside the band.
        assert_eq!(certified_at_least(10.0, 5.0, 1.0), Some(true));
        assert_eq!(certified_at_least(3.0, 5.0, 1.0), Some(false));
        assert_eq!(certified_at_least(5.5, 5.0, 1.0), None);
        assert_eq!(certified_at_least(4.5, 5.0, 1.0), None);
        // Exact boundary with nonzero margin is uncertain.
        assert_eq!(certified_at_least(5.0, 5.0, 1.0), None);
        // Non-finite values always fall back.
        assert_eq!(certified_at_least(f64::INFINITY, 5.0, 1.0), None);
        assert_eq!(certified_at_least(5.0, 5.0, f64::INFINITY), None);
        assert_eq!(certified_at_least(f64::NAN, 5.0, 1.0), None);
        // An unsatisfiable bound is certified false (p64 is finite).
        assert_eq!(certified_at_least(5.0, f64::INFINITY, 1.0), Some(false));
    }

    #[test]
    fn prefilter_kinds_cover_the_additive_lp_proxies() {
        assert_eq!(
            prefilter_kind(Metric::Euclidean),
            Some(PrefilterKind::SumSq)
        );
        assert_eq!(
            prefilter_kind(Metric::Minkowski(2.0)),
            Some(PrefilterKind::SumSq)
        );
        assert_eq!(
            prefilter_kind(Metric::Manhattan),
            Some(PrefilterKind::SumAbs)
        );
        assert_eq!(
            prefilter_kind(Metric::Minkowski(1.0)),
            Some(PrefilterKind::SumAbs)
        );
        assert_eq!(prefilter_kind(Metric::Chebyshev), None);
        assert_eq!(prefilter_kind(Metric::Minkowski(3.0)), None);
        assert_eq!(prefilter_kind(Metric::Angular), None);
    }

    #[test]
    fn f32_kernels_approximate_f64_within_the_envelope() {
        // Deterministic pseudo-random rows; the envelope must contain the
        // exact value (the property the decision rule's soundness rests on).
        for dim in [1usize, 3, 8, 17, 64, 129, 256] {
            let a64: Vec<f64> = (0..dim)
                .map(|i| ((i * 37 + 11) as f64 * 0.713).sin() * 18.0)
                .collect();
            let b64: Vec<f64> = (0..dim)
                .map(|i| ((i * 53 + 5) as f64 * 1.117).cos() * 18.0)
                .collect();
            let a32: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
            let b32: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
            let max_abs = a64.iter().chain(&b64).fold(0.0f64, |m, &x| m.max(x.abs()));
            for kind in [PrefilterKind::SumSq, PrefilterKind::SumAbs] {
                let exact = match kind {
                    PrefilterKind::SumSq => kernels::sum_sq_diff(&a64, &b64),
                    PrefilterKind::SumAbs => kernels::sum_abs_diff(&a64, &b64),
                };
                // Every f32 backend must stay inside the envelope — the
                // backends need not agree with each other, only each be
                // certified (different associations, same soundness).
                let scalar32 = match kind {
                    PrefilterKind::SumSq => sum_sq_diff_f32(&a32, &b32),
                    PrefilterKind::SumAbs => sum_abs_diff_f32(&a32, &b32),
                };
                let (avx2, sse2) = match kind {
                    PrefilterKind::SumSq => (
                        simd::force_avx2_sum_sq_diff_f32(&a32, &b32),
                        simd::force_sse2_sum_sq_diff_f32(&a32, &b32),
                    ),
                    PrefilterKind::SumAbs => (
                        simd::force_avx2_sum_abs_diff_f32(&a32, &b32),
                        simd::force_sse2_sum_abs_diff_f32(&a32, &b32),
                    ),
                };
                let (base, slope) = f32_error_coefficients(kind, dim, max_abs);
                for (backend, p32) in [("scalar", Some(scalar32)), ("avx2", avx2), ("sse2", sse2)] {
                    let Some(p32) = p32 else { continue };
                    let p32 = f64::from(p32);
                    let err = base + slope * p32;
                    assert!(
                        (p32 - exact).abs() <= err,
                        "{kind:?} dim {dim} {backend}: |{p32} - {exact}| > {err}"
                    );
                }
            }
        }
    }
}
