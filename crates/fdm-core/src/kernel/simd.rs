//! Explicit SIMD kernels (`std::arch`, x86_64 SSE2/AVX2).
//!
//! Each kernel reproduces its scalar reference in
//! [`crate::metric::kernels`] **bit for bit**: the vector lanes *are* the
//! scalar kernels' four accumulator lanes, blocks reduce in the same
//! `(acc0 + acc1) + (acc2 + acc3)` order, multiplies and adds stay separate
//! instructions (FMA would contract the rounding), and the 16-block /
//! 4-chunk / scalar-tail structure is identical. The AVX2 path keeps the
//! four lanes in one 4-wide `f64` vector; the SSE2 path splits them across
//! two 2-wide vectors (`(acc0, acc1)` and `(acc2, acc3)`).
//!
//! Inputs are assumed finite (the arena and dataset builders validate
//! coordinates); `max` lane semantics for NaN differ between `vmaxpd` and
//! `f64::max`, but no other operation here is input-sensitive.
//!
//! This file is the only place in the workspace allowed to contain
//! `unsafe` (CI greps for strays): raw-pointer vector loads plus calls into
//! `#[target_feature]` functions after runtime detection. The
//! `*_level` entries trust the caller's resolved backend level, which
//! [`super::active_level`](super) only sets to AVX2 after
//! `is_x86_feature_detected!` succeeds; SSE2 is unconditionally part of the
//! x86_64 baseline. The `force_*` wrappers re-detect on every call and are
//! meant for parity tests, not hot paths.
#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{
    dot_level, max_abs_diff_level, norm_sq_level, sum_abs_diff_at_least_level,
    sum_abs_diff_f32_level, sum_abs_diff_level, sum_sq_diff_at_least_level, sum_sq_diff_f32_level,
    sum_sq_diff_level,
};

/// Generates the public forced-backend wrappers used by the parity suite:
/// `None` when the backend is unavailable on this machine.
macro_rules! force_wrappers {
    ($(#[$doc:meta])* $force_avx2:ident, $force_sse2:ident, $inner:ident,
     ($($arg:ident : $ty:ty),*) -> $ret:ty) => {
        $(#[$doc])*
        ///
        /// Forced AVX2 evaluation; `None` off x86_64 or when the CPU lacks
        /// AVX2. Slices must have equal length.
        pub fn $force_avx2($($arg: $ty),*) -> Option<$ret> {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2") {
                return Some(unsafe { x86::avx2::$inner($($arg),*) });
            }
            $(let _ = $arg;)*
            None
        }

        $(#[$doc])*
        ///
        /// Forced SSE2 evaluation; `None` off x86_64 (SSE2 is always
        /// available on x86_64). Slices must have equal length.
        pub fn $force_sse2($($arg: $ty),*) -> Option<$ret> {
            #[cfg(target_arch = "x86_64")]
            return Some(unsafe { x86::sse2::$inner($($arg),*) });
            #[cfg(not(target_arch = "x86_64"))]
            {
                $(let _ = $arg;)*
                None
            }
        }
    };
}

force_wrappers!(
    /// `Σ (a_i − b_i)²`, bit-identical to the scalar kernel.
    force_avx2_sum_sq_diff,
    force_sse2_sum_sq_diff,
    sum_sq_diff,
    (a: &[f64], b: &[f64]) -> f64
);
force_wrappers!(
    /// `Σ |a_i − b_i|`, bit-identical to the scalar kernel.
    force_avx2_sum_abs_diff,
    force_sse2_sum_abs_diff,
    sum_abs_diff,
    (a: &[f64], b: &[f64]) -> f64
);
force_wrappers!(
    /// `max |a_i − b_i|`, bit-identical to the scalar kernel.
    force_avx2_max_abs_diff,
    force_sse2_max_abs_diff,
    max_abs_diff,
    (a: &[f64], b: &[f64]) -> f64
);
force_wrappers!(
    /// Inner product, bit-identical to the scalar kernel.
    force_avx2_dot,
    force_sse2_dot,
    dot,
    (a: &[f64], b: &[f64]) -> f64
);
force_wrappers!(
    /// Squared L2 norm, bit-identical to the scalar kernel.
    force_avx2_norm_sq,
    force_sse2_norm_sq,
    norm_sq,
    (a: &[f64]) -> f64
);
force_wrappers!(
    /// Bounded `Σ (a_i − b_i)² ≥ bound` scan, decision-identical to the
    /// scalar kernel (same blockwise early exits).
    force_avx2_sum_sq_diff_at_least,
    force_sse2_sum_sq_diff_at_least,
    sum_sq_diff_at_least,
    (a: &[f64], b: &[f64], bound: f64) -> bool
);
force_wrappers!(
    /// Bounded `Σ |a_i − b_i| ≥ bound` scan, decision-identical to the
    /// scalar kernel.
    force_avx2_sum_abs_diff_at_least,
    force_sse2_sum_abs_diff_at_least,
    sum_abs_diff_at_least,
    (a: &[f64], b: &[f64], bound: f64) -> bool
);
force_wrappers!(
    /// `Σ (a_i − b_i)²` in `f32` — the pre-filter kernel. No bit identity
    /// with any other backend is claimed; every backend's result must stay
    /// inside the certified error envelope (pinned by the parity suite).
    force_avx2_sum_sq_diff_f32,
    force_sse2_sum_sq_diff_f32,
    sum_sq_diff_f32,
    (a: &[f32], b: &[f32]) -> f32
);
force_wrappers!(
    /// `Σ |a_i − b_i|` in `f32` — the pre-filter kernel (envelope-bound,
    /// not bit-identical; see [`force_avx2_sum_sq_diff_f32`]).
    force_avx2_sum_abs_diff_f32,
    force_sse2_sum_abs_diff_f32,
    sum_abs_diff_f32,
    (a: &[f32], b: &[f32]) -> f32
);

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::super::{LEVEL_AVX2, LEVEL_SSE2};

    macro_rules! level_entry {
        ($name:ident, $inner:ident, ($($arg:ident : $ty:ty),*) -> $ret:ty) => {
            /// Dispatches on a backend level already resolved by the
            /// caller (AVX2 levels are only produced after runtime
            /// detection; SSE2 is the x86_64 baseline).
            #[inline]
            pub(crate) fn $name(level: u8, $($arg: $ty),*) -> $ret {
                debug_assert!(level == LEVEL_SSE2 || level == LEVEL_AVX2);
                if level >= LEVEL_AVX2 {
                    unsafe { avx2::$inner($($arg),*) }
                } else {
                    unsafe { sse2::$inner($($arg),*) }
                }
            }
        };
    }

    level_entry!(sum_sq_diff_level, sum_sq_diff, (a: &[f64], b: &[f64]) -> f64);
    level_entry!(sum_abs_diff_level, sum_abs_diff, (a: &[f64], b: &[f64]) -> f64);
    level_entry!(max_abs_diff_level, max_abs_diff, (a: &[f64], b: &[f64]) -> f64);
    level_entry!(dot_level, dot, (a: &[f64], b: &[f64]) -> f64);
    level_entry!(norm_sq_level, norm_sq, (a: &[f64]) -> f64);
    level_entry!(
        sum_sq_diff_at_least_level,
        sum_sq_diff_at_least,
        (a: &[f64], b: &[f64], bound: f64) -> bool
    );
    level_entry!(
        sum_abs_diff_at_least_level,
        sum_abs_diff_at_least,
        (a: &[f64], b: &[f64], bound: f64) -> bool
    );
    level_entry!(
        sum_sq_diff_f32_level,
        sum_sq_diff_f32,
        (a: &[f32], b: &[f32]) -> f32
    );
    level_entry!(
        sum_abs_diff_f32_level,
        sum_abs_diff_f32,
        (a: &[f32], b: &[f32]) -> f32
    );

    /// The per-term operation, shared between ISAs by token: `sq` squares
    /// the difference, `abs` clears its sign bit (`andnot` with `-0.0`).
    macro_rules! term256 {
        (sq, $d:expr) => {
            _mm256_mul_pd($d, $d)
        };
        (abs, $d:expr) => {
            _mm256_andnot_pd(_mm256_set1_pd(-0.0), $d)
        };
    }
    macro_rules! term128 {
        (sq, $d:expr) => {
            _mm_mul_pd($d, $d)
        };
        (abs, $d:expr) => {
            _mm_andnot_pd(_mm_set1_pd(-0.0), $d)
        };
    }
    macro_rules! term_scalar {
        (sq, $d:expr) => {{
            let d = $d;
            d * d
        }};
        (abs, $d:expr) => {
            ($d).abs()
        };
    }

    /// Single-precision twins of `term256!`/`term128!` for the pre-filter
    /// kernels.
    macro_rules! term256s {
        (sq, $d:expr) => {
            _mm256_mul_ps($d, $d)
        };
        (abs, $d:expr) => {
            _mm256_andnot_ps(_mm256_set1_ps(-0.0), $d)
        };
    }
    macro_rules! term128s {
        (sq, $d:expr) => {
            _mm_mul_ps($d, $d)
        };
        (abs, $d:expr) => {
            _mm_andnot_ps(_mm_set1_ps(-0.0), $d)
        };
    }

    pub(super) mod avx2 {
        use core::arch::x86_64::*;

        /// `(lane0 + lane1) + (lane2 + lane3)` — exactly the scalar
        /// kernels' four-accumulator reduction order.
        #[inline]
        #[target_feature(enable = "avx2")]
        fn hsum4(v: __m256d) -> f64 {
            let lo = _mm256_castpd256_pd128(v); // (lane0, lane1)
            let hi = _mm256_extractf128_pd(v, 1); // (lane2, lane3)
            let s01 = _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
            let s23 = _mm_cvtsd_f64(_mm_add_sd(hi, _mm_unpackhi_pd(hi, hi)));
            s01 + s23
        }

        /// `(lane0 max lane1) max (lane2 max lane3)`.
        #[inline]
        #[target_feature(enable = "avx2")]
        fn hmax4(v: __m256d) -> f64 {
            let lo = _mm256_castpd256_pd128(v);
            let hi = _mm256_extractf128_pd(v, 1);
            let m01 = _mm_cvtsd_f64(lo).max(_mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo)));
            let m23 = _mm_cvtsd_f64(hi).max(_mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi)));
            m01.max(m23)
        }

        /// Generates the full-sum and bounded-scan kernels for one
        /// accumulation op; structure mirrors the scalar kernels exactly
        /// (16-blocks, 4-chunk middle, scalar tail).
        macro_rules! lp_kernels_avx2 {
            ($op:tt, $full:ident, $bounded:ident) => {
                #[target_feature(enable = "avx2")]
                pub(in super::super) unsafe fn $full(a: &[f64], b: &[f64]) -> f64 {
                    debug_assert_eq!(a.len(), b.len());
                    let n = a.len();
                    let (split16, split4) = (n - n % 16, n - n % 4);
                    let (pa, pb) = (a.as_ptr(), b.as_ptr());
                    let mut total = 0.0f64;
                    let mut i = 0;
                    while i < split16 {
                        let mut vacc = _mm256_setzero_pd();
                        let mut q = i;
                        while q < i + 16 {
                            let d = _mm256_sub_pd(
                                _mm256_loadu_pd(pa.add(q)),
                                _mm256_loadu_pd(pb.add(q)),
                            );
                            vacc = _mm256_add_pd(vacc, term256!($op, d));
                            q += 4;
                        }
                        total += hsum4(vacc);
                        i += 16;
                    }
                    let mut vacc = _mm256_setzero_pd();
                    while i < split4 {
                        let d =
                            _mm256_sub_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
                        vacc = _mm256_add_pd(vacc, term256!($op, d));
                        i += 4;
                    }
                    total += hsum4(vacc);
                    while i < n {
                        let d = *pa.add(i) - *pb.add(i);
                        total += term_scalar!($op, d);
                        i += 1;
                    }
                    total
                }

                #[target_feature(enable = "avx2")]
                pub(in super::super) unsafe fn $bounded(a: &[f64], b: &[f64], bound: f64) -> bool {
                    debug_assert_eq!(a.len(), b.len());
                    let n = a.len();
                    let (split16, split4) = (n - n % 16, n - n % 4);
                    let (pa, pb) = (a.as_ptr(), b.as_ptr());
                    let mut total = 0.0f64;
                    let mut i = 0;
                    while i < split16 {
                        let mut vacc = _mm256_setzero_pd();
                        let mut q = i;
                        while q < i + 16 {
                            let d = _mm256_sub_pd(
                                _mm256_loadu_pd(pa.add(q)),
                                _mm256_loadu_pd(pb.add(q)),
                            );
                            vacc = _mm256_add_pd(vacc, term256!($op, d));
                            q += 4;
                        }
                        total += hsum4(vacc);
                        // One hoisted check per 16-dim block, same as the
                        // scalar bounded scan: the running total is
                        // monotone, so crossing the bound proves the
                        // answer.
                        if total >= bound {
                            return true;
                        }
                        i += 16;
                    }
                    let mut vacc = _mm256_setzero_pd();
                    while i < split4 {
                        let d =
                            _mm256_sub_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
                        vacc = _mm256_add_pd(vacc, term256!($op, d));
                        i += 4;
                    }
                    total += hsum4(vacc);
                    while i < n {
                        let d = *pa.add(i) - *pb.add(i);
                        total += term_scalar!($op, d);
                        i += 1;
                    }
                    total >= bound
                }
            };
        }

        lp_kernels_avx2!(sq, sum_sq_diff, sum_sq_diff_at_least);
        lp_kernels_avx2!(abs, sum_abs_diff, sum_abs_diff_at_least);

        /// All-lanes sum of one 8-wide `f32` vector (tree order — the
        /// pre-filter needs only the certified envelope, not bit identity).
        #[inline]
        #[target_feature(enable = "avx2")]
        fn hsum8s(v: __m256) -> f32 {
            let s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
            _mm_cvtss_f32(s)
        }

        /// Generates the `f32` pre-filter kernels: 16-element blocks feed
        /// two independent 8-wide accumulators (32 terms in flight), the
        /// remainder one vector at a time, the tail scalar. Any association
        /// is sound here — the certified envelope's summation term covers
        /// fully sequential accumulation, the worst case.
        macro_rules! lp_kernels_avx2_f32 {
            ($op:tt, $full:ident) => {
                #[target_feature(enable = "avx2")]
                pub(in super::super) unsafe fn $full(a: &[f32], b: &[f32]) -> f32 {
                    debug_assert_eq!(a.len(), b.len());
                    let n = a.len();
                    let (split16, split8) = (n - n % 16, n - n % 8);
                    let (pa, pb) = (a.as_ptr(), b.as_ptr());
                    let mut vacc0 = _mm256_setzero_ps();
                    let mut vacc1 = _mm256_setzero_ps();
                    let mut i = 0;
                    while i < split16 {
                        let d0 =
                            _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
                        vacc0 = _mm256_add_ps(vacc0, term256s!($op, d0));
                        let d1 = _mm256_sub_ps(
                            _mm256_loadu_ps(pa.add(i + 8)),
                            _mm256_loadu_ps(pb.add(i + 8)),
                        );
                        vacc1 = _mm256_add_ps(vacc1, term256s!($op, d1));
                        i += 16;
                    }
                    while i < split8 {
                        let d =
                            _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
                        vacc0 = _mm256_add_ps(vacc0, term256s!($op, d));
                        i += 8;
                    }
                    let mut total = hsum8s(_mm256_add_ps(vacc0, vacc1));
                    while i < n {
                        let d = *pa.add(i) - *pb.add(i);
                        total += term_scalar!($op, d);
                        i += 1;
                    }
                    total
                }
            };
        }

        lp_kernels_avx2_f32!(sq, sum_sq_diff_f32);
        lp_kernels_avx2_f32!(abs, sum_abs_diff_f32);

        #[target_feature(enable = "avx2")]
        pub(in super::super) unsafe fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
            debug_assert_eq!(a.len(), b.len());
            let n = a.len();
            let split4 = n - n % 4;
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut vmax = _mm256_setzero_pd();
            let mut i = 0;
            while i < split4 {
                let d = _mm256_sub_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
                vmax = _mm256_max_pd(vmax, term256!(abs, d));
                i += 4;
            }
            let mut total = hmax4(vmax);
            while i < n {
                total = total.max((*pa.add(i) - *pb.add(i)).abs());
                i += 1;
            }
            total
        }

        #[target_feature(enable = "avx2")]
        pub(in super::super) unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
            debug_assert_eq!(a.len(), b.len());
            let n = a.len();
            let split4 = n - n % 4;
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut vacc = _mm256_setzero_pd();
            let mut i = 0;
            while i < split4 {
                // Separate mul + add: FMA would change the rounding and
                // break bit-identity with the scalar kernel.
                let prod = _mm256_mul_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
                vacc = _mm256_add_pd(vacc, prod);
                i += 4;
            }
            let mut total = hsum4(vacc);
            while i < n {
                total += *pa.add(i) * *pb.add(i);
                i += 1;
            }
            total
        }

        #[target_feature(enable = "avx2")]
        pub(in super::super) unsafe fn norm_sq(a: &[f64]) -> f64 {
            let n = a.len();
            let split4 = n - n % 4;
            let pa = a.as_ptr();
            let mut vacc = _mm256_setzero_pd();
            let mut i = 0;
            while i < split4 {
                let v = _mm256_loadu_pd(pa.add(i));
                vacc = _mm256_add_pd(vacc, _mm256_mul_pd(v, v));
                i += 4;
            }
            let mut total = hsum4(vacc);
            while i < n {
                let x = *pa.add(i);
                total += x * x;
                i += 1;
            }
            total
        }
    }

    pub(super) mod sse2 {
        use core::arch::x86_64::*;

        /// `lane0 + lane1` of one 2-wide vector.
        #[inline]
        unsafe fn hsum2(v: __m128d) -> f64 {
            _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)))
        }

        /// `lane0 max lane1` of one 2-wide vector.
        #[inline]
        unsafe fn hmax2(v: __m128d) -> f64 {
            _mm_cvtsd_f64(v).max(_mm_cvtsd_f64(_mm_unpackhi_pd(v, v)))
        }

        /// SSE2 twin of the AVX2 generator: the four scalar lanes live in
        /// two 2-wide accumulators, `v01 = (acc0, acc1)` and
        /// `v23 = (acc2, acc3)`, reduced as
        /// `(acc0 + acc1) + (acc2 + acc3)`.
        macro_rules! lp_kernels_sse2 {
            ($op:tt, $full:ident, $bounded:ident) => {
                pub(in super::super) unsafe fn $full(a: &[f64], b: &[f64]) -> f64 {
                    debug_assert_eq!(a.len(), b.len());
                    let n = a.len();
                    let (split16, split4) = (n - n % 16, n - n % 4);
                    let (pa, pb) = (a.as_ptr(), b.as_ptr());
                    let mut total = 0.0f64;
                    let mut i = 0;
                    while i < split16 {
                        let mut v01 = _mm_setzero_pd();
                        let mut v23 = _mm_setzero_pd();
                        let mut q = i;
                        while q < i + 16 {
                            let d01 = _mm_sub_pd(_mm_loadu_pd(pa.add(q)), _mm_loadu_pd(pb.add(q)));
                            v01 = _mm_add_pd(v01, term128!($op, d01));
                            let d23 = _mm_sub_pd(
                                _mm_loadu_pd(pa.add(q + 2)),
                                _mm_loadu_pd(pb.add(q + 2)),
                            );
                            v23 = _mm_add_pd(v23, term128!($op, d23));
                            q += 4;
                        }
                        total += hsum2(v01) + hsum2(v23);
                        i += 16;
                    }
                    let mut v01 = _mm_setzero_pd();
                    let mut v23 = _mm_setzero_pd();
                    while i < split4 {
                        let d01 = _mm_sub_pd(_mm_loadu_pd(pa.add(i)), _mm_loadu_pd(pb.add(i)));
                        v01 = _mm_add_pd(v01, term128!($op, d01));
                        let d23 =
                            _mm_sub_pd(_mm_loadu_pd(pa.add(i + 2)), _mm_loadu_pd(pb.add(i + 2)));
                        v23 = _mm_add_pd(v23, term128!($op, d23));
                        i += 4;
                    }
                    total += hsum2(v01) + hsum2(v23);
                    while i < n {
                        let d = *pa.add(i) - *pb.add(i);
                        total += term_scalar!($op, d);
                        i += 1;
                    }
                    total
                }

                pub(in super::super) unsafe fn $bounded(a: &[f64], b: &[f64], bound: f64) -> bool {
                    debug_assert_eq!(a.len(), b.len());
                    let n = a.len();
                    let (split16, split4) = (n - n % 16, n - n % 4);
                    let (pa, pb) = (a.as_ptr(), b.as_ptr());
                    let mut total = 0.0f64;
                    let mut i = 0;
                    while i < split16 {
                        let mut v01 = _mm_setzero_pd();
                        let mut v23 = _mm_setzero_pd();
                        let mut q = i;
                        while q < i + 16 {
                            let d01 = _mm_sub_pd(_mm_loadu_pd(pa.add(q)), _mm_loadu_pd(pb.add(q)));
                            v01 = _mm_add_pd(v01, term128!($op, d01));
                            let d23 = _mm_sub_pd(
                                _mm_loadu_pd(pa.add(q + 2)),
                                _mm_loadu_pd(pb.add(q + 2)),
                            );
                            v23 = _mm_add_pd(v23, term128!($op, d23));
                            q += 4;
                        }
                        total += hsum2(v01) + hsum2(v23);
                        if total >= bound {
                            return true;
                        }
                        i += 16;
                    }
                    let mut v01 = _mm_setzero_pd();
                    let mut v23 = _mm_setzero_pd();
                    while i < split4 {
                        let d01 = _mm_sub_pd(_mm_loadu_pd(pa.add(i)), _mm_loadu_pd(pb.add(i)));
                        v01 = _mm_add_pd(v01, term128!($op, d01));
                        let d23 =
                            _mm_sub_pd(_mm_loadu_pd(pa.add(i + 2)), _mm_loadu_pd(pb.add(i + 2)));
                        v23 = _mm_add_pd(v23, term128!($op, d23));
                        i += 4;
                    }
                    total += hsum2(v01) + hsum2(v23);
                    while i < n {
                        let d = *pa.add(i) - *pb.add(i);
                        total += term_scalar!($op, d);
                        i += 1;
                    }
                    total >= bound
                }
            };
        }

        lp_kernels_sse2!(sq, sum_sq_diff, sum_sq_diff_at_least);
        lp_kernels_sse2!(abs, sum_abs_diff, sum_abs_diff_at_least);

        /// All-lanes sum of one 4-wide `f32` vector (tree order; the
        /// pre-filter is envelope-bound, not bit-identical).
        #[inline]
        unsafe fn hsum4s(v: __m128) -> f32 {
            let s = _mm_add_ps(v, _mm_movehl_ps(v, v));
            let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
            _mm_cvtss_f32(s)
        }

        /// SSE2 twin of the AVX2 `f32` generator: 8-element blocks feed two
        /// independent 4-wide accumulators.
        macro_rules! lp_kernels_sse2_f32 {
            ($op:tt, $full:ident) => {
                pub(in super::super) unsafe fn $full(a: &[f32], b: &[f32]) -> f32 {
                    debug_assert_eq!(a.len(), b.len());
                    let n = a.len();
                    let (split8, split4) = (n - n % 8, n - n % 4);
                    let (pa, pb) = (a.as_ptr(), b.as_ptr());
                    let mut vacc0 = _mm_setzero_ps();
                    let mut vacc1 = _mm_setzero_ps();
                    let mut i = 0;
                    while i < split8 {
                        let d0 = _mm_sub_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i)));
                        vacc0 = _mm_add_ps(vacc0, term128s!($op, d0));
                        let d1 =
                            _mm_sub_ps(_mm_loadu_ps(pa.add(i + 4)), _mm_loadu_ps(pb.add(i + 4)));
                        vacc1 = _mm_add_ps(vacc1, term128s!($op, d1));
                        i += 8;
                    }
                    while i < split4 {
                        let d = _mm_sub_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i)));
                        vacc0 = _mm_add_ps(vacc0, term128s!($op, d));
                        i += 4;
                    }
                    let mut total = hsum4s(_mm_add_ps(vacc0, vacc1));
                    while i < n {
                        let d = *pa.add(i) - *pb.add(i);
                        total += term_scalar!($op, d);
                        i += 1;
                    }
                    total
                }
            };
        }

        lp_kernels_sse2_f32!(sq, sum_sq_diff_f32);
        lp_kernels_sse2_f32!(abs, sum_abs_diff_f32);

        pub(in super::super) unsafe fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
            debug_assert_eq!(a.len(), b.len());
            let n = a.len();
            let split4 = n - n % 4;
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut v01 = _mm_setzero_pd();
            let mut v23 = _mm_setzero_pd();
            let mut i = 0;
            while i < split4 {
                let d01 = _mm_sub_pd(_mm_loadu_pd(pa.add(i)), _mm_loadu_pd(pb.add(i)));
                v01 = _mm_max_pd(v01, term128!(abs, d01));
                let d23 = _mm_sub_pd(_mm_loadu_pd(pa.add(i + 2)), _mm_loadu_pd(pb.add(i + 2)));
                v23 = _mm_max_pd(v23, term128!(abs, d23));
                i += 4;
            }
            let mut total = hmax2(v01).max(hmax2(v23));
            while i < n {
                total = total.max((*pa.add(i) - *pb.add(i)).abs());
                i += 1;
            }
            total
        }

        pub(in super::super) unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
            debug_assert_eq!(a.len(), b.len());
            let n = a.len();
            let split4 = n - n % 4;
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut v01 = _mm_setzero_pd();
            let mut v23 = _mm_setzero_pd();
            let mut i = 0;
            while i < split4 {
                let p01 = _mm_mul_pd(_mm_loadu_pd(pa.add(i)), _mm_loadu_pd(pb.add(i)));
                v01 = _mm_add_pd(v01, p01);
                let p23 = _mm_mul_pd(_mm_loadu_pd(pa.add(i + 2)), _mm_loadu_pd(pb.add(i + 2)));
                v23 = _mm_add_pd(v23, p23);
                i += 4;
            }
            let mut total = hsum2(v01) + hsum2(v23);
            while i < n {
                total += *pa.add(i) * *pb.add(i);
                i += 1;
            }
            total
        }

        pub(in super::super) unsafe fn norm_sq(a: &[f64]) -> f64 {
            let n = a.len();
            let split4 = n - n % 4;
            let pa = a.as_ptr();
            let mut v01 = _mm_setzero_pd();
            let mut v23 = _mm_setzero_pd();
            let mut i = 0;
            while i < split4 {
                let x01 = _mm_loadu_pd(pa.add(i));
                v01 = _mm_add_pd(v01, _mm_mul_pd(x01, x01));
                let x23 = _mm_loadu_pd(pa.add(i + 2));
                v23 = _mm_add_pd(v23, _mm_mul_pd(x23, x23));
                i += 4;
            }
            let mut total = hsum2(v01) + hsum2(v23);
            while i < n {
                let x = *pa.add(i);
                total += x * x;
                i += 1;
            }
            total
        }
    }
}
