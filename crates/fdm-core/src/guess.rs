//! The geometric guess ladder `U` for the optimal diversity.
//!
//! Algorithm 1 (line 1) guesses `OPT` within a relative error of `1 − ε` by
//! maintaining one candidate per value in
//!
//! ```text
//! U = { d_min / (1−ε)^j  :  j ∈ Z≥0,  d_min/(1−ε)^j ∈ [d_min, d_max] }
//! ```
//!
//! `|U| = O(log ∆ / ε)` where `∆ = d_max/d_min`; this cardinality is the
//! factor that appears in all of the paper's time/space bounds.

use crate::dataset::DistanceBounds;
use crate::error::{FdmError, Result};

/// Materialized guess ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct GuessLadder {
    values: Vec<f64>,
    epsilon: f64,
}

impl GuessLadder {
    /// Builds the ladder from validated distance bounds and `ε ∈ (0, 1)`.
    ///
    /// The ladder always contains at least `d_min`; the largest value is the
    /// last power of `1/(1−ε)` not exceeding `d_max` (plus a tiny relative
    /// tolerance so that `d_max` itself is included when the spread is an
    /// exact power).
    pub fn new(bounds: DistanceBounds, epsilon: f64) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(FdmError::InvalidEpsilon { epsilon });
        }
        let mut values = Vec::new();
        let mut mu = bounds.lower;
        // Tolerate 1 ulp-ish accumulation so an exact-power d_max is kept.
        let limit = bounds.upper * (1.0 + 1e-12);
        while mu <= limit {
            values.push(mu);
            mu /= 1.0 - epsilon;
        }
        debug_assert!(!values.is_empty());
        Ok(GuessLadder { values, epsilon })
    }

    /// The guesses in increasing order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of guesses `|U|`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the ladder is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `ε` the ladder was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Iterate over `(index, µ)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.values.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds(lo: f64, hi: f64) -> DistanceBounds {
        DistanceBounds::new(lo, hi).unwrap()
    }

    #[test]
    fn ladder_is_geometric() {
        let ladder = GuessLadder::new(bounds(1.0, 100.0), 0.1).unwrap();
        let v = ladder.values();
        assert_eq!(v[0], 1.0);
        for w in v.windows(2) {
            assert!((w[1] * (1.0 - 0.1) - w[0]).abs() < 1e-9);
        }
        assert!(*v.last().unwrap() <= 100.0 * (1.0 + 1e-9));
        // Next rung would overflow d_max.
        assert!(v.last().unwrap() / 0.9 > 100.0);
    }

    #[test]
    fn ladder_cardinality_matches_theory() {
        // |U| ≈ ln(∆)/ln(1/(1−ε)) + 1.
        let eps = 0.1;
        let spread: f64 = 1e4;
        let ladder = GuessLadder::new(bounds(1.0, spread), eps).unwrap();
        let expected = (spread.ln() / (1.0 / (1.0 - eps)).ln()).floor() as usize + 1;
        assert_eq!(ladder.len(), expected);
    }

    #[test]
    fn smaller_epsilon_means_more_guesses() {
        let b = bounds(0.5, 500.0);
        let coarse = GuessLadder::new(b, 0.25).unwrap();
        let fine = GuessLadder::new(b, 0.05).unwrap();
        assert!(fine.len() > 2 * coarse.len());
    }

    #[test]
    fn degenerate_spread_single_guess() {
        let ladder = GuessLadder::new(bounds(2.0, 2.0), 0.1).unwrap();
        assert_eq!(ladder.values(), &[2.0]);
    }

    #[test]
    fn rejects_bad_epsilon() {
        for eps in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            assert!(
                GuessLadder::new(bounds(1.0, 2.0), eps).is_err(),
                "eps={eps}"
            );
        }
    }

    #[test]
    fn exact_power_upper_bound_is_included() {
        let eps = 0.5;
        // d_max = d_min / (1-eps)^3 exactly.
        let hi = 1.0 / (0.5f64.powi(3));
        let ladder = GuessLadder::new(bounds(1.0, hi), eps).unwrap();
        assert_eq!(ladder.len(), 4);
        assert!((ladder.values()[3] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn iter_matches_values() {
        let ladder = GuessLadder::new(bounds(1.0, 10.0), 0.2).unwrap();
        let collected: Vec<f64> = ladder.iter().map(|(_, mu)| mu).collect();
        assert_eq!(collected.as_slice(), ladder.values());
        let idxs: Vec<usize> = ladder.iter().map(|(i, _)| i).collect();
        assert_eq!(idxs, (0..ladder.len()).collect::<Vec<_>>());
    }
}
