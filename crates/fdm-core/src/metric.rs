//! Distance metrics and their vectorized kernels.
//!
//! Every algorithm in this crate interacts with the data exclusively through
//! a [`Metric`], mirroring the paper's metric-space formulation (§III-A): the
//! distance function must be non-negative, symmetric, and satisfy the
//! triangle inequality. The paper's experiments use Euclidean (Adult,
//! Synthetic), Manhattan (CelebA, Census), and Angular (Lyrics) distances;
//! Chebyshev and general Minkowski are provided for completeness.
//!
//! The metric is an enum rather than a trait object or a generic parameter:
//! distance evaluation is the single hot operation of every algorithm, and a
//! small enum match compiles to a perfectly predicted branch while keeping
//! the public API object-safe and serializable.
//!
//! # Kernels and proxy distances
//!
//! Two layers serve the hot path:
//!
//! * The [`kernels`] module accumulates in four independent lanes over
//!   `chunks_exact(4)` so LLVM can keep several FP additions in flight (and
//!   auto-vectorize); a single-accumulator `f64` loop cannot be reordered
//!   and serializes on add latency. [`Metric`]'s methods do not call these
//!   directly: they go through [`crate::kernel`], which picks between these
//!   scalar references and explicit SSE2/AVX2 implementations at runtime
//!   (bit-identical by construction; see the `kernel` module docs).
//! * *Proxy* distances ([`Metric::proxy`]) are monotone stand-ins that skip
//!   the final `sqrt`/`powf`/`acos`: squared distance for Euclidean, the
//!   `p`-th power sum for Minkowski, negated cosine for Angular. Threshold
//!   tests (`d(x, S) ≥ µ`) compare proxies against
//!   [`Metric::proxy_from_dist`]`(µ)` — bit-identical decisions, no
//!   transcendental per candidate member. [`Metric::dist_from_proxy`] maps a
//!   winning proxy back to a real distance once per query.

use serde::{Deserialize, Serialize};

use crate::error::{FdmError, Result};
use crate::kernel;

/// Four-lane accumulator kernels over contiguous `f64` rows.
///
/// All kernels debug-assert equal slice lengths and use standard zip
/// semantics (shorter length wins) in release builds.
pub mod kernels {
    /// `Σ (a_i − b_i)²` — squared Euclidean distance.
    ///
    /// Accumulates 16-dim blocks with block-local four-lane accumulators
    /// (independent dependency chains per block), then a 4-chunk middle
    /// region and a scalar tail — the *same* association as
    /// [`sum_sq_diff_at_least`], so the bounded variant's no-exit result is
    /// bit-identical.
    #[inline]
    pub fn sum_sq_diff(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let split16 = a.len() - a.len() % 16;
        let split4 = a.len() - a.len() % 4;
        let mut total = 0.0f64;
        for (ca, cb) in a[..split16]
            .chunks_exact(16)
            .zip(b[..split16].chunks_exact(16))
        {
            let mut acc = [0.0f64; 4];
            for (qa, qb) in ca.chunks_exact(4).zip(cb.chunks_exact(4)) {
                for lane in 0..4 {
                    let d = qa[lane] - qb[lane];
                    acc[lane] += d * d;
                }
            }
            total += (acc[0] + acc[1]) + (acc[2] + acc[3]);
        }
        let mut acc = [0.0f64; 4];
        for (qa, qb) in a[split16..split4]
            .chunks_exact(4)
            .zip(b[split16..split4].chunks_exact(4))
        {
            for lane in 0..4 {
                let d = qa[lane] - qb[lane];
                acc[lane] += d * d;
            }
        }
        total += (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (x, y) in a[split4..].iter().zip(b[split4..].iter()) {
            let d = x - y;
            total += d * d;
        }
        total
    }

    /// `Σ |a_i − b_i|` — Manhattan distance (same block structure as
    /// [`sum_sq_diff`]).
    #[inline]
    pub fn sum_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let split16 = a.len() - a.len() % 16;
        let split4 = a.len() - a.len() % 4;
        let mut total = 0.0f64;
        for (ca, cb) in a[..split16]
            .chunks_exact(16)
            .zip(b[..split16].chunks_exact(16))
        {
            let mut acc = [0.0f64; 4];
            for (qa, qb) in ca.chunks_exact(4).zip(cb.chunks_exact(4)) {
                for lane in 0..4 {
                    acc[lane] += (qa[lane] - qb[lane]).abs();
                }
            }
            total += (acc[0] + acc[1]) + (acc[2] + acc[3]);
        }
        let mut acc = [0.0f64; 4];
        for (qa, qb) in a[split16..split4]
            .chunks_exact(4)
            .zip(b[split16..split4].chunks_exact(4))
        {
            for lane in 0..4 {
                acc[lane] += (qa[lane] - qb[lane]).abs();
            }
        }
        total += (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (x, y) in a[split4..].iter().zip(b[split4..].iter()) {
            total += (x - y).abs();
        }
        total
    }

    /// `max |a_i − b_i|` — Chebyshev distance.
    #[inline]
    pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = [0.0f64; 4];
        let (a4, a_tail) = a.split_at(a.len() - a.len() % 4);
        let (b4, b_tail) = b.split_at(b.len() - b.len() % 4);
        for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
            for lane in 0..4 {
                acc[lane] = acc[lane].max((ca[lane] - cb[lane]).abs());
            }
        }
        let mut total = acc[0].max(acc[1]).max(acc[2].max(acc[3]));
        for (x, y) in a_tail.iter().zip(b_tail.iter()) {
            total = total.max((x - y).abs());
        }
        total
    }

    /// `Σ |a_i − b_i|^p` for general `p` (callers special-case `p = 1, 2`).
    #[inline]
    pub fn sum_pow_diff(a: &[f64], b: &[f64], p: f64) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        // `powf` dominates here; lane-splitting buys nothing.
        let mut acc = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            acc += (x - y).abs().powf(p);
        }
        acc
    }

    /// Whether `Σ (a_i − b_i)² ≥ bound`, checking the running partial sum
    /// every 16 dimensions and stopping as soon as it proves the answer —
    /// the candidate threshold test rarely needs the full row.
    ///
    /// Accumulation is association-identical to [`sum_sq_diff`], so a scan
    /// that does not exit early compares the bit-identical sum; since every
    /// term is non-negative the running total is monotone, making an early
    /// exit exactly `sum_sq_diff(a, b) >= bound`.
    #[inline]
    pub fn sum_sq_diff_at_least(a: &[f64], b: &[f64], bound: f64) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let split16 = a.len() - a.len() % 16;
        let split4 = a.len() - a.len() % 4;
        let mut total = 0.0f64;
        // Identical block-local accumulation to `sum_sq_diff`, plus one
        // hoisted bound check per 16-dim block: the running `total` is
        // monotone (all terms non-negative), so crossing the bound early
        // proves the full sum crosses it.
        for (ca, cb) in a[..split16]
            .chunks_exact(16)
            .zip(b[..split16].chunks_exact(16))
        {
            let mut acc = [0.0f64; 4];
            for (qa, qb) in ca.chunks_exact(4).zip(cb.chunks_exact(4)) {
                for lane in 0..4 {
                    let d = qa[lane] - qb[lane];
                    acc[lane] += d * d;
                }
            }
            total += (acc[0] + acc[1]) + (acc[2] + acc[3]);
            if total >= bound {
                return true;
            }
        }
        let mut acc = [0.0f64; 4];
        for (qa, qb) in a[split16..split4]
            .chunks_exact(4)
            .zip(b[split16..split4].chunks_exact(4))
        {
            for lane in 0..4 {
                let d = qa[lane] - qb[lane];
                acc[lane] += d * d;
            }
        }
        total += (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (x, y) in a[split4..].iter().zip(b[split4..].iter()) {
            let d = x - y;
            total += d * d;
        }
        total >= bound
    }

    /// Whether `Σ |a_i − b_i| ≥ bound` (blockwise early exit with the same
    /// lane order as [`sum_abs_diff`]; see [`sum_sq_diff_at_least`]).
    #[inline]
    pub fn sum_abs_diff_at_least(a: &[f64], b: &[f64], bound: f64) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let split16 = a.len() - a.len() % 16;
        let split4 = a.len() - a.len() % 4;
        let mut total = 0.0f64;
        for (ca, cb) in a[..split16]
            .chunks_exact(16)
            .zip(b[..split16].chunks_exact(16))
        {
            let mut acc = [0.0f64; 4];
            for (qa, qb) in ca.chunks_exact(4).zip(cb.chunks_exact(4)) {
                for lane in 0..4 {
                    acc[lane] += (qa[lane] - qb[lane]).abs();
                }
            }
            total += (acc[0] + acc[1]) + (acc[2] + acc[3]);
            if total >= bound {
                return true;
            }
        }
        let mut acc = [0.0f64; 4];
        for (qa, qb) in a[split16..split4]
            .chunks_exact(4)
            .zip(b[split16..split4].chunks_exact(4))
        {
            for lane in 0..4 {
                acc[lane] += (qa[lane] - qb[lane]).abs();
            }
        }
        total += (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (x, y) in a[split4..].iter().zip(b[split4..].iter()) {
            total += (x - y).abs();
        }
        total >= bound
    }

    /// Whether `max |a_i − b_i| ≥ bound` (any single coordinate decides).
    #[inline]
    pub fn max_abs_diff_at_least(a: &[f64], b: &[f64], bound: f64) -> bool {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b.iter()).any(|(x, y)| (x - y).abs() >= bound)
    }

    /// Whether `Σ |a_i − b_i|^p ≥ bound` (early exit per coordinate; the
    /// `powf` dominates, so finer blocking buys nothing).
    #[inline]
    pub fn sum_pow_diff_at_least(a: &[f64], b: &[f64], p: f64, bound: f64) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            acc += (x - y).abs().powf(p);
            if acc >= bound {
                return true;
            }
        }
        acc >= bound
    }

    /// `Σ a_i · b_i` — inner product (for Angular with cached norms).
    #[inline]
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = [0.0f64; 4];
        let (a4, a_tail) = a.split_at(a.len() - a.len() % 4);
        let (b4, b_tail) = b.split_at(b.len() - b.len() % 4);
        for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
            for lane in 0..4 {
                acc[lane] += ca[lane] * cb[lane];
            }
        }
        let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (x, y) in a_tail.iter().zip(b_tail.iter()) {
            total += x * y;
        }
        total
    }

    /// `Σ a_i²` — squared L2 norm (cached per row by the point arena).
    #[inline]
    pub fn norm_sq(a: &[f64]) -> f64 {
        let mut acc = [0.0f64; 4];
        let (a4, a_tail) = a.split_at(a.len() - a.len() % 4);
        for ca in a4.chunks_exact(4) {
            for lane in 0..4 {
                acc[lane] += ca[lane] * ca[lane];
            }
        }
        let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for x in a_tail {
            total += x * x;
        }
        total
    }
}

/// A distance metric over `&[f64]` points.
///
/// All variants are proper metrics (or, for [`Metric::Angular`], a metric on
/// the subspace of non-zero vectors): non-negative, symmetric, zero iff the
/// points coincide (up to floating-point), and triangle-inequality compliant.
///
/// # Examples
///
/// ```
/// use fdm_core::metric::Metric;
/// let a = [0.0, 0.0];
/// let b = [3.0, 4.0];
/// assert_eq!(Metric::Euclidean.dist(&a, &b), 5.0);
/// assert_eq!(Metric::Manhattan.dist(&a, &b), 7.0);
/// assert_eq!(Metric::Chebyshev.dist(&a, &b), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Metric {
    /// L2 distance: `sqrt(Σ (a_i − b_i)²)`.
    Euclidean,
    /// L1 distance: `Σ |a_i − b_i|`.
    Manhattan,
    /// L∞ distance: `max |a_i − b_i|`.
    Chebyshev,
    /// General Lp distance for `p ≥ 1`: `(Σ |a_i − b_i|^p)^(1/p)`.
    Minkowski(
        /// The order `p ≥ 1`.
        f64,
    ),
    /// Angular distance: `arccos(cos_sim(a, b)) ∈ [0, π]`.
    ///
    /// This is the metric used by the paper for the Lyrics dataset (LDA topic
    /// vectors). For vectors with non-negative coordinates the distance is at
    /// most `π/2`. Unlike raw cosine *dissimilarity*, the angle itself is a
    /// true metric.
    Angular,
}

impl Metric {
    /// Validates metric parameters (only [`Metric::Minkowski`] carries any).
    pub fn validate(&self) -> Result<()> {
        match self {
            Metric::Minkowski(p) if !(p.is_finite() && *p >= 1.0) => {
                Err(FdmError::InvalidMinkowskiOrder { p: *p })
            }
            _ => Ok(()),
        }
    }

    /// Computes the distance between two points.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the slices have equal length; in release builds the
    /// shorter length is used (standard zip semantics).
    #[inline]
    pub fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "points must have equal dimension");
        match self {
            Metric::Euclidean => kernel::sum_sq_diff(a, b).sqrt(),
            Metric::Manhattan => kernel::sum_abs_diff(a, b),
            Metric::Chebyshev => kernel::max_abs_diff(a, b),
            // The L1/L2 special cases skip `powf` entirely — the dominant
            // cost for the two most common Minkowski orders.
            Metric::Minkowski(p) if *p == 1.0 => kernel::sum_abs_diff(a, b),
            Metric::Minkowski(p) if *p == 2.0 => kernel::sum_sq_diff(a, b).sqrt(),
            Metric::Minkowski(p) => kernels::sum_pow_diff(a, b, *p).powf(1.0 / *p),
            Metric::Angular => self.dist_from_proxy(self.proxy_with_norms(
                a,
                b,
                kernel::norm_sq(a),
                kernel::norm_sq(b),
            )),
        }
    }

    /// A *monotone proxy* for the distance: cheaper than [`Metric::dist`]
    /// and order-preserving, so comparisons and argmin/argmax over proxies
    /// agree exactly with comparisons over true distances.
    ///
    /// | metric | proxy |
    /// |---|---|
    /// | Euclidean / Minkowski(2) | squared distance |
    /// | Manhattan / Minkowski(1) / Chebyshev | the distance itself |
    /// | Minkowski(p) | `Σ \|a_i − b_i\|^p` |
    /// | Angular | `−cos(a, b)` |
    #[inline]
    pub fn proxy(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Metric::Angular => self.proxy_with_norms(a, b, kernel::norm_sq(a), kernel::norm_sq(b)),
            _ => self.proxy_with_norms(a, b, 0.0, 0.0),
        }
    }

    /// [`Metric::proxy`] with precomputed squared L2 norms (only Angular
    /// reads them; pass anything for other metrics). The point arena caches
    /// norms per row, saving two of the three inner products per Angular
    /// distance on the hot path.
    #[inline]
    pub fn proxy_with_norms(&self, a: &[f64], b: &[f64], na_sq: f64, nb_sq: f64) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "points must have equal dimension");
        match self {
            Metric::Euclidean => kernel::sum_sq_diff(a, b),
            Metric::Manhattan => kernel::sum_abs_diff(a, b),
            Metric::Chebyshev => kernel::max_abs_diff(a, b),
            Metric::Minkowski(p) if *p == 1.0 => kernel::sum_abs_diff(a, b),
            Metric::Minkowski(p) if *p == 2.0 => kernel::sum_sq_diff(a, b),
            Metric::Minkowski(p) => kernels::sum_pow_diff(a, b, *p),
            Metric::Angular => {
                if na_sq == 0.0 || nb_sq == 0.0 {
                    // The angle is undefined for the zero vector; treat it as
                    // orthogonal to everything so degenerate inputs do not
                    // poison min-distances with NaN. −cos(π/2) = 0.
                    return 0.0;
                }
                let cos = (kernel::dot(a, b) / (na_sq.sqrt() * nb_sq.sqrt())).clamp(-1.0, 1.0);
                -cos
            }
        }
    }

    /// [`Metric::proxy_with_norms`] with precomputed L2 norms (`√(Σ a_i²)`,
    /// *not* squared) — the form the point arena caches alongside each row.
    ///
    /// Bit-identical to [`Metric::proxy_with_norms`] called with the
    /// corresponding squared norms: `sqrt` is correctly rounded, so a cached
    /// `norm_sq.sqrt()` equals the inline `na_sq.sqrt()` computed from the
    /// same cached `norm_sq`. Saves the two square roots per pair on the
    /// Angular hot path.
    #[inline]
    pub fn proxy_with_sqrt_norms(&self, a: &[f64], b: &[f64], na: f64, nb: f64) -> f64 {
        match self {
            Metric::Angular => {
                debug_assert_eq!(a.len(), b.len(), "points must have equal dimension");
                if na == 0.0 || nb == 0.0 {
                    return 0.0;
                }
                let cos = (kernel::dot(a, b) / (na * nb)).clamp(-1.0, 1.0);
                -cos
            }
            _ => self.proxy_with_norms(a, b, 0.0, 0.0),
        }
    }

    /// Maps a distance threshold into proxy space: `d(a, b) ≥ t` holds iff
    /// `proxy(a, b) ≥ proxy_from_dist(t)` (for finite `t ≥ 0`).
    #[inline]
    pub fn proxy_from_dist(&self, d: f64) -> f64 {
        match self {
            Metric::Euclidean => d * d,
            Metric::Manhattan | Metric::Chebyshev => d,
            Metric::Minkowski(p) if *p == 1.0 => d,
            Metric::Minkowski(p) if *p == 2.0 => d * d,
            Metric::Minkowski(p) => d.powf(*p),
            Metric::Angular => {
                // Angular distances cannot exceed π, so a threshold beyond π
                // is unsatisfiable — map it above every reachable proxy
                // (clamping to −cos(π) = 1 would wrongly accept antipodal
                // pairs for µ > π).
                if d > std::f64::consts::PI {
                    f64::INFINITY
                } else {
                    -d.max(0.0).cos()
                }
            }
        }
    }

    /// Maps a proxy value back to the true distance (inverse of
    /// [`Metric::proxy_from_dist`] on valid proxies; `+∞` maps to `+∞`).
    #[inline]
    pub fn dist_from_proxy(&self, proxy: f64) -> f64 {
        match self {
            Metric::Euclidean => proxy.sqrt(),
            Metric::Manhattan | Metric::Chebyshev => proxy,
            Metric::Minkowski(p) if *p == 1.0 => proxy,
            Metric::Minkowski(p) if *p == 2.0 => proxy.sqrt(),
            Metric::Minkowski(p) => proxy.powf(1.0 / *p),
            Metric::Angular => {
                if proxy.is_infinite() {
                    return f64::INFINITY;
                }
                (-proxy).clamp(-1.0, 1.0).acos()
            }
        }
    }

    /// Whether `proxy(a, b) ≥ bound` — the candidate threshold test
    /// `d(a, b) ≥ µ` with `bound = proxy_from_dist(µ)`. For the Lp metrics
    /// the partial sums are monotone, so the scan stops as soon as the
    /// partial proves the answer (often after a fraction of the row);
    /// decisions are *exactly* those of comparing the full proxy.
    #[inline]
    pub fn proxy_at_least(&self, a: &[f64], b: &[f64], na_sq: f64, nb_sq: f64, bound: f64) -> bool {
        match self {
            Metric::Euclidean => kernel::sum_sq_diff_at_least(a, b, bound),
            Metric::Manhattan => kernel::sum_abs_diff_at_least(a, b, bound),
            Metric::Chebyshev => kernels::max_abs_diff_at_least(a, b, bound),
            Metric::Minkowski(p) if *p == 1.0 => kernel::sum_abs_diff_at_least(a, b, bound),
            Metric::Minkowski(p) if *p == 2.0 => kernel::sum_sq_diff_at_least(a, b, bound),
            Metric::Minkowski(p) => kernels::sum_pow_diff_at_least(a, b, *p, bound),
            // The dot product is not monotone; evaluate the full proxy.
            Metric::Angular => self.proxy_with_norms(a, b, na_sq, nb_sq) >= bound,
        }
    }

    /// Whether [`Metric::proxy`] benefits from cached squared norms.
    #[inline]
    pub fn uses_norms(&self) -> bool {
        matches!(self, Metric::Angular)
    }

    /// Human-readable metric name as used in the paper's Table I.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Euclidean => "Euclidean",
            Metric::Manhattan => "Manhattan",
            Metric::Chebyshev => "Chebyshev",
            Metric::Minkowski(_) => "Minkowski",
            Metric::Angular => "Angular",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    #[test]
    fn euclidean_basic() {
        assert!((Metric::Euclidean.dist(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < EPS);
        assert_eq!(Metric::Euclidean.dist(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn manhattan_basic() {
        assert!((Metric::Manhattan.dist(&[1.0, -1.0], &[-2.0, 3.0]) - 7.0).abs() < EPS);
    }

    #[test]
    fn chebyshev_basic() {
        assert!((Metric::Chebyshev.dist(&[1.0, -1.0], &[-2.0, 3.0]) - 4.0).abs() < EPS);
    }

    #[test]
    fn minkowski_interpolates_l1_l2() {
        let a = [0.2, -0.7, 1.3];
        let b = [-0.4, 0.9, 0.1];
        assert!((Metric::Minkowski(1.0).dist(&a, &b) - Metric::Manhattan.dist(&a, &b)).abs() < EPS);
        assert!((Metric::Minkowski(2.0).dist(&a, &b) - Metric::Euclidean.dist(&a, &b)).abs() < EPS);
    }

    #[test]
    fn minkowski_special_cases_are_exact() {
        // p = 1 and p = 2 route through the L1/L2 kernels: results must be
        // *identical* (not merely close) to Manhattan/Euclidean.
        let a: Vec<f64> = (0..37).map(|i| (i as f64 * 0.7).sin() * 5.0).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64 * 1.3).cos() * 5.0).collect();
        assert_eq!(
            Metric::Minkowski(1.0).dist(&a, &b),
            Metric::Manhattan.dist(&a, &b)
        );
        assert_eq!(
            Metric::Minkowski(2.0).dist(&a, &b),
            Metric::Euclidean.dist(&a, &b)
        );
    }

    #[test]
    fn minkowski_order_validation() {
        assert!(Metric::Minkowski(0.5).validate().is_err());
        assert!(Metric::Minkowski(f64::NAN).validate().is_err());
        assert!(Metric::Minkowski(3.0).validate().is_ok());
        assert!(Metric::Euclidean.validate().is_ok());
    }

    #[test]
    fn angular_right_angle_and_parallel() {
        let d = Metric::Angular.dist(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - FRAC_PI_2).abs() < EPS);
        let d = Metric::Angular.dist(&[1.0, 1.0], &[2.0, 2.0]);
        assert!(d.abs() < 1e-7, "parallel vectors have zero angle, got {d}");
        let d = Metric::Angular.dist(&[1.0, 0.0], &[-1.0, 0.0]);
        assert!((d - PI).abs() < 1e-7);
    }

    #[test]
    fn angular_zero_vector_is_orthogonalized() {
        let d = Metric::Angular.dist(&[0.0, 0.0], &[1.0, 0.0]);
        assert!((d - FRAC_PI_2).abs() < EPS);
        assert!(d.is_finite());
    }

    #[test]
    fn all_metrics_are_symmetric_on_samples() {
        let pts = [
            vec![0.0, 1.0, -2.0],
            vec![3.5, -0.5, 0.25],
            vec![-1.0, -1.0, -1.0],
        ];
        let metrics = [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Minkowski(3.0),
            Metric::Angular,
        ];
        for metric in metrics {
            for a in &pts {
                for b in &pts {
                    let d1 = metric.dist(a, b);
                    let d2 = metric.dist(b, a);
                    assert!((d1 - d2).abs() < 1e-12, "{metric:?} not symmetric");
                    assert!(d1 >= 0.0);
                }
            }
        }
    }

    #[test]
    fn proxy_agrees_with_dist_ordering_and_round_trips() {
        let metrics = [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Minkowski(1.0),
            Metric::Minkowski(2.0),
            Metric::Minkowski(3.5),
            Metric::Angular,
        ];
        let pts: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..5)
                    .map(|j| ((i * 5 + j) as f64 * 0.37).sin() * 3.0)
                    .collect()
            })
            .collect();
        for metric in metrics {
            for a in &pts {
                for b in &pts {
                    let d = metric.dist(a, b);
                    let p = metric.proxy(a, b);
                    // Round trip.
                    assert!(
                        (metric.dist_from_proxy(p) - d).abs() < 1e-9,
                        "{metric:?}: proxy {p} maps to {} not {d}",
                        metric.dist_from_proxy(p)
                    );
                    // Threshold equivalence for thresholds clearly below and
                    // above the distance (at the exact boundary both sides
                    // agree to within one ulp by construction).
                    // 1e-7 margin: the Angular proxy (like acos before it)
                    // cannot resolve angle differences below ~1e-8 rad.
                    for (t, expected) in [(d * 0.9 - 1e-7, true), (d * 1.1 + 1e-7, false)] {
                        if t <= 0.0 {
                            continue; // guesses µ are always positive
                        }
                        let via_proxy = p >= metric.proxy_from_dist(t);
                        assert_eq!(
                            via_proxy, expected,
                            "{metric:?}: threshold {t} disagreement (d = {d}, p = {p})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn angular_threshold_beyond_pi_rejects_antipodal_pairs() {
        // d(a, −a) = π; a guess µ > π must never be satisfied (the old
        // direct `dist >= mu` comparison rejected it, and so must the proxy
        // test — clamping to −cos(π) would wrongly accept).
        let a = [1.0, 0.0];
        let b = [-1.0, 0.0];
        let metric = Metric::Angular;
        let p = metric.proxy(&a, &b);
        assert!(p < metric.proxy_from_dist(3.5));
        assert!(!metric.proxy_at_least(&a, &b, 1.0, 1.0, metric.proxy_from_dist(3.5)));
        // At exactly π the pair still qualifies.
        assert!(p >= metric.proxy_from_dist(std::f64::consts::PI));
    }

    #[test]
    fn bounded_kernels_bit_match_full_kernels_without_exit() {
        // With bound = +∞ the bounded scans never exit early and must
        // produce the decision of the bit-identical full sum; probe that the
        // boundary value itself matches for every remainder class.
        for len in 0..40usize {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.9).sin() * 3.0).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 1.7).cos() * 3.0).collect();
            let sq = kernels::sum_sq_diff(&a, &b);
            let ab = kernels::sum_abs_diff(&a, &b);
            // The exact full-kernel value used as the bound: `>=` must hold,
            // and any value strictly above must not.
            assert!(kernels::sum_sq_diff_at_least(&a, &b, sq));
            assert!(kernels::sum_abs_diff_at_least(&a, &b, ab));
            if len > 0 {
                assert!(!kernels::sum_sq_diff_at_least(
                    &a,
                    &b,
                    sq + sq.abs() * 1e-15 + 1e-300
                ));
                assert!(!kernels::sum_abs_diff_at_least(
                    &a,
                    &b,
                    ab + ab.abs() * 1e-15 + 1e-300
                ));
            }
        }
    }

    #[test]
    fn kernels_handle_remainders() {
        // Lengths 0..9 cover every chunks_exact(4) remainder.
        for len in 0..9usize {
            let a: Vec<f64> = (0..len).map(|i| i as f64 * 1.5 - 2.0).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64).cos()).collect();
            let naive_sq: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            let naive_abs: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            let naive_dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((kernels::sum_sq_diff(&a, &b) - naive_sq).abs() < 1e-12);
            assert!((kernels::sum_abs_diff(&a, &b) - naive_abs).abs() < 1e-12);
            assert!((kernels::dot(&a, &b) - naive_dot).abs() < 1e-12);
        }
    }

    #[test]
    fn names_match_paper_table1() {
        assert_eq!(Metric::Euclidean.name(), "Euclidean");
        assert_eq!(Metric::Manhattan.name(), "Manhattan");
        assert_eq!(Metric::Angular.name(), "Angular");
    }

    #[test]
    fn serde_round_trip() {
        for metric in [Metric::Euclidean, Metric::Minkowski(2.5), Metric::Angular] {
            let json = serde_json::to_string(&metric).unwrap();
            let back: Metric = serde_json::from_str(&json).unwrap();
            assert_eq!(metric, back);
        }
    }
}
