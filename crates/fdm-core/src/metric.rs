//! Distance metrics.
//!
//! Every algorithm in this crate interacts with the data exclusively through
//! a [`Metric`], mirroring the paper's metric-space formulation (§III-A): the
//! distance function must be non-negative, symmetric, and satisfy the
//! triangle inequality. The paper's experiments use Euclidean (Adult,
//! Synthetic), Manhattan (CelebA, Census), and Angular (Lyrics) distances;
//! Chebyshev and general Minkowski are provided for completeness.
//!
//! The metric is an enum rather than a trait object or a generic parameter:
//! distance evaluation is the single hot operation of every algorithm, and a
//! small enum match compiles to a perfectly predicted branch while keeping
//! the public API object-safe and serializable.

use serde::{Deserialize, Serialize};

use crate::error::{FdmError, Result};

/// A distance metric over `&[f64]` points.
///
/// All variants are proper metrics (or, for [`Metric::Angular`], a metric on
/// the subspace of non-zero vectors): non-negative, symmetric, zero iff the
/// points coincide (up to floating-point), and triangle-inequality compliant.
///
/// # Examples
///
/// ```
/// use fdm_core::metric::Metric;
/// let a = [0.0, 0.0];
/// let b = [3.0, 4.0];
/// assert_eq!(Metric::Euclidean.dist(&a, &b), 5.0);
/// assert_eq!(Metric::Manhattan.dist(&a, &b), 7.0);
/// assert_eq!(Metric::Chebyshev.dist(&a, &b), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Metric {
    /// L2 distance: `sqrt(Σ (a_i − b_i)²)`.
    Euclidean,
    /// L1 distance: `Σ |a_i − b_i|`.
    Manhattan,
    /// L∞ distance: `max |a_i − b_i|`.
    Chebyshev,
    /// General Lp distance for `p ≥ 1`: `(Σ |a_i − b_i|^p)^(1/p)`.
    Minkowski(
        /// The order `p ≥ 1`.
        f64,
    ),
    /// Angular distance: `arccos(cos_sim(a, b)) ∈ [0, π]`.
    ///
    /// This is the metric used by the paper for the Lyrics dataset (LDA topic
    /// vectors). For vectors with non-negative coordinates the distance is at
    /// most `π/2`. Unlike raw cosine *dissimilarity*, the angle itself is a
    /// true metric.
    Angular,
}

impl Metric {
    /// Validates metric parameters (only [`Metric::Minkowski`] carries any).
    pub fn validate(&self) -> Result<()> {
        match self {
            Metric::Minkowski(p) if !(p.is_finite() && *p >= 1.0) => {
                Err(FdmError::InvalidMinkowskiOrder { p: *p })
            }
            _ => Ok(()),
        }
    }

    /// Computes the distance between two points.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the slices have equal length; in release builds the
    /// shorter length is used (standard zip semantics).
    #[inline]
    pub fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "points must have equal dimension");
        match self {
            Metric::Euclidean => euclidean(a, b),
            Metric::Manhattan => manhattan(a, b),
            Metric::Chebyshev => chebyshev(a, b),
            Metric::Minkowski(p) => minkowski(a, b, *p),
            Metric::Angular => angular(a, b),
        }
    }

    /// Human-readable metric name as used in the paper's Table I.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Euclidean => "Euclidean",
            Metric::Manhattan => "Manhattan",
            Metric::Chebyshev => "Chebyshev",
            Metric::Minkowski(_) => "Minkowski",
            Metric::Angular => "Angular",
        }
    }
}

#[inline]
fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc.sqrt()
}

#[inline]
fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += (x - y).abs();
    }
    acc
}

#[inline]
fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0_f64;
    for (x, y) in a.iter().zip(b.iter()) {
        acc = acc.max((x - y).abs());
    }
    acc
}

#[inline]
fn minkowski(a: &[f64], b: &[f64], p: f64) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += (x - y).abs().powf(p);
    }
    acc.powf(1.0 / p)
}

#[inline]
fn angular(a: &[f64], b: &[f64]) -> f64 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        // The angle is undefined for the zero vector; treat it as orthogonal
        // to everything so degenerate inputs do not poison min-distances
        // with NaN.
        return std::f64::consts::FRAC_PI_2;
    }
    let cos = (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0);
    cos.acos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    #[test]
    fn euclidean_basic() {
        assert!((Metric::Euclidean.dist(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < EPS);
        assert_eq!(Metric::Euclidean.dist(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn manhattan_basic() {
        assert!((Metric::Manhattan.dist(&[1.0, -1.0], &[-2.0, 3.0]) - 7.0).abs() < EPS);
    }

    #[test]
    fn chebyshev_basic() {
        assert!((Metric::Chebyshev.dist(&[1.0, -1.0], &[-2.0, 3.0]) - 4.0).abs() < EPS);
    }

    #[test]
    fn minkowski_interpolates_l1_l2() {
        let a = [0.2, -0.7, 1.3];
        let b = [-0.4, 0.9, 0.1];
        assert!(
            (Metric::Minkowski(1.0).dist(&a, &b) - Metric::Manhattan.dist(&a, &b)).abs() < EPS
        );
        assert!(
            (Metric::Minkowski(2.0).dist(&a, &b) - Metric::Euclidean.dist(&a, &b)).abs() < EPS
        );
    }

    #[test]
    fn minkowski_order_validation() {
        assert!(Metric::Minkowski(0.5).validate().is_err());
        assert!(Metric::Minkowski(f64::NAN).validate().is_err());
        assert!(Metric::Minkowski(3.0).validate().is_ok());
        assert!(Metric::Euclidean.validate().is_ok());
    }

    #[test]
    fn angular_right_angle_and_parallel() {
        let d = Metric::Angular.dist(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - FRAC_PI_2).abs() < EPS);
        let d = Metric::Angular.dist(&[1.0, 1.0], &[2.0, 2.0]);
        assert!(d.abs() < 1e-7, "parallel vectors have zero angle, got {d}");
        let d = Metric::Angular.dist(&[1.0, 0.0], &[-1.0, 0.0]);
        assert!((d - PI).abs() < 1e-7);
    }

    #[test]
    fn angular_zero_vector_is_orthogonalized() {
        let d = Metric::Angular.dist(&[0.0, 0.0], &[1.0, 0.0]);
        assert!((d - FRAC_PI_2).abs() < EPS);
        assert!(d.is_finite());
    }

    #[test]
    fn all_metrics_are_symmetric_on_samples() {
        let pts = [
            vec![0.0, 1.0, -2.0],
            vec![3.5, -0.5, 0.25],
            vec![-1.0, -1.0, -1.0],
        ];
        let metrics = [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Minkowski(3.0),
            Metric::Angular,
        ];
        for metric in metrics {
            for a in &pts {
                for b in &pts {
                    let d1 = metric.dist(a, b);
                    let d2 = metric.dist(b, a);
                    assert!((d1 - d2).abs() < 1e-12, "{metric:?} not symmetric");
                    assert!(d1 >= 0.0);
                }
            }
        }
    }

    #[test]
    fn names_match_paper_table1() {
        assert_eq!(Metric::Euclidean.name(), "Euclidean");
        assert_eq!(Metric::Manhattan.name(), "Manhattan");
        assert_eq!(Metric::Angular.name(), "Angular");
    }

    #[test]
    fn serde_round_trip() {
        for metric in [Metric::Euclidean, Metric::Minkowski(2.5), Metric::Angular] {
            let json = serde_json::to_string(&metric).unwrap();
            let back: Metric = serde_json::from_str(&json).unwrap();
            assert_eq!(metric, back);
        }
    }
}
