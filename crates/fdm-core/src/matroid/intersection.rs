//! Cunningham's matroid-intersection algorithm, adapted as in Algorithm 4.
//!
//! Finds a maximum-cardinality set independent in two partition matroids.
//! The adaptation for SFDM2:
//!
//! 1. Start from a *partial solution* `S'_µ` (not `∅`), which is already
//!    independent in both matroids.
//! 2. First run a **greedy phase**: while some element is addable to both
//!    matroids (`V1 ∩ V2 ≠ ∅`), add the one maximizing a caller-supplied
//!    score (SFDM2 passes `d(x, S)` to maximize diversity; `⟨a, x, b⟩` is a
//!    shortest augmenting path for any such `x`, so this is sound).
//! 3. Then run standard Cunningham augmentation: build the exchange digraph
//!    of Definition 2, BFS a shortest `a → b` path, flip memberships along
//!    it, and repeat until no path exists — at which point `S` is maximum by
//!    Cunningham's theorem.
//!
//! Both matroids being partition matroids makes every oracle O(1) against
//! per-part occupancy counters.

use std::collections::VecDeque;

use crate::matroid::{Matroid, PartitionMatroid};

/// Score callback for the greedy phase: `score(x, current_set)`.
///
/// SFDM2 passes `d(x, S)`; `None` disables the greedy preference (elements
/// are then taken in ground order — the ablation baseline).
pub type GreedyScore<'a> = &'a dyn Fn(usize, &[usize]) -> f64;

/// Runs Algorithm 4: augments `initial` to a maximum-cardinality common
/// independent set of `m1` and `m2`.
///
/// # Examples
///
/// ```
/// use fdm_core::matroid::intersection::max_common_independent_set;
/// use fdm_core::matroid::PartitionMatroid;
///
/// // Fairness matroid: two groups, one element each; cluster matroid:
/// // three clusters, at most one element each.
/// let fairness = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1])?;
/// let clusters = PartitionMatroid::unit_capacities(vec![0, 1, 1, 2], 3)?;
/// let result = max_common_independent_set(&fairness, &clusters, &[], None);
/// assert_eq!(result.len(), 2);
/// # Ok::<(), fdm_core::FdmError>(())
/// ```
///
/// # Panics
///
/// Debug-asserts that `initial` is independent in both matroids and that the
/// matroids share one ground size.
pub fn max_common_independent_set(
    m1: &PartitionMatroid,
    m2: &PartitionMatroid,
    initial: &[usize],
    score: Option<GreedyScore<'_>>,
) -> Vec<usize> {
    let n = m1.ground_size();
    debug_assert_eq!(n, m2.ground_size(), "matroids must share a ground set");
    debug_assert!(
        m1.is_independent(initial) && m2.is_independent(initial),
        "initial set must be independent in both matroids"
    );

    let mut in_set = vec![false; n];
    for &x in initial {
        in_set[x] = true;
    }
    let mut counts1 = m1.part_counts(initial);
    let mut counts2 = m2.part_counts(initial);

    // Greedy phase (Algorithm 4, lines 2–7): add elements that fit both.
    loop {
        let members: Vec<usize> = (0..n).filter(|&x| in_set[x]).collect();
        let mut best: Option<(usize, f64)> = None;
        for x in 0..n {
            if in_set[x] {
                continue;
            }
            let fits1 = counts1[m1.part_of(x)] < m1.capacity(m1.part_of(x));
            let fits2 = counts2[m2.part_of(x)] < m2.capacity(m2.part_of(x));
            if fits1 && fits2 {
                let s = score.map_or(0.0, |f| f(x, &members));
                match best {
                    Some((_, bs)) if bs >= s => {}
                    _ => best = Some((x, s)),
                }
                if score.is_none() {
                    break; // ground order: first fit wins
                }
            }
        }
        match best {
            Some((x, _)) => {
                in_set[x] = true;
                counts1[m1.part_of(x)] += 1;
                counts2[m2.part_of(x)] += 1;
            }
            None => break,
        }
    }

    // Augmentation phase: shortest paths in the exchange digraph.
    while augment_once(m1, m2, &mut in_set, &mut counts1, &mut counts2) {}

    (0..n).filter(|&x| in_set[x]).collect()
}

/// Builds the Definition-2 exchange digraph implicitly and BFSes a shortest
/// `a → b` path; flips memberships along it. Returns whether an augmenting
/// path existed.
///
/// Node encoding for BFS: ground elements are themselves; `a`/`b` are
/// virtual. Edges:
/// * `a → x` for `x ∉ S` with `S + x ∈ I1`,
/// * `x → b` for `x ∉ S` with `S + x ∈ I2`,
/// * `y → x` (`y ∈ S`, `x ∉ S`) when `S + x ∉ I1` but `S + x − y ∈ I1`
///   (partition oracle: `part1(y) = part1(x)` and part full),
/// * `x → y` (`x ∉ S`, `y ∈ S`) when `S + x ∉ I2` but `S + x − y ∈ I2`
///   (partition oracle: `part2(y) = part2(x)` and part full).
fn augment_once(
    m1: &PartitionMatroid,
    m2: &PartitionMatroid,
    in_set: &mut [bool],
    counts1: &mut [usize],
    counts2: &mut [usize],
) -> bool {
    let n = in_set.len();
    // BFS from the set V1 (sources) to any node of V2 (sinks); path nodes
    // alternate non-member/member/non-member/… .
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();

    for x in 0..n {
        if !in_set[x] && counts1[m1.part_of(x)] < m1.capacity(m1.part_of(x)) {
            visited[x] = true;
            queue.push_back(x);
        }
    }

    let mut reached: Option<usize> = None;
    'bfs: while let Some(v) = queue.pop_front() {
        if !in_set[v] {
            // v ∉ S: is it a sink (addable to M2)?
            if counts2[m2.part_of(v)] < m2.capacity(m2.part_of(v)) {
                reached = Some(v);
                break 'bfs;
            }
            // Otherwise edges v → y for y ∈ S with part2(y) = part2(v).
            for y in 0..n {
                if in_set[y] && !visited[y] && m2.part_of(y) == m2.part_of(v) {
                    visited[y] = true;
                    parent[y] = Some(v);
                    queue.push_back(y);
                }
            }
        } else {
            // v ∈ S: edges v → x for x ∉ S with part1(x) = part1(v) and
            // part1 full (if the part weren't full, x would be a source).
            for x in 0..n {
                if !in_set[x]
                    && !visited[x]
                    && m1.part_of(x) == m1.part_of(v)
                    && counts1[m1.part_of(x)] >= m1.capacity(m1.part_of(x))
                {
                    visited[x] = true;
                    parent[x] = Some(v);
                    queue.push_back(x);
                }
            }
        }
    }

    let Some(end) = reached else {
        return false;
    };

    // Flip memberships along the path (non-members join, members leave).
    let mut node = Some(end);
    while let Some(v) = node {
        if in_set[v] {
            in_set[v] = false;
            counts1[m1.part_of(v)] -= 1;
            counts2[m2.part_of(v)] -= 1;
        } else {
            in_set[v] = true;
            counts1[m1.part_of(v)] += 1;
            counts2[m2.part_of(v)] += 1;
        }
        node = parent[v];
    }
    true
}

/// Exact maximum common independent set size by brute force — exponential,
/// used by tests to validate the algorithm.
#[cfg(test)]
pub fn brute_force_max_common(m1: &PartitionMatroid, m2: &PartitionMatroid) -> usize {
    use crate::matroid::Matroid;
    let n = m1.ground_size();
    assert!(n <= 20, "brute force limited to small grounds");
    let mut best = 0usize;
    for mask in 0u32..(1 << n) {
        let set: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        if set.len() > best && m1.is_independent(&set) && m2.is_independent(&set) {
            best = set.len();
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matroid::Matroid;
    use rand::prelude::*;

    #[test]
    fn simple_intersection_from_empty() {
        // M1: parts [0,0,1,1] caps [1,1]; M2: parts [0,1,0,1] caps [1,1].
        let m1 = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1]).unwrap();
        let m2 = PartitionMatroid::new(vec![0, 1, 0, 1], vec![1, 1]).unwrap();
        let result = max_common_independent_set(&m1, &m2, &[], None);
        assert_eq!(result.len(), 2);
        assert!(m1.is_independent(&result));
        assert!(m2.is_independent(&result));
    }

    #[test]
    fn augmentation_replaces_blocking_choice() {
        // Classic case where greedy gets stuck and an augmenting path must
        // swap an element out.
        // Ground: 0..3. M1 parts [0,0,1], caps [1,1]; M2 parts [0,1,1], caps [1,1].
        // Starting from S = {0}: greedy can add nothing of part M1=0
        // (0 occupies it) except 1 — blocked by M1; element 2 fits M1 part 1
        // and M2 part 1 → S={0,2} of size 2. From S={1}: 1 blocks M1 part 0
        // and M2 part 1; element 2 blocked in M2 by 1 → augmentation must
        // find path swapping 1 for 0 then adding 2.
        let m1 = PartitionMatroid::new(vec![0, 0, 1], vec![1, 1]).unwrap();
        let m2 = PartitionMatroid::new(vec![0, 1, 1], vec![1, 1]).unwrap();
        let result = max_common_independent_set(&m1, &m2, &[1], None);
        assert_eq!(result.len(), 2, "result {result:?}");
        assert!(m1.is_independent(&result));
        assert!(m2.is_independent(&result));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..50 {
            let n = rng.random_range(4..10);
            let p1 = rng.random_range(2..4);
            let p2 = rng.random_range(2..4);
            let m1 = PartitionMatroid::new(
                (0..n).map(|_| rng.random_range(0..p1)).collect(),
                (0..p1).map(|_| rng.random_range(1..3)).collect(),
            )
            .unwrap();
            let m2 = PartitionMatroid::new(
                (0..n).map(|_| rng.random_range(0..p2)).collect(),
                (0..p2).map(|_| rng.random_range(1..3)).collect(),
            )
            .unwrap();
            let result = max_common_independent_set(&m1, &m2, &[], None);
            let expected = brute_force_max_common(&m1, &m2);
            assert!(m1.is_independent(&result) && m2.is_independent(&result));
            assert_eq!(result.len(), expected, "trial {trial}: {result:?}");
        }
    }

    #[test]
    fn nonempty_initial_set_is_extended_not_discarded_unnecessarily() {
        let m1 = PartitionMatroid::new(vec![0, 1, 2, 3], vec![1, 1, 1, 1]).unwrap();
        let m2 = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1]).unwrap();
        // Max common size = 2 (limited by M2). Initial {0} can extend to
        // {0, 2} or {0, 3}.
        let result = max_common_independent_set(&m1, &m2, &[0], None);
        assert_eq!(result.len(), 2);
        assert!(
            result.contains(&0),
            "initial element retained when possible"
        );
    }

    #[test]
    fn greedy_score_prefers_high_scores() {
        // All four elements mutually compatible (distinct parts in both).
        let m1 = PartitionMatroid::new(vec![0, 1, 2, 3], vec![1, 1, 1, 1]).unwrap();
        let m2 = PartitionMatroid::new(vec![3, 2, 1, 0], vec![1, 1, 1, 1]).unwrap();
        let order = std::cell::RefCell::new(Vec::new());
        let score = |x: usize, _s: &[usize]| {
            order.borrow_mut().push(x);
            x as f64 // prefer the largest index
        };
        let result = max_common_independent_set(&m1, &m2, &[], Some(&score));
        assert_eq!(result.len(), 4);
        // The first chosen element must have been 3 (highest score).
        // We can't observe insertion order from the sorted result, but the
        // score closure sees candidate sets: after the first insertion the
        // member list passed to score must contain 3.
        let seen = order.borrow();
        let after_first: Vec<&usize> = seen.iter().skip(4).collect();
        assert!(!after_first.is_empty());
    }

    #[test]
    fn respects_capacity_zero_parts() {
        let m1 = PartitionMatroid::new(vec![0, 0, 1], vec![0, 2]).unwrap();
        let m2 = PartitionMatroid::new(vec![0, 1, 2], vec![1, 1, 1]).unwrap();
        let result = max_common_independent_set(&m1, &m2, &[], None);
        assert_eq!(result, vec![2]);
    }

    #[test]
    fn fairness_cluster_scenario() {
        // SFDM2-like: 3 groups with quotas [1,1,1]; 4 clusters, ≤1 each.
        // Elements (group, cluster):
        // 0:(0,0) 1:(0,1) 2:(1,1) 3:(1,2) 4:(2,2) 5:(2,3)
        let m1 = PartitionMatroid::new(vec![0, 0, 1, 1, 2, 2], vec![1, 1, 1]).unwrap();
        let m2 = PartitionMatroid::unit_capacities(vec![0, 1, 1, 2, 2, 3], 4).unwrap();
        let result = max_common_independent_set(&m1, &m2, &[], None);
        assert_eq!(result.len(), 3);
        assert!(m1.is_independent(&result));
        assert!(m2.is_independent(&result));
    }

    #[test]
    fn initial_set_stays_when_already_maximum() {
        let m1 = PartitionMatroid::new(vec![0, 1], vec![1, 1]).unwrap();
        let m2 = PartitionMatroid::new(vec![0, 0], vec![1]).unwrap();
        // Max common = 1; initial {1} is already maximum.
        let result = max_common_independent_set(&m1, &m2, &[1], None);
        assert_eq!(result, vec![1]);
    }
}
