//! Matroids and matroid intersection.
//!
//! The fairness constraint is a rank-`k` **partition matroid** over the
//! ground set (at most `k_i` elements from each group), and SFDM2's
//! clustering step induces a second partition matroid (at most one element
//! per cluster); augmenting a partial solution to a fair one is then a
//! maximum-cardinality **matroid intersection** problem solved with
//! Cunningham's algorithm (§III-A, §IV-B, Algorithm 4).
//!
//! [`PartitionMatroid`] provides O(1) incremental independence oracles via
//! per-part counters; the generic [`Matroid`] trait exists so tests can
//! assert the matroid axioms and so the intersection algorithm's contract is
//! explicit.

pub mod intersection;

use crate::error::{FdmError, Result};

/// A matroid `M = (V, I)` over ground set `0..ground_size()`.
///
/// Implementations must satisfy the matroid axioms: `∅ ∈ I`, heredity
/// (subsets of independent sets are independent), and augmentation (a larger
/// independent set always lends an element to a smaller one). The test suite
/// checks these axioms for [`PartitionMatroid`] by brute force on small
/// grounds.
pub trait Matroid {
    /// Size of the ground set `|V|`.
    fn ground_size(&self) -> usize;

    /// Whether the given set (as a sorted-or-not slice of distinct ground
    /// indices) is independent.
    fn is_independent(&self, set: &[usize]) -> bool;

    /// Rank of the matroid (size of every maximal independent set).
    fn rank(&self) -> usize;
}

/// A partition matroid: the ground set is partitioned into parts, and a set
/// is independent iff it holds at most `capacity[p]` elements of each part
/// `p`.
#[derive(Debug, Clone)]
pub struct PartitionMatroid {
    part_of: Vec<usize>,
    capacity: Vec<usize>,
}

impl PartitionMatroid {
    /// Creates a partition matroid from a part label per ground element and
    /// a capacity per part.
    pub fn new(part_of: Vec<usize>, capacity: Vec<usize>) -> Result<Self> {
        for &p in &part_of {
            if p >= capacity.len() {
                return Err(FdmError::InvalidGroup {
                    group: p,
                    num_groups: capacity.len(),
                });
            }
        }
        Ok(PartitionMatroid { part_of, capacity })
    }

    /// Creates the rank-`l` "at most one per part" matroid used for SFDM2's
    /// cluster constraint.
    pub fn unit_capacities(part_of: Vec<usize>, num_parts: usize) -> Result<Self> {
        PartitionMatroid::new(part_of, vec![1; num_parts])
    }

    /// Part label of ground element `x`.
    #[inline]
    pub fn part_of(&self, x: usize) -> usize {
        self.part_of[x]
    }

    /// Capacity of part `p`.
    #[inline]
    pub fn capacity(&self, p: usize) -> usize {
        self.capacity[p]
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.capacity.len()
    }

    /// Per-part occupancy of `set` — the incremental oracle state used by
    /// the intersection algorithm.
    pub fn part_counts(&self, set: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.capacity.len()];
        for &x in set {
            counts[self.part_of[x]] += 1;
        }
        counts
    }
}

impl Matroid for PartitionMatroid {
    fn ground_size(&self) -> usize {
        self.part_of.len()
    }

    fn is_independent(&self, set: &[usize]) -> bool {
        let counts = self.part_counts(set);
        counts.iter().zip(&self.capacity).all(|(&c, &cap)| c <= cap)
    }

    fn rank(&self) -> usize {
        // Rank = Σ min(cap_p, |part p|).
        let mut sizes = vec![0usize; self.capacity.len()];
        for &p in &self.part_of {
            sizes[p] += 1;
        }
        sizes
            .iter()
            .zip(&self.capacity)
            .map(|(&s, &c)| s.min(c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PartitionMatroid {
        // Ground 0..6, parts [0,0,1,1,1,2], caps [1,2,1].
        PartitionMatroid::new(vec![0, 0, 1, 1, 1, 2], vec![1, 2, 1]).unwrap()
    }

    #[test]
    fn independence_basic() {
        let m = sample();
        assert!(m.is_independent(&[]));
        assert!(m.is_independent(&[0, 2, 3, 5]));
        assert!(!m.is_independent(&[0, 1])); // part 0 over capacity
        assert!(!m.is_independent(&[2, 3, 4])); // part 1 over capacity
    }

    #[test]
    fn rank_accounts_for_small_parts() {
        let m = sample();
        assert_eq!(m.rank(), 1 + 2 + 1);
        // A part with fewer elements than capacity contributes its size.
        let m2 = PartitionMatroid::new(vec![0], vec![5, 7]).unwrap();
        assert_eq!(m2.rank(), 1);
    }

    #[test]
    fn rejects_out_of_range_part() {
        assert!(PartitionMatroid::new(vec![0, 3], vec![1, 1]).is_err());
    }

    #[test]
    fn unit_capacities_matroid() {
        let m = PartitionMatroid::unit_capacities(vec![0, 0, 1], 2).unwrap();
        assert!(m.is_independent(&[0, 2]));
        assert!(!m.is_independent(&[0, 1]));
        assert_eq!(m.rank(), 2);
    }

    /// Brute-force check of the three matroid axioms on a small ground set.
    #[test]
    fn matroid_axioms_hold() {
        let m = sample();
        let n = m.ground_size();
        let all_sets: Vec<Vec<usize>> = (0..(1u32 << n))
            .map(|mask| (0..n).filter(|&i| mask & (1 << i) != 0).collect())
            .collect();
        // Axiom 1: empty set independent.
        assert!(m.is_independent(&[]));
        for a in &all_sets {
            if !m.is_independent(a) {
                continue;
            }
            // Axiom 2 (heredity): all subsets independent.
            for b in &all_sets {
                if b.iter().all(|x| a.contains(x)) {
                    assert!(m.is_independent(b), "heredity violated: {a:?} ⊇ {b:?}");
                }
            }
            // Axiom 3 (augmentation).
            for b in &all_sets {
                if m.is_independent(b) && a.len() > b.len() {
                    let found = a.iter().any(|&x| {
                        if b.contains(&x) {
                            return false;
                        }
                        let mut bx = b.clone();
                        bx.push(x);
                        m.is_independent(&bx)
                    });
                    assert!(found, "augmentation violated for A={a:?}, B={b:?}");
                }
            }
        }
    }

    #[test]
    fn part_counts() {
        let m = sample();
        assert_eq!(m.part_counts(&[0, 2, 3]), vec![1, 2, 0]);
        assert_eq!(m.part_counts(&[]), vec![0, 0, 0]);
    }
}
