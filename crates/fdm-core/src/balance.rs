//! Swap-based balancing of a group-blind solution (m = 2).
//!
//! This is the post-processing step shared by the paper's SFDM1
//! (Algorithm 2, lines 10–17) and the offline FairSwap baseline: given a
//! group-blind solution `S` of size `k = k_1 + k_2` and a group-specific
//! pool for the under-filled group, first insert the pool elements furthest
//! from the under-filled members already in `S`, then delete the over-filled
//! elements closest to the (now complete) under-filled side. Lemma 2 shows
//! this loses at most a factor 2 of the candidate's guarantee `µ`.
//!
//! Solutions and pools are [`PointId`] lists into a shared [`PointStore`]
//! (the streaming algorithm's retained-element arena, or a dataset's arena
//! for FairSwap); all nearest-member scans run in proxy space over
//! contiguous rows.

use crate::fairness::FairnessConstraint;
use crate::metric::Metric;
use crate::point::{PointId, PointStore};

/// How balancing picks elements to insert/delete — the paper's greedy rule
/// versus an arbitrary (first-eligible) rule, kept for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SwapStrategy {
    /// Paper's rule: insert `argmax d(x, S ∩ X_u)`, delete
    /// `argmin d(x, S ∩ X_u)` (GMM-style, minimizes diversity loss).
    #[default]
    Greedy,
    /// First-eligible rule (no distance computations); ablation baseline.
    Arbitrary,
}

/// Balances a two-group solution in place so that it satisfies `constraint`.
///
/// * `solution` — group-blind selection of size `k` (modified in place).
/// * `pools` — per-group id pools to draw insertions from; pool `i`
///   must hold at least `k_i` elements pairwise ≥ the candidate guarantee
///   apart for Lemma 2's bound to apply, but the routine works for any pool.
///
/// Identity is by **external id** (two arena entries for the same stream
/// element count as one), matching the stream-element semantics.
///
/// Returns `false` (leaving `solution` untouched) when balancing is
/// impossible: more than two groups out of balance, or the under-filled
/// pool has too few usable elements.
pub fn balance_two_groups(
    store: &PointStore,
    solution: &mut Vec<PointId>,
    pools: &[Vec<PointId>],
    constraint: &FairnessConstraint,
    metric: Metric,
    strategy: SwapStrategy,
) -> bool {
    debug_assert_eq!(constraint.num_groups(), 2);
    debug_assert_eq!(pools.len(), 2);
    let counts = count_groups(store, solution, 2);
    if constraint.is_satisfied_by(&counts) {
        return true;
    }
    // Exactly one group is under-filled when |S| = k and m = 2.
    let under = if counts[0] < constraint.quota(0) {
        0
    } else {
        1
    };
    let over = 1 - under;
    if counts[over] < constraint.quota(over) {
        return false;
    }

    let original = solution.clone();

    // Insertion phase: add pool elements of the under-filled group.
    while count_group(store, solution, under) < constraint.quota(under) {
        let in_solution: Vec<PointId> = solution
            .iter()
            .copied()
            .filter(|&id| store.group(id) == under)
            .collect();
        let candidate = pools[under]
            .iter()
            .copied()
            .filter(|&x| {
                let ext = store.external_id(x);
                !solution.iter().any(|&s| store.external_id(s) == ext)
            })
            .map(|x| (x, proxy_to_set(store, x, &in_solution, metric)))
            .filter(|&(_, p)| p > metric.proxy_from_dist(0.0))
            .max_by(|a, b| match strategy {
                SwapStrategy::Greedy => a.1.partial_cmp(&b.1).unwrap(),
                // Arbitrary: prefer the earliest pool element.
                SwapStrategy::Arbitrary => std::cmp::Ordering::Greater,
            });
        match candidate {
            Some((x, _)) => solution.push(x),
            None => {
                *solution = original;
                return false;
            }
        }
    }

    // Deletion phase: drop over-filled elements closest to the under side.
    while solution.len() > constraint.total() {
        let under_members: Vec<PointId> = solution
            .iter()
            .copied()
            .filter(|&id| store.group(id) == under)
            .collect();
        let victim = solution
            .iter()
            .enumerate()
            .filter(|(_, &id)| store.group(id) == over)
            .map(|(pos, &id)| (pos, proxy_to_set(store, id, &under_members, metric)))
            .min_by(|a, b| match strategy {
                SwapStrategy::Greedy => a.1.partial_cmp(&b.1).unwrap(),
                SwapStrategy::Arbitrary => std::cmp::Ordering::Less,
            });
        match victim {
            Some((pos, _)) => {
                solution.swap_remove(pos);
            }
            None => {
                *solution = original;
                return false;
            }
        }
    }
    debug_assert!(constraint.is_satisfied_by(&count_groups(store, solution, 2)));
    true
}

/// Proxy distance from a point to its nearest neighbor among `set`
/// (`+∞` for an empty set, matching `d(x, ∅)`). Proxies are monotone in the
/// distance, so argmin/argmax and zero tests agree with true distances.
fn proxy_to_set(store: &PointStore, x: PointId, set: &[PointId], metric: Metric) -> f64 {
    let (row, norm) = (store.row(x), store.norm(x));
    set.iter()
        .map(|&e| metric.proxy_with_sqrt_norms(row, store.row(e), norm, store.norm(e)))
        .fold(f64::INFINITY, f64::min)
}

fn count_groups(store: &PointStore, solution: &[PointId], m: usize) -> Vec<usize> {
    let mut counts = vec![0usize; m];
    for &id in solution {
        counts[store.group(id)] += 1;
    }
    counts
}

fn count_group(store: &PointStore, solution: &[PointId], g: usize) -> usize {
    solution.iter().filter(|&&id| store.group(id) == g).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a store of 1-d points; returns ids keyed by the order given.
    fn store_of(points: &[(usize, f64, usize)]) -> (PointStore, Vec<PointId>) {
        let mut store = PointStore::new(1);
        let ids = points
            .iter()
            .map(|&(ext, x, group)| store.push(ext, &[x], group))
            .collect();
        (store, ids)
    }

    fn constraint_2_2() -> FairnessConstraint {
        FairnessConstraint::new(vec![2, 2]).unwrap()
    }

    fn ext_ids(store: &PointStore, ids: &[PointId]) -> Vec<usize> {
        ids.iter().map(|&id| store.external_id(id)).collect()
    }

    #[test]
    fn already_balanced_is_untouched() {
        let (store, ids) = store_of(&[(0, 0.0, 0), (1, 1.0, 1), (2, 2.0, 0), (3, 3.0, 1)]);
        let mut sol = ids.clone();
        let ok = balance_two_groups(
            &store,
            &mut sol,
            &[vec![], vec![]],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert!(ok);
        assert_eq!(ext_ids(&store, &sol), vec![0, 1, 2, 3]);
    }

    #[test]
    fn balances_one_under_filled_group() {
        // S has 3 of group 0, 1 of group 1; pool supplies group-1 elements.
        let (store, ids) = store_of(&[
            (0, 0.0, 0),
            (1, 10.0, 0),
            (2, 20.0, 0),
            (3, 30.0, 1),
            (10, 5.0, 1),
            (11, 15.0, 1),
            (12, 25.0, 1),
        ]);
        let mut sol = ids[..4].to_vec();
        let pool1 = ids[4..].to_vec();
        let ok = balance_two_groups(
            &store,
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert!(ok);
        assert_eq!(sol.len(), 4);
        assert_eq!(count_groups(&store, &sol, 2), vec![2, 2]);
    }

    #[test]
    fn greedy_insert_picks_furthest() {
        // Under group 1 has member at 30; pool has 29 (close) and 5 (far).
        let (store, ids) = store_of(&[
            (0, 0.0, 0),
            (1, 10.0, 0),
            (2, 20.0, 0),
            (3, 30.0, 1),
            (10, 29.0, 1),
            (11, 5.0, 1),
        ]);
        let mut sol = ids[..4].to_vec();
        let pool1 = ids[4..].to_vec();
        balance_two_groups(
            &store,
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        let exts = ext_ids(&store, &sol);
        assert!(exts.contains(&11), "furthest pool element chosen");
        assert!(!exts.contains(&10));
    }

    #[test]
    fn greedy_delete_removes_closest_to_under_side() {
        // After insertion, the group-0 member nearest the group-1 members
        // should be deleted.
        let (store, ids) = store_of(&[
            (0, 0.0, 0),
            (1, 4.9, 0), // closest to the inserted 5.0
            (2, 20.0, 0),
            (3, 30.0, 1),
            (11, 5.0, 1),
        ]);
        let mut sol = ids[..4].to_vec();
        let pool1 = ids[4..].to_vec();
        balance_two_groups(
            &store,
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert_eq!(count_groups(&store, &sol, 2), vec![2, 2]);
        assert!(
            !ext_ids(&store, &sol).contains(&1),
            "element 1 (at 4.9) should be removed"
        );
    }

    #[test]
    fn pool_elements_already_in_solution_are_skipped() {
        // The pool holds a *second arena entry* for stream element 3 (same
        // external id); identity is by external id, so it must be skipped.
        let (store, ids) = store_of(&[
            (0, 0.0, 0),
            (1, 10.0, 0),
            (2, 20.0, 0),
            (3, 30.0, 1),
            (3, 30.0, 1),
            (11, 5.0, 1),
        ]);
        let mut sol = ids[..4].to_vec();
        let pool1 = ids[4..].to_vec();
        let ok = balance_two_groups(
            &store,
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert!(ok);
        let exts = ext_ids(&store, &sol);
        assert!(exts.contains(&11));
        assert_eq!(exts.iter().filter(|&&i| i == 3).count(), 1);
    }

    #[test]
    fn impossible_balance_reports_failure_and_restores() {
        let (store, ids) = store_of(&[(0, 0.0, 0), (1, 10.0, 0), (2, 20.0, 0), (3, 30.0, 0)]);
        let mut sol = ids.clone();
        let ok = balance_two_groups(
            &store,
            &mut sol,
            &[vec![], vec![]], // no pool for group 1
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert!(!ok);
        assert_eq!(ext_ids(&store, &sol), vec![0, 1, 2, 3]);
    }

    #[test]
    fn arbitrary_strategy_also_balances() {
        let (store, ids) = store_of(&[
            (0, 0.0, 0),
            (1, 10.0, 0),
            (2, 20.0, 0),
            (3, 30.0, 1),
            (10, 29.0, 1),
            (11, 5.0, 1),
        ]);
        let mut sol = ids[..4].to_vec();
        let pool1 = ids[4..].to_vec();
        let ok = balance_two_groups(
            &store,
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Arbitrary,
        );
        assert!(ok);
        assert_eq!(count_groups(&store, &sol, 2), vec![2, 2]);
    }

    #[test]
    fn duplicate_position_pool_element_is_not_inserted() {
        // Pool element coincides with an existing under-group member
        // (distance 0): it must be skipped, not inserted.
        let (store, ids) = store_of(&[
            (0, 0.0, 0),
            (1, 10.0, 0),
            (2, 20.0, 0),
            (3, 30.0, 1),
            (10, 30.0, 1),
            (11, 5.0, 1),
        ]);
        let mut sol = ids[..4].to_vec();
        let pool1 = ids[4..].to_vec();
        let ok = balance_two_groups(
            &store,
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert!(ok);
        let exts = ext_ids(&store, &sol);
        assert!(exts.contains(&11));
        assert!(!exts.contains(&10));
    }
}
