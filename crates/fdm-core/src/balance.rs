//! Swap-based balancing of a group-blind solution (m = 2).
//!
//! This is the post-processing step shared by the paper's SFDM1
//! (Algorithm 2, lines 10–17) and the offline FairSwap baseline: given a
//! group-blind solution `S` of size `k = k_1 + k_2` and a group-specific
//! pool for the under-filled group, first insert the pool elements furthest
//! from the under-filled members already in `S`, then delete the over-filled
//! elements closest to the (now complete) under-filled side. Lemma 2 shows
//! this loses at most a factor 2 of the candidate's guarantee `µ`.

use crate::fairness::FairnessConstraint;
use crate::metric::Metric;
use crate::point::Element;

/// How balancing picks elements to insert/delete — the paper's greedy rule
/// versus an arbitrary (first-eligible) rule, kept for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapStrategy {
    /// Paper's rule: insert `argmax d(x, S ∩ X_u)`, delete
    /// `argmin d(x, S ∩ X_u)` (GMM-style, minimizes diversity loss).
    #[default]
    Greedy,
    /// First-eligible rule (no distance computations); ablation baseline.
    Arbitrary,
}

/// Balances a two-group solution in place so that it satisfies `constraint`.
///
/// * `solution` — group-blind selection of size `k` (modified in place).
/// * `pools` — per-group element pools to draw insertions from; pool `i`
///   must hold at least `k_i` elements pairwise ≥ the candidate guarantee
///   apart for Lemma 2's bound to apply, but the routine works for any pool.
///
/// Returns `false` (leaving `solution` untouched) when balancing is
/// impossible: more than two groups out of balance, or the under-filled
/// pool has too few usable elements.
pub fn balance_two_groups(
    solution: &mut Vec<Element>,
    pools: &[Vec<Element>],
    constraint: &FairnessConstraint,
    metric: Metric,
    strategy: SwapStrategy,
) -> bool {
    debug_assert_eq!(constraint.num_groups(), 2);
    debug_assert_eq!(pools.len(), 2);
    let counts = count_groups(solution, 2);
    if constraint.is_satisfied_by(&counts) {
        return true;
    }
    // Exactly one group is under-filled when |S| = k and m = 2.
    let under = if counts[0] < constraint.quota(0) { 0 } else { 1 };
    let over = 1 - under;
    if counts[over] < constraint.quota(over) {
        return false;
    }

    let original = solution.clone();

    // Insertion phase: add pool elements of the under-filled group.
    while count_group(solution, under) < constraint.quota(under) {
        let in_solution: Vec<&Element> =
            solution.iter().filter(|e| e.group == under).collect();
        let candidate = pools[under]
            .iter()
            .filter(|x| !solution.iter().any(|e| e.id == x.id))
            .map(|x| {
                let d = dist_to_set(x, &in_solution, metric);
                (x, d)
            })
            .filter(|&(_, d)| d > 0.0)
            .max_by(|a, b| match strategy {
                SwapStrategy::Greedy => a.1.partial_cmp(&b.1).unwrap(),
                // Arbitrary: prefer the earliest pool element.
                SwapStrategy::Arbitrary => std::cmp::Ordering::Greater,
            });
        match candidate {
            Some((x, _)) => solution.push(x.clone()),
            None => {
                *solution = original;
                return false;
            }
        }
    }

    // Deletion phase: drop over-filled elements closest to the under side.
    while solution.len() > constraint.total() {
        let under_members: Vec<Element> =
            solution.iter().filter(|e| e.group == under).cloned().collect();
        let under_refs: Vec<&Element> = under_members.iter().collect();
        let victim = solution
            .iter()
            .enumerate()
            .filter(|(_, e)| e.group == over)
            .map(|(pos, e)| (pos, dist_to_set(e, &under_refs, metric)))
            .min_by(|a, b| match strategy {
                SwapStrategy::Greedy => a.1.partial_cmp(&b.1).unwrap(),
                SwapStrategy::Arbitrary => std::cmp::Ordering::Less,
            });
        match victim {
            Some((pos, _)) => {
                solution.swap_remove(pos);
            }
            None => {
                *solution = original;
                return false;
            }
        }
    }
    debug_assert!(constraint.is_satisfied_by(&count_groups(solution, 2)));
    true
}

/// Distance from an element to its nearest neighbor among `set`
/// (`+∞` for an empty set, matching `d(x, ∅)`).
fn dist_to_set(x: &Element, set: &[&Element], metric: Metric) -> f64 {
    set.iter()
        .map(|e| metric.dist(&x.point, &e.point))
        .fold(f64::INFINITY, f64::min)
}

fn count_groups(solution: &[Element], m: usize) -> Vec<usize> {
    let mut counts = vec![0usize; m];
    for e in solution {
        counts[e.group] += 1;
    }
    counts
}

fn count_group(solution: &[Element], g: usize) -> usize {
    solution.iter().filter(|e| e.group == g).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(id: usize, x: f64, group: usize) -> Element {
        Element::new(id, vec![x], group)
    }

    fn constraint_2_2() -> FairnessConstraint {
        FairnessConstraint::new(vec![2, 2]).unwrap()
    }

    #[test]
    fn already_balanced_is_untouched() {
        let mut sol = vec![elem(0, 0.0, 0), elem(1, 1.0, 1), elem(2, 2.0, 0), elem(3, 3.0, 1)];
        let before = sol.clone();
        let ok = balance_two_groups(
            &mut sol,
            &[vec![], vec![]],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert!(ok);
        assert_eq!(sol.len(), before.len());
        assert_eq!(sol.iter().map(|e| e.id).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn balances_one_under_filled_group() {
        // S has 3 of group 0, 1 of group 1; pool supplies group-1 elements.
        let mut sol = vec![elem(0, 0.0, 0), elem(1, 10.0, 0), elem(2, 20.0, 0), elem(3, 30.0, 1)];
        let pool1 = vec![elem(10, 5.0, 1), elem(11, 15.0, 1), elem(12, 25.0, 1)];
        let ok = balance_two_groups(
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert!(ok);
        assert_eq!(sol.len(), 4);
        assert_eq!(count_groups(&sol, 2), vec![2, 2]);
    }

    #[test]
    fn greedy_insert_picks_furthest() {
        // Under group 1 has member at 30; pool has 29 (close) and 5 (far).
        let mut sol = vec![elem(0, 0.0, 0), elem(1, 10.0, 0), elem(2, 20.0, 0), elem(3, 30.0, 1)];
        let pool1 = vec![elem(10, 29.0, 1), elem(11, 5.0, 1)];
        balance_two_groups(
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert!(sol.iter().any(|e| e.id == 11), "furthest pool element chosen");
        assert!(!sol.iter().any(|e| e.id == 10));
    }

    #[test]
    fn greedy_delete_removes_closest_to_under_side() {
        // After insertion, the group-0 member nearest the group-1 members
        // should be deleted.
        let mut sol = vec![
            elem(0, 0.0, 0),
            elem(1, 4.9, 0), // closest to the inserted 5.0
            elem(2, 20.0, 0),
            elem(3, 30.0, 1),
        ];
        let pool1 = vec![elem(11, 5.0, 1)];
        balance_two_groups(
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert_eq!(count_groups(&sol, 2), vec![2, 2]);
        assert!(!sol.iter().any(|e| e.id == 1), "element 1 (at 4.9) should be removed");
    }

    #[test]
    fn pool_elements_already_in_solution_are_skipped() {
        let shared = elem(3, 30.0, 1);
        let mut sol = vec![elem(0, 0.0, 0), elem(1, 10.0, 0), elem(2, 20.0, 0), shared.clone()];
        // Pool contains the shared element plus one new one.
        let pool1 = vec![shared, elem(11, 5.0, 1)];
        let ok = balance_two_groups(
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert!(ok);
        let ids: Vec<usize> = sol.iter().map(|e| e.id).collect();
        assert!(ids.contains(&11));
        assert_eq!(ids.iter().filter(|&&i| i == 3).count(), 1);
    }

    #[test]
    fn impossible_balance_reports_failure_and_restores() {
        let mut sol = vec![elem(0, 0.0, 0), elem(1, 10.0, 0), elem(2, 20.0, 0), elem(3, 30.0, 0)];
        let before: Vec<usize> = sol.iter().map(|e| e.id).collect();
        let ok = balance_two_groups(
            &mut sol,
            &[vec![], vec![]], // no pool for group 1
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert!(!ok);
        assert_eq!(sol.iter().map(|e| e.id).collect::<Vec<_>>(), before);
    }

    #[test]
    fn arbitrary_strategy_also_balances() {
        let mut sol = vec![elem(0, 0.0, 0), elem(1, 10.0, 0), elem(2, 20.0, 0), elem(3, 30.0, 1)];
        let pool1 = vec![elem(10, 29.0, 1), elem(11, 5.0, 1)];
        let ok = balance_two_groups(
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Arbitrary,
        );
        assert!(ok);
        assert_eq!(count_groups(&sol, 2), vec![2, 2]);
    }

    #[test]
    fn duplicate_position_pool_element_is_not_inserted() {
        // Pool element coincides with an existing under-group member
        // (distance 0): it must be skipped, not inserted.
        let mut sol = vec![elem(0, 0.0, 0), elem(1, 10.0, 0), elem(2, 20.0, 0), elem(3, 30.0, 1)];
        let pool1 = vec![elem(10, 30.0, 1), elem(11, 5.0, 1)];
        let ok = balance_two_groups(
            &mut sol,
            &[vec![], pool1],
            &constraint_2_2(),
            Metric::Euclidean,
            SwapStrategy::Greedy,
        );
        assert!(ok);
        assert!(sol.iter().any(|e| e.id == 11));
        assert!(!sol.iter().any(|e| e.id == 10));
    }
}
