//! Fairness over **two sensitive attributes** (extension).
//!
//! The paper's conclusion (§VI) lists "fairness constraints defined on
//! multiple sensitive attributes" as future work. This module implements
//! the natural two-attribute case by reduction to the single-attribute
//! problem the paper solves:
//!
//! 1. Each element carries two labels `(a, b)` with `a ∈ [m_A]`,
//!    `b ∈ [m_B]`, and the constraint demands `α_a` elements of each
//!    A-group and `β_b` of each B-group (`Σα = Σβ = k`).
//! 2. A per-cell quota matrix `q_{ab}` with row sums `α`, column sums `β`,
//!    and `q_{ab} ≤ availability_{ab}` is a **transportation problem**,
//!    solved exactly with the crate's Dinic [`crate::flow`] substrate
//!    (integral capacities ⇒ integral quotas).
//! 3. The product groups `(a, b)` with their cell quotas form an ordinary
//!    partition-matroid constraint, and [`crate::streaming::sfdm2::Sfdm2`]
//!    runs unchanged on the product labels; its `(1−ε)/(3m'+2)` guarantee
//!    (with `m'` = number of non-empty cells) carries over, and both
//!    marginals hold by construction.
//!
//! The cell availabilities must be known when the algorithm is constructed
//! (from dataset metadata or a prior counting pass — a one-integer-per-cell
//! sketch, not a data pass).

use crate::dataset::DistanceBounds;
use crate::error::{FdmError, Result};
use crate::fairness::FairnessConstraint;
use crate::flow::FlowNetwork;
use crate::metric::Metric;
use crate::point::Element;
use crate::solution::Solution;
use crate::streaming::sfdm2::{Sfdm2, Sfdm2Config};

/// Two-attribute fairness requirement.
#[derive(Debug, Clone)]
pub struct TwoAttributeConstraint {
    /// Quotas over the first attribute's groups (`Σ = k`).
    pub quotas_a: Vec<usize>,
    /// Quotas over the second attribute's groups (`Σ = k`).
    pub quotas_b: Vec<usize>,
}

impl TwoAttributeConstraint {
    /// Validates that both marginals are non-trivial and agree on `k`.
    pub fn new(quotas_a: Vec<usize>, quotas_b: Vec<usize>) -> Result<Self> {
        if quotas_a.is_empty() || quotas_b.is_empty() {
            return Err(FdmError::EmptyConstraint);
        }
        let ka: usize = quotas_a.iter().sum();
        let kb: usize = quotas_b.iter().sum();
        if ka != kb {
            return Err(FdmError::InfeasibleConstraint {
                group: 0,
                requested: ka,
                available: kb,
            });
        }
        if ka < 2 {
            return Err(FdmError::SolutionSizeTooSmall { k: ka });
        }
        Ok(TwoAttributeConstraint { quotas_a, quotas_b })
    }

    /// Total solution size `k`.
    pub fn total(&self) -> usize {
        self.quotas_a.iter().sum()
    }

    /// Checks a solution's `(a, b)` label pairs against both marginals.
    pub fn is_satisfied_by(&self, labels: &[(usize, usize)]) -> bool {
        if labels.len() != self.total() {
            return false;
        }
        let mut ca = vec![0usize; self.quotas_a.len()];
        let mut cb = vec![0usize; self.quotas_b.len()];
        for &(a, b) in labels {
            if a >= ca.len() || b >= cb.len() {
                return false;
            }
            ca[a] += 1;
            cb[b] += 1;
        }
        ca == self.quotas_a && cb == self.quotas_b
    }
}

/// Solves the transportation problem: a cell-quota matrix `q` with row sums
/// `quotas_a`, column sums `quotas_b`, and `q[a][b] ≤ availability[a][b]`.
///
/// Returns [`FdmError::InfeasibleConstraint`] when no such matrix exists
/// (by max-flow/min-cut this is exact, not heuristic).
pub fn derive_cell_quotas(
    constraint: &TwoAttributeConstraint,
    availability: &[Vec<usize>],
) -> Result<Vec<Vec<usize>>> {
    let ma = constraint.quotas_a.len();
    let mb = constraint.quotas_b.len();
    if availability.len() != ma || availability.iter().any(|row| row.len() != mb) {
        return Err(FdmError::DimensionMismatch {
            expected: ma * mb,
            found: availability.iter().map(Vec::len).sum(),
        });
    }
    let k = constraint.total();

    // Nodes: 0 = source, 1..=ma rows, ma+1..=ma+mb cols, last = sink.
    let source = 0;
    let row = |a: usize| 1 + a;
    let col = |b: usize| 1 + ma + b;
    let sink = 1 + ma + mb;
    let mut net = FlowNetwork::new(sink + 1);
    for (a, &qa) in constraint.quotas_a.iter().enumerate() {
        net.add_edge(source, row(a), qa as i64);
    }
    let mut cell_edges = Vec::new();
    for a in 0..ma {
        for b in 0..mb {
            if availability[a][b] > 0 {
                let h = net.add_edge(row(a), col(b), availability[a][b] as i64);
                cell_edges.push((a, b, h));
            }
        }
    }
    for (b, &qb) in constraint.quotas_b.iter().enumerate() {
        net.add_edge(col(b), sink, qb as i64);
    }
    let flow = net.max_flow(source, sink);
    if flow < k as i64 {
        return Err(FdmError::InfeasibleConstraint {
            group: 0,
            requested: k,
            available: flow.max(0) as usize,
        });
    }
    let mut quotas = vec![vec![0usize; mb]; ma];
    for &(a, b, h) in &cell_edges {
        quotas[a][b] = net.flow_on(h) as usize;
    }
    Ok(quotas)
}

/// Streaming FDM under a two-attribute constraint: SFDM2 on the product
/// groups with transportation-derived cell quotas.
#[derive(Debug, Clone)]
pub struct TwoAttributeSfdm {
    inner: Sfdm2,
    /// Dense product-group label per `(a, b)` cell; `usize::MAX` marks
    /// cells with zero quota (their elements are filtered out — a fair
    /// solution never contains them).
    cell_to_dense: Vec<Vec<usize>>,
    /// Transportation-derived per-cell quotas.
    cells: Vec<Vec<usize>>,
    constraint: TwoAttributeConstraint,
}

impl TwoAttributeSfdm {
    /// Builds the reduction. `availability[a][b]` is the number of stream
    /// elements with labels `(a, b)` (known from metadata or a counting
    /// pass).
    pub fn new(
        constraint: TwoAttributeConstraint,
        availability: &[Vec<usize>],
        epsilon: f64,
        bounds: DistanceBounds,
        metric: Metric,
    ) -> Result<Self> {
        let cells = derive_cell_quotas(&constraint, availability)?;
        let ma = constraint.quotas_a.len();
        let mb = constraint.quotas_b.len();
        let mut cell_to_dense = vec![vec![usize::MAX; mb]; ma];
        let mut dense_quotas = Vec::new();
        for a in 0..ma {
            for b in 0..mb {
                if cells[a][b] > 0 {
                    cell_to_dense[a][b] = dense_quotas.len();
                    dense_quotas.push(cells[a][b]);
                }
            }
        }
        if dense_quotas.len() < 2 {
            // SFDM2 needs at least two groups; a single-cell constraint is
            // equivalent to unconstrained selection within that cell, which
            // callers should run directly.
            return Err(FdmError::EmptyConstraint);
        }
        let product = FairnessConstraint::new(dense_quotas)?;
        let inner = Sfdm2::new(Sfdm2Config {
            constraint: product,
            epsilon,
            bounds,
            metric,
        })?;
        Ok(TwoAttributeSfdm {
            inner,
            cell_to_dense,
            cells,
            constraint,
        })
    }

    /// The derived per-cell quota of `(a, b)` (0 for filtered cells or
    /// out-of-range labels).
    pub fn cell_quota(&self, a: usize, b: usize) -> usize {
        self.cells
            .get(a)
            .and_then(|r| r.get(b))
            .copied()
            .unwrap_or(0)
    }

    /// Processes one element with labels `(a, b)`; elements in zero-quota
    /// cells are skipped (a fair solution can never include them).
    pub fn insert(&mut self, element: &Element, a: usize, b: usize) {
        let dense = match self.cell_to_dense.get(a).and_then(|r| r.get(b)) {
            Some(&d) if d != usize::MAX => d,
            _ => return,
        };
        let mut relabeled = element.clone();
        relabeled.group = dense;
        self.inner.insert(&relabeled);
    }

    /// Distinct retained element count.
    pub fn stored_elements(&self) -> usize {
        self.inner.stored_elements()
    }

    /// Finalizes the product-group solution; both attribute marginals hold
    /// by the transportation construction.
    pub fn finalize(&self) -> Result<Solution> {
        self.inner.finalize()
    }

    /// The original two-attribute constraint.
    pub fn constraint(&self) -> &TwoAttributeConstraint {
        &self.constraint
    }

    /// Maps a dense product label back to its `(a, b)` cell.
    pub fn dense_to_cell(&self, dense: usize) -> Option<(usize, usize)> {
        for (a, row) in self.cell_to_dense.iter().enumerate() {
            for (b, &d) in row.iter().enumerate() {
                if d == dense {
                    return Some((a, b));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use rand::prelude::*;

    fn availability_of(labels: &[(usize, usize)], ma: usize, mb: usize) -> Vec<Vec<usize>> {
        let mut avail = vec![vec![0usize; mb]; ma];
        for &(a, b) in labels {
            avail[a][b] += 1;
        }
        avail
    }

    #[test]
    fn constraint_validation() {
        assert!(TwoAttributeConstraint::new(vec![2, 2], vec![1, 3]).is_ok());
        assert!(
            TwoAttributeConstraint::new(vec![2, 2], vec![1, 1]).is_err(),
            "k mismatch"
        );
        assert!(TwoAttributeConstraint::new(vec![], vec![1]).is_err());
        assert!(
            TwoAttributeConstraint::new(vec![1], vec![1]).is_err(),
            "k < 2"
        );
    }

    #[test]
    fn satisfied_by_checks_both_marginals() {
        let c = TwoAttributeConstraint::new(vec![2, 1], vec![1, 2]).unwrap();
        assert!(c.is_satisfied_by(&[(0, 0), (0, 1), (1, 1)]));
        assert!(!c.is_satisfied_by(&[(0, 0), (0, 0), (1, 1)])); // B marginal off
        assert!(!c.is_satisfied_by(&[(0, 0), (0, 1)])); // wrong size
    }

    #[test]
    fn transportation_feasible_case() {
        let c = TwoAttributeConstraint::new(vec![2, 2], vec![2, 2]).unwrap();
        let avail = vec![vec![5, 5], vec![5, 5]];
        let q = derive_cell_quotas(&c, &avail).unwrap();
        // Row and column sums match.
        assert_eq!(q[0][0] + q[0][1], 2);
        assert_eq!(q[1][0] + q[1][1], 2);
        assert_eq!(q[0][0] + q[1][0], 2);
        assert_eq!(q[0][1] + q[1][1], 2);
    }

    #[test]
    fn transportation_respects_availability() {
        // Cell (0,0) empty forces all of row 0's quota through (0,1).
        let c = TwoAttributeConstraint::new(vec![2, 2], vec![2, 2]).unwrap();
        let avail = vec![vec![0, 5], vec![5, 5]];
        let q = derive_cell_quotas(&c, &avail).unwrap();
        assert_eq!(q[0][0], 0);
        assert_eq!(q[0][1], 2);
        assert_eq!(q[1][0], 2);
        assert_eq!(q[1][1], 0);
    }

    #[test]
    fn transportation_infeasible_case() {
        // Row 0 needs 3 but only 2 elements exist in row 0.
        let c = TwoAttributeConstraint::new(vec![3, 1], vec![2, 2]).unwrap();
        let avail = vec![vec![1, 1], vec![5, 5]];
        let err = derive_cell_quotas(&c, &avail).unwrap_err();
        assert!(matches!(err, FdmError::InfeasibleConstraint { .. }));
    }

    #[test]
    fn transportation_dimension_check() {
        let c = TwoAttributeConstraint::new(vec![2, 2], vec![2, 2]).unwrap();
        let bad = vec![vec![1, 1]];
        assert!(matches!(
            derive_cell_quotas(&c, &bad),
            Err(FdmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn end_to_end_two_attribute_stream() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 600;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
            .collect();
        let labels: Vec<(usize, usize)> = (0..n)
            .map(|_| (rng.random_range(0..2), rng.random_range(0..3)))
            .collect();
        let dataset = Dataset::from_rows(rows, vec![0; n], Metric::Euclidean).unwrap();

        let constraint = TwoAttributeConstraint::new(vec![3, 3], vec![2, 2, 2]).unwrap();
        let avail = availability_of(&labels, 2, 3);
        let bounds = dataset.exact_distance_bounds().unwrap();
        let mut alg =
            TwoAttributeSfdm::new(constraint.clone(), &avail, 0.1, bounds, Metric::Euclidean)
                .unwrap();
        for i in 0..n {
            alg.insert(&dataset.element(i), labels[i].0, labels[i].1);
        }
        let sol = alg.finalize().unwrap();
        assert_eq!(sol.len(), 6);
        // Recover (a, b) labels and check both marginals.
        let pairs: Vec<(usize, usize)> = sol
            .elements
            .iter()
            .map(|e| alg.dense_to_cell(e.group).expect("dense label maps back"))
            .collect();
        assert!(
            constraint.is_satisfied_by(&pairs),
            "marginals violated: {pairs:?}"
        );
        assert!(sol.diversity > 0.0);
    }

    #[test]
    fn zero_quota_cells_are_filtered() {
        // Availability concentrated so that cell (0,1) gets quota 0; its
        // elements must never be stored or selected.
        let constraint = TwoAttributeConstraint::new(vec![2, 2], vec![2, 2]).unwrap();
        let avail = vec![vec![10, 0], vec![10, 10]];
        let bounds = DistanceBounds::new(0.1, 100.0).unwrap();
        let mut alg =
            TwoAttributeSfdm::new(constraint, &avail, 0.1, bounds, Metric::Euclidean).unwrap();
        // Insert an element with labels in a zero-availability cell.
        let e = Element::new(0, vec![5.0, 5.0], 0);
        alg.insert(&e, 0, 1);
        assert_eq!(alg.stored_elements(), 0, "filtered cell element was stored");
    }

    #[test]
    fn single_cell_constraint_is_rejected() {
        let constraint = TwoAttributeConstraint::new(vec![2], vec![2]).unwrap();
        let avail = vec![vec![10]];
        let bounds = DistanceBounds::new(0.1, 100.0).unwrap();
        assert!(TwoAttributeSfdm::new(constraint, &avail, 0.1, bounds, Metric::Euclidean).is_err());
    }

    #[test]
    fn marginals_hold_over_many_seeds() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..5 {
            let n = 300;
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.random::<f64>() * 20.0, rng.random::<f64>() * 20.0])
                .collect();
            let labels: Vec<(usize, usize)> = (0..n)
                .map(|_| (rng.random_range(0..2), rng.random_range(0..2)))
                .collect();
            let dataset = Dataset::from_rows(rows, vec![0; n], Metric::Euclidean).unwrap();
            let constraint = TwoAttributeConstraint::new(vec![2, 2], vec![2, 2]).unwrap();
            let avail = availability_of(&labels, 2, 2);
            let bounds = dataset.exact_distance_bounds().unwrap();
            let mut alg =
                TwoAttributeSfdm::new(constraint.clone(), &avail, 0.1, bounds, Metric::Euclidean)
                    .unwrap();
            for i in 0..n {
                alg.insert(&dataset.element(i), labels[i].0, labels[i].1);
            }
            let sol = alg
                .finalize()
                .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            let pairs: Vec<(usize, usize)> = sol
                .elements
                .iter()
                .map(|e| alg.dense_to_cell(e.group).unwrap())
                .collect();
            assert!(
                constraint.is_satisfied_by(&pairs),
                "trial {trial}: {pairs:?}"
            );
        }
    }
}
