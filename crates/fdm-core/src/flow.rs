//! Dinic's maximum-flow algorithm.
//!
//! Substrate for the FairFlow baseline (Moumoulidou et al., ICDT 2021),
//! which reduces fair selection to a max-flow problem on a small bipartite
//! DAG: `source → groups → clusters → sink`. The networks are tiny
//! (`O(k + m + #clusters)` nodes), so a straightforward Dinic with BFS level
//! graphs and DFS blocking flows is more than fast enough, but the
//! implementation is a complete general-purpose solver with unit tests on
//! classic instances.

/// A directed edge with residual capacity.
#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    /// Remaining capacity.
    cap: i64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A max-flow network over nodes `0..n`.
///
/// Capacities are integral (`i64`); all the fair-selection reductions use
/// unit or quota capacities.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<FlowEdge>>,
    /// (from, index in graph[from]) for each added edge, in insertion order;
    /// lets callers recover per-edge flow after solving.
    edges: Vec<(usize, usize)>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from → to` with the given capacity and returns
    /// its handle for later [`FlowNetwork::flow_on`] queries.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or capacity is negative.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> usize {
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "node out of range"
        );
        assert!(cap >= 0, "capacity must be non-negative");
        let fwd_idx = self.graph[from].len();
        let rev_idx = self.graph[to].len() + usize::from(from == to);
        self.graph[from].push(FlowEdge {
            to,
            cap,
            rev: rev_idx,
        });
        self.graph[to].push(FlowEdge {
            to: from,
            cap: 0,
            rev: fwd_idx,
        });
        self.edges.push((from, fwd_idx));
        self.edges.len() - 1
    }

    /// Computes the maximum flow from `source` to `sink`, consuming residual
    /// capacities in place.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        assert!(source < self.graph.len() && sink < self.graph.len());
        if source == sink {
            return 0;
        }
        let n = self.graph.len();
        let mut total = 0i64;
        let mut level = vec![-1i32; n];
        let mut it = vec![0usize; n];
        loop {
            // BFS: build level graph.
            for l in level.iter_mut() {
                *l = -1;
            }
            level[source] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            while let Some(v) = queue.pop_front() {
                for e in &self.graph[v] {
                    if e.cap > 0 && level[e.to] < 0 {
                        level[e.to] = level[v] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[sink] < 0 {
                return total;
            }
            for i in it.iter_mut() {
                *i = 0;
            }
            // DFS blocking flow.
            loop {
                let f = self.dfs(source, sink, i64::MAX, &level, &mut it);
                if f == 0 {
                    break;
                }
                total += f;
            }
        }
    }

    fn dfs(&mut self, v: usize, sink: usize, limit: i64, level: &[i32], it: &mut [usize]) -> i64 {
        if v == sink {
            return limit;
        }
        while it[v] < self.graph[v].len() {
            let (to, cap, rev) = {
                let e = &self.graph[v][it[v]];
                (e.to, e.cap, e.rev)
            };
            if cap > 0 && level[to] == level[v] + 1 {
                let d = self.dfs(to, sink, limit.min(cap), level, it);
                if d > 0 {
                    self.graph[v][it[v]].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            it[v] += 1;
        }
        0
    }

    /// Flow pushed through the edge with the given handle (after
    /// [`FlowNetwork::max_flow`]): the capacity accumulated on its reverse
    /// edge.
    pub fn flow_on(&self, handle: usize) -> i64 {
        let (from, idx) = self.edges[handle];
        let e = &self.graph[from][idx];
        self.graph[e.to][e.rev].cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
        assert_eq!(net.flow_on(e), 5);
    }

    #[test]
    fn classic_diamond() {
        // 0→1 (10), 0→2 (10), 1→3 (4), 1→2 (2), 2→3 (9). Max flow 0→3 = 13.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(0, 2, 10);
        net.add_edge(1, 3, 4);
        net.add_edge(1, 2, 2);
        net.add_edge(2, 3, 9);
        assert_eq!(net.max_flow(0, 3), 13);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 0);
    }

    #[test]
    fn bipartite_matching_via_flow() {
        // 3 left, 3 right; left i connects to right i and right (i+1)%3.
        // Perfect matching of size 3.
        let s = 6;
        let t = 7;
        let mut net = FlowNetwork::new(8);
        for i in 0..3 {
            net.add_edge(s, i, 1);
            net.add_edge(3 + i, t, 1);
        }
        for i in 0..3 {
            net.add_edge(i, 3 + i, 1);
            net.add_edge(i, 3 + (i + 1) % 3, 1);
        }
        assert_eq!(net.max_flow(s, t), 3);
    }

    #[test]
    fn flow_conservation_on_random_network() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        let n = 12;
        let mut net = FlowNetwork::new(n);
        let mut handles = Vec::new();
        for _ in 0..40 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b {
                handles.push((a, b, net.add_edge(a, b, rng.random_range(1..10))));
            }
        }
        let total = net.max_flow(0, n - 1);
        assert!(total >= 0);
        // Conservation: net flow out of every internal node is zero.
        let mut balance = vec![0i64; n];
        for &(a, b, h) in &handles {
            let f = net.flow_on(h);
            assert!(f >= 0);
            balance[a] -= f;
            balance[b] += f;
        }
        for v in 1..n - 1 {
            assert_eq!(balance[v], 0, "node {v} violates conservation");
        }
        assert_eq!(balance[n - 1], total);
        assert_eq!(balance[0], -total);
    }

    #[test]
    fn quota_style_network() {
        // Groups with quotas {2, 1} over 4 clusters, group 0 present in
        // clusters {0,1,2}, group 1 in {2,3}. Feasible: flow = 3.
        let s = 0;
        let g0 = 1;
        let g1 = 2;
        let c = [3, 4, 5, 6];
        let t = 7;
        let mut net = FlowNetwork::new(8);
        net.add_edge(s, g0, 2);
        net.add_edge(s, g1, 1);
        for cl in [0, 1, 2] {
            net.add_edge(g0, c[cl], 1);
        }
        for cl in [2, 3] {
            net.add_edge(g1, c[cl], 1);
        }
        for &cl in &c {
            net.add_edge(cl, t, 1);
        }
        assert_eq!(net.max_flow(s, t), 3);
    }

    #[test]
    fn zero_capacity_edge_carries_nothing() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 0);
        assert_eq!(net.max_flow(0, 1), 0);
        assert_eq!(net.flow_on(e), 0);
    }

    #[test]
    fn source_equals_sink() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 3);
        assert_eq!(net.max_flow(1, 1), 0);
    }
}
