//! Exact brute-force oracles for tiny instances.
//!
//! These enumerate all feasible subsets and are exponential in `k`; they
//! exist so the test suite can check the proven approximation ratios of
//! every algorithm against the true `OPT` / `OPT_f` on small instances.

use crate::dataset::Dataset;
use crate::diversity::diversity;
use crate::fairness::FairnessConstraint;

/// Exact optimal unconstrained diversity `OPT` for solution size `k`.
///
/// Enumerates all `C(n, k)` subsets; use only for tiny `n`.
pub fn exact_unconstrained_optimum(dataset: &Dataset, k: usize) -> f64 {
    let n = dataset.len();
    assert!(k >= 2 && k <= n, "need 2 <= k <= n");
    let mut best: f64 = 0.0;
    let mut subset: Vec<usize> = Vec::with_capacity(k);
    enumerate_subsets(n, k, 0, &mut subset, &mut |s| {
        let d = diversity(dataset, s);
        if d > best {
            best = d;
        }
    });
    best
}

/// Exact optimal fair diversity `OPT_f` and one optimal subset.
///
/// Enumerates all subsets satisfying the constraint; exponential — tests
/// only. Returns `(0.0, vec![])` if the constraint is infeasible.
pub fn exact_fair_optimum(dataset: &Dataset, constraint: &FairnessConstraint) -> (f64, Vec<usize>) {
    let m = constraint.num_groups();
    let mut per_group: Vec<Vec<usize>> = vec![Vec::new(); m];
    for i in 0..dataset.len() {
        let g = dataset.group(i);
        if g < m {
            per_group[g].push(i);
        }
    }
    for (g, members) in per_group.iter().enumerate() {
        if members.len() < constraint.quota(g) {
            return (0.0, Vec::new());
        }
    }
    let mut best = 0.0;
    let mut best_set = Vec::new();
    let mut chosen: Vec<usize> = Vec::with_capacity(constraint.total());
    fn rec(
        per_group: &[Vec<usize>],
        constraint: &FairnessConstraint,
        dataset: &Dataset,
        g: usize,
        chosen: &mut Vec<usize>,
        best: &mut f64,
        best_set: &mut Vec<usize>,
    ) {
        if g == per_group.len() {
            let d = diversity(dataset, chosen);
            if d > *best {
                *best = d;
                *best_set = chosen.clone();
            }
            return;
        }
        let members = &per_group[g];
        let need = constraint.quota(g);
        let mut subset: Vec<usize> = Vec::with_capacity(need);
        enumerate_subsets(members.len(), need, 0, &mut subset, &mut |s| {
            let start = chosen.len();
            for &pos in s {
                chosen.push(members[pos]);
            }
            rec(
                per_group,
                constraint,
                dataset,
                g + 1,
                chosen,
                best,
                best_set,
            );
            chosen.truncate(start);
        });
    }
    rec(
        &per_group,
        constraint,
        dataset,
        0,
        &mut chosen,
        &mut best,
        &mut best_set,
    );
    (best, best_set)
}

/// Calls `f` with every size-`k` subset of `0..n` (as positions).
fn enumerate_subsets<F: FnMut(&[usize])>(
    n: usize,
    k: usize,
    start: usize,
    current: &mut Vec<usize>,
    f: &mut F,
) {
    if current.len() == k {
        f(current);
        return;
    }
    let remaining = k - current.len();
    // Prune: not enough items left.
    if n - start < remaining {
        return;
    }
    for i in start..n {
        current.push(i);
        enumerate_subsets(n, k, i + 1, current, f);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;

    fn line(points: &[f64], groups: &[usize]) -> Dataset {
        Dataset::from_rows(
            points.iter().map(|&x| vec![x]).collect(),
            groups.to_vec(),
            Metric::Euclidean,
        )
        .unwrap()
    }

    #[test]
    fn unconstrained_optimum_on_line() {
        // Points 0, 1, 4, 9: best pair for k=2 is (0, 9) with div 9;
        // best triple is {0, 4, 9} with div 4.
        let d = line(&[0.0, 1.0, 4.0, 9.0], &[0; 4]);
        assert_eq!(exact_unconstrained_optimum(&d, 2), 9.0);
        assert_eq!(exact_unconstrained_optimum(&d, 3), 4.0);
    }

    #[test]
    fn fair_optimum_respects_groups() {
        // Groups: {0, 1} in group 0 at 0 and 1; {4, 9} in group 1.
        let d = line(&[0.0, 1.0, 4.0, 9.0], &[0, 0, 1, 1]);
        let c = FairnessConstraint::new(vec![1, 1]).unwrap();
        let (opt, set) = exact_fair_optimum(&d, &c);
        assert_eq!(opt, 9.0);
        assert_eq!(set, vec![0, 3]);
        // Both from group 1.
        let c2 = FairnessConstraint::new(vec![2, 2]).unwrap();
        let (opt2, set2) = exact_fair_optimum(&d, &c2);
        assert_eq!(set2.len(), 4);
        assert_eq!(opt2, 1.0);
    }

    #[test]
    fn fair_optimum_never_exceeds_unconstrained() {
        let d = line(&[0.0, 2.0, 3.0, 7.0, 8.0, 13.0], &[0, 1, 0, 1, 0, 1]);
        let c = FairnessConstraint::new(vec![2, 2]).unwrap();
        let (fair, _) = exact_fair_optimum(&d, &c);
        let unc = exact_unconstrained_optimum(&d, 4);
        assert!(fair <= unc + 1e-12);
    }

    #[test]
    fn infeasible_constraint_returns_empty() {
        let d = line(&[0.0, 1.0], &[0, 0]);
        let c = FairnessConstraint::new(vec![1, 1]).unwrap();
        let (opt, set) = exact_fair_optimum(&d, &c);
        assert_eq!(opt, 0.0);
        assert!(set.is_empty());
    }

    #[test]
    fn subset_enumeration_counts() {
        let mut count = 0usize;
        let mut buf = Vec::new();
        enumerate_subsets(6, 3, 0, &mut buf, &mut |_| count += 1);
        assert_eq!(count, 20); // C(6,3)
    }
}
