//! Stream elements.
//!
//! A streaming algorithm must not hold references into the dataset it
//! consumes — the whole point of the streaming model is that the dataset may
//! be too large to keep. An [`Element`] therefore carries its coordinates in
//! an `Arc<[f64]>`: candidates that decide to *keep* an element clone the
//! `Arc` (cheap, shared), and the space accounting of the paper's Fig. 8
//! ("number of stored elements") is the number of distinct element ids
//! retained across all candidates.

use std::sync::Arc;

/// A single element of the stream: an id, a point, and a group label.
///
/// Ids are assigned by the producer (the dataset or generator) and are only
/// required to be unique within one stream; algorithms use them for
/// de-duplicated space accounting and for reporting which elements were
/// selected.
#[derive(Debug, Clone)]
pub struct Element {
    /// Unique identifier within the stream (typically the dataset row index).
    pub id: usize,
    /// Coordinates in the metric space, shared between all holders.
    pub point: Arc<[f64]>,
    /// Group label in `0..m`.
    pub group: usize,
}

impl Element {
    /// Creates a new element from owned coordinates.
    pub fn new(id: usize, point: Vec<f64>, group: usize) -> Self {
        Element { id, point: point.into(), group }
    }

    /// Dimensionality of the element's point.
    pub fn dim(&self) -> usize {
        self.point.len()
    }
}

impl PartialEq for Element {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Element {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_dim() {
        let e = Element::new(7, vec![1.0, 2.0, 3.0], 1);
        assert_eq!(e.id, 7);
        assert_eq!(e.group, 1);
        assert_eq!(e.dim(), 3);
        assert_eq!(&e.point[..], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn equality_is_by_id() {
        let a = Element::new(1, vec![0.0], 0);
        let b = Element::new(1, vec![9.0], 1);
        let c = Element::new(2, vec![0.0], 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clone_shares_point_storage() {
        let a = Element::new(1, vec![1.0, 2.0], 0);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.point, &b.point));
    }
}
