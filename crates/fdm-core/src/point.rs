//! Stream elements and the shared point arena.
//!
//! Distance evaluation is the hot operation of every algorithm in this
//! crate, and it is fastest over contiguous rows. The [`PointStore`] is an
//! append-only arena of row-major coordinates: datasets build one up front,
//! and the streaming algorithms intern each *retained* element into their
//! own small arena exactly once (memory stays proportional to what the
//! candidates keep, not to the stream length — the paper's Fig. 8 space
//! model). Everything downstream — candidates, balancing, clustering,
//! matroid scoring, solutions — passes cheap [`PointId`] indices around
//! instead of cloning coordinate buffers.
//!
//! [`Element`] remains the boundary type for data *arriving* from a stream:
//! an id, owned coordinates, and a group label.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A single element of the stream: an id, a point, and a group label.
///
/// Ids are assigned by the producer (the dataset or generator) and are only
/// required to be unique within one stream; algorithms use them for
/// de-duplicated space accounting and for reporting which elements were
/// selected.
#[derive(Debug, Clone)]
pub struct Element {
    /// Unique identifier within the stream (typically the dataset row index).
    pub id: usize,
    /// Coordinates in the metric space, shared between all holders.
    pub point: Arc<[f64]>,
    /// Group label in `0..m`.
    pub group: usize,
}

impl Element {
    /// Creates a new element from owned coordinates.
    pub fn new(id: usize, point: Vec<f64>, group: usize) -> Self {
        Element {
            id,
            point: point.into(),
            group,
        }
    }

    /// Dimensionality of the element's point.
    pub fn dim(&self) -> usize {
        self.point.len()
    }
}

impl PartialEq for Element {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Element {}

/// Index of a point inside a [`PointStore`].
///
/// `u32` keeps id lists half the size of `usize` ones; a single store is
/// capped at `u32::MAX` points, far beyond any candidate-set or dataset
/// size this crate handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub u32);

impl PointId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Lifetime counters for the f32 proxy pre-filter attached to one arena.
///
/// `hits` counts threshold tests the f32 path decided outright (the margin
/// cleared the certified error band); `fallbacks` counts tests that fell
/// inside the band and re-ran the exact f64 kernel. Relaxed atomics: the
/// counters are observability only, incremented from read-only probe paths
/// that may run on several shards at once.
#[derive(Debug, Default)]
pub struct PrefilterCounters {
    hits: AtomicU64,
    fallbacks: AtomicU64,
}

impl PrefilterCounters {
    /// Records one threshold test decided by the f32 path alone.
    #[inline]
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one threshold test that re-ran the exact f64 kernel.
    #[inline]
    pub fn record_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batch of tallies in two `fetch_add`s — the hot insert
    /// paths accumulate per-arrival totals in plain integers and flush
    /// them here once, instead of paying an atomic RMW per probe.
    #[inline]
    pub fn record_batch(&self, hits: u64, fallbacks: u64) {
        if hits != 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if fallbacks != 0 {
            self.fallbacks.fetch_add(fallbacks, Ordering::Relaxed);
        }
    }

    /// Total f32-decided threshold tests so far.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total exact-fallback threshold tests so far.
    #[inline]
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }
}

impl Clone for PrefilterCounters {
    fn clone(&self) -> Self {
        PrefilterCounters {
            hits: AtomicU64::new(self.hits()),
            fallbacks: AtomicU64::new(self.fallbacks()),
        }
    }
}

/// Packed `f32` mirror of an arena's rows, used by the proxy pre-filter so
/// probes never convert coordinates on the fly.
///
/// Built lazily by [`PointStore::sync_f32_mirror`] and implicitly
/// invalidated by every push (readers check row counts via
/// [`PointStore::f32_mirror`], which returns `None` while the mirror lags
/// the arena).
#[derive(Debug, Clone, Default)]
pub struct F32Mirror {
    dim: usize,
    rows: Vec<f32>,
    max_abs: f64,
    counters: PrefilterCounters,
}

impl F32Mirror {
    /// The `f32` row mirroring point `id`.
    #[inline]
    pub fn row(&self, id: PointId) -> &[f32] {
        let start = id.index() * self.dim;
        &self.rows[start..start + self.dim]
    }

    /// Largest coordinate magnitude (of the original `f64` values) across
    /// all mirrored rows — the `M` in the pre-filter's certified error
    /// bound.
    #[inline]
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// The pre-filter hit/fallback counters attached to this arena.
    #[inline]
    pub fn counters(&self) -> &PrefilterCounters {
        &self.counters
    }
}

/// Append-only arena of points: contiguous row-major coordinates plus a
/// group label, the producer-assigned external id, and cached squared /
/// plain L2 norms per row (used by the Angular kernel). An optional packed
/// `f32` mirror of the rows serves the reduced-precision proxy pre-filter.
#[derive(Debug, Clone, Default)]
pub struct PointStore {
    dim: usize,
    coords: Vec<f64>,
    groups: Vec<u32>,
    external_ids: Vec<usize>,
    norms_sq: Vec<f64>,
    norms: Vec<f64>,
    mirror: F32Mirror,
}

impl PointStore {
    /// Creates an empty store for points of dimension `dim` (must be ≥ 1).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "points must have at least one dimension");
        PointStore {
            dim,
            ..Default::default()
        }
    }

    /// Creates an empty store with room for `capacity` points.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "points must have at least one dimension");
        PointStore {
            dim,
            coords: Vec::with_capacity(capacity * dim),
            groups: Vec::with_capacity(capacity),
            external_ids: Vec::with_capacity(capacity),
            norms_sq: Vec::with_capacity(capacity),
            norms: Vec::with_capacity(capacity),
            mirror: F32Mirror::default(),
        }
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the store holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Dimensionality of every stored point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Appends a point, returning its arena id.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()` or the store is full
    /// (`u32::MAX` points).
    pub fn push(&mut self, external_id: usize, point: &[f64], group: usize) -> PointId {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        let id = u32::try_from(self.len()).expect("PointStore is full");
        self.coords.extend_from_slice(point);
        self.groups.push(group as u32);
        self.external_ids.push(external_id);
        // The naive single-accumulator sum is load-bearing: golden fixtures
        // pin Angular decisions to exactly this norm, so it must not be
        // "upgraded" to the chunked kernel.
        let norm_sq: f64 = point.iter().map(|&x| x * x).sum();
        self.norms_sq.push(norm_sq);
        self.norms.push(norm_sq.sqrt());
        PointId(id)
    }

    /// Appends a stream element (see [`PointStore::push`]).
    pub fn push_element(&mut self, element: &Element) -> PointId {
        self.push(element.id, &element.point, element.group)
    }

    /// The coordinates of point `id` as a contiguous row.
    #[inline]
    pub fn row(&self, id: PointId) -> &[f64] {
        let start = id.index() * self.dim;
        &self.coords[start..start + self.dim]
    }

    /// The group label of point `id`.
    #[inline]
    pub fn group(&self, id: PointId) -> usize {
        self.groups[id.index()] as usize
    }

    /// The producer-assigned external id of point `id`.
    #[inline]
    pub fn external_id(&self, id: PointId) -> usize {
        self.external_ids[id.index()]
    }

    /// Cached squared L2 norm of point `id`.
    #[inline]
    pub fn norm_sq(&self, id: PointId) -> f64 {
        self.norms_sq[id.index()]
    }

    /// Cached L2 norm of point `id` (`norm_sq(id).sqrt()`, computed once at
    /// push — `sqrt` is correctly rounded, so this is bit-identical to
    /// taking the root at the call site).
    #[inline]
    pub fn norm(&self, id: PointId) -> f64 {
        self.norms[id.index()]
    }

    /// Brings the packed `f32` mirror up to date with the arena, converting
    /// only rows appended since the last sync. Call before a read-only
    /// probe phase; [`PointStore::f32_mirror`] stays `None` until the
    /// mirror covers every row.
    pub fn sync_f32_mirror(&mut self) {
        self.mirror.dim = self.dim;
        let synced = self.mirror.rows.len();
        if synced == self.coords.len() {
            return;
        }
        self.mirror.rows.reserve(self.coords.len() - synced);
        for &c in &self.coords[synced..] {
            self.mirror.max_abs = self.mirror.max_abs.max(c.abs());
            self.mirror.rows.push(c as f32);
        }
    }

    /// The packed `f32` mirror, or `None` if it is stale (a push happened
    /// after the last [`PointStore::sync_f32_mirror`]).
    #[inline]
    pub fn f32_mirror(&self) -> Option<&F32Mirror> {
        if self.mirror.rows.len() == self.coords.len() && self.mirror.dim == self.dim {
            Some(&self.mirror)
        } else {
            None
        }
    }

    /// Lifetime f32 pre-filter `(hits, fallbacks)` recorded against this
    /// arena (see [`PrefilterCounters`]).
    #[inline]
    pub fn prefilter_counters(&self) -> (u64, u64) {
        (
            self.mirror.counters.hits(),
            self.mirror.counters.fallbacks(),
        )
    }

    /// Adds a batch of pre-filter tallies to this arena's counters. Works
    /// whether or not the mirror is currently synced — the probes being
    /// tallied ran against a mirror that was synced at the time, and the
    /// flush may happen after the arrival was pushed (staling it).
    #[inline]
    pub fn record_prefilter(&self, hits: u64, fallbacks: u64) {
        self.mirror.counters.record_batch(hits, fallbacks);
    }

    /// All group labels, indexed by arena order.
    #[inline]
    pub fn groups_raw(&self) -> &[u32] {
        &self.groups
    }

    /// All external ids, indexed by arena order.
    #[inline]
    pub fn external_ids_raw(&self) -> &[usize] {
        &self.external_ids
    }

    /// The full row-major coordinate buffer.
    #[inline]
    pub fn coords_raw(&self) -> &[f64] {
        &self.coords
    }

    /// Iterates over all arena ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = PointId> + '_ {
        (0..self.len() as u32).map(PointId)
    }

    /// Materializes point `id` as an owned [`Element`] (allocates).
    pub fn element(&self, id: PointId) -> Element {
        Element {
            id: self.external_id(id),
            point: Arc::from(self.row(id)),
            group: self.group(id),
        }
    }
}

impl serde::Serialize for PointId {
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(&self.0)
    }
}

impl serde::Deserialize for PointId {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        Ok(PointId(<u32 as serde::Deserialize>::from_value(value)?))
    }
}

impl serde::Serialize for PointStore {
    fn to_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("dim".to_string(), serde::Serialize::to_value(&self.dim));
        map.insert(
            "external_ids".to_string(),
            serde::Serialize::to_value(&self.external_ids),
        );
        map.insert(
            "groups".to_string(),
            serde::Serialize::to_value(&self.groups),
        );
        // Cached norms are intentionally omitted: they are recomputed by
        // `push` on restore through the exact code path the original run
        // used, so they cannot drift from the coordinates.
        map.insert(
            "coords".to_string(),
            serde::Serialize::to_value(&self.coords),
        );
        serde::Value::Object(map)
    }
}

// Hand-written so a malformed document (row-count mismatches, zero
// dimension, truncated coordinate buffer) is a typed error, and so the
// norm cache is rebuilt by re-appending every row through
// [`PointStore::push`] — bit-identical to the arena it snapshots.
impl serde::Deserialize for PointStore {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let get = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| serde::DeError::custom(format!("missing field `{key}`")))
        };
        let dim = <usize as serde::Deserialize>::from_value(get("dim")?)?;
        let external_ids = <Vec<usize> as serde::Deserialize>::from_value(get("external_ids")?)?;
        let groups = <Vec<u32> as serde::Deserialize>::from_value(get("groups")?)?;
        let coords = <Vec<f64> as serde::Deserialize>::from_value(get("coords")?)?;
        if dim == 0 {
            return Err(serde::DeError::custom("point store dimension must be ≥ 1"));
        }
        if groups.len() != external_ids.len() {
            return Err(serde::DeError::custom(format!(
                "group count {} does not match external id count {}",
                groups.len(),
                external_ids.len()
            )));
        }
        if coords.len() != groups.len() * dim {
            return Err(serde::DeError::custom(format!(
                "coordinate buffer holds {} values; {} rows of dimension {dim} need {}",
                coords.len(),
                groups.len(),
                groups.len() * dim
            )));
        }
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(serde::DeError::custom(
                "coordinate buffer contains a non-finite value",
            ));
        }
        let mut store = PointStore::with_capacity(dim, groups.len());
        for (i, (&external_id, &group)) in external_ids.iter().zip(&groups).enumerate() {
            store.push(external_id, &coords[i * dim..(i + 1) * dim], group as usize);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_dim() {
        let e = Element::new(7, vec![1.0, 2.0, 3.0], 1);
        assert_eq!(e.id, 7);
        assert_eq!(e.group, 1);
        assert_eq!(e.dim(), 3);
        assert_eq!(&e.point[..], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn equality_is_by_id() {
        let a = Element::new(1, vec![0.0], 0);
        let b = Element::new(1, vec![9.0], 1);
        let c = Element::new(2, vec![0.0], 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clone_shares_point_storage() {
        let a = Element::new(1, vec![1.0, 2.0], 0);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.point, &b.point));
    }

    #[test]
    fn store_rows_are_contiguous_and_indexed() {
        let mut store = PointStore::new(2);
        let a = store.push(10, &[1.0, 2.0], 0);
        let b = store.push(11, &[3.0, 4.0], 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.dim(), 2);
        assert_eq!(store.row(a), &[1.0, 2.0]);
        assert_eq!(store.row(b), &[3.0, 4.0]);
        assert_eq!(store.group(b), 1);
        assert_eq!(store.external_id(a), 10);
        assert_eq!(store.coords_raw(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn store_caches_norms() {
        let mut store = PointStore::new(2);
        let a = store.push(0, &[3.0, 4.0], 0);
        assert_eq!(store.norm_sq(a), 25.0);
        assert_eq!(store.norm(a), 5.0);
    }

    #[test]
    fn f32_mirror_tracks_pushes_and_goes_stale() {
        let mut store = PointStore::new(2);
        assert!(store.f32_mirror().is_none(), "unsynced mirror must be None");
        let a = store.push(0, &[3.0, -4.5], 0);
        store.sync_f32_mirror();
        let mirror = store.f32_mirror().expect("synced mirror");
        assert_eq!(mirror.row(a), &[3.0f32, -4.5f32]);
        assert_eq!(mirror.max_abs(), 4.5);
        // A push invalidates the mirror until the next sync.
        let b = store.push(1, &[10.0, 0.25], 1);
        assert!(store.f32_mirror().is_none(), "stale mirror must be None");
        store.sync_f32_mirror();
        let mirror = store.f32_mirror().expect("resynced mirror");
        assert_eq!(mirror.row(b), &[10.0f32, 0.25f32]);
        assert_eq!(mirror.max_abs(), 10.0);
        assert_eq!(store.prefilter_counters(), (0, 0));
    }

    #[test]
    fn store_round_trips_elements() {
        let mut store = PointStore::new(3);
        let e = Element::new(42, vec![1.0, -1.0, 0.5], 2);
        let id = store.push_element(&e);
        let back = store.element(id);
        assert_eq!(back.id, 42);
        assert_eq!(back.group, 2);
        assert_eq!(&back.point[..], &e.point[..]);
    }

    #[test]
    fn ids_iterate_in_order() {
        let mut store = PointStore::new(1);
        for i in 0..5 {
            store.push(i, &[i as f64], 0);
        }
        let ids: Vec<usize> = store.ids().map(|id| store.external_id(id)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn store_rejects_wrong_dim() {
        let mut store = PointStore::new(2);
        store.push(0, &[1.0], 0);
    }
}
