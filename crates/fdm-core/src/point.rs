//! Stream elements and the shared point arena.
//!
//! Distance evaluation is the hot operation of every algorithm in this
//! crate, and it is fastest over contiguous rows. The [`PointStore`] is an
//! append-only arena of row-major coordinates: datasets build one up front,
//! and the streaming algorithms intern each *retained* element into their
//! own small arena exactly once (memory stays proportional to what the
//! candidates keep, not to the stream length — the paper's Fig. 8 space
//! model). Everything downstream — candidates, balancing, clustering,
//! matroid scoring, solutions — passes cheap [`PointId`] indices around
//! instead of cloning coordinate buffers.
//!
//! [`Element`] remains the boundary type for data *arriving* from a stream:
//! an id, owned coordinates, and a group label.

use std::sync::Arc;

/// A single element of the stream: an id, a point, and a group label.
///
/// Ids are assigned by the producer (the dataset or generator) and are only
/// required to be unique within one stream; algorithms use them for
/// de-duplicated space accounting and for reporting which elements were
/// selected.
#[derive(Debug, Clone)]
pub struct Element {
    /// Unique identifier within the stream (typically the dataset row index).
    pub id: usize,
    /// Coordinates in the metric space, shared between all holders.
    pub point: Arc<[f64]>,
    /// Group label in `0..m`.
    pub group: usize,
}

impl Element {
    /// Creates a new element from owned coordinates.
    pub fn new(id: usize, point: Vec<f64>, group: usize) -> Self {
        Element {
            id,
            point: point.into(),
            group,
        }
    }

    /// Dimensionality of the element's point.
    pub fn dim(&self) -> usize {
        self.point.len()
    }
}

impl PartialEq for Element {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Element {}

/// Index of a point inside a [`PointStore`].
///
/// `u32` keeps id lists half the size of `usize` ones; a single store is
/// capped at `u32::MAX` points, far beyond any candidate-set or dataset
/// size this crate handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub u32);

impl PointId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only arena of points: contiguous row-major coordinates plus a
/// group label, the producer-assigned external id, and a cached squared L2
/// norm per row (used by the Angular kernel).
#[derive(Debug, Clone, Default)]
pub struct PointStore {
    dim: usize,
    coords: Vec<f64>,
    groups: Vec<u32>,
    external_ids: Vec<usize>,
    norms_sq: Vec<f64>,
}

impl PointStore {
    /// Creates an empty store for points of dimension `dim` (must be ≥ 1).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "points must have at least one dimension");
        PointStore {
            dim,
            ..Default::default()
        }
    }

    /// Creates an empty store with room for `capacity` points.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "points must have at least one dimension");
        PointStore {
            dim,
            coords: Vec::with_capacity(capacity * dim),
            groups: Vec::with_capacity(capacity),
            external_ids: Vec::with_capacity(capacity),
            norms_sq: Vec::with_capacity(capacity),
        }
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the store holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Dimensionality of every stored point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Appends a point, returning its arena id.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()` or the store is full
    /// (`u32::MAX` points).
    pub fn push(&mut self, external_id: usize, point: &[f64], group: usize) -> PointId {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        let id = u32::try_from(self.len()).expect("PointStore is full");
        self.coords.extend_from_slice(point);
        self.groups.push(group as u32);
        self.external_ids.push(external_id);
        self.norms_sq.push(point.iter().map(|&x| x * x).sum());
        PointId(id)
    }

    /// Appends a stream element (see [`PointStore::push`]).
    pub fn push_element(&mut self, element: &Element) -> PointId {
        self.push(element.id, &element.point, element.group)
    }

    /// The coordinates of point `id` as a contiguous row.
    #[inline]
    pub fn row(&self, id: PointId) -> &[f64] {
        let start = id.index() * self.dim;
        &self.coords[start..start + self.dim]
    }

    /// The group label of point `id`.
    #[inline]
    pub fn group(&self, id: PointId) -> usize {
        self.groups[id.index()] as usize
    }

    /// The producer-assigned external id of point `id`.
    #[inline]
    pub fn external_id(&self, id: PointId) -> usize {
        self.external_ids[id.index()]
    }

    /// Cached squared L2 norm of point `id`.
    #[inline]
    pub fn norm_sq(&self, id: PointId) -> f64 {
        self.norms_sq[id.index()]
    }

    /// All group labels, indexed by arena order.
    #[inline]
    pub fn groups_raw(&self) -> &[u32] {
        &self.groups
    }

    /// The full row-major coordinate buffer.
    #[inline]
    pub fn coords_raw(&self) -> &[f64] {
        &self.coords
    }

    /// Iterates over all arena ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = PointId> + '_ {
        (0..self.len() as u32).map(PointId)
    }

    /// Materializes point `id` as an owned [`Element`] (allocates).
    pub fn element(&self, id: PointId) -> Element {
        Element {
            id: self.external_id(id),
            point: Arc::from(self.row(id)),
            group: self.group(id),
        }
    }
}

impl serde::Serialize for PointId {
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(&self.0)
    }
}

impl serde::Deserialize for PointId {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        Ok(PointId(<u32 as serde::Deserialize>::from_value(value)?))
    }
}

impl serde::Serialize for PointStore {
    fn to_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("dim".to_string(), serde::Serialize::to_value(&self.dim));
        map.insert(
            "external_ids".to_string(),
            serde::Serialize::to_value(&self.external_ids),
        );
        map.insert(
            "groups".to_string(),
            serde::Serialize::to_value(&self.groups),
        );
        // Cached norms are intentionally omitted: they are recomputed by
        // `push` on restore through the exact code path the original run
        // used, so they cannot drift from the coordinates.
        map.insert(
            "coords".to_string(),
            serde::Serialize::to_value(&self.coords),
        );
        serde::Value::Object(map)
    }
}

// Hand-written so a malformed document (row-count mismatches, zero
// dimension, truncated coordinate buffer) is a typed error, and so the
// norm cache is rebuilt by re-appending every row through
// [`PointStore::push`] — bit-identical to the arena it snapshots.
impl serde::Deserialize for PointStore {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let get = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| serde::DeError::custom(format!("missing field `{key}`")))
        };
        let dim = <usize as serde::Deserialize>::from_value(get("dim")?)?;
        let external_ids = <Vec<usize> as serde::Deserialize>::from_value(get("external_ids")?)?;
        let groups = <Vec<u32> as serde::Deserialize>::from_value(get("groups")?)?;
        let coords = <Vec<f64> as serde::Deserialize>::from_value(get("coords")?)?;
        if dim == 0 {
            return Err(serde::DeError::custom("point store dimension must be ≥ 1"));
        }
        if groups.len() != external_ids.len() {
            return Err(serde::DeError::custom(format!(
                "group count {} does not match external id count {}",
                groups.len(),
                external_ids.len()
            )));
        }
        if coords.len() != groups.len() * dim {
            return Err(serde::DeError::custom(format!(
                "coordinate buffer holds {} values; {} rows of dimension {dim} need {}",
                coords.len(),
                groups.len(),
                groups.len() * dim
            )));
        }
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(serde::DeError::custom(
                "coordinate buffer contains a non-finite value",
            ));
        }
        let mut store = PointStore::with_capacity(dim, groups.len());
        for (i, (&external_id, &group)) in external_ids.iter().zip(&groups).enumerate() {
            store.push(external_id, &coords[i * dim..(i + 1) * dim], group as usize);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_dim() {
        let e = Element::new(7, vec![1.0, 2.0, 3.0], 1);
        assert_eq!(e.id, 7);
        assert_eq!(e.group, 1);
        assert_eq!(e.dim(), 3);
        assert_eq!(&e.point[..], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn equality_is_by_id() {
        let a = Element::new(1, vec![0.0], 0);
        let b = Element::new(1, vec![9.0], 1);
        let c = Element::new(2, vec![0.0], 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clone_shares_point_storage() {
        let a = Element::new(1, vec![1.0, 2.0], 0);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.point, &b.point));
    }

    #[test]
    fn store_rows_are_contiguous_and_indexed() {
        let mut store = PointStore::new(2);
        let a = store.push(10, &[1.0, 2.0], 0);
        let b = store.push(11, &[3.0, 4.0], 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.dim(), 2);
        assert_eq!(store.row(a), &[1.0, 2.0]);
        assert_eq!(store.row(b), &[3.0, 4.0]);
        assert_eq!(store.group(b), 1);
        assert_eq!(store.external_id(a), 10);
        assert_eq!(store.coords_raw(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn store_caches_norms() {
        let mut store = PointStore::new(2);
        let a = store.push(0, &[3.0, 4.0], 0);
        assert_eq!(store.norm_sq(a), 25.0);
    }

    #[test]
    fn store_round_trips_elements() {
        let mut store = PointStore::new(3);
        let e = Element::new(42, vec![1.0, -1.0, 0.5], 2);
        let id = store.push_element(&e);
        let back = store.element(id);
        assert_eq!(back.id, 42);
        assert_eq!(back.group, 2);
        assert_eq!(&back.point[..], &e.point[..]);
    }

    #[test]
    fn ids_iterate_in_order() {
        let mut store = PointStore::new(1);
        for i in 0..5 {
            store.push(i, &[i as f64], 0);
        }
        let ids: Vec<usize> = store.ids().map(|id| store.external_id(id)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn store_rejects_wrong_dim() {
        let mut store = PointStore::new(2);
        store.push(0, &[1.0], 0);
    }
}
