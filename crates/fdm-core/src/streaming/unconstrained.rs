//! Algorithm 1 — streaming unconstrained max–min diversity maximization.
//!
//! One candidate per guess `µ ∈ U`; each arriving element is offered to
//! every candidate. After the pass, the full candidate with maximum
//! diversity is the solution. Borassi et al. proved `(1−ε)/5`; the paper's
//! Theorem 1 tightens the analysis of the same algorithm to `(1−ε)/2`,
//! which the test suite checks against brute-force optima.

use std::collections::HashSet;

use crate::dataset::DistanceBounds;
use crate::error::{FdmError, Result};
use crate::guess::GuessLadder;
use crate::metric::Metric;
use crate::point::Element;
use crate::solution::Solution;
use crate::streaming::candidate::Candidate;

/// Configuration for [`StreamingDiversityMaximization`].
#[derive(Debug, Clone)]
pub struct StreamingDmConfig {
    /// Solution size `k ≥ 2`.
    pub k: usize,
    /// Guess-ladder accuracy `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Known bounds with `d_min ≤ OPT ≤ d_max`.
    pub bounds: DistanceBounds,
    /// The distance metric.
    pub metric: Metric,
}

/// Streaming state of Algorithm 1.
#[derive(Debug, Clone)]
pub struct StreamingDiversityMaximization {
    candidates: Vec<Candidate>,
    metric: Metric,
    k: usize,
    processed: usize,
}

impl StreamingDiversityMaximization {
    /// Initializes the guess ladder and one empty candidate per guess.
    pub fn new(config: StreamingDmConfig) -> Result<Self> {
        if config.k < 2 {
            return Err(FdmError::SolutionSizeTooSmall { k: config.k });
        }
        config.metric.validate()?;
        let ladder = GuessLadder::new(config.bounds, config.epsilon)?;
        let candidates = ladder
            .values()
            .iter()
            .map(|&mu| Candidate::new(mu, config.k, config.metric))
            .collect();
        Ok(StreamingDiversityMaximization {
            candidates,
            metric: config.metric,
            k: config.k,
            processed: 0,
        })
    }

    /// Processes one stream element (Algorithm 1, lines 3–6).
    pub fn insert(&mut self, element: &Element) {
        self.processed += 1;
        for candidate in &mut self.candidates {
            candidate.try_insert(element);
        }
    }

    /// Number of elements seen so far.
    pub fn processed(&self) -> usize {
        self.processed
    }

    /// Number of guesses `|U|`.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of *distinct* elements currently retained across all
    /// candidates — the paper's space metric (Fig. 8).
    pub fn stored_elements(&self) -> usize {
        let mut ids = HashSet::new();
        for c in &self.candidates {
            for e in c.elements() {
                ids.insert(e.id);
            }
        }
        ids.len()
    }

    /// Read-only view of the candidates (used by tests and diagnostics).
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Algorithm 1, line 7: the full candidate maximizing `div(S_µ)`.
    pub fn finalize(&self) -> Result<Solution> {
        let best = self
            .candidates
            .iter()
            .filter(|c| c.len() == self.k)
            .map(|c| (c, c.diversity()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        match best {
            Some((c, _)) => {
                Ok(Solution::from_elements(c.elements().to_vec(), self.metric))
            }
            None => Err(FdmError::NoFeasibleCandidate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_unconstrained_optimum;
    use crate::dataset::Dataset;
    use rand::prelude::*;

    fn config(k: usize, eps: f64, lo: f64, hi: f64) -> StreamingDmConfig {
        StreamingDmConfig {
            k,
            epsilon: eps,
            bounds: DistanceBounds::new(lo, hi).unwrap(),
            metric: Metric::Euclidean,
        }
    }

    fn run_stream(dataset: &Dataset, cfg: StreamingDmConfig) -> StreamingDiversityMaximization {
        let mut alg = StreamingDiversityMaximization::new(cfg).unwrap();
        for e in dataset.iter() {
            alg.insert(&e);
        }
        alg
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(StreamingDiversityMaximization::new(config(1, 0.1, 1.0, 10.0)).is_err());
        assert!(StreamingDiversityMaximization::new(config(3, 0.0, 1.0, 10.0)).is_err());
        assert!(StreamingDiversityMaximization::new(config(3, 1.0, 1.0, 10.0)).is_err());
    }

    #[test]
    fn finds_solution_on_line() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let d = Dataset::from_rows(rows, vec![0; 100], Metric::Euclidean).unwrap();
        let bounds = d.exact_distance_bounds().unwrap();
        let alg = run_stream(
            &d,
            StreamingDmConfig { k: 5, epsilon: 0.1, bounds, metric: Metric::Euclidean },
        );
        let sol = alg.finalize().unwrap();
        assert_eq!(sol.len(), 5);
        // Optimal div for 5 points on 0..99 is 99/4 = 24.75; the algorithm
        // guarantees (1−ε)/2 ≈ 0.45 of that.
        assert!(sol.diversity >= 0.45 * 24.75 - 1e-9, "got {}", sol.diversity);
    }

    #[test]
    fn theorem1_ratio_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..10 {
            let n = 16;
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
                .collect();
            let d = Dataset::from_rows(rows, vec![0; n], Metric::Euclidean).unwrap();
            let k = 4;
            let opt = exact_unconstrained_optimum(&d, k);
            let bounds = d.exact_distance_bounds().unwrap();
            let eps = 0.1;
            let alg = run_stream(
                &d,
                StreamingDmConfig { k, epsilon: eps, bounds, metric: Metric::Euclidean },
            );
            let sol = alg.finalize().unwrap();
            let guarantee = (1.0 - eps) / 2.0 * opt;
            assert!(
                sol.diversity >= guarantee - 1e-9,
                "trial {trial}: {} < {guarantee}",
                sol.diversity
            );
        }
    }

    #[test]
    fn stream_order_does_not_break_guarantee() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 14;
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| vec![rng.random::<f64>() * 5.0, rng.random::<f64>() * 5.0]).collect();
        let d = Dataset::from_rows(rows, vec![0; n], Metric::Euclidean).unwrap();
        let k = 3;
        let opt = exact_unconstrained_optimum(&d, k);
        let bounds = d.exact_distance_bounds().unwrap();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..5 {
            order.shuffle(&mut rng);
            let mut alg = StreamingDiversityMaximization::new(StreamingDmConfig {
                k,
                epsilon: 0.1,
                bounds,
                metric: Metric::Euclidean,
            })
            .unwrap();
            for &i in &order {
                alg.insert(&d.element(i));
            }
            let sol = alg.finalize().unwrap();
            assert!(sol.diversity >= 0.45 * opt - 1e-9);
        }
    }

    #[test]
    fn space_is_bounded_by_candidates_times_k() {
        let rows: Vec<Vec<f64>> = (0..500).map(|i| vec![(i as f64).sin() * 50.0, (i as f64).cos() * 50.0]).collect();
        let d = Dataset::from_rows(rows, vec![0; 500], Metric::Euclidean).unwrap();
        let bounds = d.sampled_distance_bounds(50, 2.0).unwrap();
        let k = 8;
        let alg = run_stream(
            &d,
            StreamingDmConfig { k, epsilon: 0.2, bounds, metric: Metric::Euclidean },
        );
        assert!(alg.stored_elements() <= alg.num_candidates() * k);
        assert!(alg.stored_elements() < 500, "must not store the whole stream");
        assert_eq!(alg.processed(), 500);
    }

    #[test]
    fn too_short_stream_yields_error() {
        let rows: Vec<Vec<f64>> = (0..3).map(|i| vec![i as f64]).collect();
        let d = Dataset::from_rows(rows, vec![0; 3], Metric::Euclidean).unwrap();
        let bounds = d.exact_distance_bounds().unwrap();
        let alg = run_stream(
            &d,
            StreamingDmConfig { k: 5, epsilon: 0.1, bounds, metric: Metric::Euclidean },
        );
        assert_eq!(alg.finalize().unwrap_err(), FdmError::NoFeasibleCandidate);
    }

    #[test]
    fn duplicate_points_are_never_both_kept() {
        let rows = vec![vec![0.0], vec![0.0], vec![5.0], vec![5.0], vec![10.0]];
        let d = Dataset::from_rows(rows, vec![0; 5], Metric::Euclidean).unwrap();
        let bounds = DistanceBounds::new(1.0, 10.0).unwrap();
        let alg = run_stream(
            &d,
            StreamingDmConfig { k: 3, epsilon: 0.1, bounds, metric: Metric::Euclidean },
        );
        let sol = alg.finalize().unwrap();
        assert_eq!(sol.len(), 3);
        assert!(sol.diversity >= 1.0);
    }
}
