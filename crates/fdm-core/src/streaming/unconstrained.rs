//! Algorithm 1 — streaming unconstrained max–min diversity maximization.
//!
//! One candidate per guess `µ ∈ U`; each arriving element is offered to
//! every candidate. After the pass, the full candidate with maximum
//! diversity is the solution. Borassi et al. proved `(1−ε)/5`; the paper's
//! Theorem 1 tightens the analysis of the same algorithm to `(1−ε)/2`,
//! which the test suite checks against brute-force optima.
//!
//! Retained elements are interned exactly once into a shared [`PointStore`]
//! arena; candidates hold [`PointId`]s and test thresholds in proxy space
//! (see [`crate::metric`]). [`StreamingDiversityMaximization::insert_batch`]
//! probes the independent candidates of the guess ladder in parallel when
//! the `parallel` feature is enabled.

use std::collections::HashSet;

use serde::Serialize as _;

use crate::dataset::DistanceBounds;
use crate::error::{FdmError, Result};
use crate::guess::GuessLadder;
use crate::kernel;
use crate::metric::Metric;
use crate::par::maybe_par_map;
use crate::persist::{self, Snapshottable};
use crate::point::{Element, PointId, PointStore};
use crate::solution::Solution;
use crate::streaming::candidate::{ArrivalProxies, BatchProxies, Candidate};

/// Configuration for [`StreamingDiversityMaximization`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StreamingDmConfig {
    /// Solution size `k ≥ 2`.
    pub k: usize,
    /// Guess-ladder accuracy `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Known bounds with `d_min ≤ OPT ≤ d_max`.
    pub bounds: DistanceBounds,
    /// The distance metric.
    pub metric: Metric,
}

/// Streaming state of Algorithm 1.
#[derive(Debug, Clone)]
pub struct StreamingDiversityMaximization {
    store: PointStore,
    candidates: Vec<Candidate>,
    metric: Metric,
    k: usize,
    epsilon: f64,
    bounds: DistanceBounds,
    /// Per-arrival proxy cache shared across all candidates (see
    /// [`ArrivalProxies`]).
    scratch: ArrivalProxies,
    processed: usize,
    sequential: bool,
    store_initialized: bool,
}

impl StreamingDiversityMaximization {
    /// Initializes the guess ladder and one empty candidate per guess.
    pub fn new(config: StreamingDmConfig) -> Result<Self> {
        if config.k < 2 {
            return Err(FdmError::SolutionSizeTooSmall { k: config.k });
        }
        config.metric.validate()?;
        let ladder = GuessLadder::new(config.bounds, config.epsilon)?;
        let candidates = ladder
            .values()
            .iter()
            .map(|&mu| Candidate::new(mu, config.k, config.metric))
            .collect();
        Ok(StreamingDiversityMaximization {
            // Dimension is unknown until the first element arrives.
            store: PointStore::new(1),
            candidates,
            metric: config.metric,
            k: config.k,
            epsilon: config.epsilon,
            bounds: config.bounds,
            scratch: ArrivalProxies::new(),
            processed: 0,
            sequential: false,
            store_initialized: false,
        })
    }

    /// Forces single-threaded processing even when the crate is built with
    /// the `parallel` feature (results are identical either way; this
    /// exists for determinism tests and for embedding in already-parallel
    /// callers).
    pub fn set_sequential(&mut self, sequential: bool) {
        self.sequential = sequential;
    }

    fn ensure_store_dim(&mut self, dim: usize) {
        if !self.store_initialized {
            self.store = PointStore::new(dim.max(1));
            self.store_initialized = true;
        }
    }

    /// Processes one stream element (Algorithm 1, lines 3–6).
    pub fn insert(&mut self, element: &Element) {
        self.ensure_store_dim(element.dim());
        self.processed += 1;
        // One shared proxy cache per arrival: the ladder's candidates hold
        // overlapping members, so each retained row costs one kernel
        // evaluation however many guesses test it. Syncing the f32 mirror
        // first lets the cache decide most threshold tests in f32.
        if kernel::prefilter_enabled(self.metric) {
            self.store.sync_f32_mirror();
        }
        self.scratch
            .begin_arrival(&self.store, self.metric, &element.point);
        let mut interned: Option<PointId> = None;
        let store = &mut self.store;
        let scratch = &mut self.scratch;
        for candidate in &mut self.candidates {
            if candidate.accepts_cached(store, scratch, &element.point) {
                let id = *interned.get_or_insert_with(|| store.push_element(element));
                candidate.push(id);
            }
        }
        scratch.flush_prefilter_counters(store);
    }

    /// Processes a batch of stream elements, probing the independent
    /// candidates concurrently (with the `parallel` feature) and then
    /// committing acceptances serially. Equivalent to calling
    /// [`StreamingDiversityMaximization::insert`] element by element, in
    /// batch order.
    pub fn insert_batch(&mut self, batch: &[Element]) {
        if batch.is_empty() {
            return;
        }
        // Candidate-major probing only pays when the lanes actually run
        // concurrently; single-threaded, the cached element path is faster
        // and produces identical results.
        if self.sequential || !crate::par::parallel_available() {
            for element in batch {
                self.insert(element);
            }
            return;
        }
        self.ensure_store_dim(batch[0].dim());
        self.processed += batch.len();
        let norms: Vec<f64> = if self.metric.uses_norms() {
            batch.iter().map(|e| kernel::norm_sq(&e.point)).collect()
        } else {
            vec![0.0; batch.len()]
        };
        // One kernel evaluation per (batch element, arena row) pair, shared
        // read-only by every lane below (see `BatchProxies`).
        let proxies =
            BatchProxies::compute(self.sequential, &self.store, self.metric, batch, &norms);
        let accepted: Vec<Vec<u32>> = maybe_par_map(self.sequential, self.candidates.len(), |i| {
            self.candidates[i].probe_batch_cached(batch, &norms, None, &proxies)
        });
        let mut lanes: Vec<&mut Candidate> = self.candidates.iter_mut().collect();
        commit_batch(&mut self.store, batch, &mut lanes, &accepted);
    }

    /// Number of elements seen so far.
    pub fn processed(&self) -> usize {
        self.processed
    }

    /// Number of guesses `|U|`.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of *distinct* elements currently retained across all
    /// candidates — the paper's space metric (Fig. 8).
    pub fn stored_elements(&self) -> usize {
        let ids: HashSet<usize> = self
            .store
            .ids()
            .map(|id| self.store.external_id(id))
            .collect();
        ids.len()
    }

    /// The shared arena of retained elements.
    pub fn store(&self) -> &PointStore {
        &self.store
    }

    /// Read-only view of the candidates (used by tests and diagnostics).
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> StreamingDmConfig {
        StreamingDmConfig {
            k: self.k,
            epsilon: self.epsilon,
            bounds: self.bounds,
            metric: self.metric,
        }
    }

    /// Algorithm 1, line 7: the full candidate maximizing `div(S_µ)`.
    pub fn finalize(&self) -> Result<Solution> {
        let diversities: Vec<Option<f64>> =
            maybe_par_map(self.sequential, self.candidates.len(), |j| {
                let c = &self.candidates[j];
                (c.len() == self.k).then(|| c.diversity(&self.store))
            });
        let best = diversities
            .iter()
            .enumerate()
            .filter_map(|(j, d)| d.map(|d| (j, d)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        match best {
            Some((j, _)) => Ok(Solution::from_ids(
                &self.store,
                self.candidates[j].members(),
                self.metric,
            )),
            None => Err(FdmError::NoFeasibleCandidate),
        }
    }
}

/// # Persistence
///
/// Append-mostly state layout (arena blobs + one ladder of member lists
/// that only grow), so delta snapshots
/// ([`SnapshotDelta`](crate::persist::SnapshotDelta)) record just the
/// appended rows/ids and the `processed` counter; the v2 binary codec
/// packs both densely. Both formats and `full + delta*` chains restore
/// bit-identically (`tests/persist_codec.rs`).
impl Snapshottable for StreamingDiversityMaximization {
    fn algorithm_tag() -> String {
        "unconstrained".to_string()
    }

    fn snapshot_params(&self) -> crate::persist::SnapshotParams {
        crate::persist::SnapshotParams {
            algorithm: Self::algorithm_tag(),
            dim: if self.store_initialized {
                self.store.dim()
            } else {
                0
            },
            epsilon: self.epsilon,
            metric: self.metric,
            bounds: self.bounds,
            quotas: Vec::new(),
            k: self.k,
            shards: 1,
            window: 0,
        }
    }

    fn snapshot_state(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("config".to_string(), self.config().to_value());
        map.insert("store".to_string(), self.store.to_value());
        map.insert(
            "store_initialized".to_string(),
            serde::Value::Bool(self.store_initialized),
        );
        map.insert(
            "processed".to_string(),
            serde::Serialize::to_value(&self.processed),
        );
        map.insert(
            "candidates".to_string(),
            persist::lanes_of(&self.candidates).to_value(),
        );
        serde::Value::Object(map)
    }

    fn capture_cursor(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("store".to_string(), persist::store_cursor(&self.store));
        map.insert(
            "candidates".to_string(),
            persist::lanes_cursor(&self.candidates),
        );
        serde::Value::Object(map)
    }

    fn state_patch_since(&self, cursor: &serde::Value) -> Option<persist::StatePatch> {
        let store = persist::store_patch_since(&self.store, cursor.get("store")?)?;
        let candidates = persist::lanes_patch_since(&self.candidates, cursor.get("candidates")?)?;
        // `config` is static for the instance's lifetime → keep.
        Some(persist::StatePatch::Object(vec![
            ("store".to_string(), store),
            (
                "store_initialized".to_string(),
                persist::StatePatch::Replace(serde::Value::Bool(self.store_initialized)),
            ),
            (
                "processed".to_string(),
                persist::StatePatch::Replace(serde::Serialize::to_value(&self.processed)),
            ),
            ("candidates".to_string(), candidates),
        ]))
    }

    fn restore_state(state: &serde::Value) -> Result<Self> {
        let config: StreamingDmConfig = persist::field(state, "config")?;
        let mut alg = Self::new(config)?;
        let store: PointStore = persist::field(state, "store")?;
        let store_initialized: bool = persist::field(state, "store_initialized")?;
        if !store_initialized && !store.is_empty() {
            return Err(FdmError::CorruptSnapshot {
                detail: "arena holds points but is marked uninitialized".to_string(),
            });
        }
        let lanes: persist::LadderLanes = persist::field(state, "candidates")?;
        persist::restore_lanes(&mut alg.candidates, &lanes, store.len(), "candidates")?;
        alg.processed = persist::field(state, "processed")?;
        alg.store = store;
        alg.store_initialized = store_initialized;
        Ok(alg)
    }
}

/// Interns every batch element accepted by at least one candidate (in batch
/// order) and pushes the resulting ids into each accepting candidate —
/// the serial commit phase shared by all ladder algorithms.
pub(crate) fn commit_batch(
    store: &mut PointStore,
    batch: &[Element],
    candidates: &mut [&mut Candidate],
    accepted: &[Vec<u32>],
) {
    let mut wanted = vec![false; batch.len()];
    for lane in accepted {
        for &pos in lane {
            wanted[pos as usize] = true;
        }
    }
    // Intern in batch order so arena order matches element-by-element runs.
    let mut id_of_pos: Vec<Option<PointId>> = vec![None; batch.len()];
    for (pos, wanted) in wanted.iter().enumerate() {
        if *wanted {
            id_of_pos[pos] = Some(store.push_element(&batch[pos]));
        }
    }
    for (candidate, lane) in candidates.iter_mut().zip(accepted) {
        for &pos in lane {
            candidate.push(id_of_pos[pos as usize].expect("accepted element interned"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_unconstrained_optimum;
    use crate::dataset::Dataset;
    use rand::prelude::*;

    fn config(k: usize, eps: f64, lo: f64, hi: f64) -> StreamingDmConfig {
        StreamingDmConfig {
            k,
            epsilon: eps,
            bounds: DistanceBounds::new(lo, hi).unwrap(),
            metric: Metric::Euclidean,
        }
    }

    fn run_stream(dataset: &Dataset, cfg: StreamingDmConfig) -> StreamingDiversityMaximization {
        let mut alg = StreamingDiversityMaximization::new(cfg).unwrap();
        for e in dataset.iter() {
            alg.insert(&e);
        }
        alg
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(StreamingDiversityMaximization::new(config(1, 0.1, 1.0, 10.0)).is_err());
        assert!(StreamingDiversityMaximization::new(config(3, 0.0, 1.0, 10.0)).is_err());
        assert!(StreamingDiversityMaximization::new(config(3, 1.0, 1.0, 10.0)).is_err());
    }

    #[test]
    fn finds_solution_on_line() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let d = Dataset::from_rows(rows, vec![0; 100], Metric::Euclidean).unwrap();
        let bounds = d.exact_distance_bounds().unwrap();
        let alg = run_stream(
            &d,
            StreamingDmConfig {
                k: 5,
                epsilon: 0.1,
                bounds,
                metric: Metric::Euclidean,
            },
        );
        let sol = alg.finalize().unwrap();
        assert_eq!(sol.len(), 5);
        // Optimal div for 5 points on 0..99 is 99/4 = 24.75; the algorithm
        // guarantees (1−ε)/2 ≈ 0.45 of that.
        assert!(
            sol.diversity >= 0.45 * 24.75 - 1e-9,
            "got {}",
            sol.diversity
        );
    }

    #[test]
    fn theorem1_ratio_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..10 {
            let n = 16;
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
                .collect();
            let d = Dataset::from_rows(rows, vec![0; n], Metric::Euclidean).unwrap();
            let k = 4;
            let opt = exact_unconstrained_optimum(&d, k);
            let bounds = d.exact_distance_bounds().unwrap();
            let eps = 0.1;
            let alg = run_stream(
                &d,
                StreamingDmConfig {
                    k,
                    epsilon: eps,
                    bounds,
                    metric: Metric::Euclidean,
                },
            );
            let sol = alg.finalize().unwrap();
            let guarantee = (1.0 - eps) / 2.0 * opt;
            assert!(
                sol.diversity >= guarantee - 1e-9,
                "trial {trial}: {} < {guarantee}",
                sol.diversity
            );
        }
    }

    #[test]
    fn stream_order_does_not_break_guarantee() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 14;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 5.0, rng.random::<f64>() * 5.0])
            .collect();
        let d = Dataset::from_rows(rows, vec![0; n], Metric::Euclidean).unwrap();
        let k = 3;
        let opt = exact_unconstrained_optimum(&d, k);
        let bounds = d.exact_distance_bounds().unwrap();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..5 {
            order.shuffle(&mut rng);
            let mut alg = StreamingDiversityMaximization::new(StreamingDmConfig {
                k,
                epsilon: 0.1,
                bounds,
                metric: Metric::Euclidean,
            })
            .unwrap();
            for &i in &order {
                alg.insert(&d.element(i));
            }
            let sol = alg.finalize().unwrap();
            assert!(sol.diversity >= 0.45 * opt - 1e-9);
        }
    }

    #[test]
    fn space_is_bounded_by_candidates_times_k() {
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|i| vec![(i as f64).sin() * 50.0, (i as f64).cos() * 50.0])
            .collect();
        let d = Dataset::from_rows(rows, vec![0; 500], Metric::Euclidean).unwrap();
        let bounds = d.sampled_distance_bounds(50, 2.0).unwrap();
        let k = 8;
        let alg = run_stream(
            &d,
            StreamingDmConfig {
                k,
                epsilon: 0.2,
                bounds,
                metric: Metric::Euclidean,
            },
        );
        assert!(alg.stored_elements() <= alg.num_candidates() * k);
        assert!(
            alg.stored_elements() < 500,
            "must not store the whole stream"
        );
        assert_eq!(alg.processed(), 500);
    }

    #[test]
    fn too_short_stream_yields_error() {
        let rows: Vec<Vec<f64>> = (0..3).map(|i| vec![i as f64]).collect();
        let d = Dataset::from_rows(rows, vec![0; 3], Metric::Euclidean).unwrap();
        let bounds = d.exact_distance_bounds().unwrap();
        let alg = run_stream(
            &d,
            StreamingDmConfig {
                k: 5,
                epsilon: 0.1,
                bounds,
                metric: Metric::Euclidean,
            },
        );
        assert_eq!(alg.finalize().unwrap_err(), FdmError::NoFeasibleCandidate);
    }

    #[test]
    fn duplicate_points_are_never_both_kept() {
        let rows = vec![vec![0.0], vec![0.0], vec![5.0], vec![5.0], vec![10.0]];
        let d = Dataset::from_rows(rows, vec![0; 5], Metric::Euclidean).unwrap();
        let bounds = DistanceBounds::new(1.0, 10.0).unwrap();
        let alg = run_stream(
            &d,
            StreamingDmConfig {
                k: 3,
                epsilon: 0.1,
                bounds,
                metric: Metric::Euclidean,
            },
        );
        let sol = alg.finalize().unwrap();
        assert_eq!(sol.len(), 3);
        assert!(sol.diversity >= 1.0);
    }

    #[test]
    fn batch_insert_matches_element_by_element() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    (i as f64 * 0.77).sin() * 20.0,
                    (i as f64 * 0.31).cos() * 20.0,
                ]
            })
            .collect();
        let d = Dataset::from_rows(rows, vec![0; 200], Metric::Euclidean).unwrap();
        let bounds = d.sampled_distance_bounds(50, 2.0).unwrap();
        let cfg = StreamingDmConfig {
            k: 6,
            epsilon: 0.15,
            bounds,
            metric: Metric::Euclidean,
        };
        let one_by_one = run_stream(&d, cfg.clone());
        let mut batched = StreamingDiversityMaximization::new(cfg).unwrap();
        let elements: Vec<Element> = d.iter().collect();
        for chunk in elements.chunks(37) {
            batched.insert_batch(chunk);
        }
        assert_eq!(one_by_one.processed(), batched.processed());
        assert_eq!(one_by_one.stored_elements(), batched.stored_elements());
        let a = one_by_one.finalize().unwrap();
        let b = batched.finalize().unwrap();
        assert_eq!(a.ids(), b.ids());
        assert_eq!(a.diversity, b.diversity);
    }
}
