//! SFDM2 — Algorithm 3: streaming FDM for any number of groups,
//! `(1−ε)/(3m+2)`-approximate (Theorem 4).
//!
//! **Stream processing**: per guess `µ` keep one group-blind candidate of
//! capacity `k` and one per-group candidate of capacity `k` (not `k_i` — the
//! larger pools are what Lemma 4's cluster-counting argument needs).
//!
//! **Post-processing** (per guess in
//! `U' = {µ : |S_µ| = k ∧ |S_µ,i| ≥ k_i ∀i}`):
//!
//! 1. Seed a partial solution `S'_µ ⊆ S_µ` by truncating each over-filled
//!    group to its quota (Algorithm 3, line 11).
//! 2. Cluster `S_all` (all retained elements) with threshold `µ/(m+1)`
//!    ([`crate::clustering`]); Lemma 3 gives cross-cluster separation
//!    `≥ µ/(m+1)` and at most one element per candidate per cluster.
//! 3. Define the fairness partition matroid `M1` (≤ `k_i` per group) and
//!    the cluster matroid `M2` (≤ 1 per cluster) and augment `S'_µ` to a
//!    maximum common independent set with Cunningham's algorithm,
//!    greedily preferring far elements
//!    ([`crate::matroid::intersection`], Algorithm 4).
//! 4. Keep the fair size-`k` result with maximum diversity across guesses.
//!
//! Retained elements are interned once into a shared [`PointStore`];
//! candidates hold [`PointId`]s. With the `parallel` feature, batch inserts
//! probe all `(m+1) · |U|` candidates concurrently and the whole per-guess
//! post-processing pipeline (clustering + matroid intersection) runs across
//! the ladder in parallel — the results are identical to a sequential run.

use std::collections::HashSet;

use serde::Serialize as _;

use crate::clustering::threshold_clusters_ids;
use crate::dataset::DistanceBounds;
use crate::diversity::diversity_of_ids;
use crate::error::{FdmError, Result};
use crate::fairness::FairnessConstraint;
use crate::guess::GuessLadder;
use crate::kernel;
use crate::matroid::intersection::max_common_independent_set;
use crate::matroid::PartitionMatroid;
use crate::metric::Metric;
use crate::par::maybe_par_map;
use crate::persist::{self, Snapshottable};
use crate::point::{Element, PointId, PointStore};
use crate::solution::Solution;
use crate::streaming::candidate::{ArrivalProxies, BatchProxies, Candidate};
use crate::streaming::unconstrained::commit_batch;

/// Configuration for [`Sfdm2`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Sfdm2Config {
    /// Quota vector over `m ≥ 2` groups.
    pub constraint: FairnessConstraint,
    /// Guess-ladder accuracy `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Known bounds with `d_min ≤ OPT_f ≤ d_max`.
    pub bounds: DistanceBounds,
    /// The distance metric.
    pub metric: Metric,
}

/// Whether SFDM2's matroid-intersection phase seeds from the partial
/// solution with greedy far-element preference (the paper's adaptation) or
/// from the empty set without scores (plain Cunningham) — ablation A2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum AugmentationMode {
    /// Partial-solution seed + greedy `argmax d(x, S)` selection (paper).
    #[default]
    SeededGreedy,
    /// Empty seed, ground-order selection (plain Cunningham baseline).
    PlainCunningham,
}

/// Streaming state of SFDM2.
///
/// # Examples
///
/// ```
/// use fdm_core::prelude::*;
///
/// // Twelve points on a line across three groups; one element per group.
/// let constraint = FairnessConstraint::new(vec![1, 1, 1])?;
/// let mut alg = Sfdm2::new(Sfdm2Config {
///     constraint: constraint.clone(),
///     epsilon: 0.1,
///     bounds: DistanceBounds::new(1.0, 11.0)?,
///     metric: Metric::Euclidean,
/// })?;
/// for i in 0..12 {
///     alg.insert(&Element::new(i, vec![i as f64], i % 3));
/// }
/// let solution = alg.finalize()?;
/// assert!(constraint.is_satisfied_by(&solution.group_counts(3)));
/// # Ok::<(), fdm_core::FdmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sfdm2 {
    constraint: FairnessConstraint,
    metric: Metric,
    epsilon: f64,
    bounds: DistanceBounds,
    store: PointStore,
    blind: Vec<Candidate>,
    /// `specific[i][j]`: group `i`, guess `j`, capacity `k`.
    specific: Vec<Vec<Candidate>>,
    mode: AugmentationMode,
    /// Per-arrival proxy cache shared across all candidates (see
    /// [`ArrivalProxies`]).
    scratch: ArrivalProxies,
    processed: usize,
    sequential: bool,
    store_initialized: bool,
}

impl Sfdm2 {
    /// Initializes the candidates for every guess in the ladder.
    pub fn new(config: Sfdm2Config) -> Result<Self> {
        Self::with_mode(config, AugmentationMode::SeededGreedy)
    }

    /// Like [`Sfdm2::new`] with an explicit augmentation mode (ablation).
    pub fn with_mode(config: Sfdm2Config, mode: AugmentationMode) -> Result<Self> {
        let m = config.constraint.num_groups();
        if m < 2 {
            return Err(FdmError::EmptyConstraint);
        }
        config.metric.validate()?;
        let ladder = GuessLadder::new(config.bounds, config.epsilon)?;
        let k = config.constraint.total();
        let blind: Vec<Candidate> = ladder
            .values()
            .iter()
            .map(|&mu| Candidate::new(mu, k, config.metric))
            .collect();
        let specific: Vec<Vec<Candidate>> = (0..m)
            .map(|_| {
                ladder
                    .values()
                    .iter()
                    .map(|&mu| Candidate::new(mu, k, config.metric))
                    .collect()
            })
            .collect();
        Ok(Sfdm2 {
            constraint: config.constraint,
            metric: config.metric,
            epsilon: config.epsilon,
            bounds: config.bounds,
            store: PointStore::new(1),
            blind,
            specific,
            mode,
            scratch: ArrivalProxies::new(),
            processed: 0,
            sequential: false,
            store_initialized: false,
        })
    }

    /// Forces single-threaded processing even when built with the
    /// `parallel` feature (identical results; see the module docs).
    pub fn set_sequential(&mut self, sequential: bool) {
        self.sequential = sequential;
    }

    fn ensure_store_dim(&mut self, dim: usize) {
        if !self.store_initialized {
            self.store = PointStore::new(dim.max(1));
            self.store_initialized = true;
        }
    }

    /// Processes one stream element (Algorithm 3, lines 3–8).
    pub fn insert(&mut self, element: &Element) {
        debug_assert!(
            element.group < self.specific.len(),
            "group label out of range for the constraint"
        );
        self.ensure_store_dim(element.dim());
        self.processed += 1;
        // One shared proxy cache per arrival (see the Sfdm1 counterpart):
        // the blind and group ladders overlap heavily in members, so each
        // arena row costs one kernel evaluation per arrival at most.
        // Syncing the f32 mirror first lets the cache decide most
        // threshold tests in f32.
        if kernel::prefilter_enabled(self.metric) {
            self.store.sync_f32_mirror();
        }
        self.scratch
            .begin_arrival(&self.store, self.metric, &element.point);
        let mut interned: Option<PointId> = None;
        let store = &mut self.store;
        let scratch = &mut self.scratch;
        for candidate in self
            .blind
            .iter_mut()
            .chain(self.specific[element.group].iter_mut())
        {
            if candidate.accepts_cached(store, scratch, &element.point) {
                let id = *interned.get_or_insert_with(|| store.push_element(element));
                candidate.push(id);
            }
        }
        scratch.flush_prefilter_counters(store);
    }

    /// Processes a batch of stream elements; equivalent to element-by-element
    /// [`Sfdm2::insert`] in batch order, with the `(m+1) · |U|` independent
    /// candidates probed concurrently under the `parallel` feature.
    pub fn insert_batch(&mut self, batch: &[Element]) {
        if batch.is_empty() {
            return;
        }
        // Candidate-major probing only pays when the lanes actually run
        // concurrently; single-threaded, the cached element path is faster
        // and produces identical results.
        if self.sequential || !crate::par::parallel_available() {
            for element in batch {
                self.insert(element);
            }
            return;
        }
        let m = self.specific.len();
        debug_assert!(batch.iter().all(|e| e.group < m));
        self.ensure_store_dim(batch[0].dim());
        self.processed += batch.len();
        let norms: Vec<f64> = if self.metric.uses_norms() {
            batch.iter().map(|e| kernel::norm_sq(&e.point)).collect()
        } else {
            vec![0.0; batch.len()]
        };
        // One kernel evaluation per (batch element, arena row) pair, shared
        // read-only by every lane below (see `BatchProxies`).
        let proxies =
            BatchProxies::compute(self.sequential, &self.store, self.metric, batch, &norms);
        // Lane layout: [blind..., specific[0]..., ..., specific[m-1]...].
        let ladder = self.blind.len();
        let accepted: Vec<Vec<u32>> = maybe_par_map(self.sequential, ladder * (m + 1), |lane| {
            let (candidate, restrict) = if lane < ladder {
                (&self.blind[lane], None)
            } else {
                let g = lane / ladder - 1;
                (&self.specific[g][lane % ladder], Some(g))
            };
            candidate.probe_batch_cached(batch, &norms, restrict, &proxies)
        });
        let mut lanes: Vec<&mut Candidate> = self
            .blind
            .iter_mut()
            .chain(self.specific.iter_mut().flatten())
            .collect();
        commit_batch(&mut self.store, batch, &mut lanes, &accepted);
    }

    /// Number of elements seen so far.
    pub fn processed(&self) -> usize {
        self.processed
    }

    /// Distinct retained element count — the paper's space metric.
    pub fn stored_elements(&self) -> usize {
        let ids: HashSet<usize> = self
            .store
            .ids()
            .map(|id| self.store.external_id(id))
            .collect();
        ids.len()
    }

    /// The shared arena of retained elements.
    pub fn store(&self) -> &PointStore {
        &self.store
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> Sfdm2Config {
        Sfdm2Config {
            constraint: self.constraint.clone(),
            epsilon: self.epsilon,
            bounds: self.bounds,
            metric: self.metric,
        }
    }

    /// Post-processing (Algorithm 3, lines 9–19). Each guess's pipeline —
    /// clustering, matroid construction, Cunningham augmentation — is
    /// independent and runs across the ladder in parallel under the
    /// `parallel` feature.
    pub fn finalize(&self) -> Result<Solution> {
        let results: Vec<Option<(f64, Vec<PointId>)>> =
            maybe_par_map(self.sequential, self.blind.len(), |j| self.process_guess(j));
        // Serial reduction preserves the first-maximum tie-break regardless
        // of how the map above was scheduled.
        let mut best: Option<(f64, &Vec<PointId>)> = None;
        for r in results.iter().flatten() {
            let (div, ids) = r;
            if best.as_ref().is_none_or(|(b, _)| *div > *b) {
                best = Some((*div, ids));
            }
        }
        match best {
            Some((_, ids)) => Ok(Solution::from_ids(&self.store, ids, self.metric)),
            None => Err(FdmError::NoFeasibleCandidate),
        }
    }

    /// One guess's post-processing; `None` when `µ_j ∉ U'` or the augmented
    /// result is smaller than `k` (Algorithm 3, line 19).
    fn process_guess(&self, j: usize) -> Option<(f64, Vec<PointId>)> {
        let k = self.constraint.total();
        let m = self.constraint.num_groups();
        let blind = &self.blind[j];
        // U' membership.
        if blind.len() < k {
            return None;
        }
        if (0..m).any(|g| self.specific[g][j].len() < self.constraint.quota(g)) {
            return None;
        }
        let mu = blind.mu();

        // S_all: union of all candidates' members. Elements are interned
        // once per stream arrival, so deduplication by arena id is
        // deduplication by stream element.
        let mut sall: Vec<PointId> = Vec::new();
        let mut seen: HashSet<PointId> = HashSet::new();
        for &id in blind
            .members()
            .iter()
            .chain((0..m).flat_map(|g| self.specific[g][j].members()))
        {
            if seen.insert(id) {
                sall.push(id);
            }
        }
        // Partial solution S'_µ: per group min(k_i, |S_µ ∩ X_i|)
        // elements of the blind candidate (Algorithm 3, line 11). The blind
        // members are distinct and were pushed into `sall` first, so the
        // i-th blind member sits at index i.
        let mut taken_per_group = vec![0usize; m];
        let mut initial: Vec<usize> = Vec::with_capacity(k);
        for (i, &id) in blind.members().iter().enumerate() {
            debug_assert_eq!(sall[i], id);
            let g = self.store.group(id);
            if taken_per_group[g] < self.constraint.quota(g) {
                taken_per_group[g] += 1;
                initial.push(i);
            }
        }

        // Threshold clustering of S_all (Algorithm 3, lines 13–16).
        let threshold = mu / (m as f64 + 1.0);
        let (cluster_of, num_clusters) =
            threshold_clusters_ids(&self.store, &sall, self.metric, threshold);

        // Matroids: fairness (M1) and one-per-cluster (M2).
        let groups_of: Vec<usize> = sall.iter().map(|&id| self.store.group(id)).collect();
        let m1 = PartitionMatroid::new(groups_of, self.constraint.quotas().to_vec())
            .expect("group labels validated on insert");
        let m2 = PartitionMatroid::unit_capacities(cluster_of, num_clusters)
            .expect("cluster labels are dense");

        // Algorithm 4.
        let result = match self.mode {
            AugmentationMode::SeededGreedy => {
                let score = |x: usize, members: &[usize]| {
                    let (row, norm) = (self.store.row(sall[x]), self.store.norm_sq(sall[x]));
                    let mut best = f64::INFINITY;
                    for &y in members {
                        let p = self.metric.proxy_with_norms(
                            row,
                            self.store.row(sall[y]),
                            norm,
                            self.store.norm_sq(sall[y]),
                        );
                        if p < best {
                            best = p;
                        }
                    }
                    // Monotone proxy: argmax over proxies = argmax over
                    // distances, which is all the greedy selection needs.
                    best
                };
                max_common_independent_set(&m1, &m2, &initial, Some(&score))
            }
            AugmentationMode::PlainCunningham => max_common_independent_set(&m1, &m2, &[], None),
        };
        if result.len() != k {
            return None; // line 19 keeps only size-k results
        }
        let ids: Vec<PointId> = result.iter().map(|&i| sall[i]).collect();
        let div = diversity_of_ids(&self.store, &ids, self.metric);
        Some((div, ids))
    }
}

/// # Persistence
///
/// The state tree is laid out **append-mostly** on purpose: the arena's
/// coordinate/group/id blobs only grow and each ladder lane's member list
/// only gains ids, so an incremental checkpoint
/// ([`SnapshotDelta`](crate::persist::SnapshotDelta)) between two captures
/// records just the appended rows, the new member ids, and the `processed`
/// counter. In the v2 binary codec the blobs pack as dense `f64` rows and
/// varint ids. Restores of either format (and of `full + delta*` chains)
/// are bit-identical — pinned by `tests/persist_codec.rs`.
impl Snapshottable for Sfdm2 {
    fn algorithm_tag() -> String {
        "sfdm2".to_string()
    }

    fn snapshot_params(&self) -> crate::persist::SnapshotParams {
        crate::persist::SnapshotParams {
            algorithm: Self::algorithm_tag(),
            dim: if self.store_initialized {
                self.store.dim()
            } else {
                0
            },
            epsilon: self.epsilon,
            metric: self.metric,
            bounds: self.bounds,
            quotas: self.constraint.quotas().to_vec(),
            k: self.constraint.total(),
            shards: 1,
            window: 0,
        }
    }

    fn snapshot_state(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("config".to_string(), self.config().to_value());
        map.insert("mode".to_string(), self.mode.to_value());
        map.insert("store".to_string(), self.store.to_value());
        map.insert(
            "store_initialized".to_string(),
            serde::Value::Bool(self.store_initialized),
        );
        map.insert(
            "processed".to_string(),
            serde::Serialize::to_value(&self.processed),
        );
        map.insert(
            "blind".to_string(),
            persist::lanes_of(&self.blind).to_value(),
        );
        let specific: Vec<persist::LadderLanes> =
            self.specific.iter().map(|c| persist::lanes_of(c)).collect();
        map.insert("specific".to_string(), specific.to_value());
        serde::Value::Object(map)
    }

    fn capture_cursor(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("store".to_string(), persist::store_cursor(&self.store));
        map.insert("blind".to_string(), persist::lanes_cursor(&self.blind));
        map.insert(
            "specific".to_string(),
            serde::Value::Array(
                self.specific
                    .iter()
                    .map(|c| persist::lanes_cursor(c))
                    .collect(),
            ),
        );
        serde::Value::Object(map)
    }

    fn state_patch_since(&self, cursor: &serde::Value) -> Option<persist::StatePatch> {
        let store = persist::store_patch_since(&self.store, cursor.get("store")?)?;
        let blind = persist::lanes_patch_since(&self.blind, cursor.get("blind")?)?;
        let specific_cursors = cursor.get("specific")?.as_array()?;
        if specific_cursors.len() != self.specific.len() {
            return None;
        }
        let specific: Vec<persist::StatePatch> = self
            .specific
            .iter()
            .zip(specific_cursors)
            .map(|(lanes, c)| persist::lanes_patch_since(lanes, c))
            .collect::<Option<Vec<_>>>()?;
        // `config` and `mode` are static for the instance's lifetime → keep.
        Some(persist::StatePatch::Object(vec![
            ("store".to_string(), store),
            (
                "store_initialized".to_string(),
                persist::StatePatch::Replace(serde::Value::Bool(self.store_initialized)),
            ),
            (
                "processed".to_string(),
                persist::StatePatch::Replace(serde::Serialize::to_value(&self.processed)),
            ),
            ("blind".to_string(), blind),
            (
                "specific".to_string(),
                persist::StatePatch::Elements(specific),
            ),
        ]))
    }

    fn restore_state(state: &serde::Value) -> Result<Self> {
        let config: Sfdm2Config = persist::field(state, "config")?;
        let mode: AugmentationMode = persist::field(state, "mode")?;
        let m = config.constraint.num_groups();
        let mut alg = Self::with_mode(config, mode)?;
        let store: PointStore = persist::field(state, "store")?;
        let store_initialized: bool = persist::field(state, "store_initialized")?;
        if !store_initialized && !store.is_empty() {
            return Err(FdmError::CorruptSnapshot {
                detail: "arena holds points but is marked uninitialized".to_string(),
            });
        }
        if let Some(&bad) = store.groups_raw().iter().find(|&&g| g as usize >= m) {
            return Err(FdmError::CorruptSnapshot {
                detail: format!("group label {bad} out of range for {m} groups"),
            });
        }
        let blind: persist::LadderLanes = persist::field(state, "blind")?;
        persist::restore_lanes(&mut alg.blind, &blind, store.len(), "blind")?;
        let specific: Vec<persist::LadderLanes> = persist::field(state, "specific")?;
        if specific.len() != m {
            return Err(FdmError::CorruptSnapshot {
                detail: format!("expected {m} group ladders, found {}", specific.len()),
            });
        }
        for (g, lanes) in specific.iter().enumerate() {
            persist::restore_lanes(
                &mut alg.specific[g],
                lanes,
                store.len(),
                &format!("group {g}"),
            )?;
        }
        alg.processed = persist::field(state, "processed")?;
        alg.store = store;
        alg.store_initialized = store_initialized;
        Ok(alg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_fair_optimum;
    use crate::dataset::Dataset;
    use rand::prelude::*;

    fn random_dataset(n: usize, m: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
            .collect();
        let mut groups: Vec<usize> = (0..n).map(|_| rng.random_range(0..m)).collect();
        for g in 0..m {
            groups[g] = g;
        }
        Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap()
    }

    fn run(dataset: &Dataset, constraint: FairnessConstraint, eps: f64) -> Result<Solution> {
        let bounds = dataset.exact_distance_bounds().unwrap();
        let mut alg = Sfdm2::new(Sfdm2Config {
            constraint,
            epsilon: eps,
            bounds,
            metric: dataset.metric(),
        })?;
        for e in dataset.iter() {
            alg.insert(&e);
        }
        alg.finalize()
    }

    #[test]
    fn output_is_fair_two_groups() {
        let d = random_dataset(150, 2, 1);
        let c = FairnessConstraint::new(vec![3, 3]).unwrap();
        let sol = run(&d, c.clone(), 0.1).unwrap();
        assert_eq!(sol.len(), 6);
        assert!(c.is_satisfied_by(&sol.group_counts(2)));
    }

    #[test]
    fn output_is_fair_many_groups() {
        let d = random_dataset(400, 5, 2);
        let c = FairnessConstraint::equal_representation(10, 5).unwrap();
        let sol = run(&d, c.clone(), 0.1).unwrap();
        assert_eq!(sol.len(), 10);
        assert!(c.is_satisfied_by(&sol.group_counts(5)));
    }

    #[test]
    fn theorem4_ratio_on_random_instances() {
        for trial in 0..6 {
            let m = 3;
            let d = random_dataset(15, m, 60 + trial);
            let c = FairnessConstraint::new(vec![1, 1, 2]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &c);
            if opt <= 0.0 {
                continue;
            }
            let eps = 0.1;
            let sol = run(&d, c, eps).unwrap();
            let guarantee = (1.0 - eps) / (3.0 * m as f64 + 2.0) * opt;
            assert!(
                sol.diversity >= guarantee - 1e-9,
                "trial {trial}: {} < {guarantee}",
                sol.diversity
            );
        }
    }

    #[test]
    fn practical_quality_is_well_above_worst_case() {
        let mut ratios = Vec::new();
        for trial in 0..5 {
            let d = random_dataset(16, 2, 70 + trial);
            let c = FairnessConstraint::new(vec![2, 2]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &c);
            let sol = run(&d, c, 0.1).unwrap();
            ratios.push(sol.diversity / opt);
        }
        let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(avg > 0.4, "average ratio {avg}: {ratios:?}");
    }

    #[test]
    fn skewed_quotas_many_groups() {
        let d = random_dataset(500, 4, 8);
        let c = FairnessConstraint::new(vec![1, 2, 3, 4]).unwrap();
        let sol = run(&d, c.clone(), 0.1).unwrap();
        assert!(c.is_satisfied_by(&sol.group_counts(4)));
    }

    #[test]
    fn plain_cunningham_mode_is_fair_but_not_better() {
        let d = random_dataset(200, 3, 11);
        let c = FairnessConstraint::new(vec![2, 2, 2]).unwrap();
        let bounds = d.exact_distance_bounds().unwrap();
        let mut greedy = Sfdm2::new(Sfdm2Config {
            constraint: c.clone(),
            epsilon: 0.1,
            bounds,
            metric: Metric::Euclidean,
        })
        .unwrap();
        let mut plain = Sfdm2::with_mode(
            Sfdm2Config {
                constraint: c.clone(),
                epsilon: 0.1,
                bounds,
                metric: Metric::Euclidean,
            },
            AugmentationMode::PlainCunningham,
        )
        .unwrap();
        for e in d.iter() {
            greedy.insert(&e);
            plain.insert(&e);
        }
        let g = greedy.finalize().unwrap();
        let p = plain.finalize().unwrap();
        assert!(c.is_satisfied_by(&g.group_counts(3)));
        assert!(c.is_satisfied_by(&p.group_counts(3)));
        // The paper's §IV-B comparison: seeded greedy selection yields
        // higher (or equal) diversity than plain augmentation.
        assert!(g.diversity >= p.diversity - 1e-9);
    }

    #[test]
    fn space_scales_with_m_not_n() {
        let c = FairnessConstraint::equal_representation(8, 4).unwrap();
        let bounds = DistanceBounds::new(0.05, 15.0).unwrap();
        let ladder_len = GuessLadder::new(bounds, 0.1).unwrap().len();
        for n in [300usize, 3000] {
            let d = random_dataset(n, 4, 21);
            let mut alg = Sfdm2::new(Sfdm2Config {
                constraint: c.clone(),
                epsilon: 0.1,
                bounds,
                metric: Metric::Euclidean,
            })
            .unwrap();
            for e in d.iter() {
                alg.insert(&e);
            }
            // (m + 1) candidates of capacity k per guess.
            assert!(alg.stored_elements() <= ladder_len * 5 * 8);
        }
    }

    #[test]
    fn infeasible_stream_errors() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let d = Dataset::from_rows(rows, vec![0; 60], Metric::Euclidean).unwrap();
        let c = FairnessConstraint::new(vec![2, 2]).unwrap();
        let err = run(&d, c, 0.1).unwrap_err();
        assert_eq!(err, FdmError::NoFeasibleCandidate);
    }

    #[test]
    fn ten_groups_smoke() {
        let d = random_dataset(800, 10, 33);
        let c = FairnessConstraint::equal_representation(20, 10).unwrap();
        let sol = run(&d, c.clone(), 0.2).unwrap();
        assert_eq!(sol.len(), 20);
        assert!(c.is_satisfied_by(&sol.group_counts(10)));
    }

    #[test]
    fn batch_insert_matches_element_by_element() {
        let d = random_dataset(400, 3, 44);
        let c = FairnessConstraint::new(vec![2, 3, 2]).unwrap();
        let bounds = d.exact_distance_bounds().unwrap();
        let cfg = Sfdm2Config {
            constraint: c,
            epsilon: 0.1,
            bounds,
            metric: Metric::Euclidean,
        };
        let mut one_by_one = Sfdm2::new(cfg.clone()).unwrap();
        let mut batched = Sfdm2::new(cfg).unwrap();
        let elements: Vec<Element> = d.iter().collect();
        for e in &elements {
            one_by_one.insert(e);
        }
        for chunk in elements.chunks(61) {
            batched.insert_batch(chunk);
        }
        assert_eq!(one_by_one.stored_elements(), batched.stored_elements());
        let a = one_by_one.finalize().unwrap();
        let b = batched.finalize().unwrap();
        assert_eq!(a.ids(), b.ids());
        assert_eq!(a.diversity, b.diversity);
    }
}
