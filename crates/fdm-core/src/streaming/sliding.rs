//! Sliding-window fair diversity maximization (extension).
//!
//! The paper lists the sliding-window model as future work (§VI). This
//! module provides a practical **checkpointed-restart** wrapper: it keeps
//! two staggered [`Sfdm2`] instances, starting a fresh one every `W/2`
//! arrivals and retiring the older one, so that at any time the queried
//! instance has seen between the last `W/2` and the last `W` elements.
//!
//! This is a documented heuristic, not a reproduction artifact: it carries
//! no approximation guarantee relative to the true window optimum (a
//! rigorous sliding-window algorithm à la Borassi et al. would maintain
//! exponential-histogram checkpoints), but it preserves the fairness
//! constraint exactly, uses `O(km log(∆)/ε)` space, and gives downstream
//! users a drop-in way to age out stale elements.

use crate::error::Result;
use crate::point::Element;
use crate::solution::Solution;
use crate::streaming::sfdm2::{Sfdm2, Sfdm2Config};

/// Sliding-window wrapper over [`Sfdm2`]. See the module docs.
#[derive(Debug, Clone)]
pub struct SlidingWindowFdm {
    config: Sfdm2Config,
    /// Window size `W` (elements).
    window: usize,
    /// Older instance (covers ≥ W/2 most recent arrivals).
    primary: Sfdm2,
    /// Younger instance, promoted at the next checkpoint.
    secondary: Sfdm2,
    arrivals: usize,
}

impl SlidingWindowFdm {
    /// Creates the wrapper; `window` must be at least 2 so checkpoints make
    /// sense (values smaller than `2k` will rarely yield feasible windows).
    pub fn new(config: Sfdm2Config, window: usize) -> Result<Self> {
        let primary = Sfdm2::new(config.clone())?;
        let secondary = Sfdm2::new(config.clone())?;
        Ok(SlidingWindowFdm {
            config,
            window: window.max(2),
            primary,
            secondary,
            arrivals: 0,
        })
    }

    /// Window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total arrivals observed.
    pub fn arrivals(&self) -> usize {
        self.arrivals
    }

    /// Processes one arrival; rotates instances every `W/2` arrivals.
    pub fn insert(&mut self, element: &Element) {
        self.primary.insert(element);
        self.secondary.insert(element);
        self.arrivals += 1;
        let half = (self.window / 2).max(1);
        if self.arrivals.is_multiple_of(half) {
            // Promote the younger instance and start a fresh one.
            self.primary = std::mem::replace(
                &mut self.secondary,
                Sfdm2::new(self.config.clone()).expect("config validated at construction"),
            );
        }
    }

    /// Processes a batch of arrivals, splitting it at checkpoint boundaries
    /// so rotation happens exactly as with element-by-element
    /// [`SlidingWindowFdm::insert`]; within each segment the two instances
    /// use the parallel batch path of [`Sfdm2::insert_batch`].
    pub fn insert_batch(&mut self, batch: &[Element]) {
        let half = (self.window / 2).max(1);
        let mut rest = batch;
        while !rest.is_empty() {
            let until_checkpoint = half - self.arrivals % half;
            let take = until_checkpoint.min(rest.len());
            let (segment, tail) = rest.split_at(take);
            self.primary.insert_batch(segment);
            self.secondary.insert_batch(segment);
            self.arrivals += segment.len();
            if self.arrivals.is_multiple_of(half) {
                self.primary = std::mem::replace(
                    &mut self.secondary,
                    Sfdm2::new(self.config.clone()).expect("config validated at construction"),
                );
            }
            rest = tail;
        }
    }

    /// Fair solution over (a superset of the tail of) the current window.
    pub fn finalize(&self) -> Result<Solution> {
        self.primary.finalize()
    }

    /// Distinct elements retained across both instances.
    pub fn stored_elements(&self) -> usize {
        self.primary.stored_elements() + self.secondary.stored_elements()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DistanceBounds;
    use crate::fairness::FairnessConstraint;
    use crate::metric::Metric;
    use rand::prelude::*;

    fn config() -> Sfdm2Config {
        Sfdm2Config {
            constraint: FairnessConstraint::new(vec![2, 2]).unwrap(),
            epsilon: 0.1,
            bounds: DistanceBounds::new(0.05, 30.0).unwrap(),
            metric: Metric::Euclidean,
        }
    }

    fn elem(rng: &mut StdRng, id: usize) -> Element {
        Element::new(
            id,
            vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0],
            id % 2,
        )
    }

    #[test]
    fn produces_fair_solutions_continuously() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut alg = SlidingWindowFdm::new(config(), 100).unwrap();
        for id in 0..500 {
            alg.insert(&elem(&mut rng, id));
            if id > 100 && id % 97 == 0 {
                let sol = alg.finalize().unwrap();
                assert_eq!(sol.group_counts(2), vec![2, 2]);
            }
        }
        assert_eq!(alg.arrivals(), 500);
    }

    #[test]
    fn old_elements_age_out() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut alg = SlidingWindowFdm::new(config(), 50).unwrap();
        // First 100 arrivals are "early" ids; then 200 more.
        for id in 0..300 {
            alg.insert(&elem(&mut rng, id));
        }
        let sol = alg.finalize().unwrap();
        // The primary instance was restarted at arrival 250 at the latest,
        // so nothing older than id 225 can appear.
        for e in &sol.elements {
            assert!(e.id >= 225, "stale element {} leaked into the window", e.id);
        }
    }

    #[test]
    fn space_bounded_by_two_instances() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut alg = SlidingWindowFdm::new(config(), 64).unwrap();
        let mut single = Sfdm2::new(config()).unwrap();
        for id in 0..400 {
            let e = elem(&mut rng, id);
            alg.insert(&e);
            single.insert(&e);
        }
        assert!(alg.stored_elements() <= 2 * (single.stored_elements() + 64));
    }

    #[test]
    fn batch_insert_matches_element_by_element() {
        let mut rng = StdRng::seed_from_u64(9);
        let elements: Vec<Element> = (0..260).map(|id| elem(&mut rng, id)).collect();
        let mut one_by_one = SlidingWindowFdm::new(config(), 64).unwrap();
        let mut batched = SlidingWindowFdm::new(config(), 64).unwrap();
        for e in &elements {
            one_by_one.insert(e);
        }
        for chunk in elements.chunks(47) {
            batched.insert_batch(chunk);
        }
        assert_eq!(one_by_one.arrivals(), batched.arrivals());
        assert_eq!(one_by_one.stored_elements(), batched.stored_elements());
        let a = one_by_one.finalize().unwrap();
        let b = batched.finalize().unwrap();
        assert_eq!(a.ids(), b.ids());
    }

    #[test]
    fn tiny_window_still_works() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut alg = SlidingWindowFdm::new(config(), 1).unwrap();
        for id in 0..50 {
            alg.insert(&elem(&mut rng, id));
        }
        assert_eq!(alg.window(), 2);
    }
}
