//! Sliding-window fair diversity maximization (extension).
//!
//! The paper lists the sliding-window model as future work (§VI). This
//! module provides a practical **checkpointed-restart** wrapper: it keeps
//! two staggered [`Sfdm2`] instances, starting a fresh one every `W/2`
//! arrivals and retiring the older one, so that at any time the queried
//! instance has seen between the last `W/2` and the last `W` elements.
//!
//! This is a documented heuristic, not a reproduction artifact: it carries
//! no approximation guarantee relative to the true window optimum (a
//! rigorous sliding-window algorithm à la Borassi et al. would maintain
//! exponential-histogram checkpoints), but it preserves the fairness
//! constraint exactly, uses `O(km log(∆)/ε)` space, and gives downstream
//! users a drop-in way to age out stale elements.
//!
//! The wrapper is a first-class member of the summary family: it implements
//! [`ShardAlgorithm`] (so [`ShardedStream<SlidingWindowFdm>`](crate::streaming::sharded::ShardedStream) runs K
//! staggered windows over a round-robin partition of the stream),
//! [`Snapshottable`] (tag `sliding`, v1 JSON and v2 binary, delta chains —
//! pinned by golden fixtures), and therefore
//! [`DynSummary`](crate::streaming::summary::DynSummary) through the
//! blanket impl, which is what lets `fdm-serve` host it (`OPEN name
//! sliding ... window=W`) and `fdm-bench` measure it (`--algorithm
//! sliding --window W`).

use crate::error::{FdmError, Result};
use crate::persist::{self, SnapshotParams, Snapshottable};
use crate::point::Element;
use crate::solution::Solution;
use crate::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use crate::streaming::sharded::ShardAlgorithm;

/// Configuration for [`SlidingWindowFdm`]: an [`Sfdm2Config`] plus the
/// window size `W`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SlidingWindowConfig {
    /// Configuration of the two staggered [`Sfdm2`] instances.
    pub inner: Sfdm2Config,
    /// Window size `W` (elements). Values below 2 are clamped to 2.
    pub window: usize,
}

/// Sliding-window wrapper over [`Sfdm2`]. See the module docs.
#[derive(Debug, Clone)]
pub struct SlidingWindowFdm {
    config: Sfdm2Config,
    /// Window size `W` (elements).
    window: usize,
    /// Older instance (covers ≥ W/2 most recent arrivals).
    primary: Sfdm2,
    /// Younger instance, promoted at the next checkpoint.
    secondary: Sfdm2,
    arrivals: usize,
    sequential: bool,
}

impl SlidingWindowFdm {
    /// Creates the wrapper; `window` must be at least 2 so checkpoints make
    /// sense (values smaller than `2k` will rarely yield feasible windows).
    pub fn new(config: Sfdm2Config, window: usize) -> Result<Self> {
        let primary = Sfdm2::new(config.clone())?;
        let secondary = Sfdm2::new(config.clone())?;
        Ok(SlidingWindowFdm {
            config,
            window: window.max(2),
            primary,
            secondary,
            arrivals: 0,
            sequential: false,
        })
    }

    /// Creates the wrapper from a bundled [`SlidingWindowConfig`].
    pub fn with_config(config: SlidingWindowConfig) -> Result<Self> {
        Self::new(config.inner, config.window)
    }

    /// Window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total arrivals observed.
    pub fn arrivals(&self) -> usize {
        self.arrivals
    }

    /// Total arrivals observed (the family-wide counter name).
    pub fn processed(&self) -> usize {
        self.arrivals
    }

    /// The bundled configuration this instance was built with.
    pub fn config(&self) -> SlidingWindowConfig {
        SlidingWindowConfig {
            inner: self.config.clone(),
            window: self.window,
        }
    }

    /// Forces single-threaded processing in both staggered instances (and
    /// in every instance started at future rotations). Results are
    /// identical either way.
    pub fn set_sequential(&mut self, sequential: bool) {
        self.sequential = sequential;
        self.primary.set_sequential(sequential);
        self.secondary.set_sequential(sequential);
    }

    /// Rotation cadence `W/2` (≥ 1).
    fn half(&self) -> usize {
        (self.window / 2).max(1)
    }

    /// Promotes the younger instance and starts a fresh one.
    fn rotate(&mut self) {
        let mut fresh = Sfdm2::new(self.config.clone()).expect("config validated at construction");
        fresh.set_sequential(self.sequential);
        self.primary = std::mem::replace(&mut self.secondary, fresh);
    }

    /// Processes one arrival; rotates instances every `W/2` arrivals.
    pub fn insert(&mut self, element: &Element) {
        self.primary.insert(element);
        self.secondary.insert(element);
        self.arrivals += 1;
        if self.arrivals.is_multiple_of(self.half()) {
            self.rotate();
        }
    }

    /// Processes a batch of arrivals, splitting it at checkpoint boundaries
    /// so rotation happens exactly as with element-by-element
    /// [`SlidingWindowFdm::insert`]; within each segment the two instances
    /// use the parallel batch path of [`Sfdm2::insert_batch`].
    pub fn insert_batch(&mut self, batch: &[Element]) {
        let half = self.half();
        let mut rest = batch;
        while !rest.is_empty() {
            let until_checkpoint = half - self.arrivals % half;
            let take = until_checkpoint.min(rest.len());
            let (segment, tail) = rest.split_at(take);
            self.primary.insert_batch(segment);
            self.secondary.insert_batch(segment);
            self.arrivals += segment.len();
            if self.arrivals.is_multiple_of(half) {
                self.rotate();
            }
            rest = tail;
        }
    }

    /// Fair solution over (a superset of the tail of) the current window.
    pub fn finalize(&self) -> Result<Solution> {
        self.primary.finalize()
    }

    /// Distinct elements retained across both instances — the paper's
    /// space metric, same contract as every other summary. (The physical
    /// footprint can reach twice this: the staggered instances each hold
    /// their own arena copy of the overlap.)
    pub fn stored_elements(&self) -> usize {
        let mut ids: std::collections::HashSet<usize> = self
            .primary
            .store()
            .ids()
            .map(|id| self.primary.store().external_id(id))
            .collect();
        ids.extend(
            self.secondary
                .store()
                .ids()
                .map(|id| self.secondary.store().external_id(id)),
        );
        ids.len()
    }
}

/// Membership in the shard/summary family: a sharded sliding stream runs K
/// staggered windows over a round-robin partition, and the merge pass
/// streams the union of their retained elements through one fresh window.
impl ShardAlgorithm for SlidingWindowFdm {
    type Config = SlidingWindowConfig;

    fn build(config: &Self::Config) -> Result<Self> {
        Self::with_config(config.clone())
    }

    fn merge_instance(config: &Self::Config, union_len: usize) -> Result<Self> {
        // The shards' union is already window-filtered per shard, and its
        // insertion order is shard-major — not time order — so the merge
        // window must be wide enough that no rotation fires mid-merge
        // (a rotation would age out *earlier shards*, not older elements).
        Self::new(config.inner.clone(), (2 * union_len + 2).max(config.window))
    }

    fn config(&self) -> Self::Config {
        SlidingWindowFdm::config(self)
    }

    fn insert(&mut self, element: &Element) {
        SlidingWindowFdm::insert(self, element);
    }

    fn insert_batch(&mut self, batch: &[Element]) {
        SlidingWindowFdm::insert_batch(self, batch);
    }

    fn retained_elements(&self) -> Vec<Element> {
        // Primary first (it is the queried instance), then the younger
        // instance's retained set. The two overlap on recent arrivals;
        // duplicates are harmless downstream (a zero-distance repeat can
        // never re-enter a candidate).
        let mut elements = ShardAlgorithm::retained_elements(&self.primary);
        elements.extend(ShardAlgorithm::retained_elements(&self.secondary));
        elements
    }

    fn finalize(&self) -> Result<Solution> {
        SlidingWindowFdm::finalize(self)
    }

    fn set_sequential(&mut self, sequential: bool) {
        SlidingWindowFdm::set_sequential(self, sequential);
    }

    fn processed(&self) -> usize {
        self.arrivals
    }

    fn stored_elements(&self) -> usize {
        SlidingWindowFdm::stored_elements(self)
    }

    fn prefilter_counters(&self) -> (u64, u64) {
        let (ph, pf) = ShardAlgorithm::prefilter_counters(&self.primary);
        let (sh, sf) = ShardAlgorithm::prefilter_counters(&self.secondary);
        (ph + sh, pf + sf)
    }
}

/// # Persistence
///
/// The state tree bundles the window geometry (`window`, `arrivals`) with
/// the full state trees of both staggered [`Sfdm2`] instances, so both
/// formats, delta chains, and `full + WAL-replay` recovery restore the
/// rotation schedule bit-exactly: a restored wrapper rotates at the same
/// future arrivals and answers every query identically to one that never
/// went down (golden fixtures in `tests/persist_golden.rs`, round-trip
/// properties in `tests/persist_codec.rs`).
impl Snapshottable for SlidingWindowFdm {
    fn algorithm_tag() -> String {
        "sliding".to_string()
    }

    fn snapshot_params(&self) -> SnapshotParams {
        let mut params = self.primary.snapshot_params();
        params.algorithm = Self::algorithm_tag();
        params.window = self.window;
        // Both instances see every arrival; the secondary can only know the
        // dimension if the primary does too.
        params
    }

    fn snapshot_state(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert(
            "window".to_string(),
            serde::Serialize::to_value(&self.window),
        );
        map.insert(
            "arrivals".to_string(),
            serde::Serialize::to_value(&self.arrivals),
        );
        map.insert("primary".to_string(), self.primary.snapshot_state());
        map.insert("secondary".to_string(), self.secondary.snapshot_state());
        serde::Value::Object(map)
    }

    fn capture_cursor(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert(
            "arrivals".to_string(),
            serde::Serialize::to_value(&self.arrivals),
        );
        map.insert("primary".to_string(), self.primary.capture_cursor());
        map.insert("secondary".to_string(), self.secondary.capture_cursor());
        serde::Value::Object(map)
    }

    fn state_patch_since(&self, cursor: &serde::Value) -> Option<persist::StatePatch> {
        let old_arrivals = cursor.get("arrivals")?.as_u64()? as usize;
        // A rotation replaces both instance subtrees wholesale; patches
        // only describe rotation-free stretches. Rotations fire every
        // `half` arrivals, so crossing a multiple of `half` since the
        // cursor means at least one happened.
        if old_arrivals > self.arrivals || old_arrivals / self.half() != self.arrivals / self.half()
        {
            return None;
        }
        let primary = self.primary.state_patch_since(cursor.get("primary")?)?;
        let secondary = self.secondary.state_patch_since(cursor.get("secondary")?)?;
        // `window` is static for the instance's lifetime → keep.
        Some(persist::StatePatch::Object(vec![
            (
                "arrivals".to_string(),
                persist::StatePatch::Replace(serde::Serialize::to_value(&self.arrivals)),
            ),
            ("primary".to_string(), primary),
            ("secondary".to_string(), secondary),
        ]))
    }

    fn restore_state(state: &serde::Value) -> Result<Self> {
        let window: usize = persist::field(state, "window")?;
        if window < 2 {
            return Err(FdmError::CorruptSnapshot {
                detail: format!("sliding window {window} below the minimum of 2"),
            });
        }
        let arrivals: usize = persist::field(state, "arrivals")?;
        let sub = |key: &'static str| -> Result<Sfdm2> {
            let tree = state.get(key).ok_or_else(|| FdmError::CorruptSnapshot {
                detail: format!("missing state field `{key}`"),
            })?;
            Sfdm2::restore_state(tree).map_err(|e| match e {
                FdmError::CorruptSnapshot { detail } => FdmError::CorruptSnapshot {
                    detail: format!("{key} instance: {detail}"),
                },
                FdmError::IncompatibleSnapshot { detail } => FdmError::IncompatibleSnapshot {
                    detail: format!("{key} instance: {detail}"),
                },
                other => other,
            })
        };
        let primary = sub("primary")?;
        let secondary = sub("secondary")?;
        // Both instances must share one configuration (dimensions may
        // differ only through the "no element seen yet" wildcard, which
        // here can only be the younger instance right after a rotation).
        let neutral = |alg: &Sfdm2| {
            let mut p = alg.snapshot_params();
            p.dim = 0;
            p
        };
        if neutral(&primary) != neutral(&secondary) {
            return Err(FdmError::IncompatibleSnapshot {
                detail: "staggered instances were configured differently".to_string(),
            });
        }
        // The rotation schedule is a pure function of `arrivals` and
        // `window`; instance counters that disagree with it are corrupt
        // (they would silently shift every future rotation).
        let half = (window / 2).max(1);
        let (want_primary, want_secondary) = if arrivals < half {
            (arrivals, arrivals)
        } else {
            (arrivals % half + half, arrivals % half)
        };
        if primary.processed() != want_primary || secondary.processed() != want_secondary {
            return Err(FdmError::CorruptSnapshot {
                detail: format!(
                    "rotation counters disagree: {arrivals} arrivals with window {window} \
                     imply instance positions ({want_primary}, {want_secondary}), state \
                     holds ({}, {})",
                    primary.processed(),
                    secondary.processed()
                ),
            });
        }
        Ok(SlidingWindowFdm {
            config: primary.config(),
            window,
            primary,
            secondary,
            arrivals,
            sequential: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DistanceBounds;
    use crate::fairness::FairnessConstraint;
    use crate::metric::Metric;
    use crate::persist::Snapshot;
    use rand::prelude::*;

    fn config() -> Sfdm2Config {
        Sfdm2Config {
            constraint: FairnessConstraint::new(vec![2, 2]).unwrap(),
            epsilon: 0.1,
            bounds: DistanceBounds::new(0.05, 30.0).unwrap(),
            metric: Metric::Euclidean,
        }
    }

    fn elem(rng: &mut StdRng, id: usize) -> Element {
        Element::new(
            id,
            vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0],
            id % 2,
        )
    }

    #[test]
    fn produces_fair_solutions_continuously() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut alg = SlidingWindowFdm::new(config(), 100).unwrap();
        for id in 0..500 {
            alg.insert(&elem(&mut rng, id));
            if id > 100 && id % 97 == 0 {
                let sol = alg.finalize().unwrap();
                assert_eq!(sol.group_counts(2), vec![2, 2]);
            }
        }
        assert_eq!(alg.arrivals(), 500);
    }

    #[test]
    fn old_elements_age_out() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut alg = SlidingWindowFdm::new(config(), 50).unwrap();
        // First 100 arrivals are "early" ids; then 200 more.
        for id in 0..300 {
            alg.insert(&elem(&mut rng, id));
        }
        let sol = alg.finalize().unwrap();
        // The primary instance was restarted at arrival 250 at the latest,
        // so nothing older than id 225 can appear.
        for e in &sol.elements {
            assert!(e.id >= 225, "stale element {} leaked into the window", e.id);
        }
    }

    #[test]
    fn space_bounded_by_two_instances() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut alg = SlidingWindowFdm::new(config(), 64).unwrap();
        let mut single = Sfdm2::new(config()).unwrap();
        for id in 0..400 {
            let e = elem(&mut rng, id);
            alg.insert(&e);
            single.insert(&e);
        }
        assert!(alg.stored_elements() <= 2 * (single.stored_elements() + 64));
    }

    #[test]
    fn batch_insert_matches_element_by_element() {
        let mut rng = StdRng::seed_from_u64(9);
        let elements: Vec<Element> = (0..260).map(|id| elem(&mut rng, id)).collect();
        let mut one_by_one = SlidingWindowFdm::new(config(), 64).unwrap();
        let mut batched = SlidingWindowFdm::new(config(), 64).unwrap();
        for e in &elements {
            one_by_one.insert(e);
        }
        for chunk in elements.chunks(47) {
            batched.insert_batch(chunk);
        }
        assert_eq!(one_by_one.arrivals(), batched.arrivals());
        assert_eq!(one_by_one.stored_elements(), batched.stored_elements());
        let a = one_by_one.finalize().unwrap();
        let b = batched.finalize().unwrap();
        assert_eq!(a.ids(), b.ids());
    }

    #[test]
    fn tiny_window_still_works() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut alg = SlidingWindowFdm::new(config(), 1).unwrap();
        for id in 0..50 {
            alg.insert(&elem(&mut rng, id));
        }
        assert_eq!(alg.window(), 2);
    }

    #[test]
    fn snapshot_restore_continue_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(5);
        let elements: Vec<Element> = (0..300).map(|id| elem(&mut rng, id)).collect();
        // Cut at an arbitrary point (not a rotation boundary).
        for cut in [37usize, 150, 199] {
            let mut reference = SlidingWindowFdm::new(config(), 80).unwrap();
            for e in &elements {
                reference.insert(e);
            }
            let mut prefix = SlidingWindowFdm::new(config(), 80).unwrap();
            for e in &elements[..cut] {
                prefix.insert(e);
            }
            let snapshot = prefix.snapshot();
            let mut resumed = SlidingWindowFdm::restore(&snapshot).unwrap();
            assert_eq!(resumed.arrivals(), cut);
            for e in &elements[cut..] {
                resumed.insert(e);
            }
            assert_eq!(reference.stored_elements(), resumed.stored_elements());
            let a = reference.finalize().unwrap();
            let b = resumed.finalize().unwrap();
            assert_eq!(a.ids(), b.ids(), "cut {cut}");
            assert_eq!(a.diversity.to_bits(), b.diversity.to_bits(), "cut {cut}");
        }
    }

    #[test]
    fn tampered_rotation_counters_are_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut alg = SlidingWindowFdm::new(config(), 40).unwrap();
        for id in 0..90 {
            alg.insert(&elem(&mut rng, id));
        }
        let snapshot = alg.snapshot();
        // Shift the arrivals counter: the rotation schedule no longer
        // matches the embedded instance positions.
        let json = snapshot
            .to_json()
            .replace("\"arrivals\":90", "\"arrivals\":91");
        let tampered = Snapshot::from_json(&json).unwrap();
        let err = SlidingWindowFdm::restore(&tampered).unwrap_err();
        assert!(
            matches!(
                err,
                FdmError::CorruptSnapshot { .. } | FdmError::IncompatibleSnapshot { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn envelope_carries_window_and_tag() {
        let alg = SlidingWindowFdm::new(config(), 64).unwrap();
        let params = alg.snapshot_params();
        assert_eq!(params.algorithm, "sliding");
        assert_eq!(params.window, 64);
        assert_eq!(params.k, 4);
        // A different window is a different deployment.
        let other = SlidingWindowFdm::new(config(), 128).unwrap();
        assert!(params.ensure_compatible(&other.snapshot_params()).is_err());
    }

    #[test]
    fn sharded_merge_does_not_age_out_early_shards() {
        use crate::streaming::sharded::ShardedStream;
        // Round-robin dealing sends arrival i to shard i % K. Confine
        // group 1 to positions ≡ 0 (mod 3): every group-1 element lands in
        // shard 0, whose summary is streamed *first* by the shard-major
        // merge. With a small window the naive merge (a fresh W-sized
        // sliding instance) would rotate group 1 away mid-merge and fail;
        // the widened merge window must keep the answer fair.
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = SlidingWindowConfig {
            inner: config(),
            window: 20,
        };
        let mut sharded: ShardedStream<SlidingWindowFdm> = ShardedStream::new(cfg, 3).unwrap();
        for i in 0..360 {
            let group = usize::from(i % 3 != 0);
            let point = vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0];
            // quotas [2, 2]: group 0 is the shard-0-only group here.
            sharded.insert(&Element::new(i, point, 1 - group));
        }
        let sol = sharded.finalize().unwrap();
        assert_eq!(
            sol.group_counts(2),
            vec![2, 2],
            "the merge lost the group confined to the first shard"
        );
    }

    #[test]
    fn sharded_sliding_windows_age_out_and_stay_fair() {
        use crate::streaming::sharded::ShardedStream;
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = SlidingWindowConfig {
            inner: config(),
            window: 60,
        };
        let mut sharded: ShardedStream<SlidingWindowFdm> = ShardedStream::new(cfg, 3).unwrap();
        for id in 0..600 {
            sharded.insert(&elem(&mut rng, id));
        }
        assert_eq!(ShardedStream::processed(&sharded), 600);
        let sol = sharded.finalize().unwrap();
        assert_eq!(sol.group_counts(2), vec![2, 2]);
        // Each shard's window covers at most its last 60 arrivals; with
        // round-robin dealing nothing older than ~id 60·3·2 from the tail
        // can survive. Loose bound: no element from the first half.
        for e in &sol.elements {
            assert!(e.id >= 300, "stale element {} leaked through shards", e.id);
        }
    }
}
