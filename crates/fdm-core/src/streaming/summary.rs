//! The unified summary interface: one object-safe trait over every
//! streaming summary, plus the registry that builds and restores them by
//! algorithm tag.
//!
//! The paper's value is a *family* of interchangeable streaming summaries
//! (Algorithm 1, SFDM1, SFDM2, the sliding-window wrapper, each optionally
//! behind K-way sharding). [`DynSummary`] is that family as one object-safe
//! trait: anything that speaks it can be hosted by `fdm-serve`, measured by
//! `fdm-bench`, and checkpointed through the [`persist`](crate::persist)
//! envelope — without the hosting layer knowing which algorithm it holds.
//!
//! Every [`ShardAlgorithm`] that is also [`Snapshottable`] gets
//! `DynSummary` for free through a blanket impl, and
//! [`ShardedStream<S>`] implements it directly, so "sharded or not" is a
//! construction-time choice invisible to consumers.
//!
//! The registry half ([`build`], [`restore`], [`spec_params`]) maps tags (`unconstrained`, `sfdm1`,
//! `sfdm2`, `sliding`, and their `sharded:` variants) to builders and
//! restorers. Adding a future algorithm means: implement the two core
//! traits, add **one** registry line — no enum variants, no dispatch
//! macros, no per-crate match arms.

use crate::error::{FdmError, Result};
use crate::fairness::FairnessConstraint;
use crate::persist::{Snapshot, SnapshotParams, Snapshottable, StatePatch};
use crate::point::Element;
use crate::solution::Solution;
use crate::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use crate::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use crate::streaming::sharded::{ShardAlgorithm, ShardedStream};
use crate::streaming::sliding::{SlidingWindowConfig, SlidingWindowFdm};
use crate::streaming::unconstrained::{StreamingDiversityMaximization, StreamingDmConfig};

/// One hosted streaming summary — any algorithm, sharded or not — as an
/// object-safe trait. See the module docs.
///
/// Restore is intentionally *not* part of the trait (it cannot be object
/// safe); it lives in [`restore`], which dispatches on the snapshot's
/// algorithm tag through the registry.
pub trait DynSummary: Send + Sync + std::fmt::Debug {
    /// Feeds one stream element.
    fn insert(&mut self, element: &Element);

    /// Feeds a batch of stream elements (equivalent to element-by-element
    /// insertion in batch order; may fan out internally).
    fn insert_batch(&mut self, batch: &[Element]);

    /// Runs post-processing and returns the best feasible solution.
    fn finalize(&self) -> Result<Solution>;

    /// Total arrivals observed.
    fn processed(&self) -> usize;

    /// Distinct retained elements (the paper's space metric).
    fn stored_elements(&self) -> usize;

    /// Forces single-threaded execution inside the summary.
    fn set_sequential(&mut self, sequential: bool);

    /// The envelope parameters describing this summary's configuration —
    /// the compatibility identity used by re-attach and restore checks.
    fn params(&self) -> SnapshotParams;

    /// Captures a complete snapshot through the persistence envelope.
    fn snapshot(&self) -> Snapshot;

    /// The raw state value tree [`DynSummary::snapshot`] wraps, exposed
    /// separately so a host can capture the envelope and the state under
    /// distinct (shorter) lock holds — the chunked-capture path in
    /// `fdm-serve`.
    fn snapshot_state_value(&self) -> serde::Value {
        self.snapshot().state
    }

    /// Dirty-set cursor marking the current capture position — see
    /// [`Snapshottable::capture_cursor`]. [`serde::Value::Null`] when the
    /// summary does no dirty tracking.
    fn capture_cursor(&self) -> serde::Value {
        serde::Value::Null
    }

    /// The structural changes since `cursor`, or `None` to force a full
    /// capture — see [`Snapshottable::state_patch_since`].
    fn state_patch_since(&self, cursor: &serde::Value) -> Option<StatePatch> {
        let _ = cursor;
        None
    }

    /// Lifetime f32 pre-filter `(hits, fallbacks)` recorded while serving
    /// this summary; `(0, 0)` when the pre-filter never engaged.
    fn prefilter_counters(&self) -> (u64, u64) {
        (0, 0)
    }

    /// The retained elements (the summary's union export), in arena order;
    /// for sharded summaries, shard-major. This is what a distributed
    /// merge ([`merge_summaries`]) streams through the merge instance —
    /// the same vector [`ShardedStream::finalize`] consumes per shard.
    fn retained_elements(&self) -> Vec<Element>;
}

/// Every snapshottable shard algorithm is a summary (this is how the four
/// base algorithms join the family).
impl<T> DynSummary for T
where
    T: ShardAlgorithm + Snapshottable + Send + Sync + std::fmt::Debug,
{
    fn insert(&mut self, element: &Element) {
        ShardAlgorithm::insert(self, element);
    }

    fn insert_batch(&mut self, batch: &[Element]) {
        ShardAlgorithm::insert_batch(self, batch);
    }

    fn finalize(&self) -> Result<Solution> {
        ShardAlgorithm::finalize(self)
    }

    fn processed(&self) -> usize {
        ShardAlgorithm::processed(self)
    }

    fn stored_elements(&self) -> usize {
        ShardAlgorithm::stored_elements(self)
    }

    fn set_sequential(&mut self, sequential: bool) {
        ShardAlgorithm::set_sequential(self, sequential);
    }

    fn params(&self) -> SnapshotParams {
        self.snapshot_params()
    }

    fn snapshot(&self) -> Snapshot {
        Snapshottable::snapshot(self)
    }

    fn snapshot_state_value(&self) -> serde::Value {
        Snapshottable::snapshot_state(self)
    }

    fn capture_cursor(&self) -> serde::Value {
        Snapshottable::capture_cursor(self)
    }

    fn state_patch_since(&self, cursor: &serde::Value) -> Option<StatePatch> {
        Snapshottable::state_patch_since(self, cursor)
    }

    fn prefilter_counters(&self) -> (u64, u64) {
        ShardAlgorithm::prefilter_counters(self)
    }

    fn retained_elements(&self) -> Vec<Element> {
        ShardAlgorithm::retained_elements(self)
    }
}

/// K-way sharded wrapping of any base summary is a summary too.
impl<S> DynSummary for ShardedStream<S>
where
    S: ShardAlgorithm + Snapshottable + Sync + std::fmt::Debug,
    S::Config: std::fmt::Debug,
{
    fn insert(&mut self, element: &Element) {
        ShardedStream::insert(self, element);
    }

    fn insert_batch(&mut self, batch: &[Element]) {
        ShardedStream::insert_batch(self, batch);
    }

    fn finalize(&self) -> Result<Solution> {
        ShardedStream::finalize(self)
    }

    fn processed(&self) -> usize {
        ShardedStream::processed(self)
    }

    fn stored_elements(&self) -> usize {
        ShardedStream::stored_elements(self)
    }

    fn set_sequential(&mut self, sequential: bool) {
        ShardedStream::set_sequential(self, sequential);
    }

    fn params(&self) -> SnapshotParams {
        self.snapshot_params()
    }

    fn snapshot(&self) -> Snapshot {
        Snapshottable::snapshot(self)
    }

    fn snapshot_state_value(&self) -> serde::Value {
        Snapshottable::snapshot_state(self)
    }

    fn capture_cursor(&self) -> serde::Value {
        Snapshottable::capture_cursor(self)
    }

    fn state_patch_since(&self, cursor: &serde::Value) -> Option<StatePatch> {
        Snapshottable::state_patch_since(self, cursor)
    }

    fn prefilter_counters(&self) -> (u64, u64) {
        ShardedStream::prefilter_counters(self)
    }

    fn retained_elements(&self) -> Vec<Element> {
        ShardedStream::retained_elements(self)
    }
}

/// Algorithm-agnostic build specification: everything an `OPEN` command or
/// a bench cell needs to say to construct any member of the family.
#[derive(Debug, Clone, PartialEq)]
pub struct SummarySpec {
    /// Base algorithm tag: `unconstrained`, `sfdm1`, `sfdm2`, or `sliding`
    /// (sharding is selected by `shards`, not by the tag).
    pub algorithm: String,
    /// Guess-ladder accuracy `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Known distance bounds.
    pub bounds: crate::dataset::DistanceBounds,
    /// Distance metric.
    pub metric: crate::metric::Metric,
    /// Per-group quotas (fair algorithms); empty for `unconstrained`.
    pub quotas: Vec<usize>,
    /// Solution size for `unconstrained` (`Σ quotas` otherwise).
    pub k: usize,
    /// Shard count (`0`/`1` = unsharded).
    pub shards: usize,
    /// Sliding-window size; required (≥ 2 after clamping) for `sliding`,
    /// must be `0` for every other algorithm.
    pub window: usize,
}

/// A summary type the registry can build from a [`SummarySpec`].
trait RegisteredSummary:
    ShardAlgorithm + Snapshottable + Send + Sync + std::fmt::Debug + 'static
where
    Self::Config: std::fmt::Debug,
{
    /// Translates the agnostic spec into this algorithm's configuration,
    /// validating the spec fields the algorithm consumes.
    fn config_from_spec(spec: &SummarySpec) -> Result<Self::Config>;
}

fn spec_error(detail: String) -> FdmError {
    FdmError::IncompatibleSnapshot { detail }
}

/// The fair algorithms' shared quota translation.
fn constraint_of(spec: &SummarySpec) -> Result<FairnessConstraint> {
    if spec.quotas.is_empty() {
        return Err(spec_error(format!(
            "{} requires per-group quotas",
            spec.algorithm
        )));
    }
    FairnessConstraint::new(spec.quotas.clone())
}

/// Rejects a window on algorithms that have none.
fn no_window(spec: &SummarySpec) -> Result<()> {
    if spec.window != 0 {
        return Err(spec_error(format!(
            "{} takes no window= parameter (only sliding does)",
            spec.algorithm
        )));
    }
    Ok(())
}

impl RegisteredSummary for StreamingDiversityMaximization {
    fn config_from_spec(spec: &SummarySpec) -> Result<StreamingDmConfig> {
        if !spec.quotas.is_empty() {
            return Err(spec_error(
                "unconstrained takes k, not per-group quotas".to_string(),
            ));
        }
        no_window(spec)?;
        Ok(StreamingDmConfig {
            k: spec.k,
            epsilon: spec.epsilon,
            bounds: spec.bounds,
            metric: spec.metric,
        })
    }
}

impl RegisteredSummary for Sfdm1 {
    fn config_from_spec(spec: &SummarySpec) -> Result<Sfdm1Config> {
        no_window(spec)?;
        Ok(Sfdm1Config {
            constraint: constraint_of(spec)?,
            epsilon: spec.epsilon,
            bounds: spec.bounds,
            metric: spec.metric,
        })
    }
}

impl RegisteredSummary for Sfdm2 {
    fn config_from_spec(spec: &SummarySpec) -> Result<Sfdm2Config> {
        no_window(spec)?;
        Ok(Sfdm2Config {
            constraint: constraint_of(spec)?,
            epsilon: spec.epsilon,
            bounds: spec.bounds,
            metric: spec.metric,
        })
    }
}

impl RegisteredSummary for SlidingWindowFdm {
    fn config_from_spec(spec: &SummarySpec) -> Result<SlidingWindowConfig> {
        if spec.window < 2 {
            return Err(spec_error(format!(
                "sliding requires window ≥ 2 (got {})",
                spec.window
            )));
        }
        Ok(SlidingWindowConfig {
            inner: Sfdm2::config_from_spec(&SummarySpec {
                algorithm: "sfdm2".to_string(),
                window: 0,
                ..spec.clone()
            })?,
            window: spec.window,
        })
    }
}

/// One registry row: tag plus the monomorphized build/restore entry
/// points. Adding an algorithm to the family is adding one row.
struct Entry {
    tag: &'static str,
    build: fn(&SummarySpec) -> Result<Box<dyn DynSummary>>,
    restore: fn(&Snapshot) -> Result<Box<dyn DynSummary>>,
    restore_sharded: fn(&Snapshot) -> Result<Box<dyn DynSummary>>,
    /// Spec validation without construction (the [`spec_params`] fast
    /// path): exactly the checks `build` would make, minus the ladders.
    validate: fn(&SummarySpec) -> Result<()>,
    /// Merges per-part retained-element unions into one solution
    /// (the [`merge_summaries`] dispatch target).
    merge: fn(&SummarySpec, Vec<Vec<Element>>, usize) -> Result<Solution>,
}

fn build_one<S: RegisteredSummary>(spec: &SummarySpec) -> Result<Box<dyn DynSummary>>
where
    S::Config: std::fmt::Debug,
{
    let config = S::config_from_spec(spec)?;
    if spec.shards > 1 {
        Ok(Box::new(ShardedStream::<S>::new(config, spec.shards)?))
    } else {
        Ok(Box::new(S::build(&config)?))
    }
}

fn restore_one<S: RegisteredSummary>(snapshot: &Snapshot) -> Result<Box<dyn DynSummary>>
where
    S::Config: std::fmt::Debug,
{
    Ok(Box::new(S::restore(snapshot)?))
}

fn restore_sharded<S: RegisteredSummary>(snapshot: &Snapshot) -> Result<Box<dyn DynSummary>>
where
    S::Config: std::fmt::Debug,
{
    Ok(Box::new(ShardedStream::<S>::restore(snapshot)?))
}

fn validate_one<S: RegisteredSummary>(spec: &SummarySpec) -> Result<()>
where
    S::Config: std::fmt::Debug,
{
    S::config_from_spec(spec).map(|_| ())
}

/// The distributed analogue of [`ShardedStream::finalize`]'s merge pass:
/// streams the per-part unions (in part order) through merge instances,
/// reducing hierarchically in chunks of `fan_in` until one instance holds
/// the whole union, then runs its post-processing. With
/// `unions.len() ≤ fan_in` this is a single level — operation-for-operation
/// the merge pass a `ShardedStream` with the same shard unions performs.
fn merge_one<S: RegisteredSummary>(
    spec: &SummarySpec,
    mut unions: Vec<Vec<Element>>,
    fan_in: usize,
) -> Result<Solution>
where
    S::Config: std::fmt::Debug,
{
    let config = S::config_from_spec(spec)?;
    while unions.len() > fan_in {
        let mut next = Vec::with_capacity(unions.len().div_ceil(fan_in));
        for chunk in unions.chunks(fan_in) {
            let chunk_len = chunk.iter().map(Vec::len).sum();
            let mut merge = S::merge_instance(&config, chunk_len)?;
            for union in chunk {
                merge.insert_batch(union);
            }
            next.push(merge.retained_elements());
        }
        unions = next;
    }
    let union_len = unions.iter().map(Vec::len).sum();
    let mut merge = S::merge_instance(&config, union_len)?;
    for union in &unions {
        merge.insert_batch(union);
    }
    merge.finalize()
}

macro_rules! entry {
    ($tag:literal, $ty:ty) => {
        Entry {
            tag: $tag,
            build: build_one::<$ty>,
            restore: restore_one::<$ty>,
            restore_sharded: restore_sharded::<$ty>,
            validate: validate_one::<$ty>,
            merge: merge_one::<$ty>,
        }
    };
}

/// The summary family. One row per base algorithm; `sharded:` variants are
/// derived, never listed.
const ENTRIES: &[Entry] = &[
    entry!("unconstrained", StreamingDiversityMaximization),
    entry!("sfdm1", Sfdm1),
    entry!("sfdm2", Sfdm2),
    entry!("sliding", SlidingWindowFdm),
];

fn entry_for(tag: &str) -> Result<&'static Entry> {
    ENTRIES
        .iter()
        .find(|e| e.tag == tag)
        .ok_or_else(|| spec_error(format!("unknown algorithm `{tag}`")))
}

/// The base algorithm tags the registry knows, in registration order.
pub fn algorithm_tags() -> Vec<&'static str> {
    ENTRIES.iter().map(|e| e.tag).collect()
}

/// Whether `tag` names a registered base algorithm.
pub fn is_known_algorithm(tag: &str) -> bool {
    ENTRIES.iter().any(|e| e.tag == tag)
}

/// Builds an empty summary from a specification: the base algorithm named
/// by `spec.algorithm`, wrapped in [`ShardedStream`] when `spec.shards > 1`.
pub fn build(spec: &SummarySpec) -> Result<Box<dyn DynSummary>> {
    (entry_for(&spec.algorithm)?.build)(spec)
}

/// Restores any member of the family from a snapshot, dispatching on the
/// envelope's algorithm tag (`sharded:<base>` selects the sharded
/// restorer).
pub fn restore(snapshot: &Snapshot) -> Result<Box<dyn DynSummary>> {
    let tag = snapshot.params.algorithm.as_str();
    match tag.strip_prefix("sharded:") {
        Some(base) => (entry_for(base)
            .map_err(|_| spec_error(format!("snapshot holds unknown algorithm `{tag}`")))?
            .restore_sharded)(snapshot),
        None => (entry_for(tag)
            .map_err(|_| spec_error(format!("snapshot holds unknown algorithm `{tag}`")))?
            .restore)(snapshot),
    }
}

/// Merges independently grown summaries of one logical stream into a
/// single solution — the coordinator-side half of distributed FDM.
///
/// `parts` are summaries of disjoint stream partitions (one per worker
/// node), all built from `spec` (shard-count differences aside); part
/// order must be the partition order (worker 0 first). The merge replays
/// [`ShardedStream::finalize`] exactly:
///
/// * one part delegates to its own post-processing (the `K = 1` fast path
///   a `ShardedStream` takes);
/// * otherwise the parts' [retained elements](DynSummary::retained_elements)
///   stream part-major through a fresh merge instance whose
///   post-processing produces the solution — reduced hierarchically in
///   chunks of `fan_in` when more than `fan_in` parts fan in.
///
/// With `parts.len() ≤ fan_in` the result is **bit-identical** to a
/// single-process `ShardedStream` with `K = parts.len()` shards fed the
/// same arrival order (the distributed-identity suite asserts this);
/// deeper trees stay within the paper's approximation bounds by the same
/// composability lemma that justifies sharding at all.
pub fn merge_summaries(
    spec: &SummarySpec,
    parts: &[Box<dyn DynSummary>],
    fan_in: usize,
) -> Result<Solution> {
    let refs: Vec<&dyn DynSummary> = parts.iter().map(|p| p.as_ref()).collect();
    merge_summary_parts(spec, &refs, fan_in)
}

/// [`merge_summaries`] over borrowed parts: identical semantics, but the
/// summaries stay owned by the caller — a coordinator that caches one
/// restored summary per worker merges them on every `QUERY` without
/// moving (or cloning) the cache.
pub fn merge_summary_parts(
    spec: &SummarySpec,
    parts: &[&dyn DynSummary],
    fan_in: usize,
) -> Result<Solution> {
    if parts.is_empty() {
        return Err(FdmError::InvalidShardCount);
    }
    if parts.len() == 1 {
        return parts[0].finalize();
    }
    let unions: Vec<Vec<Element>> = parts.iter().map(|p| p.retained_elements()).collect();
    (entry_for(&spec.algorithm)?.merge)(spec, unions, fan_in.max(2))
}

/// The envelope parameters a specification implies, **without building the
/// summary** (constructing full guess ladders just to compare parameters
/// on re-attach would be wasted work). Mirrors what [`build`] +
/// [`DynSummary::params`] would produce on a freshly built stream:
/// `dim = 0` wildcard, `sharded:` tag and `shards ≥ 1` normalization, the
/// sliding window clamped to ≥ 2.
pub fn spec_params(spec: &SummarySpec) -> Result<SnapshotParams> {
    let entry = entry_for(&spec.algorithm)?;
    (entry.validate)(spec)?;
    let (quotas, k) = if spec.quotas.is_empty() {
        (Vec::new(), spec.k)
    } else {
        (spec.quotas.clone(), spec.quotas.iter().sum())
    };
    let window = spec.window;
    let shards = spec.shards.max(1);
    let algorithm = if shards > 1 {
        format!("sharded:{}", entry.tag)
    } else {
        entry.tag.to_string()
    };
    Ok(SnapshotParams {
        algorithm,
        dim: 0,
        epsilon: spec.epsilon,
        metric: spec.metric,
        bounds: spec.bounds,
        quotas,
        k,
        shards,
        window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DistanceBounds;
    use crate::metric::Metric;

    fn spec(algorithm: &str) -> SummarySpec {
        SummarySpec {
            algorithm: algorithm.to_string(),
            epsilon: 0.1,
            bounds: DistanceBounds::new(0.5, 30.0).unwrap(),
            metric: Metric::Euclidean,
            quotas: if algorithm == "unconstrained" {
                Vec::new()
            } else {
                vec![2, 2]
            },
            k: 4,
            shards: 1,
            window: if algorithm == "sliding" { 32 } else { 0 },
        }
    }

    fn feed(summary: &mut dyn DynSummary, n: usize) {
        for i in 0..n {
            let x = (i as f64 * 0.7391).sin() * 9.0;
            let y = (i as f64 * 0.2113).cos() * 9.0;
            summary.insert(&Element::new(i, vec![x, y], i % 2));
        }
    }

    #[test]
    fn registry_builds_every_tag_sharded_and_not() {
        for tag in algorithm_tags() {
            for shards in [1usize, 3] {
                let mut s = spec(tag);
                s.shards = shards;
                let mut summary = build(&s).unwrap_or_else(|e| panic!("{tag} x{shards}: {e}"));
                feed(summary.as_mut(), 60);
                assert_eq!(summary.processed(), 60, "{tag} x{shards}");
                assert!(summary.stored_elements() > 0, "{tag} x{shards}");
                let solution = summary.finalize().unwrap();
                assert_eq!(solution.len(), 4, "{tag} x{shards}");
                let params = summary.params();
                if shards > 1 {
                    assert_eq!(params.algorithm, format!("sharded:{tag}"));
                    assert_eq!(params.shards, shards);
                } else {
                    assert_eq!(params.algorithm, tag);
                }
            }
        }
    }

    #[test]
    fn snapshot_restore_round_trips_through_the_registry() {
        for tag in algorithm_tags() {
            for shards in [1usize, 2] {
                let mut s = spec(tag);
                s.shards = shards;
                let mut summary = build(&s).unwrap();
                feed(summary.as_mut(), 80);
                let snapshot = summary.snapshot();
                let restored = restore(&snapshot).unwrap_or_else(|e| panic!("{tag}: {e}"));
                assert_eq!(restored.processed(), 80, "{tag} x{shards}");
                assert_eq!(restored.params(), summary.params(), "{tag} x{shards}");
                assert_eq!(
                    restored.finalize().unwrap().ids(),
                    summary.finalize().unwrap().ids(),
                    "{tag} x{shards}"
                );
            }
        }
    }

    #[test]
    fn spec_params_match_freshly_built_streams() {
        for tag in algorithm_tags() {
            for shards in [1usize, 4] {
                let mut s = spec(tag);
                s.shards = shards;
                let implied = spec_params(&s).unwrap();
                let built = build(&s).unwrap();
                assert_eq!(implied, built.params(), "{tag} x{shards}");
            }
        }
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        assert!(build(&spec("bogus")).is_err());
        let mut s = spec("sfdm2");
        s.window = 10; // window on a non-sliding algorithm
        assert!(build(&s).is_err());
        assert!(spec_params(&s).is_err());
        let mut s = spec("sliding");
        s.window = 0;
        assert!(build(&s).is_err());
        let mut s = spec("unconstrained");
        s.quotas = vec![1, 1];
        assert!(build(&s).is_err());
        let mut s = spec("sfdm1");
        s.quotas = Vec::new();
        assert!(build(&s).is_err());
    }

    #[test]
    fn merge_summaries_is_bit_identical_to_sharded_stream() {
        for tag in algorithm_tags() {
            for parts_n in [1usize, 2, 4] {
                // Reference: one process, K round-robin shards.
                let mut sharded_spec = spec(tag);
                sharded_spec.shards = parts_n;
                let mut reference = build(&sharded_spec).unwrap();
                feed(reference.as_mut(), 90);
                // Distributed: K independent unsharded parts fed the same
                // arrival order through the same round-robin dealing.
                let part_spec = spec(tag);
                let mut parts: Vec<Box<dyn DynSummary>> =
                    (0..parts_n).map(|_| build(&part_spec).unwrap()).collect();
                for i in 0..90 {
                    let x = (i as f64 * 0.7391).sin() * 9.0;
                    let y = (i as f64 * 0.2113).cos() * 9.0;
                    parts[i % parts_n].insert(&Element::new(i, vec![x, y], i % 2));
                }
                let merged = merge_summaries(&part_spec, &parts, 8).unwrap();
                let expected = reference.finalize().unwrap();
                assert_eq!(merged.ids(), expected.ids(), "{tag} x{parts_n}");
                assert_eq!(
                    merged.diversity.to_bits(),
                    expected.diversity.to_bits(),
                    "{tag} x{parts_n}"
                );
            }
        }
    }

    #[test]
    fn merge_summaries_tree_reduction_stays_feasible() {
        // 5 parts under fan_in=2 forces a two-level tree; the answer need
        // not be bit-identical to the flat merge, but it must stay a full
        // feasible solution.
        let part_spec = spec("sfdm2");
        let mut parts: Vec<Box<dyn DynSummary>> =
            (0..5).map(|_| build(&part_spec).unwrap()).collect();
        for i in 0..120 {
            let x = (i as f64 * 0.7391).sin() * 9.0;
            let y = (i as f64 * 0.2113).cos() * 9.0;
            parts[i % 5].insert(&Element::new(i, vec![x, y], i % 2));
        }
        let merged = merge_summaries(&part_spec, &parts, 2).unwrap();
        assert_eq!(merged.len(), 4);
        assert!(merge_summaries(&part_spec, &[], 8).is_err());
    }

    #[test]
    fn restore_rejects_unknown_tags() {
        let mut summary = build(&spec("sfdm2")).unwrap();
        feed(summary.as_mut(), 20);
        let mut snapshot = summary.snapshot();
        snapshot.params.algorithm = "sharded:bogus".to_string();
        assert!(restore(&snapshot).is_err());
        snapshot.params.algorithm = "bogus".to_string();
        assert!(restore(&snapshot).is_err());
    }
}
