//! Sharded stream ingestion: K independent shard summaries merged through
//! the guess ladder.
//!
//! The paper's one-pass algorithms are sequential by construction — each
//! arrival mutates every accepting candidate. What *is* embarrassingly
//! parallel is running K **independent copies** of the stream-processing
//! phase over a partition of the stream, exactly the composable-summary
//! route the distributed diversity-maximization literature takes (Indyk et
//! al. PODS'14, Ceccarello et al. VLDB'17; cf. [`crate::coreset`]): each
//! shard's candidate sets are a small certified summary of its sub-stream,
//! and the union of the summaries preserves enough spread-out elements of
//! every group for a second (tiny) pass to recover a fair, near-optimal
//! solution.
//!
//! [`ShardedStream`] wraps any [`ShardAlgorithm`] (SFDM1, SFDM2, or the
//! unconstrained Algorithm 1):
//!
//! * arrivals are dealt **round-robin** across K shards, each with its own
//!   guess ladder, candidate sets, and private
//!   [`PointStore`](crate::point::PointStore) arena
//!   segment;
//! * [`ShardedStream::insert_batch`] runs the shard sub-batches
//!   **concurrently** on rayon's persistent pool (under the `parallel`
//!   feature) — shards share no mutable state, so scheduling cannot affect
//!   results;
//! * [`ShardedStream::finalize`] streams the union of the shards' retained
//!   elements (shard-major, arena order — deterministic) through one fresh
//!   instance of the same algorithm and runs its full post-processing,
//!   yielding a solution that satisfies the fairness constraint exactly
//!   whenever one is returned.
//!
//! With `K = 1` no merge pass runs: the single shard *is* the unsharded
//! algorithm, so results are bit-identical (pinned by tests). For `K > 1`
//! the merged result carries the composable-summary guarantee: every group
//! present in the stream is represented in the union (a shard's per-group
//! candidate always retains the first element it sees of a group), and the
//! merge pass's guess ladder re-certifies diversity over the union, so the
//! empirical quality stays within the base algorithm's approximation band
//! of the single-shard run (property-tested in `tests/sharded.rs`).

use crate::error::{FdmError, Result};
use crate::par::maybe_par_for_each;
use crate::persist::{self, SnapshotParams, Snapshottable};
use crate::point::Element;
use crate::solution::Solution;
use crate::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use crate::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use crate::streaming::unconstrained::{StreamingDiversityMaximization, StreamingDmConfig};

/// A streaming algorithm that can serve as one shard of a
/// [`ShardedStream`] — and as the merge instance for the shards' union.
///
/// Implementations must be deterministic functions of their insertion
/// sequence (all three guess-ladder algorithms are), so that per-shard
/// concurrency cannot change results.
pub trait ShardAlgorithm: Sized + Send {
    /// Per-instance configuration (constraint, ε, bounds, metric).
    type Config: Clone + Send + Sync;

    /// Builds an empty instance.
    fn build(config: &Self::Config) -> Result<Self>;

    /// The instance [`ShardedStream::finalize`] streams the shards' union
    /// through. `union_len` is the number of union elements about to be
    /// fed; the default — a plain fresh instance — is right for every
    /// unwindowed algorithm. Windowed algorithms must override it so the
    /// merge pass cannot age out earlier shards' summaries mid-merge (the
    /// union's insertion order is shard-major, not time order).
    fn merge_instance(config: &Self::Config, union_len: usize) -> Result<Self> {
        let _ = union_len;
        Self::build(config)
    }

    /// The configuration this instance was built with.
    fn config(&self) -> Self::Config;

    /// Processes one stream element.
    fn insert(&mut self, element: &Element);

    /// Processes a batch of stream elements (equivalent to element-by-
    /// element insertion in batch order).
    fn insert_batch(&mut self, batch: &[Element]);

    /// All elements this instance has retained, in arena (insertion)
    /// order — the shard's composable summary.
    fn retained_elements(&self) -> Vec<Element>;

    /// Runs post-processing and returns the best feasible solution.
    fn finalize(&self) -> Result<Solution>;

    /// Forces single-threaded execution inside this instance.
    fn set_sequential(&mut self, sequential: bool);

    /// Number of elements seen.
    fn processed(&self) -> usize;

    /// Number of distinct retained elements.
    fn stored_elements(&self) -> usize;

    /// Lifetime f32 pre-filter `(hits, fallbacks)` recorded by this
    /// instance's arena(s); `(0, 0)` when the pre-filter never engaged.
    fn prefilter_counters(&self) -> (u64, u64) {
        (0, 0)
    }
}

macro_rules! impl_shard_algorithm {
    ($alg:ty, $cfg:ty) => {
        impl ShardAlgorithm for $alg {
            type Config = $cfg;

            fn build(config: &Self::Config) -> Result<Self> {
                <$alg>::new(config.clone())
            }

            fn config(&self) -> Self::Config {
                <$alg>::config(self)
            }

            fn insert(&mut self, element: &Element) {
                <$alg>::insert(self, element);
            }

            fn insert_batch(&mut self, batch: &[Element]) {
                <$alg>::insert_batch(self, batch);
            }

            fn retained_elements(&self) -> Vec<Element> {
                let store = self.store();
                store.ids().map(|id| store.element(id)).collect()
            }

            fn finalize(&self) -> Result<Solution> {
                <$alg>::finalize(self)
            }

            fn set_sequential(&mut self, sequential: bool) {
                <$alg>::set_sequential(self, sequential);
            }

            fn processed(&self) -> usize {
                <$alg>::processed(self)
            }

            fn stored_elements(&self) -> usize {
                <$alg>::stored_elements(self)
            }

            fn prefilter_counters(&self) -> (u64, u64) {
                self.store().prefilter_counters()
            }
        }
    };
}

impl_shard_algorithm!(Sfdm1, Sfdm1Config);
impl_shard_algorithm!(Sfdm2, Sfdm2Config);
impl_shard_algorithm!(StreamingDiversityMaximization, StreamingDmConfig);

/// K-way sharded ingestion over any guess-ladder streaming algorithm. See
/// the module docs.
///
/// # Examples
///
/// ```
/// use fdm_core::prelude::*;
/// use fdm_core::streaming::sharded::ShardedStream;
///
/// let constraint = FairnessConstraint::new(vec![2, 2])?;
/// let config = Sfdm2Config {
///     constraint: constraint.clone(),
///     epsilon: 0.1,
///     bounds: DistanceBounds::new(1.0, 40.0)?,
///     metric: Metric::Euclidean,
/// };
/// let mut sharded: ShardedStream<Sfdm2> = ShardedStream::new(config, 4)?;
/// for i in 0..40 {
///     sharded.insert(&Element::new(i, vec![i as f64], i % 2));
/// }
/// let solution = sharded.finalize()?;
/// assert!(constraint.is_satisfied_by(&solution.group_counts(2)));
/// # Ok::<(), fdm_core::FdmError>(())
/// ```
#[derive(Debug)]
pub struct ShardedStream<S: ShardAlgorithm> {
    config: S::Config,
    shards: Vec<S>,
    /// Round-robin cursor: the shard the next arrival goes to.
    next: usize,
    sequential: bool,
}

impl<S: ShardAlgorithm> ShardedStream<S> {
    /// Creates `shards ≥ 1` independent shard instances of the algorithm.
    pub fn new(config: S::Config, shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(FdmError::InvalidShardCount);
        }
        let mut built = Vec::with_capacity(shards);
        for _ in 0..shards {
            built.push(S::build(&config)?);
        }
        Ok(ShardedStream {
            config,
            shards: built,
            next: 0,
            sequential: false,
        })
    }

    /// Number of shards `K`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Forces single-threaded execution (shard fan-out and inside each
    /// shard). Results are identical either way.
    pub fn set_sequential(&mut self, sequential: bool) {
        self.sequential = sequential;
        for shard in &mut self.shards {
            shard.set_sequential(sequential);
        }
    }

    /// Read-only access to the shard instances.
    pub fn shards(&self) -> &[S] {
        &self.shards
    }

    /// Routes one arrival to its round-robin shard.
    pub fn insert(&mut self, element: &Element) {
        let shard = self.next;
        self.next = (self.next + 1) % self.shards.len();
        self.shards[shard].insert(element);
    }

    /// Routes a batch of arrivals round-robin and processes the per-shard
    /// sub-batches concurrently (under the `parallel` feature) on the
    /// persistent pool. Equivalent to element-by-element
    /// [`ShardedStream::insert`] in batch order: shards share no mutable
    /// state, so scheduling cannot affect any shard's result.
    pub fn insert_batch(&mut self, batch: &[Element]) {
        if batch.is_empty() {
            return;
        }
        let k = self.shards.len();
        if k == 1 {
            // No dealing needed (and `next` stays 0): forward the borrowed
            // batch straight to the single shard.
            self.shards[0].insert_batch(batch);
            return;
        }
        let mut subs: Vec<Vec<Element>> = (0..k)
            .map(|_| Vec::with_capacity(batch.len() / k + 1))
            .collect();
        for (i, element) in batch.iter().enumerate() {
            subs[(self.next + i) % k].push(element.clone());
        }
        self.next = (self.next + batch.len()) % k;
        let work: Vec<(&mut S, Vec<Element>)> = self.shards.iter_mut().zip(subs).collect();
        maybe_par_for_each(self.sequential, work, |(shard, sub)| {
            shard.insert_batch(&sub);
        });
    }

    /// Total elements seen across all shards.
    pub fn processed(&self) -> usize {
        self.shards.iter().map(S::processed).sum()
    }

    /// Total distinct retained elements across all shards (shards partition
    /// the stream, so per-shard counts never overlap).
    pub fn stored_elements(&self) -> usize {
        self.shards.iter().map(S::stored_elements).sum()
    }

    /// Summed f32 pre-filter `(hits, fallbacks)` across all shards.
    pub fn prefilter_counters(&self) -> (u64, u64) {
        self.shards
            .iter()
            .map(S::prefilter_counters)
            .fold((0, 0), |(h, f), (sh, sf)| (h + sh, f + sf))
    }

    /// Merges the shard summaries into one solution.
    ///
    /// `K = 1` delegates directly to the single shard's post-processing —
    /// bit-identical to the unsharded algorithm. For `K > 1` the union of
    /// the shards' retained elements (shard-major, arena order) streams
    /// through a fresh instance of the algorithm whose post-processing
    /// produces the final solution; the fairness constraint is enforced
    /// exactly by that instance.
    pub fn finalize(&self) -> Result<Solution> {
        if self.shards.len() == 1 {
            return self.shards[0].finalize();
        }
        let unions: Vec<Vec<Element>> = self.shards.iter().map(S::retained_elements).collect();
        let union_len = unions.iter().map(Vec::len).sum();
        let mut merge = S::merge_instance(&self.config, union_len)?;
        merge.set_sequential(self.sequential);
        for union in &unions {
            merge.insert_batch(union);
        }
        merge.finalize()
    }

    /// The union of the shards' retained elements, shard-major in arena
    /// order — exactly the stream [`ShardedStream::finalize`]'s merge
    /// instance would consume. This is the distributed-merge export: a
    /// coordinator unioning these per-node vectors in node order replays
    /// the same merge pass bit-identically.
    pub fn retained_elements(&self) -> Vec<Element> {
        self.shards
            .iter()
            .flat_map(|shard| shard.retained_elements())
            .collect()
    }
}

/// # Persistence
///
/// The state tree is a fixed-length array of per-shard state trees plus
/// the round-robin cursor. Because the shard count never changes, a delta
/// snapshot ([`SnapshotDelta`](crate::persist::SnapshotDelta)) diffs the
/// shard array **element-wise**, so each shard contributes only its own
/// appended arena rows and member ids. Both formats and `full + delta*`
/// chains restore bit-identically (`tests/persist_codec.rs`).
impl<S: ShardAlgorithm + Snapshottable> Snapshottable for ShardedStream<S> {
    fn algorithm_tag() -> String {
        format!("sharded:{}", S::algorithm_tag())
    }

    fn snapshot_params(&self) -> SnapshotParams {
        let mut params = self.shards[0].snapshot_params();
        params.algorithm = Self::algorithm_tag();
        params.shards = self.shards.len();
        // The round-robin split can leave trailing shards empty (dim still
        // unknown); the observed dimension is the first shard's that saw an
        // element.
        params.dim = self
            .shards
            .iter()
            .map(|s| s.snapshot_params().dim)
            .find(|&d| d != 0)
            .unwrap_or(0);
        params
    }

    fn snapshot_state(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert(
            "shards".to_string(),
            serde::Value::Array(self.shards.iter().map(S::snapshot_state).collect()),
        );
        map.insert("next".to_string(), serde::Serialize::to_value(&self.next));
        serde::Value::Object(map)
    }

    fn capture_cursor(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert(
            "shards".to_string(),
            serde::Value::Array(self.shards.iter().map(S::capture_cursor).collect()),
        );
        map.insert("next".to_string(), serde::Serialize::to_value(&self.next));
        serde::Value::Object(map)
    }

    fn state_patch_since(&self, cursor: &serde::Value) -> Option<persist::StatePatch> {
        let shard_cursors = cursor.get("shards")?.as_array()?;
        if shard_cursors.len() != self.shards.len() {
            return None;
        }
        let shards: Vec<persist::StatePatch> = self
            .shards
            .iter()
            .zip(shard_cursors)
            .map(|(shard, c)| shard.state_patch_since(c))
            .collect::<Option<Vec<_>>>()?;
        Some(persist::StatePatch::Object(vec![
            ("shards".to_string(), persist::StatePatch::Elements(shards)),
            (
                "next".to_string(),
                persist::StatePatch::Replace(serde::Serialize::to_value(&self.next)),
            ),
        ]))
    }

    fn restore_state(state: &serde::Value) -> Result<Self> {
        let shard_states = state
            .get("shards")
            .and_then(serde::Value::as_array)
            .ok_or_else(|| FdmError::CorruptSnapshot {
                detail: "missing `shards` array".to_string(),
            })?;
        if shard_states.is_empty() {
            return Err(FdmError::InvalidShardCount);
        }
        let mut shards: Vec<S> = Vec::with_capacity(shard_states.len());
        for (i, shard_state) in shard_states.iter().enumerate() {
            let shard = S::restore_state(shard_state).map_err(|e| match e {
                FdmError::CorruptSnapshot { detail } => FdmError::CorruptSnapshot {
                    detail: format!("shard {i}: {detail}"),
                },
                FdmError::IncompatibleSnapshot { detail } => FdmError::IncompatibleSnapshot {
                    detail: format!("shard {i}: {detail}"),
                },
                other => other,
            })?;
            shards.push(shard);
        }
        // All shards must share one configuration (their dimensions may
        // differ only in the "no element seen yet" wildcard state).
        let reference = {
            let mut p = shards[0].snapshot_params();
            p.dim = 0;
            p
        };
        for (i, shard) in shards.iter().enumerate().skip(1) {
            let mut p = shard.snapshot_params();
            p.dim = 0;
            if p != reference {
                return Err(FdmError::IncompatibleSnapshot {
                    detail: format!("shard {i} was configured differently from shard 0"),
                });
            }
        }
        let dims: Vec<usize> = shards
            .iter()
            .map(|s| s.snapshot_params().dim)
            .filter(|&d| d != 0)
            .collect();
        if dims.windows(2).any(|w| w[0] != w[1]) {
            return Err(FdmError::CorruptSnapshot {
                detail: format!("shards disagree on the point dimension: {dims:?}"),
            });
        }
        let next: usize = crate::persist::field(state, "next")?;
        if next >= shards.len() {
            return Err(FdmError::CorruptSnapshot {
                detail: format!(
                    "round-robin cursor {next} out of range for {} shards",
                    shards.len()
                ),
            });
        }
        Ok(ShardedStream {
            config: shards[0].config(),
            shards,
            next,
            sequential: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DistanceBounds};
    use crate::fairness::FairnessConstraint;
    use crate::metric::Metric;
    use rand::prelude::*;

    fn random_dataset(n: usize, m: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
            .collect();
        let mut groups: Vec<usize> = (0..n).map(|_| rng.random_range(0..m)).collect();
        for g in 0..m {
            groups[g] = g;
        }
        Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap()
    }

    fn sfdm2_config(d: &Dataset, quotas: Vec<usize>) -> Sfdm2Config {
        Sfdm2Config {
            constraint: FairnessConstraint::new(quotas).unwrap(),
            epsilon: 0.1,
            bounds: d.exact_distance_bounds().unwrap(),
            metric: Metric::Euclidean,
        }
    }

    #[test]
    fn zero_shards_is_an_error() {
        let d = random_dataset(50, 2, 1);
        let cfg = sfdm2_config(&d, vec![2, 2]);
        assert_eq!(
            ShardedStream::<Sfdm2>::new(cfg, 0).unwrap_err(),
            FdmError::InvalidShardCount
        );
    }

    #[test]
    fn single_shard_is_bit_identical_to_unsharded() {
        let d = random_dataset(300, 3, 7);
        let cfg = sfdm2_config(&d, vec![2, 2, 3]);
        let mut plain = Sfdm2::new(cfg.clone()).unwrap();
        let mut sharded: ShardedStream<Sfdm2> = ShardedStream::new(cfg.clone(), 1).unwrap();
        // K = 1 batched takes the borrowed fast path; it must agree too.
        let mut batched: ShardedStream<Sfdm2> = ShardedStream::new(cfg, 1).unwrap();
        let elements: Vec<Element> = d.iter().collect();
        for e in &elements {
            plain.insert(e);
            sharded.insert(e);
        }
        for chunk in elements.chunks(64) {
            batched.insert_batch(chunk);
        }
        assert_eq!(plain.stored_elements(), sharded.stored_elements());
        assert_eq!(plain.stored_elements(), batched.stored_elements());
        let a = plain.finalize().unwrap();
        let b = sharded.finalize().unwrap();
        let c = batched.finalize().unwrap();
        assert_eq!(a.ids(), b.ids());
        assert_eq!(a.diversity.to_bits(), b.diversity.to_bits());
        assert_eq!(a.ids(), c.ids());
        assert_eq!(a.diversity.to_bits(), c.diversity.to_bits());
    }

    #[test]
    fn batch_insert_matches_element_by_element() {
        let d = random_dataset(400, 2, 9);
        let cfg = sfdm2_config(&d, vec![3, 3]);
        let elements: Vec<Element> = d.iter().collect();
        let mut one_by_one: ShardedStream<Sfdm2> = ShardedStream::new(cfg.clone(), 3).unwrap();
        let mut batched: ShardedStream<Sfdm2> = ShardedStream::new(cfg, 3).unwrap();
        for e in &elements {
            one_by_one.insert(e);
        }
        for chunk in elements.chunks(71) {
            batched.insert_batch(chunk);
        }
        assert_eq!(one_by_one.processed(), batched.processed());
        assert_eq!(one_by_one.stored_elements(), batched.stored_elements());
        let a = one_by_one.finalize().unwrap();
        let b = batched.finalize().unwrap();
        assert_eq!(a.ids(), b.ids());
        assert_eq!(a.diversity.to_bits(), b.diversity.to_bits());
    }

    #[test]
    fn merged_solution_is_fair_across_shard_counts() {
        let d = random_dataset(500, 4, 11);
        let c = FairnessConstraint::new(vec![2, 3, 2, 1]).unwrap();
        for k in [1usize, 2, 4, 7] {
            let cfg = Sfdm2Config {
                constraint: c.clone(),
                epsilon: 0.1,
                bounds: d.exact_distance_bounds().unwrap(),
                metric: Metric::Euclidean,
            };
            let mut sharded: ShardedStream<Sfdm2> = ShardedStream::new(cfg, k).unwrap();
            for e in d.iter() {
                sharded.insert(&e);
            }
            let sol = sharded.finalize().unwrap();
            assert_eq!(sol.len(), 8, "K = {k}");
            assert!(
                c.is_satisfied_by(&sol.group_counts(4)),
                "K = {k}: {:?}",
                sol.group_counts(4)
            );
        }
    }

    #[test]
    fn sfdm1_shards_work() {
        let d = random_dataset(300, 2, 13);
        let cfg = Sfdm1Config {
            constraint: FairnessConstraint::new(vec![3, 3]).unwrap(),
            epsilon: 0.1,
            bounds: d.exact_distance_bounds().unwrap(),
            metric: Metric::Euclidean,
        };
        let mut sharded: ShardedStream<Sfdm1> = ShardedStream::new(cfg, 4).unwrap();
        for e in d.iter() {
            sharded.insert(&e);
        }
        assert_eq!(sharded.num_shards(), 4);
        let sol = sharded.finalize().unwrap();
        assert_eq!(sol.group_counts(2), vec![3, 3]);
    }

    #[test]
    fn unconstrained_shards_work() {
        let d = random_dataset(300, 1, 17);
        let cfg = StreamingDmConfig {
            k: 6,
            epsilon: 0.1,
            bounds: d.exact_distance_bounds().unwrap(),
            metric: Metric::Euclidean,
        };
        let mut sharded: ShardedStream<StreamingDiversityMaximization> =
            ShardedStream::new(cfg, 3).unwrap();
        for e in d.iter() {
            sharded.insert(&e);
        }
        let sol = sharded.finalize().unwrap();
        assert_eq!(sol.len(), 6);
        assert!(sol.diversity > 0.0);
    }

    #[test]
    fn space_is_bounded_by_k_times_single_shard_cap() {
        // Each shard's space bound is the unsharded bound; K shards cost at
        // most K times that (the price of the scale-out path).
        let bounds = DistanceBounds::new(0.05, 15.0).unwrap();
        let c = FairnessConstraint::new(vec![3, 3]).unwrap();
        let d = random_dataset(2000, 2, 19);
        let cfg = Sfdm2Config {
            constraint: c,
            epsilon: 0.1,
            bounds,
            metric: Metric::Euclidean,
        };
        let mut single = Sfdm2::new(cfg.clone()).unwrap();
        let mut sharded: ShardedStream<Sfdm2> = ShardedStream::new(cfg, 4).unwrap();
        for e in d.iter() {
            single.insert(&e);
            sharded.insert(&e);
        }
        assert!(sharded.stored_elements() <= 4 * (single.stored_elements() + 16));
    }

    #[test]
    fn retained_elements_preserve_external_ids_and_groups() {
        let d = random_dataset(120, 2, 23);
        let cfg = sfdm2_config(&d, vec![2, 2]);
        let mut alg = Sfdm2::new(cfg).unwrap();
        for e in d.iter() {
            alg.insert(&e);
        }
        for e in ShardAlgorithm::retained_elements(&alg) {
            assert_eq!(e.group, d.group(e.id));
            assert_eq!(&e.point[..], d.point(e.id));
        }
    }
}
