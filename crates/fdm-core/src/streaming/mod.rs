//! One-pass streaming algorithms (the paper's contribution).
//!
//! All three algorithms share the same skeleton: a geometric
//! [`crate::guess::GuessLadder`] over the unknown optimum, and per guess `µ`
//! one or more bounded [`candidate::Candidate`] sets filled greedily with
//! elements at distance ≥ µ from the candidate. They differ in
//! post-processing:
//!
//! * [`unconstrained::StreamingDiversityMaximization`] (Algorithm 1) —
//!   return the fullest, most diverse candidate; `(1−ε)/2` (Theorem 1).
//! * [`sfdm1::Sfdm1`] (Algorithm 2, `m = 2`) — swap-balance each group-blind
//!   candidate against group-specific candidates; `(1−ε)/4` (Theorem 2).
//! * [`sfdm2::Sfdm2`] (Algorithm 3, any `m`) — cluster all retained elements
//!   and augment a partial solution via matroid intersection;
//!   `(1−ε)/(3m+2)` (Theorem 4).
//!
//! [`sharded::ShardedStream`] layers K-way scale-out on top of any of them:
//! round-robin partitioning into independent shard summaries processed
//! concurrently on the persistent pool, merged through one extra
//! guess-ladder pass.

//! [`summary::DynSummary`] unifies the whole family — every algorithm,
//! sharded or not, the sliding-window wrapper included — behind one
//! object-safe trait, and [`summary`]'s registry builds/restores any of
//! them by algorithm tag.

pub mod candidate;
pub mod sfdm1;
pub mod sfdm2;
pub mod sharded;
pub mod sliding;
pub mod summary;
pub mod unconstrained;
